"""The bandit strategy: successive halving over a seeded population.

A best-arm-identification view of schedule search: candidates are arms,
Monte-Carlo rounds are pulls, and the sample budget concentrates on the
arms that look best at low fidelity.  ``bandit_rounds`` rungs run budgets
``samples / 2**(R-1-r)`` (so the final rung is the full ``samples``), and
after each rung only the better half of the field advances.

Two properties keep it honest:

* The population is drawn from the dedicated stream
  ``derive_rng(seed, BANDIT_STREAM)`` — baseline orderings first, then
  random permutations deduplicated by canonical form — so the field is a
  pure function of the spec.
* The final rung always re-includes every baseline at the full budget, so
  the reported best can never be worse than the paper's fixed orderings
  and the payload's baseline rows exist whatever the halving eliminated.

Low-fidelity rungs share rounds with the full-budget measurement (budgets
shard from the front and streams are keyed per shard), so promoting a
survivor re-uses its earlier rounds as common random numbers rather than
contradicting them.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, ClassVar

from repro import obs
from repro.optimize.base import Optimizer, register_optimizer, sort_key
from repro.optimize.evaluator import BANDIT_STREAM, baseline_permutations
from repro.scheduling.enumeration import count_distinct_schedules
from repro.utils.seeding import derive_rng

if TYPE_CHECKING:
    from repro.optimize.evaluator import ScheduleEvaluator
    from repro.scenarios.spec import OptimizationScenario

__all__ = ["BanditOptimizer", "seed_population"]


def seed_population(
    spec: "OptimizationScenario", evaluator: "ScheduleEvaluator"
) -> list[tuple[int, ...]]:
    """The initial field: baselines first, then seeded random distinct arms.

    Grows the field to ``bandit_population`` distinct canonical schedules
    (or the whole space, if smaller).  Rejection-sampling distinct classes
    could stall on tiny spaces, so draws are capped well past the coupon-
    collector regime and the field simply stays smaller if the space is
    exhausted first.
    """
    field: list[tuple[int, ...]] = []
    seen: set[tuple[int, ...]] = set()
    for _, permutation in baseline_permutations(spec):
        if permutation not in seen:
            seen.add(permutation)
            field.append(permutation)
    total = count_distinct_schedules(evaluator.widths, evaluator.attacked)
    target = max(len(field), min(spec.bandit_population, total))
    rng = derive_rng(spec.seed, BANDIT_STREAM)
    draws = 0
    while len(field) < target and draws < 200 * spec.bandit_population:
        draws += 1
        candidate = evaluator.canonical(int(index) for index in rng.permutation(len(evaluator.widths)))
        if candidate not in seen:
            seen.add(candidate)
            field.append(candidate)
    return field


class BanditOptimizer(Optimizer):
    """Successive halving: reallocate the sample budget to survivors."""

    name: ClassVar[str] = "bandit"

    def plan(self, spec: "OptimizationScenario") -> list[tuple]:
        # Halving decisions depend on the previous rung: one sequential task.
        return [("halving", spec.bandit_rounds)]

    def execute(
        self, spec: "OptimizationScenario", evaluator: "ScheduleEvaluator", params: tuple
    ) -> dict:
        _, rounds = params
        field = seed_population(spec, evaluator)
        rungs = []
        for rung in range(rounds - 1):
            budget = max(1, spec.samples // 2 ** (rounds - 1 - rung))
            ranked = sorted(
                (evaluator.evaluate(permutation, budget) for permutation in field), key=sort_key
            )
            rungs.append({"budget": budget, "candidates": len(field)})
            obs.add("repro_bandit_rung_candidates_total", len(field), rung=str(rung))
            survivors = max(1, math.ceil(len(ranked) / 2))
            obs.add("repro_bandit_rung_survivors_total", survivors, rung=str(rung))
            field = [tuple(row["permutation"]) for row in ranked[:survivors]]
        # Final rung at the full budget; baselines always re-enter so the
        # payload can compare best-found against every paper ordering.
        finalists: list[tuple[int, ...]] = list(field)
        for _, permutation in baseline_permutations(spec):
            if permutation not in finalists:
                finalists.append(permutation)
        rows = [evaluator.evaluate(permutation, spec.samples) for permutation in finalists]
        rungs.append({"budget": spec.samples, "candidates": len(finalists)})
        obs.add("repro_bandit_rung_candidates_total", len(finalists), rung=str(rounds - 1))
        return {"rows": rows, "history": {"bandit": {"rungs": rungs}}}


register_optimizer(BanditOptimizer.name, BanditOptimizer)
