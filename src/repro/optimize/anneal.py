"""The simulated-annealing strategy: a seeded, resumable local search.

The chain starts from the best *baseline* ordering (so its best-found can
never be worse than the paper's fixed schedules), and at step ``k`` draws
everything it needs — move type, slot indices, the acceptance uniform —
from the dedicated stream ``derive_rng(seed, ANNEAL_STREAM, k)``.  Because
each step's stream is a pure function of ``(spec, k)`` and candidate
measurements are pure functions of ``(spec, candidate)``, the chain is
**resumable**: serialise :func:`chain_state` as JSON anywhere, rebuild an
evaluator later (any process, any engine backend) and
:func:`advance_chain` continues bit-identically — running steps
``[0, j)`` then ``[j, n)`` equals running ``[0, n)`` in one go.

The neighbourhood is the classic pair for permutation spaces: *swap* (two
slots exchange sensors) and *insert* (one sensor moves to another slot,
shifting the span between).  Proposals are canonicalised before
evaluation, so symmetric moves cost a memo hit, not an engine pass.

Temperature follows a geometric ladder ``t0 * scale * cooling**k`` where
``scale`` is the starting schedule's measured width — the spec's
``anneal_initial_temperature`` is therefore *relative* to the problem's
width scale, and one setting transfers across Table I rows.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, ClassVar, Sequence

from repro import obs
from repro.core.exceptions import ExperimentError
from repro.optimize.base import Optimizer, best_row, register_optimizer, sort_key
from repro.optimize.evaluator import ANNEAL_STREAM, baseline_permutations
from repro.utils.seeding import derive_rng

if TYPE_CHECKING:
    from repro.optimize.evaluator import ScheduleEvaluator
    from repro.scenarios.spec import OptimizationScenario

__all__ = ["AnnealOptimizer", "advance_chain", "chain_state", "run_chain"]


def _width(row: dict) -> float:
    """A row's width as a totally ordered float (degenerate rows last)."""
    return row["expected_width"] if row["valid"] else math.inf


def _propose(current: Sequence[int], rng) -> tuple[int, ...]:
    """One neighbourhood move on ``current`` drawn from ``rng``."""
    order = list(current)
    if len(order) < 2:
        return tuple(order)
    move = int(rng.integers(2))
    first, second = (int(index) for index in rng.choice(len(order), size=2, replace=False))
    if move == 0:
        order[first], order[second] = order[second], order[first]
    else:
        order.insert(second, order.pop(first))
    return tuple(order)


def chain_state(spec: "OptimizationScenario", evaluator: "ScheduleEvaluator") -> dict:
    """The chain's step-0 state: a plain JSON-serialisable dict.

    Evaluates every baseline ordering at the full budget (they are part of
    the payload regardless) and seats the chain on the best of them.
    ``visited`` records every distinct canonical candidate the chain has
    measured, in first-visit order — re-evaluating it later is all memo
    hits, which is how :class:`AnnealOptimizer.execute` rebuilds its rows
    after a resume.
    """
    baseline_rows = [
        evaluator.evaluate(permutation, spec.samples)
        for _, permutation in baseline_permutations(spec)
    ]
    start = best_row(baseline_rows)
    width = _width(start)
    visited: list[list[int]] = []
    for row in baseline_rows:
        if row["permutation"] not in visited:
            visited.append(row["permutation"])
    return {
        "step": 0,
        "start": list(start["permutation"]),
        "current": list(start["permutation"]),
        "best": list(start["permutation"]),
        "accepted": 0,
        "temperature_scale": width if math.isfinite(width) and width > 0 else 1.0,
        "visited": visited,
    }


def advance_chain(
    spec: "OptimizationScenario", evaluator: "ScheduleEvaluator", state: dict
) -> dict:
    """One annealing step; returns the successor state (input unchanged)."""
    step = state["step"]
    rng = derive_rng(spec.seed, ANNEAL_STREAM, step)
    proposal = evaluator.canonical(_propose(state["current"], rng))
    row = evaluator.evaluate(proposal, spec.samples)
    current_row = evaluator.evaluate(state["current"], spec.samples)  # memo hit
    best = evaluator.evaluate(state["best"], spec.samples)  # memo hit
    visited = [list(permutation) for permutation in state["visited"]]
    if row["permutation"] not in visited:
        visited.append(row["permutation"])
    delta = _width(row) - _width(current_row)
    temperature = (
        spec.anneal_initial_temperature * state["temperature_scale"] * spec.anneal_cooling**step
    )
    accept = delta <= 0
    if not accept and temperature > 0 and math.isfinite(delta):
        accept = float(rng.random()) < math.exp(-delta / temperature)
    return {
        "step": step + 1,
        "start": list(state["start"]),
        "current": row["permutation"] if accept else list(state["current"]),
        "best": min((row, best), key=sort_key)["permutation"],
        "accepted": state["accepted"] + int(accept),
        "temperature_scale": state["temperature_scale"],
        "visited": visited,
    }


def run_chain(
    spec: "OptimizationScenario",
    evaluator: "ScheduleEvaluator",
    state: dict | None = None,
    until_step: int | None = None,
) -> dict:
    """Advance the chain to ``until_step`` (default: ``spec.anneal_steps``)."""
    if state is None:
        state = chain_state(spec, evaluator)
    if until_step is None:
        until_step = spec.anneal_steps
    if state["step"] > until_step:
        raise ExperimentError(
            f"cannot rewind an annealing chain: state is at step {state['step']}, "
            f"asked to stop at {until_step}"
        )
    while state["step"] < until_step:
        state = advance_chain(spec, evaluator, state)
    return state


class AnnealOptimizer(Optimizer):
    """Simulated annealing over the swap/insert neighbourhood."""

    name: ClassVar[str] = "anneal"

    def plan(self, spec: "OptimizationScenario") -> list[tuple]:
        # The chain is inherently sequential: one task, resumable by state.
        return [("chain", spec.anneal_steps)]

    def execute(
        self, spec: "OptimizationScenario", evaluator: "ScheduleEvaluator", params: tuple
    ) -> dict:
        _, steps = params
        state = run_chain(spec, evaluator, until_step=steps)
        # Acceptance telemetry: counts come straight from the chain state, so
        # they are exact after a resume too (the state carries the tallies).
        obs.add("repro_anneal_steps_total", state["step"])
        obs.add("repro_anneal_accepted_total", state["accepted"])
        rows = [evaluator.evaluate(permutation, spec.samples) for permutation in state["visited"]]
        return {
            "rows": rows,
            "history": {
                "anneal": {
                    "steps": state["step"],
                    "accepted": state["accepted"],
                    "start": state["start"],
                    "final_temperature": (
                        spec.anneal_initial_temperature
                        * state["temperature_scale"]
                        * spec.anneal_cooling ** max(state["step"] - 1, 0)
                    ),
                }
            },
        }


register_optimizer(AnnealOptimizer.name, AnnealOptimizer)
