"""Candidate evaluation: canonical schedules, packed engine passes, memo.

Every optimizer strategy measures candidates through one
:class:`ScheduleEvaluator`, which enforces the three properties the
subsystem's determinism pins rely on:

1. **Canonicalization.**  A proposed permutation is first reduced with
   :func:`repro.scheduling.enumeration.canonical_schedule`, so symmetric
   proposals (swapping equal-width, equally-attacked sensors) collapse
   onto one plan and share one measurement.
2. **Stateless streams.**  A candidate's budget is sharded into
   ``spec.shard_samples`` chunks and shard ``i`` draws from stream ``i``
   of ``jumped_rngs(seed, shards, EVAL_STREAM, *canonical)`` — a pure
   function of the spec and the candidate (the entropy pool is hashed once
   per candidate; shards are ``PCG64.jumped`` offsets, which keeps stream
   derivation out of the hot loop).  The measured width is therefore identical
   no matter which strategy asks, in which order, on which worker, or on
   which engine backend (the engines are bit-identical by conformance).
   Because budgets shard from the front, a half-budget bandit rung shares
   its rounds with the full-budget measurement's prefix — common random
   numbers across rungs, for free.
3. **Packing.**  All shards of a candidate go through one
   :meth:`repro.engine.base.Engine.run_many` call, so a candidate costs a
   single fused/numba pass instead of one engine invocation per shard —
   the ≥5x candidate-evaluations/sec gate of
   ``benchmarks/bench_optimize.py``.

Repeat evaluations (an annealing chain revisiting a neighbourhood, a
bandit re-measuring survivors at the previous rung's budget) are memo
hits: the value is a pure function, so caching it is exact, not an
approximation.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro import obs
from repro.engine import get_engine
from repro.scheduling.enumeration import canonical_schedule
from repro.scheduling.schedule import FixedSchedule
from repro.utils.seeding import jumped_rngs

if TYPE_CHECKING:  # annotation-only: repro.scenarios lazily imports us back
    from repro.scenarios.spec import OptimizationScenario

__all__ = ["EVAL_STREAM", "ANNEAL_STREAM", "BANDIT_STREAM", "ScheduleEvaluator", "baseline_permutations"]

#: Spawn-key stream discriminators.  Candidate measurements, the annealing
#: proposal chain and the bandit population draw from disjoint child
#: streams of the spec seed, keyed so no two derivations can collide.
EVAL_STREAM = 0
ANNEAL_STREAM = 1
BANDIT_STREAM = 2


def _shard_sizes(total: int, shard_size: int) -> list[int]:
    """Deterministic front-loaded chunks of at most ``shard_size`` rounds."""
    sizes = [shard_size] * (total // shard_size)
    if total % shard_size:
        sizes.append(total % shard_size)
    return sizes


def baseline_permutations(spec: "OptimizationScenario") -> list[tuple[str, tuple[int, ...]]]:
    """The baseline orderings as ``(schedule spec, canonical permutation)``.

    Resolves each deterministic baseline in ``spec.case.schedules`` to the
    concrete permutation it induces on the case's widths and reduces it to
    canonical form — so a baseline's measurement is exactly the
    measurement of the matching search candidate (same plan, same
    streams), and "best-found vs the paper's orderings" compares like with
    like.  A pure function of the spec: merges may call it without
    simulating.
    """
    from repro.scenarios.spec import schedule_from_spec

    config = spec.case.comparison_config()
    # Deterministic orderings never consume randomness (the spec validator
    # rejects "random"); the generator argument is just the signature.
    rng = np.random.default_rng(0)
    pairs = []
    for text in spec.case.schedules:
        order = schedule_from_spec(text).order(config.lengths, rng)
        pairs.append((text, canonical_schedule(order, config.lengths, config.resolved_attacked)))
    return pairs


class ScheduleEvaluator:
    """Measure candidate schedules for one :class:`OptimizationScenario`.

    One evaluator per shard task; the memo lives for the task's lifetime.
    Values are pure functions of ``(spec, candidate, samples)``, so two
    tasks measuring the same candidate agree bit for bit — cross-task
    deduplication would save time but never changes a payload.
    """

    def __init__(self, spec: "OptimizationScenario") -> None:
        self.spec = spec
        self.config = spec.case.comparison_config()
        self.attack = spec.case.attack
        self.faults = spec.case.faults()
        self.engine = get_engine(spec.engine)
        self._memo: dict[tuple, dict] = {}
        #: Measurements requested (memo hits included).
        self.evaluations = 0
        #: Distinct ``(candidate, samples)`` measurements actually run.
        self.unique_evaluations = 0
        #: Packed ``run_many`` engine passes dispatched.
        self.engine_passes = 0
        #: Monte-Carlo rounds simulated across all passes.
        self.rounds_simulated = 0

    @property
    def widths(self) -> tuple[float, ...]:
        return self.config.lengths

    @property
    def attacked(self) -> tuple[int, ...]:
        return self.config.resolved_attacked

    def canonical(self, permutation: Sequence[int]) -> tuple[int, ...]:
        """Reduce a proposal to its equivalence-class representative."""
        return canonical_schedule(permutation, self.widths, self.attacked)

    def counters(self) -> dict:
        """Bookkeeping for payloads and the packing benchmark."""
        return {
            "evaluations": self.evaluations,
            "unique_evaluations": self.unique_evaluations,
            "engine_passes": self.engine_passes,
            "rounds_simulated": self.rounds_simulated,
        }

    def evaluate(self, permutation: Sequence[int], samples: int) -> dict:
        """Measure one candidate at ``samples`` rounds; memoized and exact."""
        canonical = self.canonical(permutation)
        self.evaluations += 1
        key = (canonical, int(samples))
        row = self._memo.get(key)
        if row is not None:
            obs.add("repro_optimize_evaluations_total", 1, outcome="memo")
            return row
        budgets = _shard_sizes(int(samples), self.spec.shard_samples)
        rngs = jumped_rngs(self.spec.seed, len(budgets), EVAL_STREAM, *canonical)
        started = perf_counter() if obs.enabled() else None
        with obs.span("optimize.evaluate", engine=self.engine.name, samples=int(samples)):
            results = self.engine.run_many(
                self.config,
                FixedSchedule(canonical),
                self.attack,
                self.faults,
                budgets=budgets,
                rngs=rngs,
                channel=self.spec.case.channel,
            )
        if started is not None:
            obs.add("repro_optimize_evaluations_total", 1, outcome="unique")
            obs.observe("repro_optimize_evaluation_seconds", perf_counter() - started)
        self.unique_evaluations += 1
        self.engine_passes += 1
        self.rounds_simulated += int(samples)
        valid = sum(int(np.count_nonzero(result.valid)) for result in results)
        width_sum = sum(float(result.widths[result.valid].sum()) for result in results)
        detected = sum(int(np.count_nonzero(result.attacker_detected)) for result in results)
        row = {
            "schedule": "fixed:" + ",".join(str(index) for index in canonical),
            "permutation": list(canonical),
            "samples": int(samples),
            "valid": valid,
            "expected_width": width_sum / valid if valid else float("nan"),
            "detected_fraction": detected / int(samples),
        }
        self._memo[key] = row
        return row

    def evaluate_many(self, permutations: Sequence[Sequence[int]], samples: int) -> list[dict]:
        """Measure several candidates (one packed pass per distinct plan)."""
        return [self.evaluate(permutation, samples) for permutation in permutations]
