"""Schedule search: the repro as a design tool (``docs/OPTIMIZATION.md``).

The paper evaluates a handful of fixed transmission schedules; this package
*searches* the schedule space for a configuration's best ordering.  Three
strategies register on import — ``exhaustive``, ``anneal`` and ``bandit`` —
all measuring candidates through the shared
:class:`~repro.optimize.evaluator.ScheduleEvaluator`, whose stateless
per-candidate RNG streams and packed :meth:`~repro.engine.base.Engine
.run_many` passes make every measurement a pure function of the spec.

Entry points: an :class:`~repro.scenarios.spec.OptimizationScenario` run
through the standard runner/store/CLI stack (``python -m repro optimize``),
or the registry directly (:func:`get_optimizer`).
"""

from repro.optimize.base import (
    Optimizer,
    available_optimizers,
    best_row,
    get_optimizer,
    list_optimizers,
    register_optimizer,
    sort_key,
)
from repro.optimize.evaluator import (
    ANNEAL_STREAM,
    BANDIT_STREAM,
    EVAL_STREAM,
    ScheduleEvaluator,
    baseline_permutations,
)

# Strategy modules register themselves on import; keep them after the
# registry so their module-level register_optimizer calls resolve.
from repro.optimize.anneal import AnnealOptimizer, advance_chain, chain_state, run_chain
from repro.optimize.bandit import BanditOptimizer, seed_population
from repro.optimize.exhaustive import ExhaustiveOptimizer
from repro.optimize.report import MAX_REPORTED_ROWS, assemble_payload

__all__ = [
    "Optimizer",
    "register_optimizer",
    "available_optimizers",
    "list_optimizers",
    "get_optimizer",
    "sort_key",
    "best_row",
    "EVAL_STREAM",
    "ANNEAL_STREAM",
    "BANDIT_STREAM",
    "ScheduleEvaluator",
    "baseline_permutations",
    "ExhaustiveOptimizer",
    "AnnealOptimizer",
    "advance_chain",
    "chain_state",
    "run_chain",
    "BanditOptimizer",
    "seed_population",
    "MAX_REPORTED_ROWS",
    "assemble_payload",
]
