"""Assemble the optimization payload from plan-ordered shard outcomes.

The merge half of the runner's ``optimization`` trio, factored here so the
runner stays a thin dispatcher.  Everything is plain-JSON arithmetic over
rows the strategies already measured — a merge never simulates — and the
result is worker-count invariant because the rows are.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.core.exceptions import ExperimentError
from repro.optimize.base import best_row, get_optimizer, sort_key
from repro.optimize.evaluator import baseline_permutations
from repro.scheduling.enumeration import count_distinct_schedules

if TYPE_CHECKING:
    from repro.scenarios.spec import OptimizationScenario

__all__ = ["MAX_REPORTED_ROWS", "assemble_payload"]

#: Full-budget rows kept in the payload (sorted best-first).  Exhaustive
#: sweeps over 8-sensor spaces measure tens of thousands of candidates;
#: artifacts keep the head of the ranking plus the exact candidate count.
MAX_REPORTED_ROWS = 50


def _sum_counters(outcomes: list[dict]) -> dict:
    totals: dict[str, int] = {}
    for outcome in outcomes:
        for name, value in outcome.get("counters", {}).items():
            totals[name] = totals.get(name, 0) + int(value)
    return totals


def assemble_payload(spec: "OptimizationScenario", outcomes: list[dict]) -> dict:
    """The scenario payload: best-found schedule versus the paper baselines."""
    config = spec.case.comparison_config()
    merged = get_optimizer(spec.strategy).merge(spec, outcomes)
    full_rows = [row for row in merged["rows"] if row["samples"] == spec.samples]
    by_permutation = {tuple(row["permutation"]): row for row in full_rows}

    baselines = []
    for text, permutation in baseline_permutations(spec):
        row = by_permutation.get(permutation)
        if row is None:
            raise ExperimentError(
                f"strategy {spec.strategy!r} returned no full-budget row for baseline "
                f"{text!r} (permutation {list(permutation)}); every strategy must "
                "measure the baseline orderings at the full budget"
            )
        baselines.append({"schedule_spec": text, **row})

    best = best_row(full_rows)
    best_baseline = best_row(baselines)
    reduction = best_baseline["expected_width"] - best["expected_width"]
    if not math.isfinite(reduction):
        reduction = 0.0
    ranked = sorted(full_rows, key=sort_key)
    return {
        "kind": spec.kind,
        "strategy": spec.strategy,
        "engine": spec.engine,
        "case": {
            "label": spec.case.label,
            "lengths": list(spec.case.lengths),
            "fa": spec.case.fa,
            "f": config.resolved_f,
            "attacked_indices": list(config.resolved_attacked),
            "attack": spec.case.attack,
            "fault_probability": spec.case.fault_probability,
        },
        "distinct_schedules": count_distinct_schedules(config.lengths, config.resolved_attacked),
        "samples_per_candidate": spec.samples,
        "evaluated_candidates": len(full_rows),
        "best": dict(best),
        "baselines": baselines,
        "improvement": {
            "best_baseline_spec": best_baseline["schedule_spec"],
            "best_baseline_width": best_baseline["expected_width"],
            "width_reduction": reduction,
            "percent": (
                100.0 * reduction / best_baseline["expected_width"]
                if best_baseline["expected_width"]
                and math.isfinite(best_baseline["expected_width"])
                else 0.0
            ),
        },
        "rows": ranked[:MAX_REPORTED_ROWS],
        "rows_truncated": len(ranked) > MAX_REPORTED_ROWS,
        "counters": _sum_counters(outcomes),
        "history": merged["history"],
    }
