"""The exhaustive strategy: measure every distinct schedule.

Ground truth for small sensor sets.  The candidate space is the set of
schedule equivalence classes (:func:`repro.scheduling.enumeration
.enumerate_schedules`), so ties in the width grid shrink the work — the
paper's Table I rows range from 5 to a few hundred distinct schedules even
where ``n!`` reaches 40320.  The plan chunks the enumeration into
``spec.shard_candidates``-sized index ranges, which the runner fans out
over worker processes; because every candidate's measurement derives
statelessly from the spec (see
:class:`~repro.optimize.evaluator.ScheduleEvaluator`), the chunked result
is bit-identical to a single sequential sweep.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, ClassVar

from repro.core.exceptions import ExperimentError
from repro.optimize.base import Optimizer, register_optimizer
from repro.scheduling.enumeration import count_distinct_schedules, enumerate_schedules

if TYPE_CHECKING:
    from repro.optimize.evaluator import ScheduleEvaluator
    from repro.scenarios.spec import OptimizationScenario

__all__ = ["ExhaustiveOptimizer"]


class ExhaustiveOptimizer(Optimizer):
    """Enumerate and measure the whole schedule space."""

    name: ClassVar[str] = "exhaustive"

    def _count(self, spec: "OptimizationScenario") -> int:
        config = spec.case.comparison_config()
        return count_distinct_schedules(config.lengths, config.resolved_attacked)

    def validate(self, spec: "OptimizationScenario") -> None:
        count = self._count(spec)
        if count > spec.max_candidates:
            raise ExperimentError(
                f"optimization scenario {spec.name!r}: the schedule space has {count} "
                f"distinct candidates, above max_candidates={spec.max_candidates}; "
                "raise the cap or switch to strategy='anneal'/'bandit'"
            )

    def plan(self, spec: "OptimizationScenario") -> list[tuple]:
        count = self._count(spec)
        return [
            ("chunk", start, min(spec.shard_candidates, count - start))
            for start in range(0, count, spec.shard_candidates)
        ]

    def execute(
        self, spec: "OptimizationScenario", evaluator: "ScheduleEvaluator", params: tuple
    ) -> dict:
        _, start, size = params
        candidates = itertools.islice(
            enumerate_schedules(evaluator.widths, evaluator.attacked), start, start + size
        )
        rows = [evaluator.evaluate(candidate, spec.samples) for candidate in candidates]
        return {"rows": rows, "history": {}}


register_optimizer(ExhaustiveOptimizer.name, ExhaustiveOptimizer)
