"""The schedule-optimizer layer: protocol, registry, shared row algebra.

The paper *compares* a handful of fixed transmission schedules; this layer
*searches* the schedule space.  It mirrors the engine layer's shape
(:mod:`repro.engine.base`) deliberately:

* :class:`Optimizer` is the strategy protocol.  A strategy plans its shard
  tasks (a pure function of the spec, so the runner stays worker-count
  invariant), executes one task against a
  :class:`~repro.optimize.evaluator.ScheduleEvaluator`, and merges the
  plan-ordered outcomes into its payload section.
* :func:`register_optimizer` / :func:`get_optimizer` form the registry the
  scenario spec, the runner and the ``python -m repro optimize`` CLI all
  resolve strategies through; unknown names fail with did-you-mean hints
  exactly like unknown engines do.

Three strategies register on import of :mod:`repro.optimize`:
``exhaustive`` (:mod:`repro.optimize.exhaustive`), ``anneal``
(:mod:`repro.optimize.anneal`) and ``bandit``
(:mod:`repro.optimize.bandit`).  The subsystem contract — budget
semantics, determinism guarantees, resumability — is documented in
``docs/OPTIMIZATION.md``.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, ClassVar

from repro import obs
from repro.core.exceptions import ExperimentError

if TYPE_CHECKING:  # annotation-only: repro.scenarios lazily imports us back
    from repro.optimize.evaluator import ScheduleEvaluator
    from repro.scenarios.spec import OptimizationScenario

__all__ = [
    "Optimizer",
    "register_optimizer",
    "available_optimizers",
    "list_optimizers",
    "get_optimizer",
    "sort_key",
    "best_row",
]


def sort_key(row: dict) -> tuple:
    """Deterministic ranking of candidate rows: width, then permutation.

    Rows whose every round produced an empty fusion (possible only with
    fault injection) carry a ``NaN`` width and sort last; the permutation
    tie-break makes every strategy's argmin unique, so two strategies that
    measured the same candidates report the same winner bit for bit.
    """
    width = row["expected_width"]
    degenerate = not row["valid"]
    return (degenerate, width if not degenerate else 0.0, tuple(row["permutation"]))


def best_row(rows: list[dict]) -> dict:
    """The winning row under :func:`sort_key` (raises on an empty list)."""
    if not rows:
        raise ExperimentError("no candidate rows to pick a best schedule from")
    return min(rows, key=sort_key)


class Optimizer(abc.ABC):
    """One search strategy over the schedule space."""

    #: Registry name (also the ``--strategy`` spelling and the spec field).
    name: ClassVar[str] = ""

    def validate(self, spec: "OptimizationScenario") -> None:
        """Eagerly reject specs this strategy cannot run (default: accept).

        Called from ``OptimizationScenario.__post_init__`` so a bad spec
        fails at registration time, not mid-run on a worker.
        """

    @abc.abstractmethod
    def plan(self, spec: "OptimizationScenario") -> list[tuple]:
        """Shard-task parameter tuples — a pure function of the spec.

        Strategies whose search loop is inherently sequential (anneal,
        bandit) return a single task; the exhaustive strategy chunks the
        candidate space so the runner can fan it out.
        """

    @abc.abstractmethod
    def execute(
        self, spec: "OptimizationScenario", evaluator: "ScheduleEvaluator", params: tuple
    ) -> dict:
        """Run one shard task; returns ``{"rows": [...], "history": {...}}``.

        Every returned row must come from ``evaluator.evaluate`` so its
        width is the canonical pure-function-of-spec measurement (see
        :class:`~repro.optimize.evaluator.ScheduleEvaluator`).
        """

    def merge(self, spec: "OptimizationScenario", outcomes: list[dict]) -> dict:
        """Combine plan-ordered task outcomes into the strategy section.

        The default concatenates rows (deduping repeated candidates by
        keeping the first full-budget measurement — they are bit-identical
        anyway) and merges the histories of single-task strategies.
        """
        with obs.span("optimize.merge", strategy=self.name, tasks=len(outcomes)):
            rows: list[dict] = []
            seen: set[tuple] = set()
            history: dict = {}
            for outcome in outcomes:
                for row in outcome["rows"]:
                    key = (tuple(row["permutation"]), row["samples"])
                    if key not in seen:
                        seen.add(key)
                        rows.append(row)
                history.update(outcome.get("history", {}))
            return {"rows": rows, "history": history}


_REGISTRY: dict[str, Callable[[], Optimizer]] = {}


def register_optimizer(
    name: str, factory: Callable[[], Optimizer], replace: bool = False
) -> None:
    """Register a strategy factory under ``name`` (e.g. at import time)."""
    if not name:
        raise ExperimentError("an optimizer needs a non-empty registry name")
    if name in _REGISTRY and not replace:
        raise ExperimentError(f"optimizer {name!r} is already registered (pass replace=True)")
    _REGISTRY[name] = factory


def available_optimizers() -> tuple[str, ...]:
    """Names of all registered strategies, sorted."""
    return tuple(sorted(_REGISTRY))


#: Alias mirroring :func:`repro.engine.list_engines`, for suites that
#: parametrise over every registered strategy.
list_optimizers = available_optimizers


def get_optimizer(strategy: str | Optimizer) -> Optimizer:
    """Resolve a strategy selection to an optimizer instance.

    Unknown names raise with the registered names and a did-you-mean
    suggestion, mirroring the engine registry — the CLI turns this into
    its non-zero exit path.
    """
    if isinstance(strategy, Optimizer):
        return strategy
    factory = _REGISTRY.get(strategy)
    if factory is None:
        import difflib

        available = ", ".join(available_optimizers())
        matches = difflib.get_close_matches(str(strategy), available_optimizers(), n=3, cutoff=0.5)
        hint = f" — did you mean {', '.join(repr(match) for match in matches)}?" if matches else ""
        raise ExperimentError(
            f"unknown optimizer strategy {strategy!r}; available strategies: {available}{hint}"
        )
    return factory()
