"""Frozen description of a lossy broadcast channel.

A :class:`ChannelSpec` is pure data — hashable, picklable across worker
processes, and JSON-serialisable for the scenario wire format (where it is
``spec_version``-gated; see :mod:`repro.scenarios.spec`).  It describes
three orthogonal impairments applied to every scheduled transmission:

* **loss** — a transmission never reaches any receiver.  ``model="iid"``
  drops each slot independently with probability :attr:`loss`;
  ``model="gilbert-elliott"`` runs the classic two-state burst model
  (a good state losing with :attr:`loss_good`, a bad state losing with
  :attr:`loss_bad`, transition probabilities :attr:`good_to_bad` /
  :attr:`bad_to_good`, started from the stationary distribution);
* **delay** — with probability :attr:`delay` a surviving transmission is
  delivered ``1..max_delay`` slots late: later slots' attackers do not see
  it until it arrives, and if it arrives after the round's last slot it
  misses fusion entirely that round;
* **retransmission** — up to :attr:`retransmit_budget` *lost* transmissions
  are retried in tail slots appended to the schedule, in slot order, each
  retry subject to the same loss process (delayed-but-delivered messages
  are not retried — the sender got an ACK).

The exact per-round semantics live in :func:`repro.channel.model.realize_channel`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.exceptions import ExperimentError

__all__ = ["CHANNEL_MODELS", "ChannelSpec", "channel_spec_from_dict"]

#: Loss models :class:`ChannelSpec` understands.
CHANNEL_MODELS = ("iid", "gilbert-elliott")

#: Fields that must be probabilities in ``[0, 1]``.
_PROBABILITY_FIELDS = (
    "loss",
    "good_to_bad",
    "bad_to_good",
    "loss_good",
    "loss_bad",
    "delay",
)


@dataclass(frozen=True)
class ChannelSpec:
    """Parameters of the lossy-channel model (all fields are primitives)."""

    model: str = "iid"
    loss: float = 0.0
    good_to_bad: float = 0.0
    bad_to_good: float = 1.0
    loss_good: float = 0.0
    loss_bad: float = 1.0
    delay: float = 0.0
    max_delay: int = 1
    retransmit_budget: int = 0

    def __post_init__(self) -> None:
        if self.model not in CHANNEL_MODELS:
            raise ExperimentError(
                f"unknown channel model {self.model!r}; expected one of {CHANNEL_MODELS}"
            )
        for name in _PROBABILITY_FIELDS:
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ExperimentError(
                    f"channel {name} must be a probability, got {value!r}"
                )
            if not 0.0 <= float(value) <= 1.0:
                raise ExperimentError(
                    f"channel {name} must be in [0, 1], got {value!r}"
                )
        if not isinstance(self.max_delay, int) or isinstance(self.max_delay, bool):
            raise ExperimentError(f"channel max_delay must be an int, got {self.max_delay!r}")
        if self.max_delay < 1:
            raise ExperimentError(f"channel max_delay must be at least 1, got {self.max_delay}")
        if not isinstance(self.retransmit_budget, int) or isinstance(self.retransmit_budget, bool):
            raise ExperimentError(
                f"channel retransmit_budget must be an int, got {self.retransmit_budget!r}"
            )
        if self.retransmit_budget < 0:
            raise ExperimentError(
                f"channel retransmit_budget must be non-negative, got {self.retransmit_budget}"
            )

    def to_dict(self) -> dict:
        """Plain JSON types, suitable for the scenario wire format."""
        return dataclasses.asdict(self)


def channel_spec_from_dict(payload: dict) -> ChannelSpec:
    """Rebuild a :class:`ChannelSpec`, rejecting unknown fields by name."""
    if isinstance(payload, ChannelSpec):
        return payload
    if not isinstance(payload, dict):
        raise ExperimentError(
            f"a channel spec must be an object, got {type(payload).__name__}"
        )
    fields = {field.name for field in dataclasses.fields(ChannelSpec)}
    unknown = sorted(set(payload) - fields)
    if unknown:
        raise ExperimentError(f"channel spec carries unknown fields: {', '.join(unknown)}")
    return ChannelSpec(**payload)
