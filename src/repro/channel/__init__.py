"""Lossy-channel round model: message loss, delay, and retransmission.

The paper assumes a perfect shared broadcast bus — every scheduled
transmission arrives, in order, exactly once.  This package relaxes that
assumption the same way real CAN / wireless TDMA stacks do: a
:class:`~repro.channel.spec.ChannelSpec` describes per-slot message loss
(i.i.d. or bursty Gilbert–Elliott), per-slot delivery delay, and a bounded
retransmission policy that consumes tail slots of the schedule, and
:func:`~repro.channel.model.realize_channel` turns that spec into the
concrete per-round fate of every transmission.

The channel draws from its **own spawned generator** (one
``rng.spawn(1)[0]`` child per engine invocation, taken at a fixed point of
the shared prologue), so configuring no channel leaves every existing
payload bit-identical, and all four engine backends consume identical
channel randomness — the conformance suite checks them bit-for-bit under
any spec.  Semantics, RNG discipline and findings are documented in
``docs/CHANNELS.md``.
"""

from repro.channel.model import ChannelRealization, ChannelRoundView, realize_channel
from repro.channel.spec import CHANNEL_MODELS, ChannelSpec, channel_spec_from_dict

__all__ = [
    "CHANNEL_MODELS",
    "ChannelSpec",
    "ChannelRealization",
    "ChannelRoundView",
    "channel_spec_from_dict",
    "realize_channel",
]
