"""Per-round realization of a :class:`~repro.channel.spec.ChannelSpec`.

:func:`realize_channel` is the single place channel randomness is drawn, so
every engine backend consumes an identical stream for identical specs.  The
draw order is part of the bit-identity contract (the conformance suite
compares engines bit-for-bit under every channel spec):

1. loss uniforms over all ``n + retransmit_budget`` slots — one
   ``(batch, n + R)`` draw for ``model="iid"``; for ``"gilbert-elliott"``
   one ``(batch, n + R)`` draw of state uniforms (column 0 against the
   stationary bad probability, later columns against the transition
   probabilities) followed by one ``(batch, n + R)`` draw of loss uniforms;
2. delay — only when ``spec.delay > 0``: one ``(batch, n)`` uniform draw
   for which transmissions are delayed, then one ``(batch, n)``
   ``integers(1, max_delay + 1)`` draw for by how much.

Semantics (see ``docs/CHANNELS.md`` for the prose version):

* a transmission in slot ``s`` is **lost** when its loss uniform fires; a
  lost transmission reaches nobody and can be **retransmitted**;
* a surviving transmission **arrives** at ``s`` (or later when delayed).
  An attacker choosing its forgery in slot ``t`` sees exactly the
  transmissions with ``arrival < t`` — a delayed interval is invisible
  until it lands;
* the round has ``n + tail_used`` delivery opportunities, where
  ``tail_used = min(#lost, retransmit_budget)``: the first
  ``retransmit_budget`` lost transmissions (in slot order) are retried in
  the tail slots, each retry subject to the same loss process.  A message
  reaches fusion when it arrives before the round closes or its retry
  succeeds.  Delayed-past-the-end messages are *not* retried — delivery
  was acknowledged, just late;
* retransmissions land in tail slots ``>= n``, so they are never visible
  to an attacker forging in slots ``0..n-1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.spec import ChannelSpec

__all__ = ["ChannelRealization", "ChannelRoundView", "realize_channel"]


@dataclass(frozen=True, eq=False)
class ChannelRoundView:
    """One round's slice of a :class:`ChannelRealization` (all arrays 1-D)."""

    lost: np.ndarray
    arrival: np.ndarray
    received: np.ndarray

    def visible_at(self, slot: int) -> np.ndarray:
        """(slot,) bool — which earlier transmissions are visible in ``slot``."""
        return ~self.lost[:slot] & (self.arrival[:slot] < slot)


@dataclass(frozen=True, eq=False)
class ChannelRealization:
    """The concrete fate of every transmission in a batch of rounds.

    All arrays are indexed in **slot space** (column ``s`` is the ``s``-th
    transmission of the schedule, not sensor ``s``).
    """

    spec: ChannelSpec
    #: (batch, n) bool — the original transmission in slot ``s`` was lost.
    lost: np.ndarray
    #: (batch, n) int — slot index at which a surviving transmission lands
    #: (``>= s``; meaningless where ``lost``).
    arrival: np.ndarray
    #: (batch, n) bool — the slot's interval reaches fusion (directly,
    #: delayed-but-in-time, or via a successful retransmission).
    received: np.ndarray
    #: (batch,) int — transmissions that never reached fusion this round.
    dropped: np.ndarray
    #: (batch,) int — tail slots consumed by retransmission attempts.
    retransmits: np.ndarray

    @property
    def batch(self) -> int:
        return self.lost.shape[0]

    @property
    def n(self) -> int:
        return self.lost.shape[1]

    def received_counts(self) -> np.ndarray:
        """(batch,) int — transmissions that reached fusion per round."""
        return self.received.sum(axis=1)

    def visible(self, slot: int) -> np.ndarray:
        """(batch, slot) bool — earlier transmissions visible *in* ``slot``.

        A transmission from slot ``s < slot`` is visible to a sensor (or
        attacker) acting in ``slot`` iff it was not lost and has already
        arrived.  Retransmissions occupy tail slots ``>= n`` and are never
        visible here.
        """
        return ~self.lost[:, :slot] & (self.arrival[:, :slot] < slot)

    def visible_counts(self) -> np.ndarray:
        """(batch, n + 1) int — visible transmissions per observing slot.

        ``table[b, t]`` counts the transmissions of round ``b`` that are
        visible in slot ``t`` (``= self.visible(t)[b].sum()``), for every
        ``t`` at once: a non-lost message is visible at ``t`` exactly when
        its arrival slot is ``< t``, so one histogram of arrival slots plus
        a cumulative sum answers all slots without per-slot masking —
        the fused kernel's replacement for the slot loop's per-slot
        ``visible.sum(axis=1)``.
        """
        batch, n = self.lost.shape
        landing = np.where(self.lost, n, np.minimum(self.arrival, n)).astype(np.int64)
        occupancy = np.zeros((batch, n + 1), dtype=np.int64)
        np.add.at(occupancy, (np.arange(batch)[:, None], landing), 1)
        table = np.zeros((batch, n + 1), dtype=np.int64)
        np.cumsum(occupancy[:, :n], axis=1, out=table[:, 1:])
        return table

    def row(self, index: int) -> ChannelRoundView:
        """The per-round view consumed by the scalar simulator."""
        return ChannelRoundView(
            lost=self.lost[index],
            arrival=self.arrival[index],
            received=self.received[index],
        )

    @staticmethod
    def concat(items: "list[ChannelRealization]") -> "ChannelRealization":
        """Stack realizations of the same spec (``Engine.run_many`` packing)."""
        specs = {item.spec for item in items}
        if len(specs) != 1:
            raise ValueError(f"cannot concatenate realizations of {len(specs)} distinct specs")
        return ChannelRealization(
            spec=items[0].spec,
            lost=np.concatenate([item.lost for item in items], axis=0),
            arrival=np.concatenate([item.arrival for item in items], axis=0),
            received=np.concatenate([item.received for item in items], axis=0),
            dropped=np.concatenate([item.dropped for item in items], axis=0),
            retransmits=np.concatenate([item.retransmits for item in items], axis=0),
        )


def realize_channel(
    spec: ChannelSpec, batch: int, n: int, rng: np.random.Generator
) -> ChannelRealization:
    """Draw the fate of every transmission for ``batch`` rounds of ``n`` slots.

    ``rng`` must be the channel's **own spawned child** generator
    (``parent.spawn(1)[0]``), never the engine's main stream — spawning does
    not consume the parent bitstream, which is what keeps channel-free
    payloads bit-identical to builds without this module.
    """
    budget = spec.retransmit_budget
    total = n + budget

    if spec.model == "iid":
        lost_full = rng.random((batch, total)) < spec.loss
    else:  # gilbert-elliott
        state_uniform = rng.random((batch, total))
        denominator = spec.good_to_bad + spec.bad_to_good
        stationary_bad = spec.good_to_bad / denominator if denominator > 0.0 else 0.0
        state_bad = np.empty((batch, total), dtype=bool)
        state_bad[:, 0] = state_uniform[:, 0] < stationary_bad
        for slot in range(1, total):
            previous = state_bad[:, slot - 1]
            state_bad[:, slot] = np.where(
                previous,
                state_uniform[:, slot] >= spec.bad_to_good,
                state_uniform[:, slot] < spec.good_to_bad,
            )
        loss_probability = np.where(state_bad, spec.loss_bad, spec.loss_good)
        lost_full = rng.random((batch, total)) < loss_probability

    slots = np.arange(n, dtype=np.int64)
    if spec.delay > 0.0:
        delayed = rng.random((batch, n)) < spec.delay
        amounts = rng.integers(1, spec.max_delay + 1, size=(batch, n))
        arrival = slots[None, :] + np.where(delayed, amounts, 0)
    else:
        arrival = np.broadcast_to(slots, (batch, n)).copy()

    lost = lost_full[:, :n]
    lost_counts = lost.sum(axis=1)
    tail_used = np.minimum(lost_counts, budget)

    # The k-th lost transmission (slot order, zero-based rank = exclusive
    # cumulative count) is retried in tail slot n + k while k < budget; the
    # retry succeeds when the tail slot's own loss uniform spares it.
    rank = np.cumsum(lost, axis=1) - lost
    if budget > 0:
        tail_index = np.minimum(n + rank, total - 1)
        retry_ok = lost & (rank < budget) & ~np.take_along_axis(lost_full, tail_index, axis=1)
    else:
        retry_ok = np.zeros_like(lost)

    round_end = n + tail_used
    received = (~lost & (arrival < round_end[:, None])) | retry_ok
    dropped = (n - received.sum(axis=1)).astype(np.int64)
    return ChannelRealization(
        spec=spec,
        lost=lost,
        arrival=arrival,
        received=received,
        dropped=dropped,
        retransmits=tail_used.astype(np.int64),
    )
