"""JIT greedy stretch attacker: the per-row forging step of the fused program.

:func:`_forge_stretch_row` replays, for one round, exactly the decision rule
the fused array program applies per compromised transmission
(:func:`repro.batch.fused.fused_rounds_prepared`): walk the schedule slots
in order; at the ``j``-th compromised transmission, if no support is
anchored yet and the admissibility threshold ``n - f - (fa - j)`` is
reachable within the transmitted prefix, run the one-sided support sweep
over the prefix broadcasts; once anchored, every later compromised sensor
stretches from the same support point; otherwise fall back to the passive
Δ-anchored placement when the sensor is wide enough, and to the truthful
correct reading when it is not.

All values written are either exact input endpoints or the same float
expressions the NumPy path evaluates (``support ± width``,
``delta ± width``), so forged broadcasts match the fused driver bit-for-bit
— the hypothesis suite pins :func:`stretch_attack_step` against it.
"""

from __future__ import annotations

import numpy as np

from repro.attack.candidates import PASSIVE_WIDTH_TOL
from repro.batch.kernels._compat import njit, prange
from repro.batch.kernels.sweep import _cover_hi_sorted, _cover_lo_sorted, _sort_prefix

__all__ = ["stretch_attack_step"]


@njit(cache=True)
def _forge_stretch_row(
    n,
    f,
    fa_i,
    right,
    orders_row,
    mask_row,
    correct_lo_row,
    correct_hi_row,
    widths_row,
    delta_lo_i,
    delta_hi_i,
    passive_tol,
    broadcast_lo_row,
    broadcast_hi_row,
    scratch_lo,
    scratch_hi,
):
    """Forge one round's compromised broadcasts in place, in slot order."""
    support = np.nan
    placed = False
    j = 0
    for slot in range(n):
        sensor = orders_row[slot]
        if not mask_row[sensor]:
            continue
        width = widths_row[sensor]
        if not placed:
            required = n - f - (fa_i - j)
            if required >= 1 and slot >= required:
                for p in range(slot):
                    prefix_sensor = orders_row[p]
                    scratch_lo[p] = broadcast_lo_row[prefix_sensor]
                    scratch_hi[p] = broadcast_hi_row[prefix_sensor]
                _sort_prefix(scratch_lo, slot)
                _sort_prefix(scratch_hi, slot)
                if right:
                    point, ok = _cover_hi_sorted(scratch_lo, scratch_hi, slot, required)
                else:
                    point, ok = _cover_lo_sorted(scratch_lo, scratch_hi, slot, required)
                if ok:
                    support = point
                    placed = True
        if placed:
            if right:
                broadcast_lo_row[sensor] = support
                broadcast_hi_row[sensor] = support + width
            else:
                broadcast_lo_row[sensor] = support - width
                broadcast_hi_row[sensor] = support
        elif width >= (delta_hi_i - delta_lo_i) - passive_tol:
            if right:
                broadcast_lo_row[sensor] = delta_lo_i
                broadcast_hi_row[sensor] = delta_lo_i + width
            else:
                broadcast_lo_row[sensor] = delta_hi_i - width
                broadcast_hi_row[sensor] = delta_hi_i
        else:
            broadcast_lo_row[sensor] = correct_lo_row[sensor]
            broadcast_hi_row[sensor] = correct_hi_row[sensor]
        j += 1
        if j >= fa_i:
            break


@njit(cache=True, parallel=True)
def _stretch_kernel(
    n,
    f,
    right,
    orders,
    mask,
    fa_rows,
    correct_lo,
    correct_hi,
    widths,
    delta_lo,
    delta_hi,
    passive_tol,
    broadcast_lo,
    broadcast_hi,
):
    batch = orders.shape[0]
    for i in prange(batch):
        if fa_rows[i] > 0:
            scratch_lo = np.empty(n)
            scratch_hi = np.empty(n)
            _forge_stretch_row(
                n,
                f,
                fa_rows[i],
                right,
                orders[i],
                mask[i],
                correct_lo[i],
                correct_hi[i],
                widths[i],
                delta_lo[i],
                delta_hi[i],
                passive_tol,
                broadcast_lo[i],
                broadcast_hi[i],
                scratch_lo,
                scratch_hi,
            )


def stretch_attack_step(
    sent_lo: np.ndarray,
    sent_hi: np.ndarray,
    orders: np.ndarray,
    attacked_mask: np.ndarray,
    correct_lo: np.ndarray,
    correct_hi: np.ndarray,
    delta_lo: np.ndarray,
    delta_hi: np.ndarray,
    f: int,
    right: bool = True,
    passive_tol: float = PASSIVE_WIDTH_TOL,
) -> tuple[np.ndarray, np.ndarray]:
    """Forge a batch of broadcasts with the JIT greedy stretch attacker.

    Returns fresh ``(broadcast_lo, broadcast_hi)`` matrices: ``sent`` bounds
    with every compromised sensor's entry replaced by its forged interval —
    bit-identical to the broadcasts :func:`repro.batch.fused.fused_rounds_prepared`
    produces for the same inputs (the hypothesis suite asserts it).
    """
    orders = np.ascontiguousarray(orders, dtype=np.int64)
    mask = np.ascontiguousarray(attacked_mask, dtype=np.bool_)
    batch, n = orders.shape
    correct_lo = np.ascontiguousarray(correct_lo, dtype=np.float64)
    correct_hi = np.ascontiguousarray(correct_hi, dtype=np.float64)
    broadcast_lo = np.ascontiguousarray(sent_lo, dtype=np.float64).copy()
    broadcast_hi = np.ascontiguousarray(sent_hi, dtype=np.float64).copy()
    fa_rows = np.ascontiguousarray(mask.sum(axis=1), dtype=np.int64)
    _stretch_kernel(
        n,
        f,
        bool(right),
        orders,
        mask,
        fa_rows,
        correct_lo,
        correct_hi,
        np.ascontiguousarray(correct_hi - correct_lo),
        np.ascontiguousarray(np.broadcast_to(delta_lo, (batch,)), dtype=np.float64),
        np.ascontiguousarray(np.broadcast_to(delta_hi, (batch,)), dtype=np.float64),
        float(passive_tol),
        broadcast_lo,
        broadcast_hi,
    )
    return broadcast_lo, broadcast_hi
