"""JIT-compiled (numba) kernels for the hot loops of the fused round program.

This package holds ``@numba.njit``-compiled counterparts of the NumPy array
programs in :mod:`repro.batch.fused` — the interval-endpoint fusion sweep,
the attacker's one-sided support search, the greedy stretch forging step,
and the Monte-Carlo round body — driven by
:class:`repro.engine.numba_engine.NumbaEngine`.

Two properties keep the core dependency set at stdlib + NumPy:

* **Importing this package never imports numba.**  Availability is probed
  with :func:`importlib.util.find_spec`; the kernel submodules (which *do*
  import numba when it is present) load lazily through a module
  ``__getattr__``, and the engine registry only lists ``"numba"`` when
  :func:`kernels_available` is true.
* **The kernels are plain Python underneath.**  When numba is absent — or
  when ``REPRO_NUMBA_PUREPY=1`` forces it — the ``njit`` decorator in
  :mod:`repro.batch.kernels._compat` is an identity shim and the same code
  runs as ordinary Python.  Slow, but bit-identical, which is what lets the
  conformance and hypothesis suites pin the kernels against their NumPy
  counterparts on machines without numba.

The kernels are *RNG-free by construction*: every draw happens in the shared
:func:`repro.batch.rounds.prepare_rounds` prologue, so the numba engine's
random stream — and therefore its payloads — match the batch and fused
engines bit-for-bit.
"""

from __future__ import annotations

import importlib
import importlib.util
import os

__all__ = [
    "PUREPY_ENV_VAR",
    "numba_importable",
    "purepy_forced",
    "kernels_available",
    "numba_rounds",
    "numba_rounds_prepared",
    "numba_monte_carlo_rounds",
    "sweep_fusion",
    "sweep_support",
    "stretch_attack_step",
]

#: Environment variable forcing the pure-Python kernel fallback (and kernel
#: availability) even when numba is importable — the no-JIT test mode.
PUREPY_ENV_VAR = "REPRO_NUMBA_PUREPY"


def numba_importable() -> bool:
    """Whether the optional ``numba`` dependency can be imported (not: is)."""
    return importlib.util.find_spec("numba") is not None


def purepy_forced() -> bool:
    """Whether ``REPRO_NUMBA_PUREPY`` forces the pure-Python kernel fallback."""
    return os.environ.get(PUREPY_ENV_VAR, "").strip().lower() in {"1", "true", "yes", "on"}


def kernels_available() -> bool:
    """Whether the ``"numba"`` engine should register.

    True when numba is importable (the JIT path) or when the pure-Python
    fallback is forced (the no-JIT test mode); false otherwise, so the
    registry's engine list stays honest on stdlib+numpy installs.
    """
    return numba_importable() or purepy_forced()


_LAZY_EXPORTS = {
    "numba_rounds": "repro.batch.kernels.rounds",
    "numba_rounds_prepared": "repro.batch.kernels.rounds",
    "numba_monte_carlo_rounds": "repro.batch.kernels.rounds",
    "sweep_fusion": "repro.batch.kernels.sweep",
    "sweep_support": "repro.batch.kernels.sweep",
    "stretch_attack_step": "repro.batch.kernels.attacker",
}


def __getattr__(name: str):
    module = _LAZY_EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(importlib.import_module(module), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
