"""The njit/prange shim: real numba when present, identity otherwise.

Every kernel module imports ``njit`` and ``prange`` from here instead of
from numba directly.  When numba is importable (and ``REPRO_NUMBA_PUREPY``
does not force the fallback) they are the real thing; otherwise ``njit``
returns its function unchanged and ``prange`` is ``range``, so the exact
same kernel source runs as ordinary Python — bit-identical, just slow.
``NUMBA_COMPILED`` records which mode this process got, for skip markers
and benchmark gates that only make sense under real JIT compilation.
"""

from __future__ import annotations

from repro.batch.kernels import numba_importable, purepy_forced

__all__ = ["NUMBA_COMPILED", "njit", "prange"]

if numba_importable() and not purepy_forced():
    from numba import njit, prange

    NUMBA_COMPILED = True
else:
    NUMBA_COMPILED = False
    prange = range

    def njit(*args, **kwargs):
        """Identity stand-in for ``numba.njit`` (bare and parametrised forms)."""
        if args and callable(args[0]):
            return args[0]

        def decorate(function):
            return function

        return decorate
