"""JIT endpoint sweeps: Marzullo fusion and the one-sided support search.

The NumPy counterparts (:func:`repro.batch.fused.fused_fusion`,
``repro.batch.fused._support_points``) realise the scalar event order —
``(position, -delta)``, openings ahead of closings at equal positions — by
sorting a complex event matrix.  Numba has no complex lexicographic sort, so
the kernels here sort the lower and upper endpoints *separately* and replay
the same event sequence with a two-pointer merge:

* forward (:func:`_cover_lo_sorted`): at equal positions the opening is
  processed first (``lows[a] <= ups[b]``), exactly the complex tie rule, and
  the first event whose post-event coverage reaches ``required`` is
  necessarily an opening — the fusion lower bound.
* backward (:func:`_cover_hi_sorted`): scanning the same sequence in reverse
  processes closings first at equal positions (``ups[b] >= lows[a]``).  For
  a closing event, the reverse-inclusive count of closings minus openings
  equals its forward post-event coverage **plus one** (its own closing), so
  ``backward coverage >= required`` is exactly the forward sweep's
  *pre-event* ``coverage >= required`` rule for the fusion upper bound.

Every reported bound is an exact input endpoint carried through the sorts
unchanged — no arithmetic — which is why the hypothesis suite
(``tests/engine/test_numba_kernels.py``) can pin these kernels bit-for-bit
against the complex-sorted sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.batch.fuse import BatchFusion, _validate_bounds
from repro.batch.kernels._compat import njit, prange
from repro.core.marzullo import validate_fault_bound

__all__ = ["sweep_fusion", "sweep_support"]

#: Prefix lengths up to this bound sort with an in-place insertion sort —
#: branch-cheap and allocation-free for the small ``n`` of the paper's rows.
_INSERTION_SORT_MAX = 32


@njit(cache=True)
def _sort_prefix(values: np.ndarray, k: int) -> None:
    """Sort ``values[:k]`` ascending, in place."""
    if k > _INSERTION_SORT_MAX:
        values[:k].sort()
        return
    for i in range(1, k):
        value = values[i]
        j = i - 1
        while j >= 0 and values[j] > value:
            values[j + 1] = values[j]
            j -= 1
        values[j + 1] = value


@njit(cache=True)
def _cover_lo_sorted(lows: np.ndarray, ups: np.ndarray, k: int, required: int):
    """First event point of the merged sweep with coverage >= ``required``.

    ``lows[:k]`` / ``ups[:k]`` must be ascending.  Returns ``(point, found)``;
    the point — when found — is the fusion lower bound, always one of the
    input lower endpoints.  ``b`` never overruns: before closing ``b`` is
    processed, openings ``0..b`` (whose lows are <= ``ups[b]``) already were,
    so ``a > b`` throughout and ``ups[k-1] >= lows[a]`` keeps ``b < k``.
    """
    coverage = 0
    a = 0
    b = 0
    while a < k:
        if lows[a] <= ups[b]:  # opening first at equal positions
            coverage += 1
            if coverage >= required:
                return lows[a], True
            a += 1
        else:
            coverage -= 1
            b += 1
    return np.nan, False


@njit(cache=True)
def _cover_hi_sorted(lows: np.ndarray, ups: np.ndarray, k: int, required: int):
    """Last closing of the merged sweep whose pre-event coverage >= ``required``.

    The backward mirror of :func:`_cover_lo_sorted` (closings first at equal
    positions); returns ``(point, found)`` with the point — when found — the
    fusion upper bound, always one of the input upper endpoints.  ``a`` never
    underruns: ``lows[0] <= ups[b]`` always takes the closing branch first.
    """
    coverage = 0
    a = k - 1
    b = k - 1
    while b >= 0:
        if ups[b] >= lows[a]:  # closing first at equal positions, in reverse
            coverage += 1
            if coverage >= required:
                return ups[b], True
            b -= 1
        else:
            coverage -= 1
            a -= 1
    return np.nan, False


@njit(cache=True, parallel=True)
def _fusion_kernel(lowers, uppers, required, out_lo, out_hi, out_valid):
    batch, n = lowers.shape
    for i in prange(batch):
        lows = np.empty(n)
        ups = np.empty(n)
        for s in range(n):
            lows[s] = lowers[i, s]
            ups[s] = uppers[i, s]
        lows.sort()
        ups.sort()
        lo, ok_lo = _cover_lo_sorted(lows, ups, n, required)
        hi, ok_hi = _cover_hi_sorted(lows, ups, n, required)
        if ok_lo and ok_hi and hi >= lo:
            out_lo[i] = lo
            out_hi[i] = hi
            out_valid[i] = True
        else:
            out_lo[i] = np.nan
            out_hi[i] = np.nan
            out_valid[i] = False


@njit(cache=True, parallel=True)
def _support_kernel(lowers, uppers, required, right, out_point, out_valid):
    batch, k = lowers.shape
    for i in prange(batch):
        lows = np.empty(k)
        ups = np.empty(k)
        for s in range(k):
            lows[s] = lowers[i, s]
            ups[s] = uppers[i, s]
        lows.sort()
        ups.sort()
        req = required[i]
        if req < 1:
            req = 1
        if right:
            point, ok = _cover_hi_sorted(lows, ups, k, req)
        else:
            point, ok = _cover_lo_sorted(lows, ups, k, req)
        out_point[i] = point
        out_valid[i] = ok


def sweep_fusion(lowers: np.ndarray, uppers: np.ndarray, f: int) -> BatchFusion:
    """JIT counterpart of :func:`repro.batch.fused.fused_fusion` — bit-identical.

    Same validation (malformed inputs raise), same tie rule, same
    ``NaN``/``valid`` reporting for empty-fusion rows.
    """
    lowers, uppers, _ = _validate_bounds(lowers, uppers, None)
    validate_fault_bound(lowers.shape[1], f)
    batch = lowers.shape[0]
    out_lo = np.empty(batch)
    out_hi = np.empty(batch)
    out_valid = np.empty(batch, dtype=np.bool_)
    _fusion_kernel(
        np.ascontiguousarray(lowers),
        np.ascontiguousarray(uppers),
        lowers.shape[1] - f,
        out_lo,
        out_hi,
        out_valid,
    )
    return BatchFusion(lo=out_lo, hi=out_hi, valid=out_valid)


def sweep_support(
    lowers: np.ndarray,
    uppers: np.ndarray,
    required: int | np.ndarray,
    right: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """JIT counterpart of ``repro.batch.fused._support_points``.

    Returns ``(point, valid)``; points agree bit-for-bit wherever ``valid``
    (invalid rows report ``NaN`` here, an arbitrary event position there).
    """
    lowers = np.ascontiguousarray(lowers, dtype=np.float64)
    uppers = np.ascontiguousarray(uppers, dtype=np.float64)
    batch = lowers.shape[0]
    req = np.asarray(required, dtype=np.int64)
    req = np.ascontiguousarray(np.broadcast_to(req, (batch,)))
    out_point = np.empty(batch)
    out_valid = np.empty(batch, dtype=np.bool_)
    _support_kernel(lowers, uppers, req, bool(right), out_point, out_valid)
    return out_point, out_valid
