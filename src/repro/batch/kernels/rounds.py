"""The JIT Monte-Carlo round body and its drivers — the numba engine's core.

``_rounds_kernel`` runs one fused pass per round — greedy stretch forging
(:func:`repro.batch.kernels.attacker._forge_stretch_row`), Marzullo fusion
and overlap detection via the two-pointer sweeps in
:mod:`repro.batch.kernels.sweep` — parallelised over blocks of rows with
per-block scratch, so a 10⁷-sample batch needs no ``(B, 2n)`` event matrix
and no per-slot buffers at all.

:func:`numba_rounds_prepared` / :func:`numba_monte_carlo_rounds` mirror the
fused drivers exactly: same :func:`repro.batch.rounds.prepare_rounds`
prologue (so the random stream is consumed identically), same
:func:`repro.batch.fused.plan_for` plan resolution, same delegation of
non-fusable attackers to the shared slot loop — which is what keeps the
numba engine's results bit-identical to the batch and fused engines for
*every* configuration.
"""

from __future__ import annotations

import numpy as np

from repro.attack.candidates import PASSIVE_WIDTH_TOL
from repro.batch.fuse import BatchFusion
from repro.batch.fused import FusedPlan, fusable_attacker, fused_rounds_prepared, plan_for
from repro.batch.kernels._compat import njit, prange
from repro.batch.kernels.attacker import _forge_stretch_row
from repro.batch.kernels.sweep import _cover_hi_sorted, _cover_lo_sorted
from repro.batch.rounds import (
    ActiveStretchBatchAttacker,
    BatchRoundConfig,
    BatchRoundResult,
    PreparedRounds,
    batch_rounds,
    batch_rounds_prepared,
    prepare_rounds,
    sample_correct_bounds,
)
from repro.core.marzullo import validate_fault_bound
from repro.utils.seeding import ensure_rng

__all__ = ["numba_rounds", "numba_rounds_prepared", "numba_monte_carlo_rounds"]

#: Rows per parallel work block.  Large enough to amortise the per-block
#: scratch allocations, small enough to load-balance across threads.
_BLOCK_ROWS = 512


@njit(cache=True, parallel=True)
def _rounds_kernel(
    n,
    f,
    forge,
    right,
    static_mask,
    mask1d,
    mask2d,
    orders,
    fa_rows,
    correct_lo,
    correct_hi,
    widths,
    delta_lo,
    delta_hi,
    passive_tol,
    broadcast_lo,
    broadcast_hi,
    fusion_lo,
    fusion_hi,
    valid,
    flagged,
):
    batch = orders.shape[0]
    blocks = (batch + _BLOCK_ROWS - 1) // _BLOCK_ROWS
    required = n - f
    for block in prange(blocks):
        scratch_lo = np.empty(n)
        scratch_hi = np.empty(n)
        start = block * _BLOCK_ROWS
        stop = min(start + _BLOCK_ROWS, batch)
        for i in range(start, stop):
            if forge and fa_rows[i] > 0:
                mask_row = mask1d if static_mask else mask2d[i]
                _forge_stretch_row(
                    n,
                    f,
                    fa_rows[i],
                    right,
                    orders[i],
                    mask_row,
                    correct_lo[i],
                    correct_hi[i],
                    widths[i],
                    delta_lo[i],
                    delta_hi[i],
                    passive_tol,
                    broadcast_lo[i],
                    broadcast_hi[i],
                    scratch_lo,
                    scratch_hi,
                )
            for s in range(n):
                scratch_lo[s] = broadcast_lo[i, s]
                scratch_hi[s] = broadcast_hi[i, s]
            scratch_lo.sort()
            scratch_hi.sort()
            lo, ok_lo = _cover_lo_sorted(scratch_lo, scratch_hi, n, required)
            hi, ok_hi = _cover_hi_sorted(scratch_lo, scratch_hi, n, required)
            if ok_lo and ok_hi and hi >= lo:
                fusion_lo[i] = lo
                fusion_hi[i] = hi
                valid[i] = True
                for s in range(n):
                    flagged[i, s] = not (broadcast_lo[i, s] <= hi and lo <= broadcast_hi[i, s])
            else:
                fusion_lo[i] = np.nan
                fusion_hi[i] = np.nan
                valid[i] = False
                for s in range(n):
                    flagged[i, s] = False


def numba_rounds_prepared(
    prepared: PreparedRounds,
    config: BatchRoundConfig,
    rng: np.random.Generator,
    plan: FusedPlan | None = None,
) -> BatchRoundResult:
    """The JIT simulation body over an already-prepared batch.

    Drop-in counterpart of :func:`repro.batch.fused.fused_rounds_prepared`
    (identical contract, bit-identical results): packed batches from
    :func:`repro.batch.rounds.concat_prepared` run one kernel pass, and
    non-fusable attackers delegate to the shared slot loop.
    """
    if not fusable_attacker(config):
        return batch_rounds_prepared(prepared, config, rng)
    if prepared.channel is not None:
        # The JIT kernel's sorted-copy sweep has no masked variant; lossy
        # rounds run the fused NumPy body instead, which shares its masked
        # sweep (and therefore its bit-exact payloads) with the batch engine.
        return fused_rounds_prepared(prepared, config, rng, plan=plan)
    batch, n = prepared.shape
    f = prepared.f
    validate_fault_bound(n, f)  # batch_fuse would; fail before simulating
    if plan is None:
        plan = plan_for(config, n, f)  # shared cache + static-layout checks

    broadcast_lo = prepared.sent_lo.copy()
    broadcast_hi = prepared.sent_hi.copy()

    static = bool(prepared.attacked)
    if static:
        fa_rows = np.full(batch, len(prepared.attacked), dtype=np.int64)
        fa_max = len(prepared.attacked)
        mask1d = np.zeros(n, dtype=np.bool_)
        mask1d[list(prepared.attacked)] = True
        mask2d = np.zeros((1, 1), dtype=np.bool_)
    else:
        fa_rows = np.ascontiguousarray(prepared.attacked_mask.sum(axis=1), dtype=np.int64)
        fa_max = int(fa_rows.max()) if batch else 0
        mask1d = np.zeros(n, dtype=np.bool_)
        mask2d = np.ascontiguousarray(prepared.attacked_mask, dtype=np.bool_)
    stretch = type(config.attacker) is ActiveStretchBatchAttacker
    # The attacker protocol resets per batch even when no slot is forged.
    config.attacker.reset(batch)
    forge = bool(stretch and fa_max)
    right = bool(config.attacker.side > 0) if stretch else True

    fusion_lo = np.empty(batch)
    fusion_hi = np.empty(batch)
    valid = np.empty(batch, dtype=np.bool_)
    flagged = np.empty((batch, n), dtype=np.bool_)
    _rounds_kernel(
        n,
        f,
        forge,
        right,
        static,
        mask1d,
        mask2d,
        np.ascontiguousarray(prepared.orders, dtype=np.int64),
        fa_rows,
        np.ascontiguousarray(prepared.correct_lo),
        np.ascontiguousarray(prepared.correct_hi),
        np.ascontiguousarray(prepared.widths),
        np.ascontiguousarray(prepared.delta_lo, dtype=np.float64),
        np.ascontiguousarray(prepared.delta_hi, dtype=np.float64),
        PASSIVE_WIDTH_TOL,
        broadcast_lo,
        broadcast_hi,
        fusion_lo,
        fusion_hi,
        valid,
        flagged,
    )
    return BatchRoundResult(
        orders=prepared.orders,
        correct_lo=prepared.correct_lo,
        correct_hi=prepared.correct_hi,
        broadcast_lo=broadcast_lo,
        broadcast_hi=broadcast_hi,
        fusion=BatchFusion(lo=fusion_lo, hi=fusion_hi, valid=valid),
        flagged=flagged,
        attacked_indices=prepared.attacked,
        fault_mask=prepared.fault_mask,
        attacked_mask=prepared.attacked_mask,
    )


def numba_rounds(
    correct_lo: np.ndarray,
    correct_hi: np.ndarray,
    config: BatchRoundConfig,
    rng: np.random.Generator,
    plan: FusedPlan | None = None,
) -> BatchRoundResult:
    """Drop-in :func:`repro.batch.rounds.batch_rounds` with the JIT kernel."""
    if not fusable_attacker(config):
        return batch_rounds(correct_lo, correct_hi, config, rng)
    prepared = prepare_rounds(correct_lo, correct_hi, config, rng)
    return numba_rounds_prepared(prepared, config, rng, plan=plan)


def numba_monte_carlo_rounds(
    lengths: tuple[float, ...] | np.ndarray,
    config: BatchRoundConfig,
    samples: int,
    true_value: float = 0.0,
    rng: np.random.Generator | None = None,
) -> BatchRoundResult:
    """JIT counterpart of :func:`repro.batch.rounds.monte_carlo_rounds`.

    Samples through the shared :func:`repro.batch.rounds.sample_correct_bounds`
    primitive, so the numba engine's stream matches the other engines'.
    """
    rng = ensure_rng(rng)
    lowers, uppers = sample_correct_bounds(lengths, true_value, samples, rng)
    return numba_rounds(lowers, uppers, config, rng)
