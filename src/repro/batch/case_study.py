"""Vectorized Table II — the platoon case study at Monte-Carlo scale.

The scalar case study (:mod:`repro.vehicle.case_study`) steps every LandShark
through the full object stack — sensor suite, shared bus, attacker node,
fusion engine, PI controller, safety supervisor, longitudinal dynamics — one
control period at a time, which caps Table II at a few hundred rounds per
schedule.  This module replays the *same* closed loop as array operations:

* one state vector per simulated vehicle, across ``n_replicas`` independent
  platoon replicas (vehicles of the scalar platoon are dynamically uncoupled
  — the leader only shares the target speed — so batching over
  ``replicas × vehicles`` is exact, not an approximation);
* each control period measures all sensors at once, draws the per-round
  attacked sensor, and plays every fusion round of the batch through
  :func:`repro.batch.rounds.batch_rounds` with a per-round attacked mask;
* the PI controller, the supervisor's violation checks and preemption rule,
  and the first-order speed dynamics are all elementwise array updates that
  mirror :class:`~repro.vehicle.controller.SpeedController`,
  :class:`~repro.vehicle.supervisor.SafetySupervisor` and
  :class:`~repro.vehicle.dynamics.LongitudinalVehicle` exactly.

The attacker is :class:`~repro.batch.rounds.ExpectationProxyBatchAttacker`,
the vectorized stand-in for the scalar coarse-grid expectation policy; the
equivalence is validated at the statistics level (violation-rate tolerance
and the paper's Ascending < Random < Descending ordering), not bit-for-bit —
see ``tests/batch/test_case_study_batch.py``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.batch.rounds import (
    BatchAttacker,
    BatchRoundConfig,
    ExpectationProxyBatchAttacker,
    batch_rounds,
)
from repro.core.exceptions import ExperimentError
from repro.core.marzullo import max_safe_fault_bound
from repro.scheduling.schedule import Schedule
from repro.utils.seeding import derive_rng, ensure_rng
from repro.vehicle.case_study import CaseStudyConfig, CaseStudyResult, ViolationStats
from repro.vehicle.controller import SpeedController
from repro.vehicle.dynamics import VehicleParameters
from repro.vehicle.landshark import landshark_suite
from repro.vehicle.selection import (
    AttackedSensorSelector,
    FixedSelector,
    MostPreciseSelector,
    NoAttackSelector,
    RandomSensorSelector,
)

__all__ = [
    "DEFAULT_REPLICAS",
    "batch_case_study_for_schedule",
    "batch_case_study",
]

#: Platoon replicas simulated in parallel by default; with the paper's three
#: vehicles and 200 steps this yields ~2·10⁴ fusion rounds per schedule.
DEFAULT_REPLICAS = 32


def _attacked_indices_per_round(
    selector: AttackedSensorSelector,
    n_sensors: int,
    widths: np.ndarray,
    batch: int,
    rng: np.random.Generator,
) -> np.ndarray | None:
    """Vectorize one selector draw: ``(B, count)`` indices or ``None`` (no attack)."""
    if isinstance(selector, NoAttackSelector):
        return None
    if isinstance(selector, RandomSensorSelector):
        if selector.count == 1:
            return rng.integers(0, n_sensors, size=(batch, 1))
        # k distinct sensors per row: order a random matrix and keep the first k.
        return np.argsort(rng.random((batch, n_sensors)), axis=1)[:, : selector.count]
    if isinstance(selector, MostPreciseSelector):
        order = sorted(range(n_sensors), key=lambda i: (widths[i], i))
        fixed = np.asarray(sorted(order[: selector.count]), dtype=np.int64)
        return np.tile(fixed, (batch, 1))
    if isinstance(selector, FixedSelector):
        fixed = np.asarray(sorted(set(selector.indices)), dtype=np.int64)
        if fixed.size == 0:
            return None
        return np.tile(fixed, (batch, 1))
    raise ExperimentError(
        f"cannot vectorize attacked-sensor selector {type(selector).__name__}; "
        "use the scalar case-study engine for custom selectors"
    )


def batch_case_study_for_schedule(
    config: CaseStudyConfig,
    schedule: Schedule,
    n_replicas: int = DEFAULT_REPLICAS,
    rng: np.random.Generator | None = None,
    attacker_factory: Callable[[], BatchAttacker] | None = None,
    preempt_gain: float = 2.0,
) -> ViolationStats:
    """Run the platoon under one schedule with all rounds of a step batched.

    Parameters
    ----------
    n_replicas:
        Independent platoon replicas evolved in parallel; the returned
        statistics cover ``n_replicas * n_vehicles * n_steps`` fusion rounds.
    attacker_factory:
        Zero-argument callable building the vectorized attacker (defaults to
        :class:`~repro.batch.rounds.ExpectationProxyBatchAttacker`, the
        stand-in for the scalar case study's expectation policy).
    preempt_gain:
        Supervisor preemption gain, matching the scalar
        :class:`~repro.vehicle.supervisor.SafetySupervisor` default.
    """
    if n_replicas <= 0:
        raise ExperimentError(f"need a positive number of replicas, got {n_replicas}")
    rng = ensure_rng(rng, config.seed)
    attacker = attacker_factory() if attacker_factory is not None else ExpectationProxyBatchAttacker()

    suite = landshark_suite()
    widths = np.asarray(suite.widths, dtype=np.float64)
    n = widths.size
    f = max_safe_fault_bound(n)
    selector = config.attacked_selector()
    # One scalar selector call up front reuses the selectors' own validation
    # (index ranges, counts), so a bad attacked_sensor spec fails with the
    # same descriptive ExperimentError as the scalar engine instead of a raw
    # indexing error from the vectorized mask assignment below.
    selector.select(suite, np.random.default_rng(0))
    limits = config.platoon_config().limits()
    params = VehicleParameters()
    controller = SpeedController()

    batch = n_replicas * config.n_vehicles
    speed = np.full(batch, config.target_speed)
    integral = np.zeros(batch)
    row_index = np.arange(batch)
    upper_count = 0
    lower_count = 0

    for _ in range(config.n_steps):
        # Measure: every interval has its configured width and contains the
        # true speed, exactly like Sensor.measure with UniformNoise.
        lowers = speed[:, None] - rng.uniform(0.0, 1.0, (batch, n)) * widths
        uppers = lowers + widths

        indices = _attacked_indices_per_round(selector, n, widths, batch, rng)
        attacked_mask = np.zeros((batch, n), dtype=bool)
        if indices is not None:
            attacked_mask[row_index[:, None], indices] = True

        round_config = BatchRoundConfig(
            schedule=schedule,
            attacker=attacker,
            f=f,
            attacked_mask=attacked_mask,
        )
        result = batch_rounds(lowers, uppers, round_config, rng)
        fusion = result.fusion
        valid = fusion.valid

        # Supervisor review: violation bookkeeping plus preemption.
        upper_violation = valid & (fusion.hi > limits.upper_limit)
        lower_violation = valid & (fusion.lo < limits.lower_limit)
        upper_count += int(upper_violation.sum())
        lower_count += int(lower_violation.sum())

        # PI controller on the fused point estimate (fall back to the target
        # on the measure-zero chance of an empty fusion, i.e. zero command).
        estimate = np.where(valid, fusion.center, limits.target_speed)
        error = limits.target_speed - estimate
        integral = np.clip(
            integral + error * params.dt, -controller.integral_limit, controller.integral_limit
        )
        command = controller.kp * error + controller.ki * integral
        # Preemption mirrors SafetySupervisor.review: braking wins when both
        # bounds are violated.
        command = np.where(
            upper_violation,
            -preempt_gain * (fusion.hi - limits.upper_limit),
            np.where(lower_violation, preempt_gain * (limits.lower_limit - fusion.lo), command),
        )

        # Longitudinal dynamics with saturated acceleration and bounded
        # process disturbance, clipped to the physical speed range.
        accel = np.clip(command, -params.max_accel, params.max_accel)
        disturbance = rng.uniform(-params.max_disturbance, params.max_disturbance, batch)
        speed = np.clip(
            speed + params.dt * (accel - params.drag * speed) + disturbance,
            0.0,
            params.max_speed,
        )

    return ViolationStats(
        schedule_name=schedule.name,
        rounds=batch * config.n_steps,
        upper_violations=upper_count,
        lower_violations=lower_count,
    )


def batch_case_study(
    config: CaseStudyConfig | None = None,
    schedules: Sequence[Schedule] | None = None,
    n_replicas: int = DEFAULT_REPLICAS,
    attacker_factory: Callable[[], BatchAttacker] | None = None,
) -> CaseStudyResult:
    """Batched counterpart of :func:`repro.vehicle.case_study.run_case_study`.

    Uses the same per-schedule seeding rule as the scalar driver — the
    collision-free :func:`repro.utils.seeding.derive_rng` child stream per
    schedule index — so batched runs are reproducible per schedule.
    """
    config = config if config is not None else CaseStudyConfig()
    if schedules is None:
        from repro.scheduling.schedule import (
            AscendingSchedule,
            DescendingSchedule,
            RandomSchedule,
        )

        schedules = (AscendingSchedule(), DescendingSchedule(), RandomSchedule())
    stats = []
    for index, schedule in enumerate(schedules):
        rng = derive_rng(config.seed, index)
        stats.append(
            batch_case_study_for_schedule(
                config,
                schedule,
                n_replicas=n_replicas,
                rng=rng,
                attacker_factory=attacker_factory,
            )
        )
    return CaseStudyResult(config=config, stats=tuple(stats))
