"""Vectorized Marzullo fusion and detection over batches of rounds.

The scalar sweep in :mod:`repro.core.marzullo` processes one round at a time;
this module evaluates ``B`` independent rounds at once by running the same
endpoint sweep as array operations over a ``(B, 2n)`` event matrix:

1. stack the ``2n`` endpoints per round (``+1`` events at lower bounds, ``-1``
   events at upper bounds);
2. sort each row by ``(position, -delta)`` with a single stable
   :func:`numpy.argsort` — opening events are laid out ahead of closing
   events, so stability reproduces the scalar tie rule that opening events
   precede closing events at equal positions (closed-interval semantics);
3. a row-wise cumulative sum of the sorted deltas is the running coverage; the
   fusion lower bound is the position of the first event whose cumulative
   coverage reaches ``n - f`` and the upper bound is the position of the last
   closing event whose *pre-event* coverage still reaches it.

Because the batch sweep performs the same comparisons in the same order as
the scalar sweep, its results are bit-identical to :func:`repro.core.marzullo.fuse`
— a property the test-suite asserts over thousands of random rounds.

Rows whose fusion is empty (the scalar :class:`~repro.core.exceptions.EmptyFusionError`
case) are reported through the ``valid`` mask of :class:`BatchFusion` with
``NaN`` bounds instead of raising, so one bad round cannot abort a 10⁵-round
Monte-Carlo sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import FaultBoundError, FusionError
from repro.core.marzullo import validate_fault_bound

__all__ = [
    "BatchFusion",
    "batch_fuse",
    "batch_fuse_or_none",
    "batch_detect",
    "coverage_extremes",
]


@dataclass(frozen=True)
class BatchFusion:
    """Fusion bounds for a batch of rounds.

    Attributes
    ----------
    lo / hi:
        ``(B,)`` float arrays with the fusion bounds per round; ``NaN`` where
        the round's fusion is empty.
    valid:
        ``(B,)`` boolean mask.  ``valid[b]`` is ``False`` exactly when the
        scalar :func:`repro.core.marzullo.fuse` would raise
        :class:`~repro.core.exceptions.EmptyFusionError` for round ``b``
        (equivalently: :func:`~repro.core.marzullo.fuse_or_none` returns
        ``None``).
    """

    lo: np.ndarray
    hi: np.ndarray
    valid: np.ndarray

    def __len__(self) -> int:
        return int(self.lo.shape[0])

    @property
    def width(self) -> np.ndarray:
        """Per-round fusion widths (``NaN`` for empty-fusion rounds)."""
        return self.hi - self.lo

    @property
    def center(self) -> np.ndarray:
        """Per-round fusion midpoints — the controller's point estimates."""
        return (self.lo + self.hi) / 2.0


def _validate_bounds(
    lowers: np.ndarray, uppers: np.ndarray, mask: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Coerce and sanity-check a ``(B, n)`` batch of interval bounds."""
    lowers = np.asarray(lowers, dtype=np.float64)
    uppers = np.asarray(uppers, dtype=np.float64)
    if lowers.ndim != 2 or uppers.shape != lowers.shape:
        raise FusionError(
            f"batch bounds must be matching (B, n) arrays, got {lowers.shape} and {uppers.shape}"
        )
    if lowers.shape[1] == 0:
        raise FusionError("cannot fuse an empty collection of intervals")
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != lowers.shape:
            raise FusionError(f"mask shape {mask.shape} does not match bounds shape {lowers.shape}")
    active = mask if mask is not None else np.True_
    bad = (~np.isfinite(lowers) | ~np.isfinite(uppers) | (uppers < lowers)) & active
    if np.any(bad):
        raise FusionError("batch bounds must be finite with uppers >= lowers on every active entry")
    return lowers, uppers, mask


def coverage_extremes(
    lowers: np.ndarray,
    uppers: np.ndarray,
    required: np.ndarray | int,
    mask: np.ndarray | None = None,
) -> BatchFusion:
    """Per-row extreme points covered by at least ``required`` intervals.

    This is the raw batched sweep underlying both fusion (``required = n - f``)
    and the attacker's active-mode support search (``required = n - f - far``
    over the already-transmitted prefix).  ``required`` may be a scalar or a
    ``(B,)`` array; ``mask`` marks the intervals that participate per row
    (masked-out entries contribute nothing to coverage).

    Rows where no point reaches the required coverage — including rows whose
    mask is entirely ``False`` — come back with ``valid=False``.  A
    non-positive ``required`` degenerates to the convex hull of the active
    intervals, mirroring the scalar :func:`~repro.core.marzullo.fuse_or_none`.
    """
    batch, n = lowers.shape
    positions = np.empty((batch, 2 * n))
    positions[:, :n] = lowers
    positions[:, n:] = uppers
    if mask is not None:
        # Masked-out events sort to the end and never change the coverage.
        mask2 = np.concatenate([mask, mask], axis=1)
        positions = np.where(mask2, positions, np.inf)

    # A *stable* single-key sort realises the scalar `(position, -delta)`
    # event order: opening events occupy the first half of each row, so at
    # equal positions stability keeps them ahead of closing events — the
    # closed-interval tie rule of `_sorted_events`.
    order = np.argsort(positions, axis=1, kind="stable")
    opening = order < n
    steps = np.where(opening, 1, -1)
    if mask is not None:
        rows2 = np.arange(batch)[:, None]
        steps = np.where(mask2[rows2, order], steps, 0)

    coverage = np.cumsum(steps, axis=1, dtype=np.int64)
    req = np.broadcast_to(np.asarray(required, dtype=np.int64), (batch,))[:, None]
    row_index = np.arange(batch)

    # Lower bound: first event where the running coverage reaches `required`
    # (coverage only increases at opening events, so this is an opening event).
    reaches = coverage >= req
    lower_index = np.argmax(reaches, axis=1)
    has_lower = reaches[row_index, lower_index]

    # Upper bound: last closing event whose pre-event coverage (cumsum + 1)
    # still reaches `required`.
    upper_ok = (steps < 0) & (coverage >= req - 1)
    upper_index = (2 * n - 1) - np.argmax(upper_ok[:, ::-1], axis=1)
    has_upper = upper_ok[row_index, upper_index]

    lo = positions[row_index, order[row_index, lower_index]]
    hi = positions[row_index, order[row_index, upper_index]]
    valid = has_lower & has_upper & (hi >= lo) & np.isfinite(lo) & np.isfinite(hi)
    lo = np.where(valid, lo, np.nan)
    hi = np.where(valid, hi, np.nan)
    return BatchFusion(lo=lo, hi=hi, valid=valid)


def batch_fuse_or_none(
    lowers: np.ndarray,
    uppers: np.ndarray,
    f: int,
    mask: np.ndarray | None = None,
) -> BatchFusion:
    """Batched :func:`repro.core.marzullo.fuse_or_none`.

    Like the scalar variant, the fault bound is *not* checked against
    ``f < ceil(n/2)``; empty-fusion rows are reported via ``valid=False``.
    With a ``mask``, each row fuses only its masked-in intervals and the
    required coverage becomes ``count - f`` per row; rows with an empty mask
    raise (the scalar code rejects fusing an empty collection).
    """
    lowers, uppers, mask = _validate_bounds(lowers, uppers, mask)
    if f < 0:
        raise FaultBoundError(f"fault bound must be non-negative, got f={f}")
    if mask is None:
        counts = np.full(lowers.shape[0], lowers.shape[1], dtype=np.int64)
    else:
        counts = mask.sum(axis=1)
        if np.any(counts == 0):
            raise FusionError("cannot fuse an empty collection of intervals (empty mask row)")
    return coverage_extremes(lowers, uppers, counts - f, mask)


def batch_fuse(lowers: np.ndarray, uppers: np.ndarray, f: int) -> BatchFusion:
    """Batched :func:`repro.core.marzullo.fuse` over a ``(B, n)`` interval array.

    Parameters
    ----------
    lowers / uppers:
        ``(B, n)`` arrays; row ``b`` holds the ``n`` abstract-sensor intervals
        of round ``b``.
    f:
        Assumed number of faulty sensors, validated against ``f < ceil(n/2)``
        exactly like the scalar path.

    Returns
    -------
    BatchFusion
        Per-round fusion bounds; rows where the scalar ``fuse`` would raise
        :class:`~repro.core.exceptions.EmptyFusionError` have ``valid=False``
        and ``NaN`` bounds instead.
    """
    lowers, uppers, _ = _validate_bounds(lowers, uppers, None)
    validate_fault_bound(lowers.shape[1], f)
    return coverage_extremes(lowers, uppers, lowers.shape[1] - f, None)


def batch_detect(lowers: np.ndarray, uppers: np.ndarray, fusion: BatchFusion) -> np.ndarray:
    """Batched overlap detection: flag intervals disjoint from the fusion.

    Returns a ``(B, n)`` boolean array that is ``True`` where the interval
    does **not** intersect its round's fusion interval — the positions the
    scalar :func:`repro.core.detection.detect` lists in ``flagged_indices``.
    Rows with an empty fusion (``valid=False``) flag nothing: the scalar
    pipeline never reaches detection for such rounds.
    """
    lowers = np.asarray(lowers, dtype=np.float64)
    uppers = np.asarray(uppers, dtype=np.float64)
    intersects = (lowers <= fusion.hi[:, None]) & (fusion.lo[:, None] <= uppers)
    return fusion.valid[:, None] & ~intersects
