"""Batched Monte-Carlo simulation of fusion rounds.

:func:`batch_rounds` is the vectorized counterpart of
:func:`repro.scheduling.round.run_round`: instead of simulating one round per
Python call, it takes a ``(B, n)`` array of correct sensor intervals and plays
all ``B`` rounds simultaneously — ordering sensors by the schedule, letting a
vectorized attacker forge the compromised broadcasts slot by slot (the loop is
over the ``n`` slots, never over the batch), optionally corrupting honest
sensors with transient faults, then fusing and running detection with the
batched sweep of :mod:`repro.batch.fuse`.

The attacker model is :class:`ActiveStretchBatchAttacker`, a deterministic
greedy policy designed to be vectorizable while using exactly the stealth
machinery of the paper (Section III-A):

* before active mode is available the attacker falls back to the passive
  extreme placement (contain ``Δ``, extend maximally to one side) or, when her
  interval is too narrow to contain ``Δ``, to the truthful reading;
* at the first slot where active mode is available she anchors her interval on
  the extreme point covered by at least ``n - f - far`` already-transmitted
  intervals and stretches outward from it;
* every later compromised interval of the round anchors on the *same* support
  point, which keeps the protection obligation satisfied and the whole attack
  admissible.

The scalar policy :class:`repro.attack.stretch.ActiveStretchPolicy` implements
the identical decision rule through the ordinary :class:`~repro.attack.policy.AttackPolicy`
interface, so the batched driver can be property-tested round-for-round
against :func:`~repro.scheduling.round.run_round`.

Further batched attackers — including the exact expectation-maximising
attacker of problem (2) (:mod:`repro.batch.expectation`) — implement the
same :class:`BatchAttacker` interface; the catalogue with each attacker's
paper equation and scalar counterpart is in ``docs/ATTACKERS.md``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.attack.candidates import PASSIVE_WIDTH_TOL, batch_side_preference
from repro.batch.fuse import BatchFusion, batch_detect, batch_fuse, coverage_extremes
from repro.channel import ChannelRealization, ChannelSpec, realize_channel
from repro.core.exceptions import EmptyIntersectionError, ScheduleError, SensorError
from repro.core.marzullo import max_safe_fault_bound
from repro import obs
from repro.scheduling.schedule import (
    AscendingSchedule,
    DescendingSchedule,
    FixedSchedule,
    RandomSchedule,
    Schedule,
)
from repro.utils.seeding import ensure_rng, spawn_rng

__all__ = [
    "BatchSlotContext",
    "BatchAttacker",
    "TruthfulBatchAttacker",
    "ActiveStretchBatchAttacker",
    "ExpectationProxyBatchAttacker",
    "BatchTransientFaults",
    "BatchRoundConfig",
    "BatchRoundResult",
    "PreparedRounds",
    "batch_orders",
    "sample_correct_bounds",
    "prepare_rounds",
    "concat_prepared",
    "batch_rounds",
    "batch_rounds_prepared",
    "monte_carlo_rounds",
]


@dataclass(frozen=True)
class BatchSlotContext:
    """What a batched attacker knows when one schedule slot comes up.

    All arrays have batch length ``B``; ``rows`` selects the rounds in which
    the sensor transmitting at this slot is compromised (the attacker must
    only rely on the other fields where ``rows`` is ``True``).

    ``transmitted_compromised``, ``remaining_widths`` and
    ``remaining_compromised`` carry the same lookahead information as the
    scalar :class:`repro.attack.context.AttackContext` (widths are public
    a-priori knowledge, so exposing them does not strengthen the attacker);
    they are consumed by lookahead attackers such as
    :class:`repro.batch.expectation.ExactExpectationBatchAttacker` and
    ignored by the prefix-only stretch attackers.

    ``visible`` is the lossy-channel visibility mask over the transmitted
    prefix (``(B, slot)``; ``None`` means the perfect bus, everything
    visible): attackers must only anchor on transmissions that were neither
    lost nor still in flight, mirroring the scalar context's visible-only
    ``transmitted`` tuple.
    """

    n: int
    f: int
    slot: int
    rows: np.ndarray
    sensor: np.ndarray
    width: np.ndarray
    own_lo: np.ndarray
    own_hi: np.ndarray
    delta_lo: np.ndarray
    delta_hi: np.ndarray
    transmitted_lo: np.ndarray
    transmitted_hi: np.ndarray
    far: np.ndarray
    transmitted_compromised: np.ndarray | None = None
    remaining_widths: np.ndarray | None = None
    remaining_compromised: np.ndarray | None = None
    visible: np.ndarray | None = None


class BatchAttacker(abc.ABC):
    """Vectorized attacker invoked once per schedule slot for the whole batch."""

    @abc.abstractmethod
    def forge(
        self, context: BatchSlotContext, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(B,)`` forged bounds; entries outside ``context.rows`` are ignored."""

    def reset(self, batch: int) -> None:
        """Clear per-round state before a new batch of rounds."""


class TruthfulBatchAttacker(BatchAttacker):
    """Compromised sensors simply report their correct intervals."""

    def forge(
        self, context: BatchSlotContext, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        return context.own_lo, context.own_hi


@dataclass
class ActiveStretchBatchAttacker(BatchAttacker):
    """Greedy one-sided stretch attacker (vectorized).

    Parameters
    ----------
    side:
        ``+1`` stretches the fusion interval to the right, ``-1`` to the left.

    The stretch direction is carried as a per-row array internally so that
    side-adaptive subclasses (:class:`ExpectationProxyBatchAttacker`) can pick
    a different side for every round of the batch; this base class fills the
    array with its fixed ``side`` and stays bit-identical to the scalar
    :class:`repro.attack.stretch.ActiveStretchPolicy`.
    """

    side: int = 1
    _support: np.ndarray = field(default_factory=lambda: np.empty(0), repr=False)
    _sides: np.ndarray = field(default_factory=lambda: np.empty(0), repr=False)

    def __post_init__(self) -> None:
        if self.side not in (1, -1):
            raise ScheduleError(f"stretch side must be +1 or -1, got {self.side}")

    def reset(self, batch: int) -> None:
        self._support = np.full(batch, np.nan)
        self._sides = np.full(batch, float(self.side))

    def _resolve_sides(
        self,
        context: BatchSlotContext,
        can_active: np.ndarray,
        region: BatchFusion | None,
        rng: np.random.Generator,
    ) -> None:
        """Hook deciding the stretch side for rows forging for the first time.

        The fixed-side base class has nothing to decide; ``self._sides`` was
        filled at :meth:`reset`.
        """

    def forge(
        self, context: BatchSlotContext, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        if self._support.shape[0] != context.rows.shape[0]:
            self.reset(context.rows.shape[0])
        lo = context.own_lo.copy()
        hi = context.own_hi.copy()
        width = context.width
        support = self._support

        # Rows already carrying a protection obligation keep anchoring on it.
        have_support = context.rows & ~np.isnan(support)

        # Rows that may open active mode at this slot: enough intervals have
        # been *seen* and the support requirement is a real constraint.  On
        # the perfect bus every transmitted interval is visible, so the seen
        # count is simply the slot index; under a lossy channel it is the
        # per-row count of arrived transmissions and the support sweep masks
        # out the invisible columns.
        required = context.n - context.f - context.far
        need = context.rows & np.isnan(support)
        if context.visible is None:
            seen = context.slot
        else:
            seen = context.visible.sum(axis=1)
        can_active = need & (seen >= required) & (required >= 1)
        region: BatchFusion | None = None
        if context.slot > 0 and bool(can_active.any()):
            region = coverage_extremes(
                context.transmitted_lo,
                context.transmitted_hi,
                np.maximum(required, 1),
                mask=context.visible,
            )
        self._resolve_sides(context, can_active, region, rng)
        right = self._sides > 0

        placed = np.zeros_like(need)
        if region is not None:
            placed = can_active & region.valid
            point = np.where(right, region.hi, region.lo)
            support = np.where(placed, point, support)
        self._support = support

        anchored = have_support | placed
        lo = np.where(anchored, np.where(right, support, support - width), lo)
        hi = np.where(anchored, np.where(right, support + width, support), hi)

        # Passive extreme for rounds where active mode is not (yet) possible
        # and the forged width can contain Δ; otherwise stay truthful.
        rest = need & ~placed
        delta_width = context.delta_hi - context.delta_lo
        passive = rest & (width >= delta_width - PASSIVE_WIDTH_TOL)
        lo = np.where(passive, np.where(right, context.delta_lo, context.delta_hi - width), lo)
        hi = np.where(passive, np.where(right, context.delta_lo + width, context.delta_hi), hi)
        return lo, hi


@dataclass
class ExpectationProxyBatchAttacker(ActiveStretchBatchAttacker):
    """Side-adaptive stretch attacker — batch stand-in for the expectation policy.

    The scalar case study drives a coarse-grid
    :class:`repro.attack.expectation.ExpectationPolicy`, whose sequential
    candidate search cannot be vectorized.  This attacker reproduces its
    qualitative behaviour — attack towards whichever side the already-seen
    intervals leave the most room for — by scoring the two extreme candidate
    placements with :func:`repro.attack.candidates.batch_side_preference` at
    each row's first compromised slot and then running the regular stretch
    machinery on the chosen side.

    The stand-in is validated at the *statistics* level (violation-rate
    tolerance against the scalar Table II driver), not bit-for-bit: the
    decision grid of the expectation policy and the binary side choice here
    agree on direction, not on exact placements.
    """

    def reset(self, batch: int) -> None:
        self._support = np.full(batch, np.nan)
        self._sides = np.full(batch, np.nan)

    def _resolve_sides(
        self,
        context: BatchSlotContext,
        can_active: np.ndarray,
        region: BatchFusion | None,
        rng: np.random.Generator,
    ) -> None:
        undecided = context.rows & np.isnan(self._sides)
        if not bool(undecided.any()):
            return
        batch = undecided.shape[0]
        if context.slot == 0:
            # Nothing observed yet: no basis for a preference.
            sides = np.where(rng.random(batch) < 0.5, 1.0, -1.0)
        else:
            width = context.width
            delta_width = context.delta_hi - context.delta_lo
            passive_ok = width >= delta_width - PASSIVE_WIDTH_TOL
            # Extreme admissible candidate per side: active support anchor
            # when available, else the passive extreme, else the truthful
            # reading (whose score then ties and falls to a random side).
            right_lo = np.where(passive_ok, context.delta_lo, context.own_lo)
            left_hi = np.where(passive_ok, context.delta_hi, context.own_hi)
            if region is not None:
                active = can_active & region.valid
                right_lo = np.where(active, region.hi, right_lo)
                left_hi = np.where(active, region.lo, left_hi)
            # Tie-break on the anchor's protrusion from the attacker's best
            # true-value estimate (Δ's centre): still-unseen honest sensors
            # collapse the opposite fusion bound towards the true value, so
            # when the prefix-only widths tie, the side whose anchor sits
            # farther from the truth wins the lookahead the scalar
            # expectation policy computes explicitly.
            delta_center = (context.delta_lo + context.delta_hi) / 2.0
            sides = batch_side_preference(
                self._candidate_width(context, right_lo, right_lo + width),
                self._candidate_width(context, left_hi - width, left_hi),
                rng,
                right_tiebreak=right_lo - delta_center,
                left_tiebreak=delta_center - left_hi,
            )
        self._sides = np.where(undecided, sides, self._sides)

    @staticmethod
    def _candidate_width(
        context: BatchSlotContext, cand_lo: np.ndarray, cand_hi: np.ndarray
    ) -> np.ndarray:
        """Fusion width over (transmitted prefix + candidate) — the side score.

        This is exactly the quantity the scalar expectation policy maximises
        once every other sensor has transmitted; at earlier slots it is a
        surrogate that ignores the still-unseen sensors (whose placements are
        symmetric in expectation, so they do not bias the side choice).
        """
        k = context.transmitted_lo.shape[1]
        lowers = np.concatenate([context.transmitted_lo, cand_lo[:, None]], axis=1)
        uppers = np.concatenate([context.transmitted_hi, cand_hi[:, None]], axis=1)
        required = max(k + 1 - context.f, 1)
        fusion = coverage_extremes(lowers, uppers, required)
        return fusion.hi - fusion.lo


@dataclass(frozen=True)
class BatchTransientFaults:
    """Vectorized transient faults for honest sensors.

    With probability ``probability`` per (round, sensor) the interval is
    displaced by a uniform ``[min_offset_widths, max_offset_widths]`` multiple
    of its own width in a random direction.  An offset of at least one width
    guarantees the faulty interval no longer contains the true value, matching
    the scalar :class:`repro.sensors.faults.TransientFaultModel` semantics.
    """

    probability: float
    min_offset_widths: float = 1.0
    max_offset_widths: float = 3.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise SensorError(f"fault probability must be in [0, 1], got {self.probability}")
        if self.min_offset_widths < 1.0:
            raise SensorError(
                "min_offset_widths must be at least 1 so a faulty interval cannot contain the truth"
            )
        if self.max_offset_widths < self.min_offset_widths:
            raise SensorError("max_offset_widths must be >= min_offset_widths")

    def apply(
        self,
        lowers: np.ndarray,
        uppers: np.ndarray,
        eligible: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (faulted lowers, faulted uppers, fault mask) over ``(B, n)``."""
        shape = lowers.shape
        widths = uppers - lowers
        hit = (rng.random(shape) < self.probability) & eligible
        offsets = rng.uniform(self.min_offset_widths, self.max_offset_widths, shape) * widths
        signs = np.where(rng.random(shape) < 0.5, 1.0, -1.0)
        shift = np.where(hit, signs * offsets, 0.0)
        return lowers + shift, uppers + shift, hit


@dataclass(frozen=True)
class BatchRoundConfig:
    """Static configuration shared by every round of a batch.

    Mirrors :class:`repro.scheduling.round.RoundConfig` with a vectorized
    attacker, plus optional transient faults on honest sensors (the scalar
    round simulator leaves faults to the sensor-suite layer; the batch driver
    injects them directly so fault ablations can run at Monte-Carlo scale).

    The compromised set is given either as ``attacked_indices`` (the same
    sensors in every round, like the scalar simulator) or as a per-round
    ``attacked_mask`` of shape ``(B, n)`` — the form the batched case study
    needs, where a different sensor is attacked in every fusion round.
    """

    schedule: Schedule
    attacked_indices: tuple[int, ...] = ()
    attacker: BatchAttacker = field(default_factory=TruthfulBatchAttacker)
    f: int | None = None
    faults: BatchTransientFaults | None = None
    attacked_mask: np.ndarray | None = None
    channel: ChannelSpec | None = None


@dataclass(frozen=True)
class BatchRoundResult:
    """Array-valued outcome of a batch of fusion rounds.

    All per-sensor arrays are indexed by *sensor* (not slot), like the scalar
    :class:`~repro.scheduling.round.RoundResult.broadcast`.
    """

    orders: np.ndarray
    correct_lo: np.ndarray
    correct_hi: np.ndarray
    broadcast_lo: np.ndarray
    broadcast_hi: np.ndarray
    fusion: BatchFusion
    flagged: np.ndarray
    attacked_indices: tuple[int, ...]
    fault_mask: np.ndarray
    attacked_mask: np.ndarray
    channel: ChannelRealization | None = None

    @property
    def batch(self) -> int:
        """Number of rounds in the batch."""
        return int(self.orders.shape[0])

    @property
    def fusion_widths(self) -> np.ndarray:
        """Per-round fusion widths (``NaN`` where the fusion is empty)."""
        return self.fusion.width

    @property
    def estimates(self) -> np.ndarray:
        """Per-round point estimates — the fusion midpoints."""
        return self.fusion.center

    @property
    def attacker_detected(self) -> np.ndarray:
        """``(B,)`` mask: some compromised sensor was flagged this round."""
        return (self.flagged & self.attacked_mask).any(axis=1)

    @property
    def fault_detected(self) -> np.ndarray:
        """``(B,)`` mask: some transiently-faulty sensor was flagged."""
        return (self.flagged & self.fault_mask).any(axis=1)


def batch_orders(
    schedule: Schedule,
    widths: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Transmission orders for every round as a ``(B, n)`` index array.

    The deterministic schedules (ascending / descending / fixed) are computed
    with stable vectorized sorts that reproduce their scalar tie-breaking;
    :class:`~repro.scheduling.schedule.RandomSchedule` draws one permutation
    per row.  Unknown schedule types fall back to calling ``schedule.order``
    row by row, which is slow but keeps any custom schedule usable.
    """
    batch, n = widths.shape
    if n == 0:
        raise ScheduleError("cannot schedule an empty sensor set")
    if np.any(widths <= 0):
        raise ScheduleError("interval widths must be positive")
    # Exact type checks: a subclass overriding `order` must take the generic
    # fallback, not a vectorized shortcut computing the wrong permutation.
    if type(schedule) is FixedSchedule:
        if len(schedule.permutation) != n:
            raise ScheduleError(
                f"fixed schedule covers {len(schedule.permutation)} sensors but {n} were given"
            )
        return np.tile(np.asarray(schedule.permutation, dtype=np.int64), (batch, 1))
    if type(schedule) is AscendingSchedule:
        return np.argsort(widths, axis=1, kind="stable")
    if type(schedule) is DescendingSchedule:
        return np.argsort(-widths, axis=1, kind="stable")
    if type(schedule) is RandomSchedule:
        return rng.permuted(np.tile(np.arange(n, dtype=np.int64), (batch, 1)), axis=1)
    return np.array(
        [schedule.order(row, rng) for row in widths],
        dtype=np.int64,
    )


def sample_correct_bounds(
    lengths: tuple[float, ...] | np.ndarray,
    true_value: float,
    samples: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``samples`` rounds of correct intervals containing ``true_value``.

    Each sensor's interval has its configured length and a uniformly random
    offset, exactly like the scalar Monte-Carlo estimator in
    :func:`repro.scheduling.comparison.expected_fusion_width_monte_carlo`.
    """
    lengths = np.asarray(lengths, dtype=np.float64)
    if lengths.ndim != 1 or lengths.size == 0:
        raise ScheduleError("lengths must be a non-empty 1-D sequence")
    if np.any(lengths <= 0):
        raise ScheduleError("interval widths must be positive")
    if samples <= 0:
        raise ScheduleError(f"need a positive number of samples, got {samples}")
    lowers = true_value - rng.uniform(0.0, 1.0, (samples, lengths.size)) * lengths
    return lowers, lowers + lengths


@dataclass(frozen=True)
class PreparedRounds:
    """The validated, RNG-consuming prologue shared by every batch driver.

    Both :func:`batch_rounds` and the fused driver
    (:func:`repro.batch.fused.fused_rounds`) start from this structure, so
    they validate identically and — crucially — consume the random stream in
    exactly the same order (transmission orders before fault injection),
    which is what keeps their results bit-comparable.
    """

    correct_lo: np.ndarray
    correct_hi: np.ndarray
    widths: np.ndarray
    orders: np.ndarray
    attacked: tuple[int, ...]
    attacked_mask: np.ndarray
    any_attacked: np.ndarray
    f: int
    delta_lo: np.ndarray
    delta_hi: np.ndarray
    sent_lo: np.ndarray
    sent_hi: np.ndarray
    fault_mask: np.ndarray
    channel: ChannelRealization | None = None

    @property
    def shape(self) -> tuple[int, int]:
        return self.correct_lo.shape


def prepare_rounds(
    correct_lo: np.ndarray,
    correct_hi: np.ndarray,
    config: BatchRoundConfig,
    rng: np.random.Generator,
) -> PreparedRounds:
    """Validate a batch of rounds and draw its schedule orders and faults."""
    with obs.span("engine.prepare", kernel="batch"):
        return _prepare_rounds(correct_lo, correct_hi, config, rng)


def _prepare_rounds(
    correct_lo: np.ndarray,
    correct_hi: np.ndarray,
    config: BatchRoundConfig,
    rng: np.random.Generator,
) -> PreparedRounds:
    correct_lo = np.asarray(correct_lo, dtype=np.float64)
    correct_hi = np.asarray(correct_hi, dtype=np.float64)
    if correct_lo.ndim != 2 or correct_hi.shape != correct_lo.shape:
        raise ScheduleError(
            f"batch rounds need matching (B, n) bounds, got {correct_lo.shape} and {correct_hi.shape}"
        )
    batch, n = correct_lo.shape
    if n == 0:
        raise ScheduleError("a round needs at least one sensor")
    attacked = tuple(sorted(set(config.attacked_indices)))
    for index in attacked:
        if not 0 <= index < n:
            raise ScheduleError(f"attacked sensor index {index} out of range for n={n}")
    if config.attacked_mask is not None:
        if attacked:
            raise ScheduleError(
                "give either attacked_indices or a per-round attacked_mask, not both"
            )
        attacked_mask = np.asarray(config.attacked_mask, dtype=bool)
        if attacked_mask.shape != (batch, n):
            raise ScheduleError(
                f"attacked_mask must have shape {(batch, n)}, got {attacked_mask.shape}"
            )
    else:
        static_mask = np.zeros(n, dtype=bool)
        static_mask[list(attacked)] = True
        attacked_mask = np.broadcast_to(static_mask, (batch, n))
    any_attacked = attacked_mask.any(axis=1)
    f = config.f if config.f is not None else max_safe_fault_bound(n)

    widths = correct_hi - correct_lo
    orders = batch_orders(config.schedule, widths, rng)

    if attacked:
        # Static attacked set: Δ is a max/min over the attacked columns only
        # (identical values to the masked reduction below, at a fraction of
        # the traffic — this prologue is on every driver's hot path).
        columns = list(attacked)
        delta_lo = correct_lo[:, columns].max(axis=1)
        delta_hi = correct_hi[:, columns].min(axis=1)
        if np.any(delta_hi < delta_lo):
            raise EmptyIntersectionError(
                "the compromised sensors' correct readings have an empty intersection"
            )
    elif bool(any_attacked.any()):
        delta_lo = np.where(attacked_mask, correct_lo, -np.inf).max(axis=1)
        delta_hi = np.where(attacked_mask, correct_hi, np.inf).min(axis=1)
        if np.any((delta_hi < delta_lo) & any_attacked):
            raise EmptyIntersectionError(
                "the compromised sensors' correct readings have an empty intersection"
            )
        delta_lo = np.where(any_attacked, delta_lo, 0.0)
        delta_hi = np.where(any_attacked, delta_hi, 0.0)
    else:
        delta_lo = np.zeros(batch)
        delta_hi = np.zeros(batch)

    if config.faults is not None:
        sent_lo, sent_hi, fault_mask = config.faults.apply(
            correct_lo, correct_hi, ~attacked_mask, rng
        )
    else:
        sent_lo, sent_hi = correct_lo, correct_hi
        fault_mask = np.zeros((batch, n), dtype=bool)

    # The channel realizes from a *spawned* child generator: spawning never
    # consumes the parent bitstream, so a channel-free run's draws — and
    # every stored payload — are untouched, while every engine backend sees
    # the identical channel for identical (spec, batch, rng) triples.
    channel = (
        realize_channel(config.channel, batch, n, spawn_rng(rng))
        if config.channel is not None
        else None
    )

    return PreparedRounds(
        correct_lo=correct_lo,
        correct_hi=correct_hi,
        widths=widths,
        orders=orders,
        attacked=attacked,
        attacked_mask=attacked_mask,
        any_attacked=any_attacked,
        f=f,
        delta_lo=delta_lo,
        delta_hi=delta_hi,
        sent_lo=sent_lo,
        sent_hi=sent_hi,
        fault_mask=fault_mask,
        channel=channel,
    )


def concat_prepared(items: Sequence[PreparedRounds]) -> PreparedRounds:
    """Pack several prepared batches of the *same* configuration into one.

    The packing seam behind :meth:`repro.engine.batch.BatchEngine.run_many`:
    each item was prepared with its own RNG stream (so its draws match a
    standalone run exactly), and the packed batch runs the simulation body
    once.  Because the post-prepare simulation of the deterministic attack
    specs consumes no randomness, slicing the packed result row-wise is
    bit-identical to simulating every item separately.

    Every item must share the attacked set and fault bound (they came from
    one :class:`BatchRoundConfig`); mismatches raise rather than silently
    pooling incompatible rounds.
    """
    if not items:
        raise ScheduleError("concat_prepared needs at least one prepared batch")
    if len(items) == 1:
        return items[0]
    first = items[0]
    for item in items[1:]:
        if item.attacked != first.attacked or item.f != first.f:
            raise ScheduleError(
                "cannot pack prepared batches with different attacked sets or "
                f"fault bounds: {item.attacked}/f={item.f} vs {first.attacked}/f={first.f}"
            )
        if item.shape[1] != first.shape[1]:
            raise ScheduleError(
                f"cannot pack prepared batches with different sensor counts: "
                f"{item.shape[1]} vs {first.shape[1]}"
            )
        if (item.channel is None) != (first.channel is None) or (
            item.channel is not None
            and first.channel is not None
            and item.channel.spec != first.channel.spec
        ):
            raise ScheduleError(
                "cannot pack prepared batches with different channel specs"
            )
    def stack(name: str) -> np.ndarray:
        return np.concatenate([getattr(item, name) for item in items])

    return PreparedRounds(
        correct_lo=stack("correct_lo"),
        correct_hi=stack("correct_hi"),
        widths=stack("widths"),
        orders=stack("orders"),
        attacked=first.attacked,
        attacked_mask=stack("attacked_mask"),
        any_attacked=stack("any_attacked"),
        f=first.f,
        delta_lo=stack("delta_lo"),
        delta_hi=stack("delta_hi"),
        sent_lo=stack("sent_lo"),
        sent_hi=stack("sent_hi"),
        fault_mask=stack("fault_mask"),
        channel=(
            None
            if first.channel is None
            else ChannelRealization.concat([item.channel for item in items])
        ),
    )


def batch_rounds(
    correct_lo: np.ndarray,
    correct_hi: np.ndarray,
    config: BatchRoundConfig,
    rng: np.random.Generator,
) -> BatchRoundResult:
    """Simulate ``B`` independent fusion rounds at once.

    Parameters
    ----------
    correct_lo / correct_hi:
        ``(B, n)`` arrays with every sensor's correct reading per round, in
        sensor order (compromised sensors still have a correct reading — the
        attacker sees it).
    config:
        Batch round configuration; ``config.f`` defaults to the conservative
        ``ceil(n/2) - 1`` like the scalar simulator.
    rng:
        Random source for randomized schedules and fault injection.
    """
    return batch_rounds_prepared(prepare_rounds(correct_lo, correct_hi, config, rng), config, rng)


def batch_rounds_prepared(
    prepared: PreparedRounds,
    config: BatchRoundConfig,
    rng: np.random.Generator,
) -> BatchRoundResult:
    """The slot-loop simulation body over an already-prepared batch.

    Split out of :func:`batch_rounds` so packed batches
    (:func:`concat_prepared`) can run the loop once over items that were
    prepared — and therefore consumed their RNG draws — independently.
    ``rng`` is forwarded to the attacker's ``forge`` hook; the built-in
    attack-spec attackers are deterministic there and never draw from it.
    """
    batch, n = prepared.shape
    correct_lo, correct_hi = prepared.correct_lo, prepared.correct_hi
    widths, orders = prepared.widths, prepared.orders
    attacked, attacked_mask = prepared.attacked, prepared.attacked_mask
    f = prepared.f
    delta_lo, delta_hi = prepared.delta_lo, prepared.delta_hi
    sent_lo, sent_hi = prepared.sent_lo, prepared.sent_hi
    fault_mask = prepared.fault_mask
    channel = prepared.channel

    config.attacker.reset(batch)
    row_index = np.arange(batch)
    rows2 = row_index[:, None]
    transmitted_lo = np.empty((batch, n))
    transmitted_hi = np.empty((batch, n))
    sent_compromised = np.zeros(batch, dtype=np.int64)
    fa_rows = attacked_mask.sum(axis=1)
    # Widths and compromised flags rearranged into slot order, so each slot's
    # context can expose the remaining schedule as cheap array views.
    widths_by_slot = widths[rows2, orders]
    attacked_by_slot = attacked_mask[rows2, orders]

    with obs.span("engine.attack", kernel="batch", samples=batch):
        for slot in range(n):
            sensor = orders[:, slot]
            slot_lo = sent_lo[row_index, sensor]
            slot_hi = sent_hi[row_index, sensor]
            rows = attacked_mask[row_index, sensor]
            if bool(rows.any()):
                context = BatchSlotContext(
                    n=n,
                    f=f,
                    slot=slot,
                    rows=rows,
                    sensor=sensor,
                    width=widths[row_index, sensor],
                    own_lo=correct_lo[row_index, sensor],
                    own_hi=correct_hi[row_index, sensor],
                    delta_lo=delta_lo,
                    delta_hi=delta_hi,
                    transmitted_lo=transmitted_lo[:, :slot],
                    transmitted_hi=transmitted_hi[:, :slot],
                    far=fa_rows - sent_compromised,
                    transmitted_compromised=attacked_by_slot[:, :slot],
                    remaining_widths=widths_by_slot[:, slot + 1 :],
                    remaining_compromised=attacked_by_slot[:, slot + 1 :],
                    visible=None if channel is None else channel.visible(slot),
                )
                forged_lo, forged_hi = config.attacker.forge(context, rng)
                slot_lo = np.where(rows, forged_lo, slot_lo)
                slot_hi = np.where(rows, forged_hi, slot_hi)
                sent_compromised = sent_compromised + rows
            transmitted_lo[:, slot] = slot_lo
            transmitted_hi[:, slot] = slot_hi

    with obs.span("engine.fuse", kernel="batch", samples=batch):
        if channel is None:
            fusion = batch_fuse(transmitted_lo, transmitted_hi, f)
            flagged_by_slot = batch_detect(transmitted_lo, transmitted_hi, fusion)
        else:
            # Fusion only sees what the channel delivered.  The controller
            # keeps its configured f (it cannot count losses), so the
            # per-row requirement is received_count - f; thin subsets
            # degrade to the hull of the received intervals (required <= 0)
            # and empty subsets come back invalid from the masked sweep —
            # the scalar path mirrors both degeneracies via fuse_or_none.
            received = channel.received
            fusion = coverage_extremes(
                transmitted_lo,
                transmitted_hi,
                received.sum(axis=1) - f,
                mask=received,
            )
            flagged_by_slot = batch_detect(transmitted_lo, transmitted_hi, fusion) & received

    with obs.span("engine.merge", kernel="batch", samples=batch):
        broadcast_lo = np.empty((batch, n))
        broadcast_hi = np.empty((batch, n))
        flagged = np.empty((batch, n), dtype=bool)
        broadcast_lo[rows2, orders] = transmitted_lo
        broadcast_hi[rows2, orders] = transmitted_hi
        flagged[rows2, orders] = flagged_by_slot

    return BatchRoundResult(
        orders=orders,
        correct_lo=correct_lo,
        correct_hi=correct_hi,
        broadcast_lo=broadcast_lo,
        broadcast_hi=broadcast_hi,
        fusion=fusion,
        flagged=flagged,
        attacked_indices=attacked,
        fault_mask=fault_mask,
        attacked_mask=attacked_mask,
        channel=channel,
    )


def monte_carlo_rounds(
    lengths: tuple[float, ...] | np.ndarray,
    config: BatchRoundConfig,
    samples: int,
    true_value: float = 0.0,
    rng: np.random.Generator | None = None,
) -> BatchRoundResult:
    """Sample correct intervals uniformly and simulate all rounds in one batch."""
    rng = ensure_rng(rng)
    lowers, uppers = sample_correct_bounds(lengths, true_value, samples, rng)
    return batch_rounds(lowers, uppers, config, rng)
