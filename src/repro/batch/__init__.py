"""Vectorized batch Monte-Carlo engine.

This subpackage evaluates ``B`` independent fusion rounds at once with NumPy
array operations, where the scalar modules (:mod:`repro.core.marzullo`,
:mod:`repro.scheduling.round`) loop over rounds in Python.

When to use which path
----------------------

* **Batch** (:func:`batch_fuse`, :func:`batch_rounds`,
  :func:`compare_schedules_batch`) — Monte-Carlo sweeps, ablations and
  benchmarks that need 10⁴–10⁶ rounds.  Throughput is one to two orders of
  magnitude above the scalar loop; empty-fusion rounds are reported through a
  ``valid`` mask instead of exceptions so a single bad round cannot abort a
  sweep.  Batched attackers: the deterministic greedy stretch policy
  (bit-matched by the scalar :class:`repro.attack.stretch.ActiveStretchPolicy`)
  and the exact expectation-maximising attacker of problem (2)
  (:mod:`repro.batch.expectation`, bit-matched by the scalar
  :class:`repro.attack.expectation.ExpectationPolicy` under deterministic
  tie-breaking).

* **Scalar** — single rounds, small exhaustive Table I enumerations,
  anything needing rich per-round objects
  (:class:`~repro.scheduling.round.RoundResult`,
  :class:`~repro.core.detection.DetectionResult`), and all property tests:
  the scalar path is the reference oracle that the batch path is asserted to
  bit-match.

The attacker catalogue lives in ``docs/ATTACKERS.md``; the layer map and the
engine seam this subpackage plugs into are described in
``docs/ARCHITECTURE.md``.
"""

from repro.batch.case_study import batch_case_study, batch_case_study_for_schedule
from repro.batch.comparison import compare_schedules_batch, expected_fusion_width_batch
from repro.batch.expectation import ExactExpectationBatchAttacker, VectorizedExpectationPolicy
from repro.batch.fuse import (
    BatchFusion,
    batch_detect,
    batch_fuse,
    batch_fuse_or_none,
    coverage_extremes,
)
from repro.batch.fused import (
    FusedPlan,
    fused_fusion,
    fused_monte_carlo_rounds,
    fused_rounds,
)
from repro.batch.rounds import (
    ActiveStretchBatchAttacker,
    BatchAttacker,
    BatchRoundConfig,
    BatchRoundResult,
    BatchSlotContext,
    BatchTransientFaults,
    ExpectationProxyBatchAttacker,
    TruthfulBatchAttacker,
    batch_orders,
    batch_rounds,
    monte_carlo_rounds,
    sample_correct_bounds,
)

__all__ = [
    # fusion / detection
    "BatchFusion",
    "batch_fuse",
    "batch_fuse_or_none",
    "batch_detect",
    "coverage_extremes",
    # rounds
    "BatchSlotContext",
    "BatchAttacker",
    "TruthfulBatchAttacker",
    "ActiveStretchBatchAttacker",
    "ExpectationProxyBatchAttacker",
    "ExactExpectationBatchAttacker",
    "VectorizedExpectationPolicy",
    "BatchTransientFaults",
    "BatchRoundConfig",
    "BatchRoundResult",
    "batch_orders",
    "sample_correct_bounds",
    "batch_rounds",
    "monte_carlo_rounds",
    # fused multi-slot kernels
    "FusedPlan",
    "fused_fusion",
    "fused_rounds",
    "fused_monte_carlo_rounds",
    # schedule sweeps
    "expected_fusion_width_batch",
    "compare_schedules_batch",
    # case study
    "batch_case_study",
    "batch_case_study_for_schedule",
]
