"""Batched schedule sweeps — Table I/II style comparisons at Monte-Carlo scale.

The scalar :mod:`repro.scheduling.comparison` estimators call
:func:`~repro.scheduling.round.run_round` once per combination or sample,
which caps Table I sweeps at a few thousand rounds.  The functions here plug
the batched engine of :mod:`repro.batch.rounds` into the *same* result types
(:class:`~repro.scheduling.comparison.ScheduleRow` /
:class:`~repro.scheduling.comparison.ScheduleComparison`), so existing
reporting code consumes 10⁵+-trial sweeps unchanged.

The attacker of the batched path is the vectorized greedy stretch attacker
(see :mod:`repro.batch.rounds`), not the expectation-maximising policy of
problem (2) — the expectation attacker's sequential grid search is inherently
scalar.  The batched rows therefore answer "how do the schedules rank under a
strong deterministic attacker at large sample counts", while the scalar path
remains the reference for the paper's exact attacker model.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.batch.rounds import (
    ActiveStretchBatchAttacker,
    BatchAttacker,
    BatchRoundConfig,
    BatchRoundResult,
    BatchTransientFaults,
    monte_carlo_rounds,
)
from repro.core.exceptions import ExperimentError
from repro.scheduling.comparison import (
    ScheduleComparison,
    ScheduleComparisonConfig,
    ScheduleRow,
)
from repro.scheduling.schedule import Schedule

__all__ = [
    "expected_fusion_width_batch",
    "compare_schedules_batch",
]


def expected_fusion_width_batch(
    config: ScheduleComparisonConfig,
    schedule: Schedule,
    samples: int,
    rng: np.random.Generator | None = None,
    attacker: BatchAttacker | None = None,
    faults: BatchTransientFaults | None = None,
) -> ScheduleRow:
    """Expected fusion width by vectorized Monte-Carlo sampling.

    Mirrors :func:`repro.scheduling.comparison.expected_fusion_width_monte_carlo`
    but evaluates all ``samples`` rounds in one batch; rounds whose fusion is
    empty (possible only with fault injection) are excluded from the mean.
    """
    if samples <= 0:
        raise ExperimentError(f"need a positive number of samples, got {samples}")
    rng = rng if rng is not None else np.random.default_rng(0)
    result = run_batch_sweep(config, schedule, samples, rng, attacker, faults)
    widths = result.fusion_widths[result.fusion.valid]
    if widths.size == 0:
        raise ExperimentError("every sampled round produced an empty fusion")
    return ScheduleRow(
        schedule_name=schedule.name,
        expected_width=float(widths.mean()),
        combinations=samples,
        detected_fraction=float(result.attacker_detected.mean()),
    )


def run_batch_sweep(
    config: ScheduleComparisonConfig,
    schedule: Schedule,
    samples: int,
    rng: np.random.Generator,
    attacker: BatchAttacker | None = None,
    faults: BatchTransientFaults | None = None,
) -> BatchRoundResult:
    """Run one schedule's batched Monte-Carlo sweep, returning the raw arrays."""
    round_config = BatchRoundConfig(
        schedule=schedule,
        attacked_indices=config.resolved_attacked,
        attacker=attacker if attacker is not None else ActiveStretchBatchAttacker(),
        f=config.resolved_f,
        faults=faults,
    )
    return monte_carlo_rounds(
        config.lengths,
        round_config,
        samples,
        true_value=config.true_value,
        rng=rng,
    )


def compare_schedules_batch(
    config: ScheduleComparisonConfig,
    schedules: Sequence[Schedule],
    samples: int = 100_000,
    rng: np.random.Generator | None = None,
    attacker_factory: Callable[[], BatchAttacker] | None = None,
    faults: BatchTransientFaults | None = None,
) -> ScheduleComparison:
    """Batched counterpart of :func:`repro.scheduling.comparison.compare_schedules`.

    Parameters
    ----------
    attacker_factory:
        Zero-argument callable building a fresh vectorized attacker per
        schedule (mirroring the scalar ``policy_factory`` contract, so state
        cannot leak between schedules).  Defaults to
        :class:`~repro.batch.rounds.ActiveStretchBatchAttacker`.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    if attacker_factory is None:
        attacker_factory = ActiveStretchBatchAttacker
    rows = []
    for schedule in schedules:
        rows.append(
            expected_fusion_width_batch(
                config, schedule, samples, rng, attacker_factory(), faults
            )
        )
    return ScheduleComparison(config=config, rows=tuple(rows))
