"""Fused multi-slot evaluation of batched fusion rounds.

:func:`fused_rounds` produces the same :class:`~repro.batch.rounds.BatchRoundResult`
as :func:`repro.batch.rounds.batch_rounds` — bit-for-bit — but replaces the
per-slot Python loop and its per-slot buffers with a fused array program:

* the attacker is evaluated per *compromised transmission* (``fa``
  iterations, typically 1–2) instead of per schedule slot (``n``
  iterations), because the stretch attacker's decision at a slot depends
  only on the transmitted prefix and its anchored support — never on the
  honest slots in between;
* the whole program stays in **sensor space**: fusion and detection are
  order-independent over the *set* of broadcast intervals, so the per-slot
  gather/scatter transmit buffers disappear entirely — the only slot-space
  structure left is one scatter building the inverse permutation
  (slot-of-sensor), from which the attacker's prefix sets are derived;
* the endpoint sweeps run on a **complex-sorted event matrix**
  (:func:`fused_fusion`): the event position lives in the real part and the
  opening/closing flag in the imaginary part, so one ``np.sort`` realises
  the scalar ``(position, -delta)`` event order — no index indirection, no
  ``argsort``, and the running-coverage bookkeeping shrinks to an ``int16``
  cumulative sum in reusable scratch buffers;
* the attacker's active-mode support searches run the same sweep *one-sided*
  (only the stretch side's extreme is needed) over compact per-prefix
  groups — rows are bucketed by the compromised slot, so each group sweeps
  a dense ``(rows, 2·slot)`` matrix instead of a masked ``(B, 2n)`` one;
* schedule-static structure — the compromised slot→sensor layout of fixed
  schedules, the admissibility thresholds ``n - f - far``, the scratch
  buffers — is precomputed once per ``(config, schedule)`` and cached in a
  :class:`FusedPlan`.

The fused program covers the deterministic, RNG-free attackers — the exact
:class:`~repro.batch.rounds.TruthfulBatchAttacker` and the fixed-side
:class:`~repro.batch.rounds.ActiveStretchBatchAttacker` — which is what the
Table I sweeps and the stretch-attacker scenarios run.  Any other attacker
(the RNG-consuming side-adaptive proxy, the memoised exact expectation
attacker, third-party :class:`~repro.batch.rounds.BatchAttacker`
subclasses) transparently delegates to
:func:`~repro.batch.rounds.batch_rounds`, so :func:`fused_rounds` is a
drop-in replacement with an identical contract for *every* configuration.
Both paths share the validation/RNG prologue
(:func:`repro.batch.rounds.prepare_rounds`), so the random stream is
consumed identically no matter which path runs.

Why the restructuring is exact:

1. *Per-transmission ordering.*  Processing each round's compromised
   transmissions in slot order observes exactly the prefixes the slot loop
   observes — honest entries are known upfront and earlier compromised
   entries were forged in earlier iterations.
2. *Complex event order.*  NumPy sorts complex values lexicographically by
   ``(real, imag)``; encoding openings with imaginary part ``0`` and
   closings with ``1`` reproduces the scalar tie rule that opening events
   precede closing events at equal positions, and every selected bound is
   an exact input endpoint carried through the sort unchanged.
3. *Order independence.*  Marzullo fusion and overlap detection depend on
   the broadcast interval *set*, not the transmission order, so evaluating
   them in sensor order returns the values the slot-ordered sweep returns.

The parity suites (``tests/batch/test_fused_rounds.py``,
``tests/engine/``) pin all of this bit-for-bit against both the batch
driver and the scalar oracle.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro import obs
from repro.attack.candidates import PASSIVE_WIDTH_TOL
from repro.batch.fuse import BatchFusion, _validate_bounds, batch_detect, coverage_extremes
from repro.batch.rounds import (
    ActiveStretchBatchAttacker,
    BatchRoundConfig,
    BatchRoundResult,
    PreparedRounds,
    TruthfulBatchAttacker,
    batch_rounds,
    batch_rounds_prepared,
    prepare_rounds,
    sample_correct_bounds,
)
from repro.core.marzullo import validate_fault_bound
from repro.scheduling.schedule import FixedSchedule, Schedule
from repro.utils.seeding import ensure_rng

__all__ = [
    "FusedPlan",
    "fusable_attacker",
    "plan_for",
    "clear_plan_cache",
    "fused_fusion",
    "fused_rounds",
    "fused_rounds_prepared",
    "fused_monte_carlo_rounds",
]


def fusable_attacker(config: BatchRoundConfig) -> bool:
    """Whether the fused multi-slot program covers ``config.attacker``.

    Exact type checks on purpose: a subclass (e.g. the side-adaptive
    :class:`~repro.batch.rounds.ExpectationProxyBatchAttacker`, which draws
    randomness in ``_resolve_sides``) overrides parts of the decision rule
    the fused program hard-codes, so it must take the slot-loop path.
    """
    return type(config.attacker) in (TruthfulBatchAttacker, ActiveStretchBatchAttacker)


@dataclass
class FusedPlan:
    """Schedule-static structure shared by every round of a ``(config, schedule)``.

    ``static_comp_slots`` / ``static_comp_sensors`` describe the compromised
    transmissions (in slot order) when the slot→sensor layout itself is
    static — a :class:`~repro.scheduling.schedule.FixedSchedule` with a
    static attacked set.  ``required`` — the active-mode admissibility
    thresholds ``n - f - (fa - j)`` for the ``j``-th compromised
    transmission — only needs a static attacked set.  Work buffers come
    from the shared per-shape scratch pool (:meth:`buffers`); buffers that
    escape into results are always freshly allocated.
    """

    n: int
    f: int
    attacked: tuple[int, ...]
    required: np.ndarray | None
    static_comp_slots: np.ndarray | None
    static_comp_sensors: np.ndarray | None

    def buffers(self, batch: int) -> dict:
        """The reusable work buffers for full batches of ``batch`` rounds.

        Buffers depend only on ``(batch, n)``, so they live in one shared
        module-level pool — plans for different schedules or attacked sets
        at the same shape reuse the same memory instead of each retaining
        its own multi-megabyte scratch.
        """
        return _scratch_buffers(batch, self.n)


class _SweepScratch:
    """Reusable event-matrix buffers for one ``(rows, events)`` sweep shape."""

    def __init__(self, rows: int, events: int) -> None:
        self.events = np.empty((rows, events), dtype=np.complex128)
        self.coverage = np.empty((rows, events), dtype=np.int16)
        self.positions = np.arange(events, dtype=np.int16)[None, :]
        self.rows = np.arange(rows)


#: Plans keyed on the schedule-static inputs; unhashable custom schedules
#: simply rebuild (plans are small — a few index arrays each, and read-only
#: after construction, so concurrent lookups are safe).
_PLAN_CACHE: dict = {}

#: Scratch pools are **thread-local**: two threads running fused rounds at
#: the same ``(batch, n)`` must never share work buffers (the slot-loop
#: driver has no shared mutable state, and the fused driver keeps that
#: property).  Each thread's pool is bounded so a sweep over many batch
#: sizes cannot accumulate dead buffers (a full-batch entry is tens of
#: megabytes at B=10⁵).
_SCRATCH = threading.local()
_SCRATCH_POOL_LIMIT = 4


def _scratch_pool() -> dict:
    pool = getattr(_SCRATCH, "pool", None)
    if pool is None:
        pool = _SCRATCH.pool = {}
    return pool


def _scratch_buffers(batch: int, n: int) -> dict:
    pool = _scratch_pool()
    key = (batch, n)
    buffers = pool.get(key)
    if buffers is None:
        buffers = {
            "rows2": np.arange(batch, dtype=np.int64)[:, None],
            "slots": np.arange(n, dtype=np.int64)[None, :],
            "inverse": np.empty((batch, n), dtype=np.int64),
            "sweep": _SweepScratch(batch, 2 * n),
        }
        while len(pool) >= _SCRATCH_POOL_LIMIT:
            pool.pop(next(iter(pool)))  # evict oldest
        pool[key] = buffers
    return buffers


def clear_plan_cache() -> None:
    """Drop every cached :class:`FusedPlan` and this thread's scratch pool."""
    _PLAN_CACHE.clear()
    _scratch_pool().clear()


def _static_layout(
    schedule: Schedule, attacked: tuple[int, ...], n: int
) -> tuple[np.ndarray, np.ndarray] | None:
    """(slots, sensors) of compromised transmissions when statically known."""
    if type(schedule) is not FixedSchedule or len(schedule.permutation) != n:
        return None
    attacked_set = set(attacked)
    pairs = [
        (slot, sensor)
        for slot, sensor in enumerate(schedule.permutation)
        if sensor in attacked_set
    ]
    slots = np.array([slot for slot, _ in pairs], dtype=np.int64)
    sensors = np.array([sensor for _, sensor in pairs], dtype=np.int64)
    return slots, sensors


def plan_for(config: BatchRoundConfig, n: int, f: int) -> FusedPlan:
    """The (cached) fused plan for one ``(config, schedule)`` pair."""
    attacked = tuple(sorted(set(config.attacked_indices)))
    dynamic_mask = config.attacked_mask is not None
    try:
        key = (config.schedule, attacked, n, f, dynamic_mask)
        plan = _PLAN_CACHE.get(key)
    except TypeError:  # unhashable custom schedule: build a one-shot plan
        key = None
        plan = None
    if plan is not None:
        return plan
    required = None
    layout = None
    if not dynamic_mask:
        fa = len(attacked)
        required = n - f - (fa - np.arange(fa, dtype=np.int64))
        layout = _static_layout(config.schedule, attacked, n)
    plan = FusedPlan(
        n=n,
        f=f,
        attacked=attacked,
        required=required,
        static_comp_slots=layout[0] if layout else None,
        static_comp_sensors=layout[1] if layout else None,
    )
    if key is not None:
        _PLAN_CACHE[key] = plan
    return plan


def _sorted_event_matrix(
    lowers: np.ndarray, uppers: np.ndarray, scratch: _SweepScratch | None
) -> tuple[np.ndarray, np.ndarray]:
    """The complex-sorted event matrix and its coverage-ready scratch.

    Positions live in the real part, the closing flag in the imaginary
    part, so one value sort realises the scalar ``(position, -delta)``
    event order (openings ahead of closings at equal positions).
    """
    rows, n = lowers.shape
    if scratch is None or scratch.events.shape != (rows, 2 * n):
        scratch = _SweepScratch(rows, 2 * n)
    events = scratch.events
    events.real[:, :n] = lowers
    events.real[:, n:] = uppers
    events.imag[:, :n] = 0.0
    events.imag[:, n:] = 1.0
    events.sort(axis=1)
    return events, scratch


def _running_coverage(events: np.ndarray, scratch: _SweepScratch) -> np.ndarray:
    """Post-event running coverage per sorted event (int16, in scratch)."""
    opening = events.imag == 0.0
    coverage = scratch.coverage
    np.cumsum(opening, axis=1, dtype=np.int16, out=coverage)
    # coverage = openings_so_far - closings_so_far = 2*openings - (p + 1)
    np.multiply(coverage, 2, out=coverage)
    np.subtract(coverage, scratch.positions, out=coverage)
    np.subtract(coverage, 1, out=coverage)
    return coverage


def fused_fusion(
    lowers: np.ndarray,
    uppers: np.ndarray,
    f: int,
    scratch: _SweepScratch | None = None,
) -> BatchFusion:
    """Batched Marzullo fusion on the complex-sorted event matrix.

    Bit-identical to :func:`repro.batch.fuse.batch_fuse` (the parity suite
    asserts it): same bounds and fault-bound validation (malformed inputs
    raise, exactly like the event sweep), same tie rule, same ``NaN`` /
    ``valid`` reporting for empty-fusion rows — only the sweep mechanics
    differ.  Validated inputs are finite with ordered bounds, so the
    complex sweep needs no per-event finiteness checks.
    """
    lowers, uppers, _ = _validate_bounds(lowers, uppers, None)
    validate_fault_bound(lowers.shape[1], f)
    required = lowers.shape[1] - f
    events, scratch = _sorted_event_matrix(lowers, uppers, scratch)
    coverage = _running_coverage(events, scratch)
    row = scratch.rows
    last = events.shape[1] - 1

    reaches = coverage >= required
    lower_index = np.argmax(reaches, axis=1)
    has_lower = reaches[row, lower_index]
    # Pre-event coverage of a closing event is coverage + 1.
    upper_ok = (events.imag != 0.0) & (coverage >= required - 1)
    upper_index = last - np.argmax(upper_ok[:, ::-1], axis=1)
    has_upper = upper_ok[row, upper_index]
    lo = events.real[row, lower_index]
    hi = events.real[row, upper_index]
    valid = has_lower & has_upper & (hi >= lo)
    return BatchFusion(
        lo=np.where(valid, lo, np.nan), hi=np.where(valid, hi, np.nan), valid=valid
    )


def _support_points(
    lowers: np.ndarray,
    uppers: np.ndarray,
    required: int | np.ndarray,
    right: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """One-sided active-mode support search over a dense prefix group.

    Returns ``(point, valid)`` where ``point`` is the extreme point on the
    stretch side covered by at least ``required`` of the prefix intervals —
    the value :func:`repro.batch.fuse.coverage_extremes` reports as ``hi``
    (``lo`` for a left stretch).  On a dense, finite prefix a point of the
    required coverage exists on one side exactly when it exists on the
    other, so the single-sided sweep decides validity alone.
    """
    events, scratch = _sorted_event_matrix(lowers, uppers, None)
    coverage = _running_coverage(events, scratch)
    row = scratch.rows
    req = np.asarray(required, dtype=np.int16)
    req = np.maximum(req, 1)
    if req.ndim:
        req = req[:, None]
    if right:
        ok = (events.imag != 0.0) & (coverage >= req - 1)
        index = (events.shape[1] - 1) - np.argmax(ok[:, ::-1], axis=1)
    else:
        ok = (events.imag == 0.0) & (coverage >= req)
        index = np.argmax(ok, axis=1)
    valid = ok[row, index]
    return events.real[row, index], valid


def fused_rounds(
    correct_lo: np.ndarray,
    correct_hi: np.ndarray,
    config: BatchRoundConfig,
    rng: np.random.Generator,
    plan: FusedPlan | None = None,
) -> BatchRoundResult:
    """Drop-in :func:`~repro.batch.rounds.batch_rounds` with the fused kernel.

    Bit-identical results for every configuration: fusable attackers run
    the fused program, everything else delegates to the slot loop.
    ``plan`` may carry a precomputed :class:`FusedPlan`; by default it is
    resolved (and cached) from the config.
    """
    if not fusable_attacker(config):
        return batch_rounds(correct_lo, correct_hi, config, rng)
    prepared = prepare_rounds(correct_lo, correct_hi, config, rng)
    return fused_rounds_prepared(prepared, config, rng, plan=plan)


def fused_rounds_prepared(
    prepared: PreparedRounds,
    config: BatchRoundConfig,
    rng: np.random.Generator,
    plan: FusedPlan | None = None,
) -> BatchRoundResult:
    """The fused simulation body over an already-prepared batch.

    Counterpart of :func:`repro.batch.rounds.batch_rounds_prepared` for the
    fused kernel: packed batches (:func:`repro.batch.rounds.concat_prepared`)
    run the per-compromised-transmission program once over all items.
    Non-fusable attackers delegate to the shared slot loop, exactly like
    :func:`fused_rounds` does before preparing.
    """
    if not fusable_attacker(config):
        return batch_rounds_prepared(prepared, config, rng)
    batch, n = prepared.shape
    f = prepared.f
    validate_fault_bound(n, f)  # batch_fuse would; fail before simulating
    if plan is None:
        plan = plan_for(config, n, f)
    buffers = plan.buffers(batch)
    rows2 = buffers["rows2"]
    row_index = rows2[:, 0]
    orders = prepared.orders

    # Fusion and detection are order-independent over the broadcast *set*,
    # so the program stays in sensor space; the broadcast matrix doubles as
    # the working transmit state (it escapes into the result, so it is
    # freshly allocated, not scratch).
    broadcast_lo = prepared.sent_lo.copy()
    broadcast_hi = prepared.sent_hi.copy()

    # Lossy channel: the attacker's availability test and support sweeps see
    # only arrived transmissions, and the final fusion only the received
    # set.  The one-sided dense sweep (`_support_points`) is not mask-safe
    # (masked events would still step the running coverage), so the channel
    # lanes run the masked `coverage_extremes` sweep instead; everything
    # else — the per-compromised-transmission structure, the plan cache, the
    # group bucketing — is unchanged, which is where the fused speedup
    # lives.
    channel = prepared.channel
    visible_table = channel.visible_counts() if channel is not None else None

    # The forging phase below is one long straight-line block; time it with
    # an after-the-fact leaf span instead of a context manager so the code
    # keeps its flat shape (obs.event is a no-op when tracing is off).
    attack_started = perf_counter() if obs.enabled() else None

    if prepared.attacked:
        fa_rows = np.full(batch, len(prepared.attacked), dtype=np.int64)
        fa_max = len(prepared.attacked)
    else:
        fa_rows = prepared.attacked_mask.sum(axis=1)
        fa_max = int(fa_rows.max()) if batch else 0
    stretch = type(config.attacker) is ActiveStretchBatchAttacker
    # The attacker protocol resets per batch even when no slot is forged.
    config.attacker.reset(batch)

    if stretch and fa_max:
        # slot-of-sensor: the one piece of slot-space structure the
        # attacker's prefix sets need.
        inverse = buffers["inverse"]
        inverse[rows2, orders] = buffers["slots"]
        static = bool(prepared.attacked)  # every row attacks the same sensors
        if plan.static_comp_slots is not None and plan.static_comp_slots.shape[0] == fa_max:
            comp_slots = np.broadcast_to(plan.static_comp_slots, (batch, fa_max))
            comp_sensors = np.broadcast_to(plan.static_comp_sensors, (batch, fa_max))
        elif static and fa_max == 1:
            comp_sensors = np.broadcast_to(
                np.array(prepared.attacked, dtype=np.int64), (batch, 1)
            )
            comp_slots = inverse[:, prepared.attacked]
        elif static:
            # Sort each row's few attacked sensors by their slot — an
            # (B, fa) argsort, not an (B, n) one.
            slots_of_attacked = inverse[:, prepared.attacked]
            by_slot = np.argsort(slots_of_attacked, axis=1, kind="stable")
            comp_slots = np.take_along_axis(slots_of_attacked, by_slot, axis=1)
            comp_sensors = np.asarray(prepared.attacked, dtype=np.int64)[by_slot]
        else:
            # Per-round masks: push the honest sensors behind an
            # out-of-range sentinel slot and take the fa_max earliest.
            masked_slots = np.where(prepared.attacked_mask, inverse, n)
            comp_sensors = np.argsort(masked_slots, axis=1, kind="stable")[:, :fa_max]
            comp_slots = masked_slots[row_index[:, None], comp_sensors]
        right = config.attacker.side > 0
        support = np.full(batch, np.nan)
        unplaced = np.ones(batch, dtype=bool)  # no anchored support yet
        delta_lo, delta_hi = prepared.delta_lo, prepared.delta_hi
        delta_width = delta_hi - delta_lo
        static_required = (
            plan.required if plan.required is not None and plan.required.shape[0] == fa_max
            else None
        )
        for j in range(fa_max):
            active_rows = None if static else fa_rows > j  # None: every row
            slot = comp_slots[:, j]
            sensor = comp_sensors[:, j]
            width = prepared.widths[row_index, sensor]
            need = unplaced if static else (active_rows & unplaced)
            need_any = bool(need.any())
            # Active-mode availability counts the intervals the attacker has
            # *seen*: every earlier slot on the perfect bus, only the
            # already-arrived ones under a lossy channel.
            seen = slot if visible_table is None else visible_table[row_index, slot]
            if need_any:
                if static_required is not None:
                    required_j = int(static_required[j])
                    can_active = (
                        need & (seen >= required_j) if required_j >= 1
                        else np.zeros(batch, dtype=bool)
                    )
                else:
                    required = n - f - (fa_rows - j)
                    can_active = need & (seen >= required) & (required >= 1)
            else:
                can_active = np.zeros(batch, dtype=bool)
            placed_any = False
            if bool(can_active.any()):
                # Bucket by prefix length: each group sweeps a dense
                # (rows, 2·slot) event matrix — no masks, no padding.
                for s in np.unique(slot[can_active]):
                    group = np.nonzero(can_active & (slot == s))[0]
                    prefix_sensors = orders[group[:, None], buffers["slots"][:, :s]]
                    prefix_lo = broadcast_lo[group[:, None], prefix_sensors]
                    prefix_hi = broadcast_hi[group[:, None], prefix_sensors]
                    group_required = (
                        required_j if static_required is not None else required[group]
                    )
                    if channel is None:
                        point, valid = _support_points(
                            prefix_lo, prefix_hi, group_required, right
                        )
                    else:
                        visible = ~channel.lost[group, :s] & (
                            channel.arrival[group, :s] < s
                        )
                        region = coverage_extremes(
                            prefix_lo,
                            prefix_hi,
                            np.maximum(group_required, 1),
                            mask=visible,
                        )
                        point = region.hi if right else region.lo
                        valid = region.valid
                    anchored_rows = group[valid]
                    support[anchored_rows] = point[valid]
                    unplaced[anchored_rows] = False
                    placed_any = placed_any or bool(valid.any())
            if not need_any or (placed_any and not bool(unplaced.any())):
                # Every (active) row is anchored: no passive/truthful lanes.
                lo = support if right else support - width
                hi = support + width if right else support
            else:
                own_lo = prepared.correct_lo[row_index, sensor]
                own_hi = prepared.correct_hi[row_index, sensor]
                anchored = ~unplaced if static else (active_rows & ~unplaced)
                lo = np.where(anchored, support if right else support - width, own_lo)
                hi = np.where(anchored, support + width if right else support, own_hi)
                rest = need & unplaced
                if bool(rest.any()):
                    passive = rest & (width >= delta_width - PASSIVE_WIDTH_TOL)
                    lo = np.where(passive, delta_lo if right else delta_hi - width, lo)
                    hi = np.where(passive, delta_lo + width if right else delta_hi, hi)
            if active_rows is None:
                broadcast_lo[row_index, sensor] = lo
                broadcast_hi[row_index, sensor] = hi
            else:
                writers = np.nonzero(active_rows)[0]
                broadcast_lo[writers, sensor[writers]] = lo[writers]
                broadcast_hi[writers, sensor[writers]] = hi[writers]
    elif fa_max:
        # Truthful attacker: compromised sensors report their correct
        # readings, which (faults never hit attacked sensors) are already in
        # the broadcast matrix.  Nothing to forge.
        pass

    if attack_started is not None:
        obs.event("engine.attack", perf_counter() - attack_started, kernel="fused", samples=batch)

    with obs.span("engine.fuse", kernel="fused", samples=batch):
        if channel is None:
            fusion = fused_fusion(broadcast_lo, broadcast_hi, f, scratch=buffers["sweep"])
            flagged = batch_detect(broadcast_lo, broadcast_hi, fusion)
        else:
            # The received mask lives in slot space; scatter it through the
            # order permutation so it masks the sensor-space broadcast
            # matrix.  `fused_fusion` cannot take a mask (its dense complex
            # sweep steps the coverage for every event), so the channel leg
            # runs the masked argsort sweep — the per-transmission attack
            # phase above is where the fused kernel's advantage lies.
            received = np.empty((batch, n), dtype=bool)
            received[rows2, orders] = channel.received
            fusion = coverage_extremes(
                broadcast_lo,
                broadcast_hi,
                channel.received.sum(axis=1) - f,
                mask=received,
            )
            flagged = batch_detect(broadcast_lo, broadcast_hi, fusion) & received

    with obs.span("engine.merge", kernel="fused", samples=batch):
        return BatchRoundResult(
            orders=orders,
            correct_lo=prepared.correct_lo,
            correct_hi=prepared.correct_hi,
            broadcast_lo=broadcast_lo,
            broadcast_hi=broadcast_hi,
            fusion=fusion,
            flagged=flagged,
            attacked_indices=prepared.attacked,
            fault_mask=prepared.fault_mask,
            attacked_mask=prepared.attacked_mask,
            channel=channel,
        )


def fused_monte_carlo_rounds(
    lengths: tuple[float, ...] | np.ndarray,
    config: BatchRoundConfig,
    samples: int,
    true_value: float = 0.0,
    rng: np.random.Generator | None = None,
) -> BatchRoundResult:
    """Fused counterpart of :func:`~repro.batch.rounds.monte_carlo_rounds`.

    Samples through the shared :func:`~repro.batch.rounds.sample_correct_bounds`
    primitive, so the fused engine's stream matches the batch engine's.
    """
    rng = ensure_rng(rng)
    lowers, uppers = sample_correct_bounds(lengths, true_value, samples, rng)
    return fused_rounds(lowers, uppers, config, rng)
