"""The exact expectation-maximising attacker (problem (2)), vectorized.

:class:`repro.attack.expectation.ExpectationPolicy` scores every candidate
placement by enumerating a (true-value × placement) grid of futures and
fusing each one with a scalar Marzullo sweep — thousands of Python-level
fusion and admissibility sweeps per decision.  This module keeps the
*decision procedure* bit-for-bit identical while evaluating the whole
(candidate × true-value × placement) grid as broadcast tensor ops:

* candidate placements are generated as plain bound arrays (same values,
  same order, same dedup rule as
  :func:`repro.attack.candidates.candidate_intervals`) and filtered by
  :class:`_AdmissibilityTable`, which computes the transmitted prefix's
  coverage profile **once** per context and evaluates every candidate's
  passive/active admissibility — and the conservative-mode support rule — as
  array comparisons against it;
* every surviving ``(candidate, scenario)`` combination is stacked into one
  ``(C·S, n)`` bound matrix and solved by a single batched endpoint sweep
  (:func:`repro.batch.fuse.coverage_extremes`, bit-identical to the scalar
  :func:`repro.core.marzullo.fuse_or_none`);
* the per-candidate mean accumulates the per-scenario widths sequentially in
  the scalar enumeration order, so the scores — and therefore the decisions,
  tie sets included — equal the scalar policy's exactly.

:class:`VectorizedExpectationPolicy` packages this as a drop-in
:class:`~repro.attack.policy.AttackPolicy`; :class:`ExactExpectationBatchAttacker`
drives it over whole batches behind the
:class:`repro.batch.rounds.BatchAttacker` interface: at each schedule slot it
collects every compromised row's context, answers repeated contexts from one
shared memo table keyed on
:meth:`repro.attack.context.AttackContext.cache_key` (plus the
``conservative`` flag) — the Ascending-schedule fast path, where the attacker
transmits before seeing anything and whole swaths of rounds share a decision
— and fuses the surviving rows' candidate grids in **one** batched sweep per
slot.

Equivalence contract
--------------------

Round-for-round equivalence with the scalar oracle holds under
``tie_break="first"`` (the engine layer's ``attack="expectation"`` spec):
random tie-breaking would consume the RNG in a different order on the two
backends (round-major versus slot-major) and the streams would diverge.
Decisions are deterministic per context, and memo entries are keyed by slot
prefix (the number of transmitted intervals is part of the key), so the
slot-major fill order of the batched memo visits colliding keys in the same
order as the scalar round-major loop.  The one caveat: with ``fa >= 2`` a
*lookahead* sub-decision (computed with the attacker's Δ stand-in for her own
reading) could in principle pre-fill a key that the scalar path would first
reach top-level; that requires two rounds to collide on every transmitted
bound at 9-decimal precision, which does not occur under continuous
Monte-Carlo sampling — ``tests/batch/test_expectation_batch.py`` pins the
bit-equality on seeded sweeps for both ``fa = 1`` and ``fa = 2`` and both
``conservative`` modes.

See ``docs/ATTACKERS.md`` for where this attacker sits in the catalogue and
``docs/ARCHITECTURE.md`` for the engine seam it plugs into.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attack.candidates import PASSIVE_WIDTH_TOL, candidate_intervals
from repro.attack.context import AttackContext
from repro.attack.expectation import TIE_TOLERANCE, ExpectationPolicy, _linspace
from repro.attack.stealth import (
    AttackerMode,
    active_mode_available,
    check_admissible,
    required_support,
)
from repro.batch.fuse import coverage_extremes
from repro.batch.rounds import BatchAttacker, BatchSlotContext
from repro.core.exceptions import ScheduleError
from repro.core.interval import Interval
from repro.core.marzullo import coverage_profile

__all__ = ["VectorizedExpectationPolicy", "ExactExpectationBatchAttacker"]

_DEDUP_PRECISION = 9  # must match repro.attack.candidates._DEDUP_PRECISION

#: Upper bound on the (candidate × scenario) rows fused per batched sweep;
#: bounds the peak size of the event matrices (~10 MB per bound matrix at
#: n = 10) without changing any result — chunks reproduce the same per-round
#: sweeps.
_FUSE_CHUNK_ROWS = 65_536


def _raw_candidate_bounds(
    context: AttackContext, grid_positions: int
) -> tuple[list[float], list[float]]:
    """Deduplicated raw candidate bounds, pre-admissibility.

    Reproduces the candidate enumeration of
    :func:`repro.attack.candidates.candidate_intervals` — truthful reading,
    passive extremes, endpoint alignments, uniform grid, first-occurrence
    dedup at 9 decimals — as plain floats, skipping the ``Interval``
    construction and per-candidate admissibility sweeps of the scalar path.
    The values and their order are identical (the endpoint reference points
    go through a Python ``set`` built by the same insertion sequence), which
    ``tests/batch/test_expectation_batch.py`` cross-checks against the scalar
    enumerator.
    """
    width = context.width
    delta = context.delta
    own = context.own_reading
    lows: list[float] = [own.lo]
    highs: list[float] = [own.hi]

    # passive_extremes
    if width >= delta.width - PASSIVE_WIDTH_TOL:
        lows += [delta.hi - width, delta.lo, delta.center - width / 2.0]
        highs += [delta.hi, delta.lo + width, delta.center + width / 2.0]

    # endpoint_aligned (same set-construction order as the scalar code)
    reference_points: set[float] = {delta.lo, delta.hi}
    for interval in context.transmitted:
        reference_points.add(interval.lo)
        reference_points.add(interval.hi)
    for point in context.protected_points:
        reference_points.add(point)
    reference_points.add(own.lo)
    reference_points.add(own.hi)
    for point in reference_points:
        lows += [point, point - width]
        highs += [point + width, point]

    # grid_candidates (positions clamped to >= 2 like the scalar code)
    positions = max(2, grid_positions)
    g_lows = [delta.lo] + [s.lo for s in context.transmitted] + list(context.protected_points)
    g_highs = [delta.hi] + [s.hi for s in context.transmitted] + list(context.protected_points)
    window_lo = min(g_lows) - width
    window_hi = max(g_highs) + width
    span = window_hi - width - window_lo
    if span <= 0:
        lows.append(window_lo)
        highs.append(window_lo + width)
    else:
        step = span / (positions - 1)
        for index in range(positions):
            lows.append(window_lo + index * step)
            highs.append(window_lo + index * step + width)
    return lows, highs


def _dedup_candidate_bounds(
    context: AttackContext, grid_positions: int
) -> tuple[np.ndarray, np.ndarray]:
    """The deduplicated candidate grid of one context, as bound arrays.

    First-occurrence dedup at 9 decimals, like ``candidates._dedupe``.  The
    exact-key pre-pass removes the (frequent) bitwise duplicates before
    paying for Python's decimal rounding; survivors that still collide
    after rounding are dropped exactly like the scalar dedup.
    """
    lows, highs = _raw_candidate_bounds(context, grid_positions)
    exact_seen: set[tuple[float, float]] = set()
    seen: set[tuple[float, float]] = set()
    dedup_lo: list[float] = []
    dedup_hi: list[float] = []
    for lo_value, hi_value in zip(lows, highs):
        exact_key = (lo_value, hi_value)
        if exact_key in exact_seen:
            continue
        exact_seen.add(exact_key)
        key = (round(lo_value, _DEDUP_PRECISION), round(hi_value, _DEDUP_PRECISION))
        if key not in seen:
            seen.add(key)
            dedup_lo.append(lo_value)
            dedup_hi.append(hi_value)
    return np.asarray(dedup_lo), np.asarray(dedup_hi)


def _support_value(
    profile, candidate_lo: float, candidate_hi: float, required: int
) -> float | None:
    """:func:`repro.attack.stealth.support_point` over a precomputed profile.

    Identical selection rule — first strictly-best-coverage segment in
    profile order, point of the overlap closest to the candidate centre — so
    the returned float equals the scalar call bit for bit.
    """
    center = (candidate_lo + candidate_hi) / 2.0
    if required <= 0:
        return center
    best_point: float | None = None
    best_coverage = -1
    for segment in profile:
        if segment.coverage < required:
            continue
        lo = max(segment.lo, candidate_lo)
        hi = min(segment.hi, candidate_hi)
        if hi < lo:
            continue
        if segment.coverage > best_coverage:
            best_coverage = segment.coverage
            best_point = min(max(center, lo), hi)
    return best_point


class _AdmissibilityTable:
    """Vectorized stealth predicates for one context.

    Evaluates the passive/active admissibility rules of
    :mod:`repro.attack.stealth` — and the ``conservative`` support rule of
    the expectation policy — for whole arrays of candidate bounds at once,
    against a coverage profile of the transmitted prefix computed a single
    time.  Results match :func:`repro.attack.stealth.check_admissible`
    candidate for candidate.
    """

    __slots__ = (
        "delta_lo",
        "delta_hi",
        "protected",
        "required",
        "available",
        "transmitted",
        "transmitted_lo",
        "transmitted_hi",
        "_profile",
    )

    def __init__(self, context: AttackContext) -> None:
        self.delta_lo = context.delta.lo
        self.delta_hi = context.delta.hi
        self.protected = tuple(context.protected_points)
        self.required = required_support(context)
        self.available = active_mode_available(context)
        self.transmitted = context.transmitted
        self.transmitted_lo = np.asarray([s.lo for s in context.transmitted])
        self.transmitted_hi = np.asarray([s.hi for s in context.transmitted])
        self._profile = None

    @property
    def profile(self):
        """The transmitted prefix's coverage profile, built on first use.

        Only support *values* (protection obligations of active decisions)
        need the merged segment list; the admissibility masks get by with
        point-coverage queries on the raw bounds.
        """
        if self._profile is None:
            self._profile = coverage_profile(self.transmitted) if self.transmitted else []
        return self._profile

    def has_support(self, lo: np.ndarray, hi: np.ndarray, required: int) -> np.ndarray:
        """Candidates owning a point covered by >= ``required`` transmitted intervals.

        The vectorized truth-value of ``support_point(...) is not None``.
        Coverage is piecewise constant with breakpoints at the transmitted
        endpoints, and at a breakpoint the (closed-interval) point coverage
        dominates both neighbouring pieces, so the maximum over a candidate
        ``[lo, hi]`` is attained at an endpoint clipped into the candidate or
        at ``lo`` itself — evaluating the point coverage there is exact.
        """
        if required <= 0:
            return np.ones(lo.shape, dtype=bool)
        count = self.transmitted_lo.shape[0]
        if count == 0:
            return np.zeros(lo.shape, dtype=bool)
        lo_col = lo[:, None]
        hi_col = hi[:, None]
        points = np.empty((lo.shape[0], 2 * count + 1))
        points[:, 0] = lo
        points[:, 1 : count + 1] = np.minimum(
            np.maximum(self.transmitted_lo[None, :], lo_col), hi_col
        )
        points[:, count + 1 :] = np.minimum(
            np.maximum(self.transmitted_hi[None, :], lo_col), hi_col
        )
        coverage = np.zeros(points.shape, dtype=np.int64)
        for j in range(count):
            coverage += (self.transmitted_lo[j] <= points) & (points <= self.transmitted_hi[j])
        return (coverage >= required).any(axis=1)

    def evaluate(self, lo: np.ndarray, hi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(admissible, passive)`` masks per candidate.

        ``passive`` marks the candidates admissible in passive mode (the mode
        :func:`~repro.attack.stealth.check_admissible` reports, since passive
        is tried first); admissible-but-not-passive candidates are active.
        """
        covers_protected = np.ones(lo.shape, dtype=bool)
        for point in self.protected:
            covers_protected &= (lo <= point) & (point <= hi)
        passive = (lo <= self.delta_lo) & (self.delta_hi <= hi) & covers_protected
        if self.available:
            active = covers_protected & self.has_support(lo, hi, self.required)
        else:
            active = np.zeros(lo.shape, dtype=bool)
        return passive | active, passive


@dataclass
class _PreparedCandidates:
    """The admissible candidate grid of one context, as bound arrays."""

    lo: np.ndarray
    hi: np.ndarray
    passive: np.ndarray
    blocked: np.ndarray  # conservative-mode gate: score forced to -inf
    table: _AdmissibilityTable

    def __len__(self) -> int:
        return int(self.lo.shape[0])

    def interval(self, index: int) -> Interval:
        return Interval(float(self.lo[index]), float(self.hi[index]))


def _evaluate_admissibility_group(
    staged: list[tuple[AttackContext, np.ndarray, np.ndarray, _AdmissibilityTable]],
    members: list[int],
    count: int,
    admissible_out: list[np.ndarray | None],
    passive_out: list[np.ndarray | None],
) -> None:
    """One :meth:`_AdmissibilityTable.evaluate` sweep for many contexts.

    ``members`` index into ``staged`` and share a transmitted-prefix length
    ``count``, so their candidate grids concatenate into one flat bound
    array and the per-context scalars (Δ bounds, required support, active
    availability) broadcast per candidate.  Every comparison runs on the
    same float values as the per-context calls — element-wise, in the same
    expressions — so the masks written back are bit-identical to looping
    ``table.evaluate(lo, hi)`` per context.
    """
    tables = [staged[i][3] for i in members]
    counts = np.asarray([staged[i][1].shape[0] for i in members])
    lo = np.concatenate([staged[i][1] for i in members])
    hi = np.concatenate([staged[i][2] for i in members])
    ctx_idx = np.repeat(np.arange(len(members)), counts)
    delta_lo = np.asarray([t.delta_lo for t in tables])[ctx_idx]
    delta_hi = np.asarray([t.delta_hi for t in tables])[ctx_idx]
    covers_protected = np.ones(lo.shape, dtype=bool)
    max_protected = max(len(t.protected) for t in tables)
    if max_protected:
        protected = np.zeros((len(tables), max_protected))
        real = np.zeros((len(tables), max_protected), dtype=bool)
        for row, t in enumerate(tables):
            protected[row, : len(t.protected)] = t.protected
            real[row, : len(t.protected)] = True
        spread = protected[ctx_idx]
        inside = (lo[:, None] <= spread) & (spread <= hi[:, None])
        covers_protected = (inside | ~real[ctx_idx]).all(axis=1)
    passive = (lo <= delta_lo) & (delta_hi <= hi) & covers_protected
    available = np.asarray([t.available for t in tables], dtype=bool)[ctx_idx]
    required = np.asarray([t.required for t in tables], dtype=np.int64)[ctx_idx]
    if count == 0:
        has_support = required <= 0
    else:
        t_lo = np.stack([t.transmitted_lo for t in tables])[ctx_idx]
        t_hi = np.stack([t.transmitted_hi for t in tables])[ctx_idx]
        lo_col = lo[:, None]
        hi_col = hi[:, None]
        points = np.empty((lo.shape[0], 2 * count + 1))
        points[:, 0] = lo
        points[:, 1 : count + 1] = np.minimum(np.maximum(t_lo, lo_col), hi_col)
        points[:, count + 1 :] = np.minimum(np.maximum(t_hi, lo_col), hi_col)
        coverage = np.zeros(points.shape, dtype=np.int64)
        for j in range(count):
            coverage += (t_lo[:, j : j + 1] <= points) & (points <= t_hi[:, j : j + 1])
        has_support = (required <= 0) | (coverage >= required[:, None]).any(axis=1)
    active = available & covers_protected & has_support
    admissible = passive | active
    offset = 0
    for i, rows in zip(members, counts):
        admissible_out[i] = admissible[offset : offset + rows]
        passive_out[i] = passive[offset : offset + rows]
        offset += rows


@dataclass
class VectorizedExpectationPolicy(ExpectationPolicy):
    """Expectation policy with tensor-op candidate scoring (same decisions).

    The decision procedure — candidate enumeration, admissibility and
    conservative-mode rules, tie tolerance and tie-breaking — matches
    :class:`~repro.attack.expectation.ExpectationPolicy` exactly; only its
    inner loops are replaced:

    * stealth admissibility is evaluated for all candidates at once against
      a once-per-context coverage profile (:class:`_AdmissibilityTable`);
    * all ``(candidate, scenario)`` fusion problems are solved by one batched
      endpoint sweep instead of one scalar sweep each;
    * per-scenario widths are bit-identical to the scalar sweep's, and the
      per-candidate mean adds them in the scalar enumeration order, so every
      score (and hence every decision) matches the parent class exactly.

    Rounds with compromised sensors still to transmit (``fa >= 2`` lookahead)
    advance all (candidate, scenario) play-outs in lockstep, deciding every
    future compromised slot's sub-contexts through one batched sweep (see
    :func:`_score_recursive_multi`).
    """

    _mode_memo: dict[tuple, tuple] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Candidate preparation (vectorized candidate_intervals)
    # ------------------------------------------------------------------
    def _prepare_candidates(self, context: AttackContext) -> _PreparedCandidates:
        """Admissible candidates as arrays; same values/order as the scalar path."""
        lo, hi = _dedup_candidate_bounds(context, self.grid_positions)
        table = _AdmissibilityTable(context)
        admissible, passive = table.evaluate(lo, hi)
        return self._finalize_candidates(context, lo, hi, table, admissible, passive)

    def _prepare_candidates_many(
        self, contexts: list[AttackContext]
    ) -> list[_PreparedCandidates]:
        """Per-context candidate grids with one admissibility sweep per prefix length.

        Candidate enumeration and dedup stay per context (their Python
        iteration order is bit-significant), but the admissibility masks —
        the dominant cost of ``fa >= 2`` slots, where every row misses the
        memo — are evaluated for all contexts sharing a transmitted-prefix
        length at once (:func:`_evaluate_admissibility_group`).  Returns
        exactly ``[self._prepare_candidates(ctx) for ctx in contexts]``,
        grids and masks bit for bit.
        """
        if len(contexts) <= 1:
            return [self._prepare_candidates(ctx) for ctx in contexts]
        staged = []
        for ctx in contexts:
            lo, hi = _dedup_candidate_bounds(ctx, self.grid_positions)
            staged.append((ctx, lo, hi, _AdmissibilityTable(ctx)))
        admissible: list[np.ndarray | None] = [None] * len(staged)
        passive: list[np.ndarray | None] = [None] * len(staged)
        groups: dict[int, list[int]] = {}
        for i, (_ctx, _lo, _hi, table) in enumerate(staged):
            groups.setdefault(int(table.transmitted_lo.shape[0]), []).append(i)
        for count, members in groups.items():
            # Chunk each group so the flat candidate matrices stay bounded
            # (same cap as the fusion sweeps; per-chunk results are the
            # same element-wise comparisons, so chunking changes nothing).
            start = 0
            while start < len(members):
                stop = start
                rows = 0
                while stop < len(members) and (
                    stop == start or rows + staged[members[stop]][1].shape[0] <= _FUSE_CHUNK_ROWS
                ):
                    rows += staged[members[stop]][1].shape[0]
                    stop += 1
                _evaluate_admissibility_group(
                    staged, members[start:stop], count, admissible, passive
                )
                start = stop
        return [
            self._finalize_candidates(ctx, lo, hi, table, admissible[i], passive[i])
            for i, (ctx, lo, hi, table) in enumerate(staged)
        ]

    def _finalize_candidates(
        self,
        context: AttackContext,
        lo: np.ndarray,
        hi: np.ndarray,
        table: _AdmissibilityTable,
        admissible: np.ndarray,
        passive: np.ndarray,
    ) -> _PreparedCandidates:
        """Fallback ladder + conservative gate over evaluated masks."""
        if not bool(admissible.any()):
            # Same fallback ladder as candidate_intervals: a Δ-centred
            # placement if admissible, else the truthful reading.
            centre_lo = np.asarray([context.delta.center - context.width / 2.0])
            centre_hi = centre_lo + context.width
            centre_ok, centre_passive = table.evaluate(centre_lo, centre_hi)
            if bool(centre_ok[0]):
                lo, hi, passive = centre_lo, centre_hi, centre_passive
            else:
                lo = np.asarray([context.own_reading.lo])
                hi = np.asarray([context.own_reading.hi])
                passive = np.ones(1, dtype=bool)
        else:
            lo = lo[admissible]
            hi = hi[admissible]
            passive = passive[admissible]
        if self.conservative and len(lo) > 1:
            blocked = ~passive & ~table.has_support(lo, hi, context.n - context.f - 1)
        else:
            blocked = np.zeros(lo.shape, dtype=bool)
        return _PreparedCandidates(lo=lo, hi=hi, passive=passive, blocked=blocked, table=table)

    # ------------------------------------------------------------------
    # Decision procedure (overrides the scalar scoring loop)
    # ------------------------------------------------------------------
    def _decide(self, context: AttackContext, rng: np.random.Generator | None = None) -> Interval:
        if _trivially_truthful(context):
            return context.own_reading
        prepared = self._prepare_candidates(context)
        if len(prepared) == 1:
            return prepared.interval(0)
        if any(context.remaining_compromised):
            scores = _score_recursive_multi(self, [(prepared, context)])[0]
            return self._select_prepared(prepared, scores, rng)
        combo_lo, combo_hi, scenarios = self._assemble_combos(prepared, context)
        fusion = coverage_extremes(combo_lo, combo_hi, context.n - context.f)
        widths = (fusion.hi - fusion.lo).reshape(len(prepared), scenarios)
        valid = fusion.valid.reshape(len(prepared), scenarios)
        scores = self._scores_from_widths(prepared, widths, valid)
        return self._select_prepared(prepared, scores, rng)

    def _select_prepared(
        self,
        prepared: _PreparedCandidates,
        scores: list[float],
        rng: np.random.Generator | None,
    ) -> Interval:
        """Array-backed version of ``_select`` (same tie semantics)."""
        best_score = max(scores)
        ties = [index for index, score in enumerate(scores) if score >= best_score - TIE_TOLERANCE]
        if self.tie_break == "random" and rng is not None and len(ties) > 1:
            return prepared.interval(ties[int(rng.integers(0, len(ties)))])
        return prepared.interval(ties[0])

    # ------------------------------------------------------------------
    # Tensor assembly
    # ------------------------------------------------------------------
    def _scenario_bounds(self, context: AttackContext) -> tuple[np.ndarray, np.ndarray]:
        """``(S, m)`` bounds of the future *correct* sensors per scenario.

        The rows reproduce
        :meth:`~repro.attack.expectation.ExpectationPolicy._future_scenarios`
        exactly — true value outermost, the last remaining correct sensor's
        placement varying fastest, future compromised sensors contributing no
        columns (their placements are decided recursively, not enumerated) —
        sharing its ``_linspace`` grids so the bounds are the same floats.
        """
        region = self._feasible_true_region(context)
        correct_widths = context.unseen_correct_widths
        widths = np.asarray(correct_widths, dtype=np.float64)
        if not correct_widths:
            true_values = _linspace(region.lo, region.hi, self.true_value_positions)
            empty = np.empty((len(true_values), 0))
            return empty, empty
        sensors = len(correct_widths)
        true_values = _linspace(region.lo, region.hi, self.true_value_positions)
        if sensors == 1:
            width = correct_widths[0]
            flat: list[float] = []
            for true_value in true_values:
                flat.extend(_linspace(true_value - width, true_value, self.placement_positions))
            scenario_lo = np.asarray(flat)[:, None]
            return scenario_lo, scenario_lo + widths
        # _linspace returns a single midpoint for count <= 1, so the
        # per-sensor grid length is not simply placement_positions.
        grid_len = len(_linspace(0.0, 1.0, self.placement_positions))
        per_true = grid_len**sensors
        scenario_lo = np.empty((len(true_values) * per_true, sensors))
        grid_cache: dict[tuple[float, float], np.ndarray] = {}
        for block, true_value in enumerate(true_values):
            base = block * per_true
            inner = per_true
            for column, width in enumerate(correct_widths):
                key = (true_value - width, true_value)
                grid = grid_cache.get(key)
                if grid is None:
                    grid = np.asarray(_linspace(key[0], key[1], self.placement_positions))
                    grid_cache[key] = grid
                # Cartesian product in the scalar recursion order: earlier
                # sensors vary slower, the last sensor fastest.
                inner //= grid_len
                outer = per_true // (inner * grid_len)
                scenario_lo[base : base + per_true, column] = np.tile(
                    np.repeat(grid, inner), outer
                )
        return scenario_lo, scenario_lo + widths

    def _assemble_combos(
        self, prepared: _PreparedCandidates, context: AttackContext
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Stack every (candidate, scenario) round into a ``(C·S, n)`` matrix.

        Each row lists the intervals in the scalar play-out order —
        transmitted prefix, then the candidate, then the scenario's future
        sensors in slot order — so the batched sweep performs the same
        comparisons as the scalar one and stays bit-identical.
        """
        prefix = context.n_transmitted
        if context.remaining_widths:
            scenario_lo, scenario_hi = self._scenario_bounds(context)
        else:
            scenario_lo = np.empty((1, 0))
            scenario_hi = np.empty((1, 0))
        scenarios = scenario_lo.shape[0]
        count = len(prepared)
        n = context.n
        lo = np.empty((count, scenarios, n))
        hi = np.empty((count, scenarios, n))
        if prefix:
            lo[:, :, :prefix] = [interval.lo for interval in context.transmitted]
            hi[:, :, :prefix] = [interval.hi for interval in context.transmitted]
        lo[:, :, prefix] = prepared.lo[:, None]
        hi[:, :, prefix] = prepared.hi[:, None]
        lo[:, :, prefix + 1 :] = scenario_lo[None, :, :]
        hi[:, :, prefix + 1 :] = scenario_hi[None, :, :]
        return lo.reshape(count * scenarios, n), hi.reshape(count * scenarios, n), scenarios

    def _scores_from_widths(
        self,
        prepared: _PreparedCandidates,
        widths: np.ndarray,
        valid: np.ndarray,
    ) -> list[float]:
        """Candidate scores from the per-scenario fusion-width matrix.

        Mirrors the scalar ``_expected_final_width`` term for term: the
        conservative-mode gate (already folded into ``prepared.blocked``),
        then a *sequential* accumulation over scenarios (an ``np.sum`` would
        pairwise-reduce and drift from the scalar total in the last bits,
        which could flip a tie).
        """
        # np.cumsum adds left to right (unlike np.sum's pairwise reduction),
        # and skipped scenarios contribute an exact +0.0, so the final column
        # equals the scalar running total bit for bit.
        totals = np.cumsum(np.where(valid, widths, 0.0), axis=1)[:, -1]
        counts = valid.sum(axis=1)
        scores = np.where(
            (counts > 0) & ~prepared.blocked, totals / np.maximum(counts, 1), -np.inf
        )
        return scores.tolist()

    # ------------------------------------------------------------------
    # fa >= 2: lookahead over future compromised sensors
    # ------------------------------------------------------------------
    def _decision_admissibility(
        self, decision: Interval, sub_context: AttackContext
    ) -> tuple[AttackerMode | None, float | None]:
        """Mode and support of a (memoised) sub-decision, memoised alongside it.

        The scalar play-out re-runs :func:`check_admissible` on every cache
        hit; the result only depends on the decision and the key fields of
        the context (``own_reading`` is not consulted), so it can share the
        decision's memoisation granularity.
        """
        key = self._memo_key(sub_context)
        cached = self._mode_memo.get(key)
        if cached is None:
            admissibility = check_admissible(decision, sub_context)
            cached = (admissibility.mode, admissibility.support)
            self._mode_memo[key] = cached
        return cached

    # The multi-context lockstep play-out lives in :func:`_score_recursive_multi`.


def _trivially_truthful(context: AttackContext) -> bool:
    """Contexts whose only admissible placement is the truthful reading.

    While active mode is out of reach and no protection obligations exist,
    every admissible placement must contain ``Δ``; when the attacked width
    equals ``Δ`` exactly (``Δ = own reading`` — every ``fa = 1`` slot before
    the active-mode threshold, e.g. the Ascending schedule's first slot, and
    every lookahead sub-decision before the threshold), the only such
    interval at that width is ``Δ`` itself, so the scalar candidate
    enumeration collapses to the truthful reading and the whole grid
    evaluation can be skipped.
    """
    delta = context.delta
    width = context.width
    return (
        not context.protected_points
        and delta.lo == context.own_reading.lo
        and delta.hi == context.own_reading.hi
        # Exact float collapses: every passive extreme / aligned / grid
        # candidate that contains Δ reproduces Δ's bounds bit for bit, so the
        # scalar dedup folds them all into the truthful reading (C = 1).
        # Generic width mismatches (lookahead sub-decisions for a wider or
        # narrower slot) fail these checks and take the full enumeration.
        and delta.hi - width == delta.lo
        and delta.lo + width == delta.hi
        and delta.center - width / 2.0 == delta.lo
        and delta.center + width / 2.0 == delta.hi
        and not active_mode_available(context)
    )


def _score_recursive_multi(
    policy: VectorizedExpectationPolicy,
    items: list[tuple[_PreparedCandidates, AttackContext]],
) -> list[list[float]]:
    """Lockstep scoring of contexts whose lookahead contains compromised slots.

    The scalar policy plays every (candidate, scenario) combination out one
    by one, recursing at each future compromised slot.  All ``items`` share
    the same ``remaining_compromised`` pattern, so their play-outs advance in
    *lockstep* instead: at every future compromised position the sub-contexts
    of all combinations — across every item — are deduplicated (combinations
    with the same candidate and correct placements so far share a sub-context
    verbatim) and decided together through :func:`_decide_batch`, and the
    final fusions of all combinations are solved by one batched sweep at the
    end.  Memo-key collisions cannot cross positions (the transmitted prefix
    length is part of the key) and within a position the group order equals
    the scalar item-major, candidate-major, scenario-minor order, so the memo
    fills exactly like the scalar loop.

    Returns one score list per item (``-inf`` for conservative-blocked
    candidates, like the scalar ``_expected_final_width`` gates).
    """
    results: list[list[float]] = [[-np.inf] * len(prepared) for prepared, _context in items]
    active_items: list[tuple[int, _PreparedCandidates, AttackContext, list[int]]] = []
    for item, (prepared, context) in enumerate(items):
        unblocked = [index for index in range(len(prepared)) if not prepared.blocked[index]]
        if unblocked:
            active_items.append((item, prepared, context, unblocked))
    if not active_items:
        return results

    # Per-item scenario grids and candidate-seeded protection obligations
    # (the scalar _expected_final_width's `protected` bookkeeping).
    scenario_grids: dict[int, tuple[np.ndarray, np.ndarray, list[list[Interval]]]] = {}
    seeds: dict[tuple[int, int], tuple[float, ...]] = {}
    combos: list[tuple[int, int, int]] = []  # (item, candidate index, scenario)
    scenarios = None
    candidate_intervals_of: dict[tuple[int, int], Interval] = {}
    for item, prepared, context, unblocked in active_items:
        required = required_support(context)
        for index in unblocked:
            candidate_intervals_of[(item, index)] = prepared.interval(index)
            if prepared.passive[index]:
                seeds[(item, index)] = context.protected_points
            else:
                support = _support_value(
                    prepared.table.profile,
                    float(prepared.lo[index]),
                    float(prepared.hi[index]),
                    required,
                )
                assert support is not None  # active admissibility guarantees it
                seeds[(item, index)] = context.protected_points + (support,)
        scenario_lo, scenario_hi = policy._scenario_bounds(context)
        scenarios = scenario_lo.shape[0]  # identical across items (same pattern)
        scenario_intervals = [
            [
                Interval(float(scenario_lo[scenario, column]), float(scenario_hi[scenario, column]))
                for column in range(scenario_lo.shape[1])
            ]
            for scenario in range(scenarios)
        ]
        scenario_grids[item] = (scenario_lo, scenario_hi, scenario_intervals)
        combos.extend(
            (item, index, scenario) for index in unblocked for scenario in range(scenarios)
        )

    context_of = {item: context for item, _prepared, context, _unblocked in active_items}
    remaining_pattern = active_items[0][2].remaining_compromised
    transmitted: list[list[Interval]] = [
        list(context_of[item].transmitted) + [candidate_intervals_of[(item, index)]]
        for item, index, _scenario in combos
    ]
    protected: list[tuple[float, ...]] = [
        seeds[(item, index)] for item, index, _scenario in combos
    ]

    correct_seen = 0
    for position, compromised in enumerate(remaining_pattern):
        if not compromised:
            column = correct_seen
            correct_seen += 1
            for combo, (item, _index, scenario) in enumerate(combos):
                transmitted[combo].append(scenario_grids[item][2][scenario][column])
            continue
        # Combinations whose item, candidate and correct placements so far
        # coincide share their sub-context (and hence their sub-decision)
        # verbatim; build it once per group, in first-occurrence order so the
        # memo fills like the scalar play-out.
        group_members: dict[tuple, list[int]] = {}
        group_order: list[tuple] = []
        for combo, (item, index, scenario) in enumerate(combos):
            if correct_seen:
                group_key = (
                    item,
                    index,
                    scenario_grids[item][0][scenario, :correct_seen].tobytes(),
                )
            else:
                # No correct placements seen yet: the candidate alone
                # identifies the group.
                group_key = (item, index)
            members = group_members.get(group_key)
            if members is None:
                group_members[group_key] = [combo]
                group_order.append(group_key)
            else:
                members.append(combo)
        sub_contexts = []
        for group_key in group_order:
            item = group_key[0]
            context = context_of[item]
            representative = group_members[group_key][0]
            tail_widths = context.remaining_widths[position + 1 :]
            tail_compromised = context.remaining_compromised[position + 1 :]
            sub_contexts.append(
                AttackContext(
                    n=context.n,
                    f=context.f,
                    slot_index=context.slot_index + 1 + position,
                    sensor_index=-1,
                    width=context.remaining_widths[position],
                    own_reading=policy._own_reading_guess(context),
                    delta=context.delta,
                    transmitted=tuple(transmitted[representative]),
                    transmitted_compromised=tuple(context.transmitted_compromised)
                    + (True,)
                    + remaining_pattern[:position],
                    remaining_widths=tail_widths,
                    remaining_compromised=tail_compromised,
                    protected_points=protected[representative],
                )
            )
        decisions = _decide_batch(policy, sub_contexts)
        for group_key, sub_context, decision in zip(group_order, sub_contexts, decisions):
            mode, support = policy._decision_admissibility(decision, sub_context)
            active = mode is AttackerMode.ACTIVE and support is not None
            for combo in group_members[group_key]:
                if active:
                    protected[combo] = protected[combo] + (support,)
                transmitted[combo].append(decision)

    n_minus_f = active_items[0][2].n - active_items[0][2].f
    total = len(transmitted)
    flat_widths = np.empty(total)
    flat_valid = np.empty(total, dtype=bool)
    for start in range(0, total, _FUSE_CHUNK_ROWS):
        stop = min(start + _FUSE_CHUNK_ROWS, total)
        fusion = coverage_extremes(
            np.asarray([[s.lo for s in transmitted[row]] for row in range(start, stop)]),
            np.asarray([[s.hi for s in transmitted[row]] for row in range(start, stop)]),
            n_minus_f,
        )
        flat_widths[start:stop] = fusion.hi - fusion.lo
        flat_valid[start:stop] = fusion.valid
    widths = flat_widths.reshape(-1, scenarios)
    valid = flat_valid.reshape(-1, scenarios)
    totals = np.cumsum(np.where(valid, widths, 0.0), axis=1)[:, -1]
    counts = valid.sum(axis=1)
    packed = np.where(counts > 0, totals / np.maximum(counts, 1), -np.inf).tolist()
    block = 0
    for item, _prepared, _context, unblocked in active_items:
        for index in unblocked:
            results[item][index] = packed[block]
            block += 1
    return results


def _store_decision(
    policy: VectorizedExpectationPolicy,
    key: tuple,
    prepared: _PreparedCandidates,
    selected: int,
) -> Interval:
    """Cache a computed decision together with its stealth mode and support.

    The mode/support pair equals what :func:`check_admissible` would report
    for the decision in this context (passive is tried first; the active
    support point comes from the same coverage profile and selection rule),
    so lookahead consumers can skip the scalar admissibility sweep on every
    play-out.  The scalar fallback case whose only "candidate" is an
    inadmissible truthful reading is labelled passive here; consumers only
    test for active mode, for which both labels behave identically.
    """
    decision = prepared.interval(selected)
    policy._cache[key] = decision
    if prepared.passive[selected]:
        policy._mode_memo[key] = (AttackerMode.PASSIVE, None)
    else:
        table = prepared.table
        policy._mode_memo[key] = (
            AttackerMode.ACTIVE,
            _support_value(
                table.profile,
                float(prepared.lo[selected]),
                float(prepared.hi[selected]),
                table.required,
            ),
        )
    return decision


def _selected_index(scores: list[float]) -> int:
    """First candidate within tie tolerance of the best score (``ties[0]``)."""
    best_score = max(scores)
    for index, score in enumerate(scores):
        if score >= best_score - TIE_TOLERANCE:
            return index
    raise AssertionError("unreachable: best score is always within tolerance of itself")


def _decide_batch(
    policy: VectorizedExpectationPolicy, contexts: list[AttackContext]
) -> list[Interval]:
    """Decide a batch of attack contexts, fusing their candidate grids together.

    Contexts are visited in order so memo-key collisions resolve
    first-computed-wins, exactly like the scalar round-major loop.  Contexts
    that miss the memo and have no future compromised sensors are scored
    together: their (candidate × scenario) grids are concatenated into a
    single bound matrix and solved by one batched endpoint sweep.  Contexts
    with future compromised sensors recurse through the policy's lockstep
    play-out (which calls back into this function one level deeper).

    Shared by :class:`ExactExpectationBatchAttacker` (one call per schedule
    slot) and :func:`_score_recursive_multi` (one call per future compromised
    position).
    """
    decisions: list[Interval | None] = [None] * len(contexts)
    pending: list[tuple[int, tuple, _PreparedCandidates, AttackContext]] = []
    recursive: list[tuple[int, tuple, _PreparedCandidates, AttackContext]] = []
    pending_keys: set[tuple] = set()
    deferred: list[tuple[int, tuple]] = []
    staged: list[tuple[int, tuple, AttackContext]] = []
    for index, ctx in enumerate(contexts):
        key = policy._memo_key(ctx)
        cached = policy._cache.get(key)
        if cached is not None:
            policy.record_hit()
            decisions[index] = cached
            continue
        if key in pending_keys:
            # A same-key context earlier in this batch is already being
            # computed; reuse its (forthcoming) decision like the scalar
            # loop would reuse its cache entry.
            policy.record_hit()
            deferred.append((index, key))
            continue
        if _trivially_truthful(ctx):
            policy.record_miss()
            decision = ctx.own_reading
            policy._cache[key] = decision
            policy._mode_memo[key] = (AttackerMode.PASSIVE, None)
            decisions[index] = decision
            continue
        staged.append((index, key, ctx))
        pending_keys.add(key)

    # Every memo-missing context gets its candidate grid from one batched
    # admissibility sweep — the per-row preparation used to dominate the
    # fa >= 2 slots, where each row's context is distinct.  Single-candidate
    # grids resolve on the spot; same-key followers land in ``deferred`` and
    # read the stored decision at the end, exactly as a cache hit would.
    prepared_grids = policy._prepare_candidates_many([ctx for _index, _key, ctx in staged])
    for (index, key, ctx), prepared in zip(staged, prepared_grids):
        if len(prepared) == 1:
            policy.record_miss()
            decisions[index] = _store_decision(policy, key, prepared, 0)
        elif any(ctx.remaining_compromised):
            recursive.append((index, key, prepared, ctx))
        else:
            pending.append((index, key, prepared, ctx))

    if recursive:
        # Lockstep the recursive contexts together, one group per
        # remaining-slot pattern (identical for deterministic schedules;
        # RandomSchedule rows can genuinely differ).
        pattern_groups: dict[tuple, list[tuple[int, tuple, _PreparedCandidates, AttackContext]]] = {}
        pattern_order: list[tuple] = []
        for entry in recursive:
            pattern = entry[3].remaining_compromised
            group = pattern_groups.get(pattern)
            if group is None:
                pattern_groups[pattern] = [entry]
                pattern_order.append(pattern)
            else:
                group.append(entry)
        for pattern in pattern_order:
            group = pattern_groups[pattern]
            score_lists = _score_recursive_multi(
                policy, [(prepared, ctx) for _index, _key, prepared, ctx in group]
            )
            for (index, key, prepared, _ctx), scores in zip(group, score_lists):
                policy.record_miss()
                decisions[index] = _store_decision(
                    policy, key, prepared, _selected_index(scores)
                )

    if pending:
        n_minus_f = contexts[0].n - contexts[0].f
        chunk: list[tuple[int, tuple, _PreparedCandidates, int, np.ndarray, np.ndarray]] = []
        chunk_rows = 0

        def _flush_chunk() -> None:
            nonlocal chunk, chunk_rows
            if not chunk:
                return
            fusion = coverage_extremes(
                np.concatenate([entry[4] for entry in chunk]),
                np.concatenate([entry[5] for entry in chunk]),
                n_minus_f,
            )
            all_widths = fusion.hi - fusion.lo
            all_valid = fusion.valid
            offset = 0
            for index, key, prepared, scenarios, combo_lo, _combo_hi in chunk:
                rows = combo_lo.shape[0]
                widths = all_widths[offset : offset + rows].reshape(len(prepared), scenarios)
                valid = all_valid[offset : offset + rows].reshape(len(prepared), scenarios)
                offset += rows
                scores = policy._scores_from_widths(prepared, widths, valid)
                policy.record_miss()
                decisions[index] = _store_decision(
                    policy, key, prepared, _selected_index(scores)
                )
            chunk = []
            chunk_rows = 0

        for index, key, prepared, ctx in pending:
            combo_lo, combo_hi, scenarios = policy._assemble_combos(prepared, ctx)
            chunk.append((index, key, prepared, scenarios, combo_lo, combo_hi))
            chunk_rows += combo_lo.shape[0]
            if chunk_rows >= _FUSE_CHUNK_ROWS:
                _flush_chunk()
        _flush_chunk()

    for index, key in deferred:
        decisions[index] = policy._cache[key]
    assert all(decision is not None for decision in decisions)
    return decisions


@dataclass
class ExactExpectationBatchAttacker(BatchAttacker):
    """Batched driver for the exact expectation attacker of problem (2).

    At every schedule slot the attacker reconstructs each compromised row's
    :class:`~repro.attack.context.AttackContext` from the batch arrays,
    answers repeated contexts from the shared memo table (one decision per
    unique ``cache_key`` per batch, honouring the scalar first-computed-wins
    semantics when keys collide across rows), and scores all remaining rows'
    candidate grids in **one** batched endpoint sweep.

    Parameters mirror :class:`~repro.attack.expectation.ExpectationPolicy`;
    tie-breaking is fixed to the deterministic ``"first"`` rule so the
    attacker consumes no randomness and stays round-for-round identical to
    the scalar oracle driven by the scalar engine (see the module docstring
    for the equivalence contract).
    """

    true_value_positions: int = 3
    placement_positions: int = 3
    grid_positions: int = 9
    conservative: bool = False
    _policy: VectorizedExpectationPolicy = field(init=False, repr=False)
    _protected: list[tuple[float, ...]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self._policy = VectorizedExpectationPolicy(
            true_value_positions=self.true_value_positions,
            placement_positions=self.placement_positions,
            grid_positions=self.grid_positions,
            conservative=self.conservative,
            tie_break="first",
        )

    @property
    def policy(self) -> VectorizedExpectationPolicy:
        """The underlying policy (shared memo table, cache hit/miss counters)."""
        return self._policy

    def reset(self, batch: int) -> None:
        """Clear per-round protection obligations; the memo persists (its
        entries are deterministic functions of the context, like the scalar
        policy's cache surviving ``reset`` across rounds)."""
        self._protected = [() for _ in range(batch)]

    # ------------------------------------------------------------------
    # BatchAttacker interface
    # ------------------------------------------------------------------
    def forge(
        self, context: BatchSlotContext, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        if context.remaining_widths is None or context.transmitted_compromised is None:
            raise ScheduleError(
                "ExactExpectationBatchAttacker needs the lookahead fields of "
                "BatchSlotContext (remaining_widths / remaining_compromised / "
                "transmitted_compromised); drive it through repro.batch.rounds.batch_rounds"
            )
        if len(self._protected) != context.rows.shape[0]:
            self.reset(context.rows.shape[0])
        lo = context.own_lo.copy()
        hi = context.own_hi.copy()
        row_indices = [int(i) for i in np.flatnonzero(context.rows)]
        contexts = [self._row_context(context, i) for i in row_indices]
        decisions = _decide_batch(self._policy, contexts)
        for row, ctx, decision in zip(row_indices, contexts, decisions):
            if any(ctx.remaining_compromised):
                # Protection obligations only constrain *later* compromised
                # slots of the same round; skip the admissibility lookup when
                # there are none, like run_round's bookkeeping going unused.
                mode, support = self._policy._decision_admissibility(decision, ctx)
                if mode is AttackerMode.ACTIVE and support is not None:
                    self._protected[row] = self._protected[row] + (support,)
            lo[row] = decision.lo
            hi[row] = decision.hi
        return lo, hi

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _row_context(self, context: BatchSlotContext, row: int) -> AttackContext:
        """One row's scalar attack context, rebuilt from the batch arrays."""
        return AttackContext(
            n=context.n,
            f=context.f,
            slot_index=context.slot,
            sensor_index=int(context.sensor[row]),
            width=float(context.width[row]),
            own_reading=Interval(float(context.own_lo[row]), float(context.own_hi[row])),
            delta=Interval(float(context.delta_lo[row]), float(context.delta_hi[row])),
            transmitted=tuple(
                Interval(float(a), float(b))
                for a, b in zip(context.transmitted_lo[row], context.transmitted_hi[row])
            ),
            transmitted_compromised=tuple(
                bool(flag) for flag in context.transmitted_compromised[row]
            ),
            remaining_widths=tuple(float(w) for w in context.remaining_widths[row]),
            remaining_compromised=tuple(
                bool(flag) for flag in context.remaining_compromised[row]
            ),
            protected_points=self._protected[row],
        )


def _candidate_parity_check(context: AttackContext, grid_positions: int = 9) -> bool:
    """Test hook: the array candidate enumeration equals the scalar one."""
    policy = VectorizedExpectationPolicy(grid_positions=grid_positions, tie_break="first")
    prepared = policy._prepare_candidates(context)
    scalar = candidate_intervals(context, grid_positions)
    return [(s.lo, s.hi) for s in scalar] == list(zip(prepared.lo.tolist(), prepared.hi.tolist()))
