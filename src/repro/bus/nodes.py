"""Nodes attached to the shared bus: sensors, the attacker and the controller.

The node layer turns the abstract round simulation of
:mod:`repro.scheduling.round` into an explicit message-passing system, which
is what the vehicle case study and the integration tests exercise:

* :class:`SensorNode` — measures the true value and broadcasts the correct
  interval in its slot;
* :class:`AttackerNode` — owns one or more compromised sensors, eavesdrops on
  the bus (broadcast visibility) and, when a compromised sensor's slot comes
  up, forges that sensor's interval with an attack policy under the same
  stealth machinery as the fast simulator;
* :class:`ControllerNode` — collects the round's messages, runs Marzullo
  fusion with its configured ``f`` and the detection procedure.

A full round over the bus is orchestrated by :class:`BusRound`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.attack.context import AttackContext
from repro.attack.policy import AttackPolicy, TruthfulPolicy
from repro.attack.stealth import AttackerMode, check_admissible
from repro.bus.can import SharedBus
from repro.bus.message import BusMessage
from repro.core.detection import DetectionResult, detect
from repro.core.exceptions import BusError
from repro.core.fusion import FusionEngine
from repro.core.interval import Interval, intersect_all
from repro.sensors.sensor import Reading, Sensor
from repro.sensors.suite import SensorSuite
from repro.scheduling.schedule import Schedule

__all__ = ["SensorNode", "AttackerNode", "ControllerNode", "BusRound", "BusRoundResult"]


@dataclass
class SensorNode:
    """A correct sensor attached to the bus."""

    sensor: Sensor
    sensor_index: int

    def transmit(
        self, bus: SharedBus, slot: int, round_index: int, reading: Reading
    ) -> BusMessage:
        """Broadcast the correct interval for this round."""
        message = BusMessage(
            sender=self.sensor.name,
            sensor_index=self.sensor_index,
            slot=slot,
            round_index=round_index,
            interval=reading.interval,
        )
        bus.broadcast(message)
        return message


@dataclass
class AttackerNode:
    """The attacker: controls a set of compromised sensors and eavesdrops.

    Attributes
    ----------
    compromised_indices:
        Sensor indices under the attacker's control.
    policy:
        Attack policy deciding each forged interval.
    """

    compromised_indices: tuple[int, ...]
    policy: AttackPolicy = field(default_factory=TruthfulPolicy)
    _protected_points: tuple[float, ...] = field(default_factory=tuple, repr=False)
    _last_modes: dict[int, AttackerMode | None] = field(default_factory=dict, repr=False)

    def start_round(self) -> None:
        """Reset per-round state (protection obligations, policy caches)."""
        self._protected_points = ()
        self._last_modes = {}
        self.policy.reset()

    def set_compromised(self, indices: tuple[int, ...]) -> None:
        """Change which sensors the attacker controls (takes effect next round).

        The case study re-draws the attacked sensor between rounds when it is
        configured with a per-round random selection.
        """
        self.compromised_indices = tuple(sorted(set(indices)))

    @property
    def modes(self) -> dict[int, AttackerMode | None]:
        """Stealth mode used for each compromised sensor in the last round."""
        return dict(self._last_modes)

    def controls(self, sensor_index: int) -> bool:
        """Return ``True`` if the attacker controls ``sensor_index``."""
        return sensor_index in self.compromised_indices

    def delta(self, readings: Sequence[Reading]) -> Interval:
        """Intersection of the compromised sensors' correct readings (``Δ``)."""
        return intersect_all(readings[i].interval for i in self.compromised_indices)

    def forge(
        self,
        bus: SharedBus,
        slot: int,
        round_index: int,
        sensor_index: int,
        suite: SensorSuite,
        readings: Sequence[Reading],
        order: Sequence[int],
        f: int,
        rng: np.random.Generator,
    ) -> BusMessage:
        """Forge and broadcast the interval for one compromised slot."""
        if not self.controls(sensor_index):
            raise BusError(f"attacker does not control sensor index {sensor_index}")
        transmitted_messages = bus.messages(round_index)
        transmitted = tuple(m.interval for m in transmitted_messages)
        transmitted_compromised = tuple(
            self.controls(m.sensor_index) for m in transmitted_messages
        )
        remaining = list(order[slot + 1 :])
        widths = suite.widths
        context = AttackContext(
            n=len(suite),
            f=f,
            slot_index=slot,
            sensor_index=sensor_index,
            width=widths[sensor_index],
            own_reading=readings[sensor_index].interval,
            delta=self.delta(readings),
            transmitted=transmitted,
            transmitted_compromised=transmitted_compromised,
            remaining_widths=tuple(widths[i] for i in remaining),
            remaining_compromised=tuple(self.controls(i) for i in remaining),
            protected_points=self._protected_points,
        )
        forged = self.policy.choose_interval(context, rng)
        admissibility = check_admissible(forged, context)
        self._last_modes[sensor_index] = admissibility.mode if admissibility.admissible else None
        if admissibility.mode is AttackerMode.ACTIVE and admissibility.support is not None:
            self._protected_points = self._protected_points + (admissibility.support,)
        message = BusMessage(
            sender=suite[sensor_index].name,
            sensor_index=sensor_index,
            slot=slot,
            round_index=round_index,
            interval=forged,
        )
        bus.broadcast(message)
        return message


@dataclass
class ControllerNode:
    """The controller: fuses the round's intervals and runs detection."""

    engine: FusionEngine

    def process(self, bus: SharedBus, round_index: int) -> tuple[Interval, DetectionResult]:
        """Fuse the intervals of ``round_index`` and detect compromised ones."""
        messages = bus.messages(round_index)
        if len(messages) != self.engine.n_sensors:
            raise BusError(
                f"round {round_index} has {len(messages)} messages but the controller "
                f"expects {self.engine.n_sensors}"
            )
        intervals = [m.interval for m in messages]
        fusion = self.engine.fuse(intervals)
        return fusion, detect(intervals, fusion)


@dataclass(frozen=True)
class BusRoundResult:
    """Outcome of one message-level fusion round."""

    round_index: int
    order: tuple[int, ...]
    messages: tuple[BusMessage, ...]
    readings: tuple[Reading, ...]
    fusion: Interval
    detection: DetectionResult
    attacker_modes: dict[int, AttackerMode | None]

    @property
    def fusion_width(self) -> float:
        """Width of the controller's fusion interval."""
        return self.fusion.width

    @property
    def broadcast_by_sensor(self) -> dict[int, Interval]:
        """Broadcast interval of each sensor, keyed by sensor index."""
        return {m.sensor_index: m.interval for m in self.messages}


class BusRound:
    """Orchestrates one fusion round over the shared bus.

    Parameters
    ----------
    suite:
        The sensors attached to the controller.
    schedule:
        Communication schedule ordering the sensors.
    attacker:
        The attacker node (may control zero sensors).
    f:
        Controller fault bound; defaults to ``ceil(n/2) - 1``.
    """

    def __init__(
        self,
        suite: SensorSuite,
        schedule: Schedule,
        attacker: AttackerNode | None = None,
        f: int | None = None,
    ) -> None:
        self._suite = suite
        self._schedule = schedule
        self._attacker = attacker if attacker is not None else AttackerNode(compromised_indices=())
        self._controller = ControllerNode(FusionEngine(len(suite), f))
        self._sensor_nodes = [
            SensorNode(sensor=sensor, sensor_index=index) for index, sensor in enumerate(suite)
        ]
        self._round_index = -1

    @property
    def controller(self) -> ControllerNode:
        """The controller node (exposes the fusion engine configuration)."""
        return self._controller

    @property
    def attacker(self) -> AttackerNode:
        """The attacker node (its compromised set can be changed between rounds)."""
        return self._attacker

    def run(self, bus: SharedBus, true_value: float, rng: np.random.Generator) -> BusRoundResult:
        """Execute one complete round for the given ground-truth value."""
        self._round_index += 1
        round_index = bus.start_round(self._round_index)
        readings = self._suite.measure_all(true_value, rng)
        order = self._schedule.order(list(self._suite.widths), rng)
        self._attacker.start_round()

        messages: list[BusMessage] = []
        for slot, sensor_index in enumerate(order):
            if self._attacker.controls(sensor_index):
                message = self._attacker.forge(
                    bus,
                    slot,
                    round_index,
                    sensor_index,
                    self._suite,
                    readings,
                    order,
                    self._controller.engine.f,
                    rng,
                )
            else:
                message = self._sensor_nodes[sensor_index].transmit(
                    bus, slot, round_index, readings[sensor_index]
                )
            messages.append(message)

        fusion, detection = self._controller.process(bus, round_index)
        return BusRoundResult(
            round_index=round_index,
            order=order,
            messages=tuple(messages),
            readings=tuple(readings),
            fusion=fusion,
            detection=detection,
            attacker_modes=self._attacker.modes,
        )
