"""Shared-bus substrate: broadcast medium, messages and bus nodes."""

from repro.bus.can import SharedBus
from repro.bus.message import BusMessage
from repro.bus.nodes import AttackerNode, BusRound, BusRoundResult, ControllerNode, SensorNode

__all__ = [
    "SharedBus",
    "BusMessage",
    "SensorNode",
    "AttackerNode",
    "ControllerNode",
    "BusRound",
    "BusRoundResult",
]
