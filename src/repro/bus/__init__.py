"""Shared-bus substrate: broadcast medium, messages, bus nodes, lossy channel."""

from repro.bus.can import SharedBus
from repro.bus.lossy import LossyBus
from repro.bus.message import BusMessage
from repro.bus.nodes import AttackerNode, BusRound, BusRoundResult, ControllerNode, SensorNode

__all__ = [
    "SharedBus",
    "LossyBus",
    "BusMessage",
    "SensorNode",
    "AttackerNode",
    "ControllerNode",
    "BusRound",
    "BusRoundResult",
]
