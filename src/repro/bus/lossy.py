"""A channel-mediated view of the shared bus: loss, delay, retransmission.

:class:`LossyBus` replays one round of a
:class:`repro.channel.ChannelRealization` over a :class:`SharedBus` at the
message level.  The underlying bus stays the *physical medium* — every
transmission occupies its slot in the log, in order, exactly as the slot
discipline demands — while the lossy view decides which of those
transmissions are ever *delivered* to its subscribers:

* a **lost** transmission notifies nobody; if the channel's retransmission
  budget covers it (``received`` despite ``lost``), its retry is delivered
  when the round closes (retransmissions occupy tail slots, invisible to
  anyone acting inside the round);
* a **delayed** transmission is held back until its arrival slot — a
  subscriber (or attacker) acting in slot ``t`` has seen exactly the
  messages with ``arrival < t`` — and is dropped instead when it would land
  after the round's delivery window;
* everything else is delivered synchronously, exactly like the perfect bus.

The delivered/dropped accounting matches
:func:`repro.channel.realize_channel` bit for bit (``len(bus.dropped)``
equals the realization's per-round ``dropped`` counter), which is what the
bus-vs-engine integration tests pin.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro import obs
from repro.bus.can import SharedBus
from repro.bus.message import BusMessage
from repro.channel import ChannelRealization
from repro.core.exceptions import BusError

__all__ = ["LossyBus"]


class LossyBus:
    """One round of a lossy channel, replayed over a :class:`SharedBus`."""

    def __init__(
        self,
        realization: ChannelRealization,
        row: int = 0,
        bus: SharedBus | None = None,
    ) -> None:
        if not 0 <= row < realization.batch:
            raise BusError(
                f"realization has {realization.batch} round(s); cannot replay row {row}"
            )
        self.bus = bus if bus is not None else SharedBus()
        self._realization = realization
        self._row = row
        self._view = realization.row(row)
        self._subscribers: list[Callable[[BusMessage], None]] = []
        #: (arrival_slot, message) pairs in flight (delayed, not yet visible).
        self._pending: list[tuple[int, BusMessage]] = []
        self._delivered: list[BusMessage] = []
        self._dropped: list[BusMessage] = []
        self._retransmit_queue: list[BusMessage] = []
        self._closed = False

    # ------------------------------------------------------------------
    # Round protocol
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Scheduled transmissions per round (the realization's slot count)."""
        return self._view.lost.shape[0]

    def start_round(self, round_index: int | None = None) -> int:
        """Open the round on the physical bus with the known slot count."""
        return self.bus.start_round(round_index, expected_slots=self.n)

    def broadcast(self, message: BusMessage) -> None:
        """Transmit ``message``; the channel decides whether anyone hears it."""
        if self._closed:
            raise BusError("this LossyBus round is closed; build a new one per round")
        slot = message.slot
        if slot >= self.n:
            raise BusError(
                f"channel realization covers {self.n} slot(s); got slot {slot}"
            )
        # Messages delayed from earlier slots become visible the moment a
        # later slot transmits (visibility is `arrival < current slot`).
        self._flush(before_slot=slot)
        self.bus.broadcast(message)  # the physical slot is consumed either way
        if bool(self._view.lost[slot]):
            if bool(self._view.received[slot]):
                self._retransmit_queue.append(message)  # retry lands in a tail slot
            else:
                self._drop(message)
        elif bool(self._view.received[slot]):
            self._pending.append((int(self._view.arrival[slot]), message))
        else:
            self._drop(message)  # delayed past the round's delivery window

    def close_round(self) -> list[BusMessage]:
        """Deliver everything still in flight; returns the fusion-visible set.

        In-time delayed messages land, successful retransmissions are
        replayed from the tail slots, and the per-round telemetry counters
        (``repro_channel_dropped_total`` / ``repro_channel_retransmits_total``,
        labelled ``component="bus"``) are emitted exactly once.
        """
        if not self._closed:
            self._flush(before_slot=None)
            for message in self._retransmit_queue:
                self._deliver(message)
            self._retransmit_queue = []
            self._closed = True
            obs.add("repro_channel_dropped_total", len(self._dropped), component="bus")
            obs.add(
                "repro_channel_retransmits_total",
                int(self._realization.retransmits[self._row]),
                component="bus",
            )
        return list(self._delivered)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def subscribe(self, callback: Callable[[BusMessage], None]) -> None:
        """Register a callback invoked for every *delivered* message."""
        self._subscribers.append(callback)

    def _flush(self, before_slot: int | None) -> None:
        due = [
            (arrival, message)
            for arrival, message in self._pending
            if before_slot is None or arrival < before_slot
        ]
        self._pending = [
            entry for entry in self._pending if before_slot is not None and entry[0] >= before_slot
        ]
        # Deterministic delivery order: by arrival, original slot breaking ties.
        for _, message in sorted(due, key=lambda entry: (entry[0], entry[1].slot)):
            self._deliver(message)

    def _deliver(self, message: BusMessage) -> None:
        self._delivered.append(message)
        for subscriber in self._subscribers:
            subscriber(message)

    def _drop(self, message: BusMessage) -> None:
        self._dropped.append(message)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def delivered(self) -> list[BusMessage]:
        """Messages delivered so far, in delivery order."""
        return list(self._delivered)

    @property
    def dropped(self) -> list[BusMessage]:
        """Messages that will never reach a subscriber."""
        return list(self._dropped)

    def visible(self, slot: int) -> list[BusMessage]:
        """Messages a node acting in ``slot`` has heard (``arrival < slot``).

        The message-level counterpart of
        :meth:`repro.channel.ChannelRoundView.visible_at`; unlike
        :attr:`delivered` it never includes retransmissions (tail slots are
        after every in-round decision point).
        """
        heard = [
            message
            for message in self.bus.messages(self.bus.current_round)
            if message.slot < slot
            and not bool(self._view.lost[message.slot])
            and int(self._view.arrival[message.slot]) < slot
        ]
        return heard

    def __len__(self) -> int:
        return len(self._delivered)

    def __iter__(self) -> Iterable[BusMessage]:
        return iter(self._delivered)
