"""A minimal shared broadcast bus (CAN-style).

The only property of the physical CAN bus the paper relies on is *broadcast
visibility*: every node connected to the bus sees every message in the order
it was sent.  :class:`SharedBus` models exactly that — an append-only,
slot-ordered message log with subscriber notification — and enforces the
round/slot discipline (one message per slot, slots in increasing order within
a round) so that protocol violations in experiments surface as errors rather
than silently corrupting results.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.bus.message import BusMessage
from repro.core.exceptions import BusError

__all__ = ["SharedBus"]


class SharedBus:
    """An append-only broadcast medium with slot discipline."""

    def __init__(self) -> None:
        self._log: list[BusMessage] = []
        self._subscribers: list[Callable[[BusMessage], None]] = []
        self._current_round = 0
        self._next_slot = 0

    # ------------------------------------------------------------------
    # Round/slot discipline
    # ------------------------------------------------------------------
    @property
    def current_round(self) -> int:
        """Index of the round currently being transmitted."""
        return self._current_round

    @property
    def next_slot(self) -> int:
        """Slot the next broadcast must use."""
        return self._next_slot

    def start_round(self, round_index: int | None = None) -> int:
        """Begin a new round; returns its index."""
        if round_index is None:
            round_index = self._current_round + 1 if self._log else 0
        if self._log and round_index <= self._current_round and self._next_slot != 0:
            raise BusError(
                f"cannot start round {round_index}: round {self._current_round} is still open"
            )
        self._current_round = round_index
        self._next_slot = 0
        return round_index

    # ------------------------------------------------------------------
    # Broadcast
    # ------------------------------------------------------------------
    def broadcast(self, message: BusMessage) -> None:
        """Append ``message`` to the log and notify every subscriber."""
        if message.round_index != self._current_round:
            raise BusError(
                f"message for round {message.round_index} broadcast during round {self._current_round}"
            )
        if message.slot != self._next_slot:
            raise BusError(
                f"message uses slot {message.slot} but the next free slot is {self._next_slot}"
            )
        self._log.append(message)
        self._next_slot += 1
        for subscriber in self._subscribers:
            subscriber(message)

    def subscribe(self, callback: Callable[[BusMessage], None]) -> None:
        """Register a callback invoked synchronously for every broadcast."""
        self._subscribers.append(callback)

    # ------------------------------------------------------------------
    # Queries (what any node on the bus can see)
    # ------------------------------------------------------------------
    def messages(self, round_index: int | None = None) -> list[BusMessage]:
        """All messages, optionally filtered to one round, in broadcast order."""
        if round_index is None:
            return list(self._log)
        return [m for m in self._log if m.round_index == round_index]

    def messages_this_round(self) -> list[BusMessage]:
        """Messages already broadcast in the current round."""
        return self.messages(self._current_round)

    def senders(self, round_index: int | None = None) -> list[str]:
        """Sender names in broadcast order."""
        return [m.sender for m in self.messages(round_index)]

    def clear(self) -> None:
        """Erase the log (used between independent experiments)."""
        self._log.clear()
        self._current_round = 0
        self._next_slot = 0

    def __len__(self) -> int:
        return len(self._log)

    def __iter__(self) -> Iterable[BusMessage]:
        return iter(self._log)
