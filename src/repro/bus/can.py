"""A minimal shared broadcast bus (CAN-style).

The only property of the physical CAN bus the paper relies on is *broadcast
visibility*: every node connected to the bus sees every message in the order
it was sent.  :class:`SharedBus` models exactly that — an append-only,
slot-ordered message log with subscriber notification — and enforces the
round/slot discipline (one message per slot, slots in increasing order within
a round) so that protocol violations in experiments surface as errors rather
than silently corrupting results.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.bus.message import BusMessage
from repro.core.exceptions import BusError

__all__ = ["SharedBus"]


class SharedBus:
    """An append-only broadcast medium with slot discipline."""

    def __init__(self) -> None:
        self._log: list[BusMessage] = []
        self._subscribers: list[Callable[[BusMessage], None]] = []
        self._current_round = 0
        self._next_slot = 0
        self._expected_slots: int | None = None

    # ------------------------------------------------------------------
    # Round/slot discipline
    # ------------------------------------------------------------------
    @property
    def current_round(self) -> int:
        """Index of the round currently being transmitted."""
        return self._current_round

    @property
    def next_slot(self) -> int:
        """Slot the next broadcast must use."""
        return self._next_slot

    def start_round(self, round_index: int | None = None, expected_slots: int | None = None) -> int:
        """Begin a new round; returns its index.

        ``expected_slots`` declares how many slots the round's schedule has.
        With it the bus knows when a round is *complete*, and starting any
        new round — a replay **or a skip-ahead** — while slots remain raises
        :class:`~repro.core.exceptions.BusError`.  Without it the bus cannot
        tell a finished round from an abandoned one, so only restarting a
        round at or before the current index mid-transmission is rejected
        (the historical behaviour).
        """
        if expected_slots is not None and expected_slots < 1:
            raise BusError(f"expected_slots must be at least 1, got {expected_slots}")
        if round_index is None:
            round_index = self._current_round + 1 if self._log else 0
        mid_round = self._next_slot != 0 and (
            self._next_slot < self._expected_slots
            if self._expected_slots is not None
            else round_index <= self._current_round
        )
        if self._log and mid_round:
            raise BusError(
                f"cannot start round {round_index}: round {self._current_round} is still "
                f"open at slot {self._next_slot}"
                + (
                    f" of {self._expected_slots}"
                    if self._expected_slots is not None
                    else ""
                )
            )
        self._current_round = round_index
        self._next_slot = 0
        self._expected_slots = expected_slots
        return round_index

    # ------------------------------------------------------------------
    # Broadcast
    # ------------------------------------------------------------------
    def broadcast(self, message: BusMessage) -> None:
        """Append ``message`` to the log and notify every subscriber."""
        if message.round_index != self._current_round:
            raise BusError(
                f"message for round {message.round_index} broadcast during round {self._current_round}"
            )
        if message.slot != self._next_slot:
            raise BusError(
                f"message uses slot {message.slot} but the next free slot is {self._next_slot}"
            )
        if self._expected_slots is not None and message.slot >= self._expected_slots:
            raise BusError(
                f"round {self._current_round} only has {self._expected_slots} slot(s); "
                f"got a message for slot {message.slot}"
            )
        self._log.append(message)
        self._next_slot += 1
        for subscriber in self._subscribers:
            subscriber(message)

    def subscribe(self, callback: Callable[[BusMessage], None]) -> None:
        """Register a callback invoked synchronously for every broadcast."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[BusMessage], None]) -> None:
        """Remove a previously registered callback.

        Raises :class:`~repro.core.exceptions.BusError` when the callback was
        never subscribed (or already removed) — a silent no-op would mask
        double-removal bugs in node teardown code.
        """
        try:
            self._subscribers.remove(callback)
        except ValueError:
            raise BusError("cannot unsubscribe a callback that is not subscribed") from None

    # ------------------------------------------------------------------
    # Queries (what any node on the bus can see)
    # ------------------------------------------------------------------
    def messages(self, round_index: int | None = None) -> list[BusMessage]:
        """All messages, optionally filtered to one round, in broadcast order."""
        if round_index is None:
            return list(self._log)
        return [m for m in self._log if m.round_index == round_index]

    def messages_this_round(self) -> list[BusMessage]:
        """Messages already broadcast in the current round."""
        return self.messages(self._current_round)

    def senders(self, round_index: int | None = None) -> list[str]:
        """Sender names in broadcast order."""
        return [m.sender for m in self.messages(round_index)]

    def clear(self, drop_subscribers: bool = False) -> None:
        """Erase the log and reset the round state.

        Subscribers survive a plain ``clear()`` by design: the usual caller
        is a harness rerunning experiments over the same wired-up nodes.
        Pass ``drop_subscribers=True`` to also detach every callback — the
        right call when the nodes themselves are being rebuilt, where a
        stale subscriber would silently observe someone else's rounds (use
        :meth:`unsubscribe` to detach just one).
        """
        self._log.clear()
        self._current_round = 0
        self._next_slot = 0
        self._expected_slots = None
        if drop_subscribers:
            self._subscribers.clear()

    def __len__(self) -> int:
        return len(self._log)

    def __iter__(self) -> Iterable[BusMessage]:
        return iter(self._log)
