"""Messages exchanged on the shared broadcast bus.

The paper's communication model is a CAN-like shared bus: every message is
broadcast, so every node (including the attacker) observes every transmission
as soon as it happens.  A message carries the sender's identity, the slot it
was sent in and the abstract-sensor interval; the controller additionally
timestamps messages with the round they belong to.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import BusError
from repro.core.interval import Interval

__all__ = ["BusMessage"]


@dataclass(frozen=True)
class BusMessage:
    """One broadcast on the shared bus.

    Attributes
    ----------
    sender:
        Name of the sending node (sensor name).
    sensor_index:
        Index of the sending sensor in suite order.
    slot:
        Zero-based slot within the round's schedule.
    round_index:
        Which fusion round the message belongs to.
    interval:
        The abstract-sensor interval carried by the message.
    """

    sender: str
    sensor_index: int
    slot: int
    round_index: int
    interval: Interval

    def __post_init__(self) -> None:
        if not self.sender:
            raise BusError("bus message needs a non-empty sender name")
        if self.sensor_index < 0:
            raise BusError(f"sensor index must be non-negative, got {self.sensor_index}")
        if self.slot < 0:
            raise BusError(f"slot must be non-negative, got {self.slot}")
        if self.round_index < 0:
            raise BusError(f"round index must be non-negative, got {self.round_index}")
