"""The attacker's view of the world at the moment she must transmit.

Everything an attack policy is allowed to use is collected in
:class:`AttackContext`:

* global configuration: number of sensors ``n`` and the controller's fault
  bound ``f`` (the paper assumes the attacker knows the fusion algorithm);
* the correct readings of the compromised sensors — their intersection is the
  paper's ``Δ``;
* every interval already broadcast on the shared bus (the attacker sees all
  of them because messages are broadcast);
* the widths and compromised-flags of the sensors still to transmit (interval
  widths are public a-priori information);
* protection obligations created by earlier active-mode placements.

Policies that model an *omniscient* attacker (problem (1) of the paper, where
she knows every correct interval) additionally read the optional
``oracle_correct_intervals`` field, which honest policies must ignore.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.core.exceptions import AttackError
from repro.core.interval import Interval

__all__ = ["AttackContext"]


@dataclass(frozen=True)
class AttackContext:
    """Information available to the attacker when filling one bus slot.

    Attributes
    ----------
    n:
        Total number of sensors in the system.
    f:
        Fault bound used by the controller's fusion algorithm.
    slot_index:
        Zero-based position of the current slot in the schedule.
    sensor_index:
        Index (in suite order) of the compromised sensor transmitting now.
    width:
        Width of the interval this sensor must send (widths are fixed and
        known to the controller, so the attacker cannot change them without
        being trivially detected).
    own_reading:
        The *correct* interval of the compromised sensor transmitting now.
    delta:
        Intersection of the correct readings of all compromised sensors
        (the paper's ``Δ``); it always contains the true value.
    transmitted:
        Intervals already broadcast *and visible to the attacker*, in
        transmission order.  Under a lossy channel (:mod:`repro.channel`)
        lost or still-in-flight transmissions are excluded and counted by
        ``n_hidden`` instead.
    transmitted_compromised:
        For each transmitted interval, whether it came from a compromised
        sensor.
    remaining_widths:
        Widths of the sensors that will transmit after this one, in schedule
        order (current sensor excluded).
    remaining_compromised:
        For each remaining sensor, whether it is compromised.
    protected_points:
        Points that earlier active-mode placements rely on; the current and
        later compromised intervals must keep covering them so the earlier
        forgeries stay stealthy.
    n_hidden:
        Number of earlier transmissions the attacker cannot see — lost on,
        or still in flight through, a lossy channel.  Zero on the perfect
        bus the paper assumes.
    oracle_correct_intervals:
        Optional mapping from sensor index to that sensor's correct interval
        for *every* sensor in the round.  Only omniscient policies may read
        it; it is ``None`` for honest partial-information simulations.
    """

    n: int
    f: int
    slot_index: int
    sensor_index: int
    width: float
    own_reading: Interval
    delta: Interval
    transmitted: tuple[Interval, ...] = ()
    transmitted_compromised: tuple[bool, ...] = ()
    remaining_widths: tuple[float, ...] = ()
    remaining_compromised: tuple[bool, ...] = ()
    protected_points: tuple[float, ...] = ()
    n_hidden: int = 0
    oracle_correct_intervals: Mapping[int, Interval] | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise AttackError(f"attack context needs n > 0, got {self.n}")
        if not 0 <= self.f < self.n:
            raise AttackError(f"fault bound f={self.f} invalid for n={self.n}")
        if self.width <= 0:
            raise AttackError(f"interval width must be positive, got {self.width}")
        if len(self.transmitted) != len(self.transmitted_compromised):
            raise AttackError("transmitted and transmitted_compromised must have equal length")
        if len(self.remaining_widths) != len(self.remaining_compromised):
            raise AttackError("remaining_widths and remaining_compromised must have equal length")
        if self.n_hidden < 0:
            raise AttackError(f"n_hidden must be non-negative, got {self.n_hidden}")
        if len(self.transmitted) + self.n_hidden + 1 + len(self.remaining_widths) != self.n:
            raise AttackError(
                "visible + hidden + current + remaining sensors must account for all n sensors "
                f"({len(self.transmitted)} + {self.n_hidden} + 1 + "
                f"{len(self.remaining_widths)} != {self.n})"
            )
        if not self.delta.intersects(self.own_reading):
            raise AttackError("delta must intersect the compromised sensor's own correct reading")

    # ------------------------------------------------------------------
    # Derived quantities used by the stealth machinery
    # ------------------------------------------------------------------
    @property
    def n_transmitted(self) -> int:
        """Number of intervals already broadcast."""
        return len(self.transmitted)

    @property
    def unsent_compromised_count(self) -> int:
        """The paper's ``far``: unsent compromised intervals, current included."""
        return 1 + sum(1 for flag in self.remaining_compromised if flag)

    @property
    def unseen_correct_widths(self) -> tuple[float, ...]:
        """Widths of the *correct* sensors that have not transmitted yet."""
        return tuple(
            width
            for width, compromised in zip(self.remaining_widths, self.remaining_compromised)
            if not compromised
        )

    @property
    def unseen_compromised_widths(self) -> tuple[float, ...]:
        """Widths of the compromised sensors that transmit after this one."""
        return tuple(
            width
            for width, compromised in zip(self.remaining_widths, self.remaining_compromised)
            if compromised
        )

    @property
    def seen_correct_intervals(self) -> tuple[Interval, ...]:
        """Correct intervals already broadcast (the paper's ``C_S``)."""
        return tuple(
            interval
            for interval, compromised in zip(self.transmitted, self.transmitted_compromised)
            if not compromised
        )

    @property
    def seen_compromised_intervals(self) -> tuple[Interval, ...]:
        """Compromised intervals already broadcast (placed by earlier slots)."""
        return tuple(
            interval
            for interval, compromised in zip(self.transmitted, self.transmitted_compromised)
            if compromised
        )

    def with_protected_points(self, points: tuple[float, ...]) -> "AttackContext":
        """Return a copy with additional protection obligations."""
        return replace(self, protected_points=self.protected_points + points)

    def cache_key(self, precision: int = 9) -> tuple:
        """A hashable key identifying the decision-relevant part of the context.

        Used by expectation-maximising policies to memoise decisions across
        the exhaustive outer enumeration of measurement combinations; the key
        intentionally excludes the oracle and the sensor/slot identities that
        do not influence the optimisation.
        """

        def _r(value: float) -> float:
            return round(value, precision)

        return (
            self.n,
            self.f,
            _r(self.width),
            (_r(self.delta.lo), _r(self.delta.hi)),
            tuple((_r(s.lo), _r(s.hi)) for s in self.transmitted),
            self.transmitted_compromised,
            tuple(_r(w) for w in self.remaining_widths),
            self.remaining_compromised,
            tuple(_r(p) for p in self.protected_points),
            self.n_hidden,
        )
