"""Attack-policy interface and simple baseline policies.

An :class:`AttackPolicy` is invoked by the round simulator every time a
compromised sensor's slot comes up; it receives an
:class:`~repro.attack.context.AttackContext` and must return the interval the
attacker broadcasts in that slot.  All policies are expected to return only
stealthy (admissible) intervals; the baselines here do so trivially.

Baselines:

* :class:`TruthfulPolicy` — the compromised sensor behaves correctly; used as
  the "no attack" reference and by Theorem 3's argument ("the attacker can
  always send the correct measurements").
* :class:`RandomAdmissiblePolicy` — picks a random stealthy candidate; a weak
  attacker used as a sanity baseline in the benchmarks.
* :class:`FixedShiftPolicy` — shifts the correct reading by a constant while
  remaining stealthy if possible; models a crude spoofing device.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.attack.candidates import candidate_intervals
from repro.attack.context import AttackContext
from repro.attack.stealth import is_admissible
from repro.core.interval import Interval

__all__ = ["AttackPolicy", "TruthfulPolicy", "RandomAdmissiblePolicy", "FixedShiftPolicy"]


class AttackPolicy(abc.ABC):
    """Interface implemented by every attacker strategy."""

    @abc.abstractmethod
    def choose_interval(self, context: AttackContext, rng: np.random.Generator) -> Interval:
        """Return the interval to broadcast for the current compromised slot."""

    def reset(self) -> None:
        """Clear per-round state (called by the simulator between rounds)."""


@dataclass
class TruthfulPolicy(AttackPolicy):
    """The compromised sensor simply reports its correct interval."""

    def choose_interval(self, context: AttackContext, rng: np.random.Generator) -> Interval:
        return context.own_reading


@dataclass
class RandomAdmissiblePolicy(AttackPolicy):
    """Pick a uniformly random stealthy candidate placement.

    Parameters
    ----------
    grid_positions:
        Resolution of the candidate grid handed to
        :func:`repro.attack.candidates.candidate_intervals`.
    """

    grid_positions: int = 9

    def choose_interval(self, context: AttackContext, rng: np.random.Generator) -> Interval:
        candidates = candidate_intervals(context, self.grid_positions)
        index = int(rng.integers(0, len(candidates)))
        return candidates[index]


@dataclass
class FixedShiftPolicy(AttackPolicy):
    """Shift the correct reading by ``shift``, falling back to truth if unsafe.

    This models a crude spoofer (e.g. a GPS meaconing device adding a constant
    bias).  If the shifted interval would be detected, the policy degrades the
    shift until the interval is stealthy again (halving it each time), ending
    at the truthful reading in the worst case.
    """

    shift: float
    max_halvings: int = 8

    def choose_interval(self, context: AttackContext, rng: np.random.Generator) -> Interval:
        shift = self.shift
        for _ in range(self.max_halvings):
            candidate = context.own_reading.shift(shift)
            if is_admissible(candidate, context):
                return candidate
            shift /= 2.0
        return context.own_reading
