"""Scalar reference implementation of the greedy one-sided stretch attacker.

:class:`ActiveStretchPolicy` makes exactly the same decisions as the
vectorized :class:`repro.batch.rounds.ActiveStretchBatchAttacker`, but through
the ordinary :class:`~repro.attack.policy.AttackPolicy` interface so that it
can run inside :func:`repro.scheduling.round.run_round`.  Its purpose is
twofold:

* it is the oracle the batched Monte-Carlo engine is property-tested against
  (round-for-round bit equivalence on identical inputs);
* it is a cheap deterministic mid-strength attacker in its own right, usable
  wherever the expectation-maximising policy is too slow.

Decision rule per compromised slot (for ``side = +1``; ``-1`` mirrors):

1. if an earlier slot of this round already created a support point ``p``,
   broadcast ``[p, p + w]`` (keeps the protection obligation);
2. else, if active mode is available, anchor on the *rightmost* point covered
   by at least ``n - f - far`` already-transmitted intervals and broadcast
   ``[p, p + w]``;
3. else, if the forged width can contain ``Δ``, broadcast the passive extreme
   ``[Δ.lo, Δ.lo + w]``;
4. else broadcast the truthful reading.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attack.candidates import PASSIVE_WIDTH_TOL
from repro.attack.context import AttackContext
from repro.attack.policy import AttackPolicy
from repro.attack.stealth import active_mode_available, required_support
from repro.core.exceptions import AttackError
from repro.core.interval import Interval
from repro.core.marzullo import fuse_or_none

__all__ = ["ActiveStretchPolicy"]


@dataclass
class ActiveStretchPolicy(AttackPolicy):
    """Deterministic greedy stretch attacker (scalar oracle of the batch engine).

    Parameters
    ----------
    side:
        ``+1`` stretches the fusion interval to the right, ``-1`` to the left.
    """

    side: int = 1
    _support: float | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.side not in (1, -1):
            raise AttackError(f"stretch side must be +1 or -1, got {self.side}")

    def reset(self) -> None:
        self._support = None

    def _anchored(self, point: float, width: float) -> Interval:
        if self.side > 0:
            return Interval(point, point + width)
        return Interval(point - width, point)

    def choose_interval(self, context: AttackContext, rng: np.random.Generator) -> Interval:
        width = context.width
        if self._support is not None:
            return self._anchored(self._support, width)

        required = required_support(context)
        if active_mode_available(context) and required >= 1:
            # Extreme points covered by >= `required` transmitted intervals:
            # the same sweep as fusion with fault bound `k - required`.
            region = fuse_or_none(list(context.transmitted), context.n_transmitted - required)
            if region is not None:
                point = region.hi if self.side > 0 else region.lo
                self._support = point
                return self._anchored(point, width)

        delta = context.delta
        if width >= delta.width - PASSIVE_WIDTH_TOL:
            if self.side > 0:
                return Interval(delta.lo, delta.lo + width)
            return Interval(delta.hi - width, delta.hi)
        return context.own_reading
