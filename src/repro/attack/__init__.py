"""Attack models: contexts, stealth constraints and attacker policies.

The subpackage implements Section III of the paper:

* :class:`~repro.attack.context.AttackContext` — what the attacker knows at
  transmission time;
* :mod:`repro.attack.stealth` — the passive/active stealth machinery;
* policies of increasing strength: truthful / random / fixed-shift baselines,
  the greedy heuristic, the expectation-maximising attacker of problem (2)
  and the omniscient solver of problem (1);
* :mod:`repro.attack.theorem1` — Theorem 1's sufficient conditions for an
  optimal attack under partial knowledge.

The full catalogue — every policy, the paper equation it implements, and its
batched counterpart in :mod:`repro.batch` — is in ``docs/ATTACKERS.md``.
"""

from repro.attack.candidates import candidate_intervals, endpoint_aligned, grid_candidates, passive_extremes
from repro.attack.context import AttackContext
from repro.attack.expectation import ExpectationPolicy
from repro.attack.greedy import GreedyExtendPolicy
from repro.attack.omniscient import OmniscientPolicy, optimal_attack, optimal_fusion_width
from repro.attack.policy import AttackPolicy, FixedShiftPolicy, RandomAdmissiblePolicy, TruthfulPolicy
from repro.attack.stealth import (
    Admissibility,
    AttackerMode,
    active_mode_available,
    check_admissible,
    ensure_admissible,
    is_admissible,
    passive_admissible,
    required_support,
    support_point,
)
from repro.attack.stretch import ActiveStretchPolicy
from repro.attack.theorem1 import (
    Theorem1Inputs,
    case1_applies,
    case1_placements,
    case2_applies,
    case2_placements,
    optimal_policy_exists,
)

__all__ = [
    "AttackContext",
    "AttackPolicy",
    "TruthfulPolicy",
    "RandomAdmissiblePolicy",
    "FixedShiftPolicy",
    "ActiveStretchPolicy",
    "GreedyExtendPolicy",
    "ExpectationPolicy",
    "OmniscientPolicy",
    "optimal_attack",
    "optimal_fusion_width",
    "AttackerMode",
    "Admissibility",
    "active_mode_available",
    "required_support",
    "passive_admissible",
    "check_admissible",
    "ensure_admissible",
    "is_admissible",
    "support_point",
    "candidate_intervals",
    "passive_extremes",
    "endpoint_aligned",
    "grid_candidates",
    "Theorem1Inputs",
    "case1_applies",
    "case2_applies",
    "optimal_policy_exists",
    "case1_placements",
    "case2_placements",
]
