"""Theorem 1: when does an optimal attack exist despite partial knowledge?

Theorem 1 of the paper gives two sufficient conditions under which the
attacker has an optimal policy even though she has not seen every correct
interval, provided she has seen at least ``n - f - fa`` of them and transmits
in consecutive slots:

1. every seen correct interval coincides (identical bounds) and every unseen
   correct interval is narrower than ``(|m_min| - |S_{CS ∪ Δ, 0}|) / 2``,
   where ``m_min`` is the narrowest attacked interval — the attacker then
   attacks *on both sides* of the seen intervals;

2. ``|m_min| >= u_{n-f-fa} - l_{n-f-fa}`` and every unseen correct interval is
   narrower than
   ``min(l_{S_{CS ∪ Δ},0} - l_{n-f-fa}, u_{n-f-fa} - u_{S_{CS ∪ Δ},0})`` —
   the attacker then covers ``[l_{n-f-fa}, u_{n-f-fa}]`` with each forged
   interval, pinning the fusion interval to exactly that range.

Here ``l_{n-f-fa}`` (``u_{n-f-fa}``) is the ``(n-f-fa)``-th smallest lower
bound (largest upper bound) among the *seen* intervals, and ``S_{CS ∪ Δ, 0}``
is the intersection of the seen correct intervals with ``Δ``.

The module provides checkers for both conditions and constructors for the
corresponding optimal placements, which the Figure 3 benchmark and the tests
exercise against the brute-force optimum of :mod:`repro.attack.omniscient`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import AttackError
from repro.core.interval import Interval, intersect_all
from repro.core.marzullo import kth_largest_upper_bound, kth_smallest_lower_bound

__all__ = [
    "Theorem1Inputs",
    "case1_applies",
    "case2_applies",
    "optimal_policy_exists",
    "case1_placements",
    "case2_placements",
]


@dataclass(frozen=True)
class Theorem1Inputs:
    """Inputs to Theorem 1's conditions.

    Attributes
    ----------
    n:
        Total number of sensors.
    f:
        Fusion fault bound.
    seen_correct:
        The correct intervals the attacker has seen (``C_S``).
    delta:
        The intersection of the compromised sensors' correct readings.
    attacked_widths:
        Widths of all compromised intervals (``fa`` of them).
    unseen_correct_widths:
        Widths of the correct intervals that will transmit after her
        (``C_R`` placements are unknown; only their widths are).
    """

    n: int
    f: int
    seen_correct: tuple[Interval, ...]
    delta: Interval
    attacked_widths: tuple[float, ...]
    unseen_correct_widths: tuple[float, ...]

    def __post_init__(self) -> None:
        fa = len(self.attacked_widths)
        if fa == 0:
            raise AttackError("Theorem 1 needs at least one attacked sensor")
        seen = len(self.seen_correct)
        unseen = len(self.unseen_correct_widths)
        if seen + unseen + fa != self.n:
            raise AttackError(
                f"seen ({seen}) + unseen ({unseen}) + attacked ({fa}) must equal n={self.n}"
            )

    @property
    def fa(self) -> int:
        """Number of attacked sensors."""
        return len(self.attacked_widths)

    @property
    def m_min(self) -> float:
        """Width of the narrowest attacked interval (the paper's ``|m_min|``)."""
        return min(self.attacked_widths)

    @property
    def k(self) -> int:
        """The index ``n - f - fa`` used for the seen-bound order statistics."""
        return self.n - self.f - self.fa

    def precondition_holds(self) -> bool:
        """Theorem 1's standing assumption ``n - f - fa <= |C_S| < n - fa``."""
        return self.k <= len(self.seen_correct) < self.n - self.fa

    def seen_with_delta_intersection(self) -> Interval:
        """The paper's ``S_{CS ∪ Δ, 0}`` — intersection of seen intervals and Δ."""
        return intersect_all([*self.seen_correct, self.delta])


def case1_applies(inputs: Theorem1Inputs, tol: float = 1e-9) -> bool:
    """Check the first sufficient condition of Theorem 1."""
    if not inputs.precondition_holds():
        return False
    seen = inputs.seen_correct
    if not seen:
        return False
    first = seen[0]
    if any(abs(s.lo - first.lo) > tol or abs(s.hi - first.hi) > tol for s in seen):
        return False
    threshold = (inputs.m_min - inputs.seen_with_delta_intersection().width) / 2.0
    return all(width <= threshold + tol for width in inputs.unseen_correct_widths)


def case2_applies(inputs: Theorem1Inputs, tol: float = 1e-9) -> bool:
    """Check the second sufficient condition of Theorem 1."""
    if not inputs.precondition_holds():
        return False
    if inputs.k < 1 or inputs.k > len(inputs.seen_correct):
        return False
    lower_k = kth_smallest_lower_bound(inputs.seen_correct, inputs.k)
    upper_k = kth_largest_upper_bound(inputs.seen_correct, inputs.k)
    if inputs.m_min + tol < upper_k - lower_k:
        return False
    core = inputs.seen_with_delta_intersection()
    threshold = min(core.lo - lower_k, upper_k - core.hi)
    return all(width <= threshold + tol for width in inputs.unseen_correct_widths)


def optimal_policy_exists(inputs: Theorem1Inputs) -> bool:
    """``True`` if either sufficient condition of Theorem 1 holds."""
    return case1_applies(inputs) or case2_applies(inputs)


def case1_placements(inputs: Theorem1Inputs) -> list[Interval]:
    """The optimal placements for case 1: attack on both sides of the seen core.

    Every attacked interval is centred on ``S_{CS ∪ Δ, 0}``: the width
    condition of case 1 guarantees a margin of at least the largest possible
    unseen width on *each* side of the core, so every unseen correct interval
    (which must touch the core) is contained in every forged interval — the
    containment the proof of Theorem 1 relies on.  Each placement also
    contains ``Δ``, so it is stealthy in passive mode.
    """
    if not case1_applies(inputs):
        raise AttackError("case 1 of Theorem 1 does not apply to these inputs")
    core = inputs.seen_with_delta_intersection()
    return [Interval.from_center(core.center, width) for width in inputs.attacked_widths]


def case2_placements(inputs: Theorem1Inputs) -> list[Interval]:
    """The optimal placements for case 2: cover ``[l_{n-f-fa}, u_{n-f-fa}]``.

    Every attacked interval is wide enough to contain the whole target range,
    so each one is simply centred on it; the fusion interval then equals the
    target range regardless of where the (small) unseen intervals land.
    """
    if not case2_applies(inputs):
        raise AttackError("case 2 of Theorem 1 does not apply to these inputs")
    lower_k = kth_smallest_lower_bound(inputs.seen_correct, inputs.k)
    upper_k = kth_largest_upper_bound(inputs.seen_correct, inputs.k)
    center = (lower_k + upper_k) / 2.0
    return [Interval.from_center(center, width) for width in inputs.attacked_widths]
