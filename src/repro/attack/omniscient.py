"""The full-knowledge attacker of problem (1) in the paper.

If the attacker knows the placement of *every* correct interval before
choosing hers — for instance because she transmits last under a shared-bus
broadcast — her problem becomes the deterministic optimisation (1):

    maximise |S_{N,f}|  subject to  S_{N,f} ∩ a_i ≠ ∅ for every forged a_i.

:class:`OmniscientPolicy` solves this by searching candidate placements for
each forged interval (endpoint alignments plus a grid) and, for configurations
with several compromised sensors, recursing over the later forged intervals.
It is *not* a realistic attacker for schedules that make her transmit early —
it reads the round's oracle — but it provides:

* the optimal-attack baseline used to define Definition 1's "optimal policy",
* the reference against which the expectation attacker's regret is measured
  (Fig. 2 reproduction),
* worst-case configurations for the Theorem 3/4 experiments.

This module also exposes :func:`optimal_fusion_width`, a standalone solver
that takes the correct intervals and the forged widths directly, without going
through the round simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.attack.context import AttackContext
from repro.attack.policy import AttackPolicy
from repro.core.exceptions import AttackError
from repro.core.interval import Interval
from repro.core.marzullo import fuse_or_none

__all__ = ["OmniscientPolicy", "optimal_fusion_width", "optimal_attack"]


def _candidate_positions(
    correct: Sequence[Interval], width: float, extra_points: Sequence[float] = ()
) -> list[Interval]:
    """Endpoint-aligned candidate placements for one forged interval.

    The fusion width as a function of a single forged interval's position is
    piecewise linear with breakpoints where the forged endpoints align with
    endpoints of other intervals, so searching the alignments (plus the given
    extra reference points) is sufficient to find the optimum.
    """
    reference: set[float] = set(extra_points)
    for interval in correct:
        reference.add(interval.lo)
        reference.add(interval.hi)
    candidates: list[Interval] = []
    for point in sorted(reference):
        candidates.append(Interval(point, point + width))
        candidates.append(Interval(point - width, point))
        candidates.append(Interval.from_center(point, width))
    return candidates


def _search(
    correct: Sequence[Interval],
    forged_widths: Sequence[float],
    placed: list[Interval],
    f: int,
) -> tuple[float, list[Interval]]:
    """Recursively place forged intervals to maximise the final fusion width."""
    if not forged_widths:
        fusion = fuse_or_none(list(correct) + placed, f)
        if fusion is None:
            return -np.inf, []
        # Problem (1) constraint: every forged interval must intersect the
        # fusion interval (otherwise it is detected and discarded).
        if any(not forged.intersects(fusion) for forged in placed):
            return -np.inf, []
        return fusion.width, list(placed)

    width = forged_widths[0]
    rest = forged_widths[1:]
    extra = [p for interval in placed for p in (interval.lo, interval.hi)]
    best_width = -np.inf
    best_placement: list[Interval] = []
    for candidate in _candidate_positions(correct, width, extra):
        placed.append(candidate)
        value, placement = _search(correct, rest, placed, f)
        placed.pop()
        if value > best_width + 1e-12:
            best_width = value
            best_placement = placement
    return best_width, best_placement


def optimal_attack(
    correct_intervals: Sequence[Interval], forged_widths: Sequence[float], f: int
) -> tuple[Interval, list[Interval]]:
    """Solve problem (1): optimal forged placements given all correct intervals.

    Returns the resulting fusion interval and the forged placements (in the
    order of ``forged_widths``).

    Raises
    ------
    AttackError
        If no stealthy placement exists (cannot happen when the truthful
        placements are feasible, i.e. when the correct intervals intersect).
    """
    if not correct_intervals:
        raise AttackError("problem (1) needs at least one correct interval")
    width, placement = _search(list(correct_intervals), list(forged_widths), [], f)
    if not np.isfinite(width):
        raise AttackError("no stealthy forged placement exists for this configuration")
    fusion = fuse_or_none(list(correct_intervals) + placement, f)
    assert fusion is not None
    return fusion, placement


def optimal_fusion_width(
    correct_intervals: Sequence[Interval], forged_widths: Sequence[float], f: int
) -> float:
    """Width of the fusion interval under the optimal attack of problem (1)."""
    fusion, _placement = optimal_attack(correct_intervals, forged_widths, f)
    return fusion.width


@dataclass
class OmniscientPolicy(AttackPolicy):
    """Round-simulator policy wrapping the problem (1) solver.

    The policy requires the round simulator to expose the oracle of correct
    intervals through ``AttackContext.oracle_correct_intervals``; it then
    solves problem (1) jointly for all compromised slots once and replays the
    solution slot by slot.  Because the solution depends only on the correct
    intervals and the forged widths, it is cached per round via ``reset``.
    """

    _solution: dict[tuple, list[Interval]] | None = None

    def reset(self) -> None:
        self._solution = None

    def choose_interval(self, context: AttackContext, rng: np.random.Generator) -> Interval:
        if context.oracle_correct_intervals is None:
            raise AttackError(
                "OmniscientPolicy needs oracle_correct_intervals; use ExpectationPolicy for "
                "honest partial-information attackers"
            )
        correct = [
            interval
            for sensor_index, interval in sorted(context.oracle_correct_intervals.items())
        ]
        # Forged intervals already broadcast in earlier slots are fixed; the
        # remaining degrees of freedom are this slot and the later compromised
        # slots, solved jointly so the whole attack stays consistent.
        fixed = list(context.seen_compromised_intervals)
        forged_widths = [context.width, *context.unseen_compromised_widths]
        width, placement = _search(correct, forged_widths, list(fixed), context.f)
        if not np.isfinite(width):
            raise AttackError("no stealthy forged placement exists for this configuration")
        return placement[len(fixed)]
