"""A cheap heuristic attacker used as a mid-strength baseline.

The greedy policy scores every admissible candidate placement by the width of
the fusion interval it would produce if all not-yet-transmitted sensors were
to report intervals centred on the attacker's best guess of the true value
(the centre of ``Δ``), and picks the candidate with the largest score.  It is
much cheaper than the expectation-maximising policy of
:mod:`repro.attack.expectation` and serves as a baseline between the truthful
and the expectation attackers in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attack.candidates import candidate_intervals
from repro.attack.context import AttackContext
from repro.attack.policy import AttackPolicy
from repro.core.interval import Interval
from repro.core.marzullo import fuse_or_none

__all__ = ["GreedyExtendPolicy"]


@dataclass
class GreedyExtendPolicy(AttackPolicy):
    """Greedy one-step attacker maximising a projected fusion width.

    Parameters
    ----------
    grid_positions:
        Resolution of the candidate grid.
    mirror_remaining_compromised:
        If ``True`` (default), the attacker assumes that her remaining
        compromised intervals will be placed mirrored around ``Δ`` relative to
        the current candidate, which lets the projection reward two-sided
        attacks; if ``False`` they are assumed truthful.
    """

    grid_positions: int = 9
    mirror_remaining_compromised: bool = True

    def choose_interval(self, context: AttackContext, rng: np.random.Generator) -> Interval:
        candidates = candidate_intervals(context, self.grid_positions)
        best = candidates[0]
        best_score = -np.inf
        for candidate in candidates:
            score = self._projected_width(candidate, context)
            if score > best_score + 1e-12:
                best_score = score
                best = candidate
        return best

    def _projected_width(self, candidate: Interval, context: AttackContext) -> float:
        """Fusion width if every unsent sensor behaved as the attacker guesses."""
        guess_center = context.delta.center
        projected: list[Interval] = list(context.transmitted)
        projected.append(candidate)
        for width, compromised in zip(context.remaining_widths, context.remaining_compromised):
            if compromised and self.mirror_remaining_compromised:
                # Mirror the candidate around Δ's centre so the projection can
                # account for attacking both sides with a later interval.
                mirrored_center = 2.0 * guess_center - candidate.center
                projected.append(Interval.from_center(mirrored_center, width))
            else:
                projected.append(Interval.from_center(guess_center, width))
        fusion = fuse_or_none(projected, context.f)
        if fusion is None or not candidate.intersects(fusion):
            return -np.inf
        return fusion.width
