"""Candidate placements for a forged interval.

The width of the attacked interval is fixed (widths are public), so the
attacker's only choice is where to put it on the real line.  This module
enumerates a finite, representative set of candidate placements that every
search-based policy (greedy, expectation-maximising, omniscient) draws from:

* the truthful placement (the sensor's own correct reading),
* the passive extremes — contain ``Δ`` while extending maximally left/right,
* placements aligned with the endpoints of already-broadcast intervals (worst
  cases are always attained at such alignments, because the fusion width as a
  function of a single placement is piecewise linear with breakpoints at
  endpoint alignments),
* a uniform grid over the relevant window for robustness.

Only admissible candidates (per :mod:`repro.attack.stealth`) are returned.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.attack.context import AttackContext
from repro.attack.stealth import is_admissible
from repro.core.interval import Interval

__all__ = [
    "candidate_intervals",
    "passive_extremes",
    "endpoint_aligned",
    "grid_candidates",
    "batch_side_preference",
    "PASSIVE_WIDTH_TOL",
    "SIDE_SCORE_TOL",
]

_DEDUP_PRECISION = 9

#: Tolerance for "can the forged width contain Δ" in passive-mode placement
#: decisions.  Shared by the scalar policies and the batched attacker
#: (:mod:`repro.batch.rounds`) so both make identical passive/truthful calls.
PASSIVE_WIDTH_TOL = 1e-12

#: Tolerance below which the two sides' candidate scores are considered tied
#: in :func:`batch_side_preference` (ties are broken uniformly at random).
SIDE_SCORE_TOL = 1e-9


def batch_side_preference(
    right_score: np.ndarray,
    left_score: np.ndarray,
    rng: np.random.Generator,
    tol: float = SIDE_SCORE_TOL,
    right_tiebreak: np.ndarray | None = None,
    left_tiebreak: np.ndarray | None = None,
) -> np.ndarray:
    """Vectorized side selection over the two extreme candidate placements.

    The scalar search policies enumerate :func:`passive_extremes` and
    :func:`endpoint_aligned` candidates per round and keep the one maximising
    the (expected) fusion width.  For a one-sided stretch attacker the whole
    search collapses to a binary choice — stretch right or stretch left — so
    a batched attacker only needs one score per side and per round: typically
    the fusion width the candidate placement would produce over everything
    transmitted so far (see
    :class:`repro.batch.rounds.ExpectationProxyBatchAttacker`).

    Returns a ``(B,)`` array holding ``+1`` where the right candidate scores
    higher and ``-1`` where the left one does.  Where the primary scores are
    within ``tol`` of each other the optional tie-break scores decide (they
    stand in for the lookahead the scalar expectation policy performs over
    the still-unseen sensors); rows still tied fall to a uniformly random
    side — mirroring the scalar policy's random tie-breaking, so a symmetric
    configuration yields the symmetric violation statistics of the paper's
    Table II.  ``NaN`` scores (no feasible placement on that side) lose
    against any finite score.
    """

    def _decide(right: np.ndarray, left: np.ndarray, fallback: np.ndarray) -> np.ndarray:
        right = np.nan_to_num(np.asarray(right, dtype=np.float64), nan=-np.inf)
        left = np.nan_to_num(np.asarray(left, dtype=np.float64), nan=-np.inf)
        return np.where(right > left + tol, 1.0, np.where(left > right + tol, -1.0, fallback))

    sides = np.where(rng.random(np.shape(right_score)) < 0.5, 1.0, -1.0)
    if right_tiebreak is not None and left_tiebreak is not None:
        sides = _decide(right_tiebreak, left_tiebreak, sides)
    return _decide(right_score, left_score, sides)


def passive_extremes(context: AttackContext) -> list[Interval]:
    """Placements that contain ``Δ`` and extend maximally to one side.

    If the attacked interval is narrower than ``Δ`` no placement can contain
    ``Δ`` and the list is empty (the attacker is then forced to either tell
    the truth — her own reading always intersects ``Δ`` but may not contain
    it — or wait for active mode).
    """
    delta = context.delta
    width = context.width
    if width < delta.width - PASSIVE_WIDTH_TOL:
        return []
    # Rightmost placement still containing Δ: lower bound at Δ.lo.
    # Leftmost placement still containing Δ: upper bound at Δ.hi.
    return [
        Interval(delta.hi - width, delta.hi),
        Interval(delta.lo, delta.lo + width),
        Interval.from_center(delta.center, width),
    ]


def endpoint_aligned(context: AttackContext) -> list[Interval]:
    """Placements aligned with endpoints of broadcast intervals and ``Δ``.

    For every reference point ``p`` (an endpoint of a transmitted interval,
    of ``Δ``, or a protected point) the attacker can place her interval so
    that either its lower or its upper bound touches ``p``; these alignments
    are where the piecewise-linear fusion-width objective has its breakpoints.
    """
    width = context.width
    reference_points: set[float] = {context.delta.lo, context.delta.hi}
    for interval in context.transmitted:
        reference_points.add(interval.lo)
        reference_points.add(interval.hi)
    for point in context.protected_points:
        reference_points.add(point)
    reference_points.add(context.own_reading.lo)
    reference_points.add(context.own_reading.hi)

    candidates: list[Interval] = []
    for point in reference_points:
        candidates.append(Interval(point, point + width))
        candidates.append(Interval(point - width, point))
    return candidates


def grid_candidates(context: AttackContext, positions: int = 9) -> list[Interval]:
    """A uniform grid of placements over the relevant window.

    The window spans the hull of everything the attacker has seen (broadcast
    intervals, ``Δ``, protected points) extended by one interval width on each
    side; placements further out can never intersect the fusion interval.
    """
    if positions < 2:
        positions = 2
    lows = [context.delta.lo] + [s.lo for s in context.transmitted] + list(context.protected_points)
    highs = [context.delta.hi] + [s.hi for s in context.transmitted] + list(context.protected_points)
    window_lo = min(lows) - context.width
    window_hi = max(highs) + context.width
    span = window_hi - context.width - window_lo
    if span <= 0:
        return [Interval(window_lo, window_lo + context.width)]
    step = span / (positions - 1)
    return [
        Interval(window_lo + i * step, window_lo + i * step + context.width)
        for i in range(positions)
    ]


def _dedupe(candidates: Iterable[Interval]) -> list[Interval]:
    seen: set[tuple[float, float]] = set()
    unique: list[Interval] = []
    for candidate in candidates:
        key = (round(candidate.lo, _DEDUP_PRECISION), round(candidate.hi, _DEDUP_PRECISION))
        if key not in seen:
            seen.add(key)
            unique.append(candidate)
    return unique


def candidate_intervals(context: AttackContext, grid_positions: int = 9) -> list[Interval]:
    """Return all admissible candidate placements for the current slot.

    The truthful placement (the sensor's correct reading) is always included
    and always admissible in passive mode, so the returned list is never
    empty.
    """
    raw: list[Interval] = [context.own_reading]
    raw.extend(passive_extremes(context))
    raw.extend(endpoint_aligned(context))
    raw.extend(grid_candidates(context, grid_positions))
    admissible = [c for c in _dedupe(raw) if is_admissible(c, context)]
    if not admissible:
        # The truthful reading might itself be inadmissible only if it fails
        # to contain Δ (possible when the attacked sensor is wider than Δ but
        # offset); fall back to a placement centred on Δ, which is admissible
        # whenever any placement is.
        fallback = Interval.from_center(context.delta.center, context.width)
        if is_admissible(fallback, context):
            return [fallback]
        return [context.own_reading]
    return admissible
