"""The expectation-maximising attacker of problem (2) in the paper.

When the attacker has not yet seen every correct interval she has, in
general, no optimal policy (Fig. 2 of the paper); a reasonable goal is to
maximise the *expected* width of the final fusion interval over all possible
placements of the sensors that will transmit after her.  This module
implements that attacker by explicit enumeration, mirroring the paper's own
methodology ("we have discretized the real line with a sufficiently high
precision in order to compute the expectation").

The generative model of the unseen future used for the expectation is the
same one the experiments use to generate measurements:

* the true value is uniform over the attacker's feasible region — the
  intersection of ``Δ`` with every correct interval seen so far;
* every unseen *correct* interval of width ``w`` is uniform over the
  placements of width ``w`` that contain the true value;
* every unseen *compromised* interval is placed by recursively applying the
  same expectation-maximising policy at its own slot (with what it will have
  seen by then), which approximates the joint optimisation of problem (2) by
  backward induction.

Decisions are memoised on the decision-relevant part of the context
(:meth:`AttackContext.cache_key`, extended with the policy's ``conservative``
flag), which is what makes the exhaustive Table I style experiments
tractable: under the Ascending schedule the attacker's context barely varies
across the outer enumeration, so her (expensive) decision is computed only a
handful of times.

The NumPy-vectorized counterpart — identical decisions, the inner
(true-value × placement × candidate) grid evaluated as broadcast tensor ops —
lives in :mod:`repro.batch.expectation`; the catalogue of every attacker and
the paper equation it implements is in ``docs/ATTACKERS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.attack.candidates import candidate_intervals
from repro.attack.context import AttackContext
from repro.attack.policy import AttackPolicy
from repro.attack.stealth import AttackerMode, check_admissible, support_point
from repro.core.exceptions import AttackError
from repro.core.interval import Interval, intersect_all
from repro.core.marzullo import fuse_or_none

__all__ = ["ExpectationPolicy", "TIE_TOLERANCE"]

#: Scores within this distance of the best candidate's score count as tied;
#: shared with the vectorized scorer so both build identical tie sets.
TIE_TOLERANCE = 1e-9


def _linspace(lo: float, hi: float, count: int) -> list[float]:
    """``count`` evenly spaced points covering ``[lo, hi]`` (endpoints included)."""
    if count <= 1 or hi <= lo:
        return [(lo + hi) / 2.0]
    step = (hi - lo) / (count - 1)
    return [lo + i * step for i in range(count)]


@dataclass
class ExpectationPolicy(AttackPolicy):
    """Expectation-maximising attacker (see module docstring).

    Parameters
    ----------
    true_value_positions:
        Number of grid points used for the unknown true value inside the
        attacker's feasible region.
    placement_positions:
        Number of grid points used for each unseen correct interval's
        placement (per true-value hypothesis).
    grid_positions:
        Resolution of the candidate grid for the attacker's own interval.
    conservative:
        If ``True``, active-mode placements must additionally share a point
        with at least ``n - f - 1`` *already transmitted* intervals — the
        attacker does not count her own not-yet-sent compromised intervals as
        guaranteed support.  The paper's theory (the ``n - f - far`` mode
        switch) permits counting them, which is the default behaviour; the
        conservative variant reproduces the weaker attacker the paper's
        Table I simulation appears to use for ``fa = 2`` and is exercised by
        the attacker-strength ablation benchmark.
    tie_break:
        ``"random"`` (default) picks uniformly among tied candidates so a
        symmetric configuration is attacked symmetrically across rounds;
        ``"first"`` deterministically keeps the first tied candidate and
        consumes no randomness — the variant the engine layer exposes, so the
        scalar and batch backends stay bit-comparable (their RNG streams
        never diverge on tie-breaking).
    """

    true_value_positions: int = 3
    placement_positions: int = 3
    grid_positions: int = 9
    conservative: bool = False
    tie_break: str = "random"
    _hits: int = field(default=0, repr=False, compare=False)
    _misses: int = field(default=0, repr=False, compare=False)
    _cache: dict[tuple, Interval] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.tie_break not in ("random", "first"):
            raise AttackError(f"tie_break must be 'random' or 'first', got {self.tie_break!r}")

    # ------------------------------------------------------------------
    # AttackPolicy interface
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Decisions are deterministic given the context, so the cache can
        safely persist across rounds; ``reset`` is a no-op kept for symmetry.

        The hit/miss tallies persist too: they count the memo's lifetime
        behaviour, and the engines construct a **fresh policy per run**, so
        each ``compare()`` leg starts from zero without ``reset`` having to
        clear anything (``tests/attack/test_expectation.py`` pins both)."""

    # ------------------------------------------------------------------
    # Memo accounting (read-only outside; the batch attacker records via
    # the methods below so the hot loop stays plain-int cheap)
    # ------------------------------------------------------------------
    def record_hit(self) -> None:
        """Count one memo hit (used by the batch attacker's shared memo)."""
        self._hits += 1

    def record_miss(self) -> None:
        """Count one memo miss (used by the batch attacker's shared memo)."""
        self._misses += 1

    def stats(self) -> dict:
        """Read-only memo statistics: hits, misses, resident entries."""
        return {"hits": self._hits, "misses": self._misses, "entries": len(self._cache)}

    def choose_interval(self, context: AttackContext, rng: np.random.Generator) -> Interval:
        return self._cached_decide(context, rng)

    # ------------------------------------------------------------------
    # Memoisation
    # ------------------------------------------------------------------
    def _memo_key(self, context: AttackContext) -> tuple:
        """Memo-table key: the context's :meth:`~AttackContext.cache_key` plus
        the ``conservative`` flag (which changes the scoring rule, so the two
        attacker variants must never share an entry — e.g. in the shared memo
        of :class:`repro.batch.expectation.ExactExpectationBatchAttacker`)."""
        return (self.conservative, context.cache_key())

    def _cached_decide(
        self, context: AttackContext, rng: np.random.Generator | None = None
    ) -> Interval:
        key = self._memo_key(context)
        cached = self._cache.get(key)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        decision = self._decide(context, rng)
        self._cache[key] = decision
        return decision

    # ------------------------------------------------------------------
    # Decision procedure
    # ------------------------------------------------------------------
    def _decide(self, context: AttackContext, rng: np.random.Generator | None = None) -> Interval:
        candidates = candidate_intervals(context, self.grid_positions)
        if len(candidates) == 1:
            return candidates[0]
        scores = [self._expected_final_width(candidate, context) for candidate in candidates]
        return self._select(candidates, scores, rng)

    def _select(
        self,
        candidates: Sequence[Interval],
        scores: Sequence[float],
        rng: np.random.Generator | None,
    ) -> Interval:
        """Pick the best-scoring candidate, resolving ties per ``tie_break``."""
        best_score = max(scores)
        # Several placements are frequently tied (attacking symmetrically to
        # the left or to the right of what has been seen gives the same
        # expected width); pick uniformly among the ties so the attacker does
        # not systematically favour one side across rounds.
        ties = [
            candidate
            for score, candidate in zip(scores, candidates)
            if score >= best_score - TIE_TOLERANCE
        ]
        if self.tie_break == "random" and rng is not None and len(ties) > 1:
            return ties[int(rng.integers(0, len(ties)))]
        return ties[0]

    def _expected_final_width(self, candidate: Interval, context: AttackContext) -> float:
        """Expected fusion width after the rest of the round plays out."""
        admissibility = check_admissible(candidate, context)
        if not admissibility.admissible:
            return -np.inf
        if (
            self.conservative
            and admissibility.mode is AttackerMode.ACTIVE
            and support_point(candidate, context.transmitted, context.n - context.f - 1) is None
        ):
            return -np.inf
        protected = context.protected_points
        if admissibility.mode is AttackerMode.ACTIVE and admissibility.support is not None:
            protected = protected + (admissibility.support,)

        widths_total = 0.0
        count = 0
        for scenario in self._future_scenarios(context):
            final = self._play_out(candidate, context, scenario, protected)
            if final is None:
                continue
            widths_total += final
            count += 1
        if count == 0:
            return -np.inf
        return widths_total / count

    def _feasible_true_region(self, context: AttackContext) -> Interval:
        """Where the true value can be, given Δ and the seen correct intervals."""
        pieces = [context.delta, *context.seen_correct_intervals]
        try:
            return intersect_all(pieces)
        except Exception:
            # Seen correct intervals always contain the true value and so does
            # Δ, so the intersection cannot actually be empty; the fallback is
            # purely defensive.
            return context.delta

    def _future_scenarios(self, context: AttackContext) -> Iterator[list[tuple[float, bool, Interval | None]]]:
        """Yield scenarios for the sensors transmitting after the current slot.

        Each scenario is a list (in schedule order) of tuples
        ``(width, compromised, interval_or_None)`` where correct sensors get a
        concrete interval and compromised sensors get ``None`` (their interval
        is decided recursively during play-out).
        """
        region = self._feasible_true_region(context)
        remaining = list(zip(context.remaining_widths, context.remaining_compromised))
        if not remaining:
            yield []
            return
        for true_value in _linspace(region.lo, region.hi, self.true_value_positions):
            yield from self._scenarios_for_true_value(remaining, true_value, 0, [])

    def _scenarios_for_true_value(
        self,
        remaining: Sequence[tuple[float, bool]],
        true_value: float,
        index: int,
        acc: list[tuple[float, bool, Interval | None]],
    ) -> Iterator[list[tuple[float, bool, Interval | None]]]:
        if index == len(remaining):
            yield list(acc)
            return
        width, compromised = remaining[index]
        if compromised:
            acc.append((width, True, None))
            yield from self._scenarios_for_true_value(remaining, true_value, index + 1, acc)
            acc.pop()
            return
        for lo in _linspace(true_value - width, true_value, self.placement_positions):
            acc.append((width, False, Interval(lo, lo + width)))
            yield from self._scenarios_for_true_value(remaining, true_value, index + 1, acc)
            acc.pop()

    def _play_out(
        self,
        candidate: Interval,
        context: AttackContext,
        scenario: Sequence[tuple[float, bool, Interval | None]],
        protected: tuple[float, ...],
    ) -> float | None:
        """Simulate the remainder of the round for one scenario.

        Returns the final fusion width, or ``None`` if the scenario leads to a
        configuration with no fusion interval (which cannot happen for
        feasible scenarios and is treated as "skip").
        """
        transmitted = list(context.transmitted) + [candidate]
        transmitted_compromised = list(context.transmitted_compromised) + [True]
        own_readings = self._own_reading_guess(context)

        for position, (width, compromised, interval) in enumerate(scenario):
            if not compromised:
                assert interval is not None
                transmitted.append(interval)
                transmitted_compromised.append(False)
                continue
            remaining_tail = scenario[position + 1 :]
            sub_context = AttackContext(
                n=context.n,
                f=context.f,
                slot_index=context.slot_index + 1 + position,
                sensor_index=-1,
                width=width,
                own_reading=own_readings,
                delta=context.delta,
                transmitted=tuple(transmitted),
                transmitted_compromised=tuple(transmitted_compromised),
                remaining_widths=tuple(w for w, _c, _i in remaining_tail),
                remaining_compromised=tuple(c for _w, c, _i in remaining_tail),
                protected_points=protected,
            )
            decision = self._cached_decide(sub_context)
            sub_admissibility = check_admissible(decision, sub_context)
            if sub_admissibility.mode is AttackerMode.ACTIVE and sub_admissibility.support is not None:
                protected = protected + (sub_admissibility.support,)
            transmitted.append(decision)
            transmitted_compromised.append(True)

        fusion = fuse_or_none(transmitted, context.f)
        if fusion is None:
            return None
        return fusion.width

    def _own_reading_guess(self, context: AttackContext) -> Interval:
        """Stand-in reading for later compromised sensors inside the lookahead.

        The attacker controls those sensors, so their correct readings contain
        the true value and intersect Δ; using Δ itself keeps the recursion
        admissible without widening the attacker's assumed knowledge.
        """
        return context.delta
