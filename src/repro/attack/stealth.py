"""Stealth constraints: the passive/active mode machinery of Section III-A.

The controller discards any interval that does not intersect the fusion
interval, so an attacker who wants to stay undetected must guarantee overlap
with the fusion interval *before* knowing where it will end up.  The paper
gives her two ways of doing that:

* **Passive mode** — always available.  The forged interval must contain
  ``Δ`` (the intersection of the compromised sensors' correct readings).
  Since ``Δ`` contains the true value and the true value is covered by all
  ``n - fa >= n - f`` correct intervals, any interval containing ``Δ`` is
  guaranteed to intersect the fusion interval.

* **Active mode** — available once at least ``n - f - far`` measurements have
  been broadcast, where ``far`` is the number of not-yet-sent compromised
  intervals (the current one included).  The forged interval then only needs
  to share a point with at least ``n - f - far`` of the already-broadcast
  intervals: together with the attacker's remaining ``far - 1`` compromised
  intervals (which she will place over the same point) that point reaches a
  coverage of ``n - f``, hence lies in the fusion interval.  The point relied
  upon becomes a *protection obligation* for the remaining compromised slots.

The functions in this module are pure predicates/utilities so that every
attack policy — greedy, expectation-maximising, omniscient — goes through the
exact same admissibility rules, and those rules can be unit- and
property-tested in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

from repro.attack.context import AttackContext
from repro.core.exceptions import StealthViolationError
from repro.core.interval import Interval
from repro.core.marzullo import coverage_profile

__all__ = [
    "AttackerMode",
    "Admissibility",
    "active_mode_available",
    "required_support",
    "passive_admissible",
    "active_admissible",
    "check_admissible",
    "is_admissible",
    "support_point",
]


class AttackerMode(Enum):
    """The stealth mode under which a forged interval is admissible."""

    PASSIVE = "passive"
    ACTIVE = "active"


@dataclass(frozen=True)
class Admissibility:
    """Result of an admissibility check.

    Attributes
    ----------
    admissible:
        Whether the candidate can be sent without risking detection.
    mode:
        The mode justifying the placement (``None`` if inadmissible).
    support:
        For active-mode placements, the point of the candidate whose coverage
        guarantees stealth; remaining compromised intervals must keep
        covering it.  ``None`` for passive placements.
    reason:
        Human-readable explanation when the candidate is inadmissible.
    """

    admissible: bool
    mode: AttackerMode | None = None
    support: float | None = None
    reason: str = ""


def active_mode_available(context: AttackContext) -> bool:
    """Return ``True`` if the attacker may use active mode in this slot."""
    return context.n_transmitted >= required_support(context)


def required_support(context: AttackContext) -> int:
    """Number of already-broadcast intervals an active placement must touch.

    This is ``n - f - far``; when it is zero or negative the active-mode
    placement is unconstrained (any point already has enough guaranteed
    future support from the attacker's own remaining intervals).
    """
    return context.n - context.f - context.unsent_compromised_count


def passive_admissible(candidate: Interval, context: AttackContext) -> bool:
    """Passive-mode test: the candidate must contain all of ``Δ``.

    Any excluded point of ``Δ`` might be the true value, in which case the
    fusion interval could shrink onto it and the forged interval would be
    flagged — hence the entire ``Δ`` must be included.
    """
    return candidate.contains_interval(context.delta) and _covers_protected(candidate, context)


def _covers_protected(candidate: Interval, context: AttackContext) -> bool:
    """The candidate must keep covering points earlier forgeries rely on."""
    return all(candidate.contains(point) for point in context.protected_points)


def support_point(candidate: Interval, transmitted: Sequence[Interval], required: int) -> float | None:
    """Return a point of ``candidate`` covered by at least ``required`` transmitted intervals.

    Returns ``None`` if no such point exists.  When ``required <= 0`` the
    candidate's centre is returned (any point works).
    """
    if required <= 0:
        return candidate.center
    best_point: float | None = None
    best_coverage = -1
    for segment in coverage_profile(transmitted):
        if segment.coverage < required:
            continue
        # Intersect the coverage segment with the candidate.
        lo = max(segment.lo, candidate.lo)
        hi = min(segment.hi, candidate.hi)
        if hi < lo:
            continue
        if segment.coverage > best_coverage:
            best_coverage = segment.coverage
            # Prefer the point of the overlap closest to the candidate centre,
            # which keeps the protection obligation as easy to honour as
            # possible for the remaining compromised intervals.
            best_point = min(max(candidate.center, lo), hi)
    return best_point


def active_admissible(candidate: Interval, context: AttackContext) -> float | None:
    """Active-mode test; returns the support point or ``None`` if inadmissible."""
    if not active_mode_available(context):
        return None
    if not _covers_protected(candidate, context):
        return None
    return support_point(candidate, context.transmitted, required_support(context))


def check_admissible(candidate: Interval, context: AttackContext) -> Admissibility:
    """Full admissibility check returning mode and support information."""
    if passive_admissible(candidate, context):
        return Admissibility(admissible=True, mode=AttackerMode.PASSIVE)
    support = active_admissible(candidate, context)
    if support is not None:
        return Admissibility(admissible=True, mode=AttackerMode.ACTIVE, support=support)
    if not _covers_protected(candidate, context):
        return Admissibility(
            admissible=False,
            reason="candidate drops a point an earlier compromised interval relies on",
        )
    if not active_mode_available(context):
        return Admissibility(
            admissible=False,
            reason=(
                "passive mode requires the candidate to contain Δ and active mode is not yet "
                f"available ({context.n_transmitted} < n - f - far = {required_support(context)})"
            ),
        )
    return Admissibility(
        admissible=False,
        reason=(
            "active mode requires a point of the candidate covered by at least "
            f"{required_support(context)} already-broadcast intervals"
        ),
    )


def is_admissible(candidate: Interval, context: AttackContext) -> bool:
    """Boolean shorthand for :func:`check_admissible`."""
    return check_admissible(candidate, context).admissible


def ensure_admissible(candidate: Interval, context: AttackContext) -> Admissibility:
    """Like :func:`check_admissible` but raises on inadmissible candidates."""
    result = check_admissible(candidate, context)
    if not result.admissible:
        raise StealthViolationError(
            f"forged interval {candidate} is not stealthy: {result.reason}"
        )
    return result
