"""``python -m repro`` dispatches to :mod:`repro.cli`."""

import sys

from repro.cli import main

sys.exit(main())
