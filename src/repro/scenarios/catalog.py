"""The built-in scenario catalogue: every paper artifact plus new workloads.

Registered on import of :mod:`repro.scenarios`:

* ``table1-row1`` … ``table1-row8`` — the eight Table I configurations at
  Monte-Carlo scale under the greedy stretch attacker (batch engine), plus
  ``table1-expectation`` (all rows under the exact problem (2) attacker) and
  ``table1-smoke`` (a small-budget row for CI and quick runs);
* ``table2-proxy`` / ``table2-exact`` / ``table2-scalar`` — the platoon case
  study under the vectorized proxy attacker, the exact expectation attacker
  (the ROADMAP PR-3 follow-up; see the ``table2-exact-vs-proxy`` report), and
  the scalar coarse-grid oracle;
* ``fig1-marzullo`` … ``fig5-schedule-examples`` — the deterministic figure
  artifacts (:mod:`repro.scenarios.figures`);
* ``ablation-*`` — the five ablation sweeps that previously lived only in
  ``benchmarks/bench_ablation_*.py``, re-expressed over the engine seam;
* ``optimize-*`` — schedule-search workloads over the :mod:`repro.optimize`
  strategies: exhaustive sweeps of every Table I row plus annealing/bandit
  demos on a larger seven-sensor space (``docs/OPTIMIZATION.md``);
* ``sweep-*`` — new workloads beyond the paper: multi-fault ``fa`` grids,
  transient sensor dropout, and heterogeneous-noise length grids;
* ``sweep-lossy-*`` — fusion over a lossy broadcast channel
  (:mod:`repro.channel`): i.i.d. and Gilbert–Elliott loss, delivery delay
  and retransmission budgets (``docs/CHANNELS.md``).

Paper numbers quoted in descriptions come from
:mod:`repro.analysis.experiments` (`TABLE1_CONFIGURATIONS` /
`TABLE2_PAPER_RESULTS`), the single source of truth for them.
"""

from __future__ import annotations

from repro.analysis.experiments import TABLE1_CONFIGURATIONS, table1_row_name
from repro.channel import ChannelSpec
from repro.scenarios.registry import register_scenario
from repro.scenarios.spec import (
    CaseStudyScenario,
    ComparisonCase,
    ComparisonScenario,
    FigureScenario,
    OptimizationScenario,
)

__all__ = ["register_builtin_scenarios"]

#: LandShark sensor widths (encoder, encoder, GPS, camera) used by the
#: trust-schedule and attacked-sensor ablations.
LANDSHARK_WIDTHS = (0.2, 0.2, 1.0, 2.0)


def _table1_scenarios() -> list[ComparisonScenario]:
    scenarios = []
    for index, entry in enumerate(TABLE1_CONFIGURATIONS):
        scenarios.append(
            ComparisonScenario(
                name=table1_row_name(index),
                description=(
                    f"Table I row {index + 1}: n={entry.n}, fa={entry.fa}, L={entry.lengths} "
                    f"(paper: ascending {entry.paper_ascending}, descending "
                    f"{entry.paper_descending}) under the greedy stretch attacker"
                ),
                engine="batch",
                tags=("paper", "table1"),
                cases=(
                    ComparisonCase(
                        label=f"n{entry.n}-fa{entry.fa}",
                        lengths=entry.lengths,
                        fa=entry.fa,
                    ),
                ),
            )
        )
    scenarios.append(
        ComparisonScenario(
            name="table1-expectation",
            description=(
                "All eight Table I rows under the exact problem (2) expectation "
                "attacker (vectorized on the batch engine); smaller budget — exact "
                "decisions cost more per round"
            ),
            engine="batch",
            tags=("paper", "table1", "expectation"),
            samples=2_000,
            shard_samples=500,
            cases=tuple(
                ComparisonCase(
                    label=f"row{index + 1}-n{entry.n}-fa{entry.fa}",
                    lengths=entry.lengths,
                    fa=entry.fa,
                    attack="expectation",
                )
                for index, entry in enumerate(TABLE1_CONFIGURATIONS)
            ),
        )
    )
    first = TABLE1_CONFIGURATIONS[0]
    scenarios.append(
        ComparisonScenario(
            name="table1-smoke",
            description=(
                "Small-budget Table I row 1 — the CI smoke scenario (4 shards, "
                "seconds on one core)"
            ),
            engine="batch",
            tags=("smoke", "table1"),
            samples=20_000,
            shard_samples=5_000,
            cases=(
                ComparisonCase(label=f"n{first.n}-fa{first.fa}", lengths=first.lengths, fa=first.fa),
            ),
        )
    )
    return scenarios


def _table2_scenarios() -> list[CaseStudyScenario]:
    return [
        CaseStudyScenario(
            name="table2-proxy",
            description=(
                "Table II platoon case study, vectorized expectation-proxy attacker "
                "(paper: ascending 0/0, descending 17.42/17.65, random 5.72/5.97 %)"
            ),
            attacker="proxy",
            tags=("paper", "table2"),
        ),
        CaseStudyScenario(
            name="table2-exact",
            description=(
                "Table II under the exact problem (2) attacker "
                "(ExactExpectationBatchAttacker on the scalar oracle's coarse grid); "
                "compare with the proxy via `python -m repro report table2-exact-vs-proxy`"
            ),
            attacker="exact",
            n_steps=100,
            n_replicas=8,
            shard_replicas=2,
            tags=("paper", "table2", "expectation"),
        ),
        CaseStudyScenario(
            name="table2-scalar",
            description=(
                "Table II on the scalar reference stack (coarse-grid expectation "
                "policy) at the pinned regression scale"
            ),
            engine="scalar",
            attacker="expectation-grid",
            n_steps=60,
            n_vehicles=2,
            tags=("paper", "table2", "oracle"),
        ),
    ]


def _figure_scenarios() -> list[FigureScenario]:
    description = {
        "fig1-marzullo": "Figure 1 — Marzullo's fusion interval for f = 0, 1, 2",
        "fig2-no-optimal-policy": (
            "Figure 2 — with partial knowledge no attack placement is optimal for "
            "every realisation of the unseen interval"
        ),
        "fig3-theorem1": "Figure 3 — the two optimal-attack cases of Theorem 1",
        "fig4-worst-case": "Figure 4 / Theorems 3 & 4 — worst case per attacked set",
        "fig5-schedule-examples": (
            "Figure 5 — hand-built examples where each schedule beats the other"
        ),
    }
    return [
        FigureScenario(name=key, description=text, figure=key, tags=("paper", "figure"))
        for key, text in description.items()
    ]


def _ablation_scenarios() -> list:
    return [
        ComparisonScenario(
            name="ablation-fault-bound",
            description=(
                "Sensitivity to the fault bound f: larger f inflates the fusion "
                "interval (the price of resilience)"
            ),
            engine="batch",
            tags=("ablation",),
            samples=50_000,
            shard_samples=12_500,
            cases=tuple(
                ComparisonCase(
                    label=f"f={f}",
                    lengths=(0.5, 1.0, 2.0, 4.0, 8.0),
                    fa=1,
                    f=f,
                    schedules=("descending",),
                )
                for f in (1, 2)
            ),
        ),
        ComparisonScenario(
            name="ablation-attacked-sensor",
            description=(
                "Theorem 4 at Monte-Carlo scale: attacking a more precise LandShark "
                "sensor yields a wider expected fusion interval"
            ),
            engine="batch",
            tags=("ablation",),
            samples=50_000,
            shard_samples=12_500,
            cases=tuple(
                ComparisonCase(
                    label=label,
                    lengths=LANDSHARK_WIDTHS,
                    fa=1,
                    attacked_indices=(sensor,),
                    schedules=("descending",),
                )
                for label, sensor in (
                    ("encoder (most precise)", 0),
                    ("gps", 2),
                    ("camera (least precise)", 3),
                )
            ),
        ),
        ComparisonScenario(
            name="ablation-attacker-strength",
            description=(
                "Attacker sophistication sweep on Table I row 1 under Descending: "
                "truthful < stretch < exact expectation"
            ),
            engine="batch",
            tags=("ablation", "expectation"),
            samples=4_000,
            shard_samples=1_000,
            cases=tuple(
                ComparisonCase(
                    label=attack,
                    lengths=(5.0, 11.0, 17.0),
                    fa=1,
                    attack=attack,
                    schedules=("descending",),
                )
                for attack in ("truthful", "stretch", "expectation")
            ),
        ),
        ComparisonScenario(
            name="ablation-trust-schedule",
            description=(
                "Discussion-section scheduling: GPS attacked — trust-aware (most "
                "spoofable first) vs the precision-only orders, exact expectation attacker"
            ),
            engine="batch",
            tags=("ablation", "expectation"),
            samples=2_000,
            shard_samples=500,
            cases=(
                ComparisonCase(
                    label="gps-attacked",
                    lengths=LANDSHARK_WIDTHS,
                    fa=1,
                    attacked_indices=(2,),
                    attack="expectation",
                    schedules=(
                        "descending",
                        "ascending",
                        "trust-aware:0.1,0.1,1.0,0.8",
                    ),
                ),
            ),
        ),
        FigureScenario(
            name="ablation-baseline-fusion",
            description=(
                "Marzullo / Brooks–Iyengar vs naive mean/median under a spoofed "
                "encoder: interval fusion bounds the estimate error, the mean "
                "degrades linearly with the bias"
            ),
            figure="ablation-baseline-fusion",
            tags=("ablation",),
        ),
    ]


def _optimize_scenarios() -> list[OptimizationScenario]:
    """Schedule-search workloads (:mod:`repro.optimize`, ``docs/OPTIMIZATION.md``).

    ``optimize-table1-rowN`` sweeps row N's schedule space exhaustively and
    reports the optimum against the paper's ascending/descending orderings;
    the ``optimize-anneal-7`` / ``optimize-bandit-7`` pair demonstrates the
    budgeted strategies on a larger seven-sensor space where exhaustive
    enumeration is still available as ground truth.
    """
    scenarios = []
    for index, entry in enumerate(TABLE1_CONFIGURATIONS):
        scenarios.append(
            OptimizationScenario(
                name=f"optimize-{table1_row_name(index)}",
                description=(
                    f"Exhaustive schedule search over Table I row {index + 1} "
                    f"(n={entry.n}, fa={entry.fa}, L={entry.lengths}) vs the paper's "
                    f"ascending/descending orderings"
                ),
                tags=("optimize", "table1"),
                strategy="exhaustive",
                case=ComparisonCase(
                    label=f"n{entry.n}-fa{entry.fa}",
                    lengths=entry.lengths,
                    fa=entry.fa,
                ),
            )
        )
    seven = ComparisonCase(
        label="n7-fa1",
        lengths=(5.0, 5.0, 5.0, 8.0, 11.0, 14.0, 17.0),
        fa=1,
    )
    scenarios.append(
        OptimizationScenario(
            name="optimize-anneal-7",
            description=(
                "Simulated annealing on a seven-sensor space (840 distinct "
                "schedules) — the budgeted strategy demo; exhaustive ground "
                "truth stays feasible for cross-checks"
            ),
            tags=("optimize", "demo"),
            strategy="anneal",
            case=seven,
        )
    )
    scenarios.append(
        OptimizationScenario(
            name="optimize-bandit-7",
            description=(
                "Successive-halving bandit on the same seven-sensor space: "
                "16 seeded arms, 4 rungs of doubling budgets"
            ),
            tags=("optimize", "demo"),
            strategy="bandit",
            case=seven,
        )
    )
    return scenarios


def _sweep_scenarios() -> list[ComparisonScenario]:
    return [
        ComparisonScenario(
            name="sweep-multi-fault",
            description=(
                "Beyond the paper: a seven-sensor grid swept over fa = 1..3 "
                "simultaneously attacked sensors (f = 3)"
            ),
            engine="batch",
            tags=("sweep",),
            samples=50_000,
            shard_samples=12_500,
            cases=tuple(
                ComparisonCase(
                    label=f"fa={fa}",
                    lengths=(5.0, 5.0, 5.0, 8.0, 11.0, 14.0, 17.0),
                    fa=fa,
                )
                for fa in (1, 2, 3)
            ),
        ),
        ComparisonScenario(
            name="sweep-sensor-dropout",
            description=(
                "Beyond the paper: transient sensor dropout — honest intervals "
                "displaced off the truth with increasing probability, on top of one "
                "attacked sensor (empty fusions tracked via the valid fraction)"
            ),
            engine="batch",
            tags=("sweep", "faults"),
            samples=50_000,
            shard_samples=12_500,
            cases=tuple(
                ComparisonCase(
                    label=f"p={probability:g}",
                    lengths=(5.0, 5.0, 5.0, 5.0, 20.0),
                    fa=1,
                    fault_probability=probability,
                )
                for probability in (0.0, 0.05, 0.15)
            ),
        ),
        ComparisonScenario(
            name="sweep-hetero-noise",
            description=(
                "Beyond the paper: homogeneous vs increasingly heterogeneous "
                "interval-length grids at equal total width"
            ),
            engine="batch",
            tags=("sweep",),
            samples=50_000,
            shard_samples=12_500,
            cases=(
                ComparisonCase(label="homogeneous", lengths=(8.0, 8.0, 8.0, 8.0, 8.0), fa=1),
                ComparisonCase(label="mild", lengths=(4.0, 6.0, 8.0, 10.0, 12.0), fa=1),
                ComparisonCase(label="extreme", lengths=(1.0, 2.0, 4.0, 16.0, 17.0), fa=1),
            ),
        ),
    ]


def _lossy_scenarios() -> list[ComparisonScenario]:
    """The ``sweep-lossy-*`` family: fusion under a lossy broadcast channel.

    Each case pairs a schedule grid with a :class:`repro.channel.ChannelSpec`
    — i.i.d. loss, Gilbert–Elliott bursts, or delivery delay — crossed with
    a retransmission budget.  They run on the fused engine (the lossy
    multi-slot leg is the ``benchmarks/bench_lossy.py`` workload) and their
    payload rows carry the ``channel_dropped`` / ``channel_retransmits``
    counters; findings are written up in ``docs/CHANNELS.md``.
    """
    lengths = (5.0, 5.0, 5.0, 8.0, 11.0, 14.0, 17.0)
    return [
        ComparisonScenario(
            name="sweep-lossy-iid",
            description=(
                "Beyond the paper: Table I style sweep under i.i.d. message loss "
                "crossed with a retransmission budget — how much of the "
                "descending advantage survives an unreliable bus"
            ),
            engine="fused",
            tags=("sweep", "channel"),
            samples=50_000,
            shard_samples=12_500,
            cases=tuple(
                ComparisonCase(
                    label=f"loss={loss:g}-retx={budget}",
                    lengths=lengths,
                    fa=1,
                    channel=ChannelSpec(model="iid", loss=loss, retransmit_budget=budget),
                )
                for loss in (0.05, 0.15, 0.3)
                for budget in (0, 2)
            ),
        ),
        ComparisonScenario(
            name="sweep-lossy-burst",
            description=(
                "Gilbert–Elliott burst loss at ~15% average rate vs the matched "
                "i.i.d. channel: bursts wipe out adjacent slots, so schedules "
                "that cluster precise sensors suffer disproportionately"
            ),
            engine="fused",
            tags=("sweep", "channel"),
            samples=50_000,
            shard_samples=12_500,
            cases=(
                ComparisonCase(
                    label="iid-matched",
                    lengths=lengths,
                    fa=1,
                    channel=ChannelSpec(model="iid", loss=0.15, retransmit_budget=1),
                ),
                ComparisonCase(
                    label="burst",
                    lengths=lengths,
                    fa=1,
                    channel=ChannelSpec(
                        model="gilbert-elliott",
                        good_to_bad=0.1,
                        bad_to_good=0.5,
                        loss_good=0.02,
                        loss_bad=0.7,
                        retransmit_budget=1,
                    ),
                ),
            ),
        ),
        ComparisonScenario(
            name="sweep-lossy-delay",
            description=(
                "Delivery delay without loss: late intervals hide earlier "
                "transmissions from the attacker (shrinking its support region) "
                "but also miss fusion when they slip past the round end"
            ),
            engine="fused",
            tags=("sweep", "channel"),
            samples=50_000,
            shard_samples=12_500,
            cases=tuple(
                ComparisonCase(
                    label=f"delay={delay:g}",
                    lengths=lengths,
                    fa=1,
                    channel=ChannelSpec(model="iid", delay=delay, max_delay=2),
                )
                for delay in (0.1, 0.3, 0.6)
            ),
        ),
        ComparisonScenario(
            name="sweep-lossy-smoke",
            description=(
                "Small-budget lossy-channel scenario — the CI smoke run for the "
                "channel path (loss, delay and retransmission all exercised)"
            ),
            engine="fused",
            tags=("smoke", "channel"),
            samples=8_000,
            shard_samples=2_000,
            cases=(
                ComparisonCase(
                    label="lossy-smoke",
                    lengths=(5.0, 11.0, 17.0, 8.0, 14.0),
                    fa=1,
                    channel=ChannelSpec(
                        model="iid", loss=0.2, delay=0.1, max_delay=2, retransmit_budget=1
                    ),
                ),
            ),
        ),
    ]


def register_builtin_scenarios() -> None:
    """Register the full catalogue (idempotent via ``replace=True``)."""
    for spec in (
        *_table1_scenarios(),
        *_table2_scenarios(),
        *_figure_scenarios(),
        *_ablation_scenarios(),
        *_optimize_scenarios(),
        *_sweep_scenarios(),
        *_lossy_scenarios(),
    ):
        register_scenario(spec, replace=True)


register_builtin_scenarios()
