"""The scenario registry: named, pre-populated, extensible.

Mirrors the engine registry (:mod:`repro.engine.base`): a flat name → spec
mapping with loud failures on collisions and unknown names.  The catalogue
of built-in scenarios (:mod:`repro.scenarios.catalog`) registers itself when
:mod:`repro.scenarios` is imported; third-party code can add its own specs
with :func:`register_scenario` and they become reachable from
``python -m repro run`` immediately.
"""

from __future__ import annotations

import difflib
from typing import Iterable

from repro.core.exceptions import ExperimentError
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "register_scenario",
    "get_scenario",
    "available_scenarios",
    "list_scenarios",
    "near_misses",
]

_SCENARIOS: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Register ``spec`` under its own name; returns the spec for chaining."""
    if not isinstance(spec, ScenarioSpec):
        raise ExperimentError(f"expected a ScenarioSpec, got {type(spec).__name__}")
    if spec.name in _SCENARIOS and not replace:
        raise ExperimentError(
            f"scenario {spec.name!r} is already registered (pass replace=True)"
        )
    _SCENARIOS[spec.name] = spec
    return spec


def near_misses(name: str, candidates: Iterable[str], limit: int = 3) -> list[str]:
    """Close matches for a mistyped name, for did-you-mean error messages."""
    return difflib.get_close_matches(name, list(candidates), n=limit, cutoff=0.5)


def _unknown_name_message(name: str) -> str:
    close = near_misses(name, available_scenarios())
    hint = f"; did you mean: {', '.join(close)}?" if close else ""
    return (
        f"unknown scenario {name!r}{hint} "
        "(run `python -m repro list` for the full catalogue)"
    )


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name.

    An unknown name raises with the closest registered names (a
    did-you-mean hint) instead of dumping the whole catalogue — the CLI
    turns this into its non-zero exit path.
    """
    spec = _SCENARIOS.get(name)
    if spec is None:
        raise ExperimentError(_unknown_name_message(name))
    return spec


def available_scenarios() -> tuple[str, ...]:
    """Names of all registered scenarios, sorted."""
    return tuple(sorted(_SCENARIOS))


def list_scenarios(tag: str | None = None, kind: str | None = None) -> tuple[ScenarioSpec, ...]:
    """All registered specs (sorted by name), optionally filtered by tag/kind."""
    specs = (_SCENARIOS[name] for name in available_scenarios())
    return tuple(
        spec
        for spec in specs
        if (tag is None or tag in spec.tags) and (kind is None or spec.kind == kind)
    )
