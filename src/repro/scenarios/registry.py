"""The scenario registry: named, pre-populated, extensible.

Mirrors the engine registry (:mod:`repro.engine.base`): a flat name → spec
mapping with loud failures on collisions and unknown names.  The catalogue
of built-in scenarios (:mod:`repro.scenarios.catalog`) registers itself when
:mod:`repro.scenarios` is imported; third-party code can add its own specs
with :func:`register_scenario` and they become reachable from
``python -m repro run`` immediately.
"""

from __future__ import annotations

from repro.core.exceptions import ExperimentError
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "register_scenario",
    "get_scenario",
    "available_scenarios",
    "list_scenarios",
]

_SCENARIOS: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Register ``spec`` under its own name; returns the spec for chaining."""
    if not isinstance(spec, ScenarioSpec):
        raise ExperimentError(f"expected a ScenarioSpec, got {type(spec).__name__}")
    if spec.name in _SCENARIOS and not replace:
        raise ExperimentError(
            f"scenario {spec.name!r} is already registered (pass replace=True)"
        )
    _SCENARIOS[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name (raises with the catalogue on miss)."""
    spec = _SCENARIOS.get(name)
    if spec is None:
        raise ExperimentError(
            f"unknown scenario {name!r}; run `python -m repro list` or see "
            f"available_scenarios(): {', '.join(available_scenarios())}"
        )
    return spec


def available_scenarios() -> tuple[str, ...]:
    """Names of all registered scenarios, sorted."""
    return tuple(sorted(_SCENARIOS))


def list_scenarios(tag: str | None = None, kind: str | None = None) -> tuple[ScenarioSpec, ...]:
    """All registered specs (sorted by name), optionally filtered by tag/kind."""
    specs = (_SCENARIOS[name] for name in available_scenarios())
    return tuple(
        spec
        for spec in specs
        if (tag is None or tag in spec.tags) and (kind is None or spec.kind == kind)
    )
