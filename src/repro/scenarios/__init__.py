"""Declarative scenario subsystem: experiments as data.

See ``docs/SCENARIOS.md`` for the full subsystem contract (spec schema,
registry, runner guarantees, store layout).  Importing this package
registers the built-in catalogue (:mod:`repro.scenarios.catalog`), so

    from repro.scenarios import get_scenario
    from repro.runner import run_scenario

    result = run_scenario(get_scenario("table1-row1"), workers=8)

is all it takes to reproduce a paper artifact.
"""

from repro.scenarios import catalog as _catalog  # noqa: F401  (registers the catalogue)
from repro.scenarios.registry import (
    available_scenarios,
    get_scenario,
    list_scenarios,
    near_misses,
    register_scenario,
)
from repro.scenarios.spec import (
    CaseStudyScenario,
    ComparisonCase,
    ComparisonScenario,
    FigureScenario,
    OptimizationScenario,
    ScenarioSpec,
    schedule_from_spec,
    spec_dict,
    spec_key,
)

__all__ = [
    "ScenarioSpec",
    "ComparisonCase",
    "ComparisonScenario",
    "CaseStudyScenario",
    "FigureScenario",
    "OptimizationScenario",
    "schedule_from_spec",
    "spec_dict",
    "spec_key",
    "register_scenario",
    "get_scenario",
    "available_scenarios",
    "list_scenarios",
    "near_misses",
]
