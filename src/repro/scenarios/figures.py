"""Deterministic paper artifacts as registered figure functions.

Each entry of :data:`FIGURES` regenerates one illustrative artifact of the
paper — Figures 1–5 and the baseline-fusion ablation — as a JSON-serialisable
payload: structured values plus ready-to-print tables (``tables`` is a list
of ``{title, headers, rows}`` dicts the CLI renders with
:func:`repro.analysis.report.format_table`).  The computations mirror the
corresponding ``benchmarks/bench_fig*.py`` drivers; the scenario layer makes
them addressable (``python -m repro run fig1-marzullo``) and cacheable in the
artifact store like every Monte-Carlo scenario.

Figure functions take the scenario's derived generator; most artifacts are
fully deterministic and ignore it.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.analysis.experiments import (
    figure1_intervals,
    figure2_configuration,
    figure5a_configuration,
    figure5b_configuration,
)
from repro.attack import ExpectationPolicy, optimal_fusion_width
from repro.attack.theorem1 import (
    Theorem1Inputs,
    case1_applies,
    case1_placements,
    case2_applies,
    case2_placements,
)
from repro.core import Interval, brooks_iyengar, fuse, mean_fusion, median_fusion
from repro.core.worst_case import worst_case_no_attack, worst_case_over_attacked_sets
from repro.scheduling import (
    AscendingSchedule,
    DescendingSchedule,
    RoundConfig,
    correct_placement_grid,
    run_round,
)
from repro.sensors import SensorSuite, UniformNoise, sensors_from_widths
from repro.viz import LabeledInterval, render_fusion_figure

__all__ = ["FIGURES"]


def _interval_dict(interval: Interval) -> dict:
    return {"lo": float(interval.lo), "hi": float(interval.hi), "width": float(interval.width)}


def fig1_marzullo(rng: np.random.Generator) -> dict:
    """Figure 1 — the fusion interval grows with ``f`` on one configuration."""
    intervals = figure1_intervals()
    fusions = {f: fuse(intervals, f) for f in (0, 1, 2)}
    sensors = [LabeledInterval(f"s{i + 1}", s) for i, s in enumerate(intervals)]
    labelled = [LabeledInterval(f"S(f={f})", fusion) for f, fusion in fusions.items()]
    return {
        "sensors": [_interval_dict(s) for s in intervals],
        "fusions": {str(f): _interval_dict(fusion) for f, fusion in fusions.items()},
        "ascii": render_fusion_figure(sensors, labelled),
        "tables": [
            {
                "title": "Figure 1 — fusion interval for f = 0, 1, 2",
                "headers": ["f", "fusion lo", "fusion hi", "width"],
                "rows": [
                    [str(f), f"{fusion.lo:.2f}", f"{fusion.hi:.2f}", f"{fusion.width:.2f}"]
                    for f, fusion in fusions.items()
                ],
            }
        ],
    }


def fig2_no_optimal_policy(rng: np.random.Generator) -> dict:
    """Figure 2 — no placement of ``a1`` is optimal for every unseen ``s2``."""
    config = figure2_configuration()
    s1 = config["s1"]
    width = config["attacked_width"]
    f = config["f"]
    commitments = {
        "attack right": Interval(s1.hi, s1.hi + width),
        "attack left": Interval(s1.lo - width, s1.lo),
        "attack both sides": Interval.from_center(s1.center, width),
    }
    realisations = {"s2 left": config["s2_left"], "s2 right": config["s2_right"]}
    regrets: dict[str, dict[str, float]] = {}
    rows = []
    for label, forged in commitments.items():
        regrets[label] = {}
        cells = [label]
        for name, s2 in realisations.items():
            achieved = fuse([s1, s2, forged], f).width
            optimum = optimal_fusion_width([s1, s2], [width], f)
            regrets[label][name] = float(optimum - achieved)
            cells.append(f"{achieved:.2f} (opt {optimum:.2f})")
        rows.append(cells)
    return {
        "regrets": regrets,
        "no_commitment_is_universally_optimal": all(
            max(per.values()) > 1e-9 for per in regrets.values()
        ),
        "tables": [
            {
                "title": "Figure 2 — regret of committing before seeing s2",
                "headers": ["commitment of a1", *realisations],
                "rows": rows,
            }
        ],
    }


def _theorem1_case(inputs: Theorem1Inputs, placements, true_value: float) -> dict:
    rows = []
    all_optimal = True
    unseen_width = inputs.unseen_correct_widths[0]
    for unseen in correct_placement_grid(unseen_width, true_value, positions=9):
        correct = list(inputs.seen_correct) + [unseen]
        achieved = fuse(correct + list(placements), inputs.f).width
        optimum = optimal_fusion_width(correct, list(inputs.attacked_widths), inputs.f)
        all_optimal &= abs(achieved - optimum) < 1e-9
        rows.append([f"[{unseen.lo:.2f}, {unseen.hi:.2f}]", f"{achieved:.3f}", f"{optimum:.3f}"])
    return {"rows": rows, "all_optimal": bool(all_optimal)}


def fig3_theorem1(rng: np.random.Generator) -> dict:
    """Figure 3 — both Theorem 1 cases achieve the full-knowledge optimum."""
    case1 = Theorem1Inputs(
        n=4,
        f=1,
        seen_correct=(Interval(4.0, 6.0), Interval(4.0, 6.0)),
        delta=Interval(4.5, 5.5),
        attacked_widths=(8.0,),
        unseen_correct_widths=(1.0,),
    )
    case2 = Theorem1Inputs(
        n=4,
        f=1,
        seen_correct=(Interval(2.0, 6.0), Interval(5.0, 9.0)),
        delta=Interval(5.2, 5.8),
        attacked_widths=(8.0,),
        unseen_correct_widths=(0.1,),
    )
    assert case1_applies(case1) and case2_applies(case2)
    verdict1 = _theorem1_case(case1, case1_placements(case1), true_value=5.0)
    verdict2 = _theorem1_case(case2, case2_placements(case2), true_value=5.5)
    headers = ["realisation of unseen s3", "achieved width", "optimal width"]
    return {
        "case1_optimal": verdict1["all_optimal"],
        "case2_optimal": verdict2["all_optimal"],
        "tables": [
            {"title": "Figure 3(a) / Theorem 1 case 1", "headers": headers, "rows": verdict1["rows"]},
            {"title": "Figure 3(b) / Theorem 1 case 2", "headers": headers, "rows": verdict2["rows"]},
        ],
    }


def fig4_worst_case(rng: np.random.Generator) -> dict:
    """Figure 4 / Theorems 3 & 4 — worst case per attacked set."""
    widths = [2.0, 4.0, 8.0]
    f = 1
    resolution = 0.5
    baseline = worst_case_no_attack(widths, f, resolution=resolution)
    per_set = worst_case_over_attacked_sets(widths, fa=1, f=f, resolution=resolution)
    rows = [["no attack", f"{baseline.width:.2f}"]]
    by_attacked = {}
    for attacked, result in sorted(per_set.items()):
        label = ", ".join(f"width {widths[i]:g}" for i in attacked)
        by_attacked[",".join(str(i) for i in attacked)] = float(result.width)
        rows.append([f"attack {label}", f"{result.width:.2f}"])
    return {
        "widths": widths,
        "f": f,
        "no_attack_width": float(baseline.width),
        "worst_case_by_attacked_set": by_attacked,
        "tables": [
            {
                "title": f"Figure 4 / Theorems 3 & 4 — widths {widths}, f = {f}",
                "headers": ["configuration", "worst-case fusion width"],
                "rows": rows,
            }
        ],
    }


def _fig5_example(correct, f: int) -> dict[str, float]:
    widths = {}
    for schedule in (AscendingSchedule(), DescendingSchedule()):
        result = run_round(
            list(correct),
            RoundConfig(
                schedule=schedule, attacked_indices=(0,), policy=ExpectationPolicy(), f=f
            ),
            np.random.default_rng(0),
        )
        widths[schedule.name] = float(result.fusion_width)
    return widths


def fig5_schedule_examples(rng: np.random.Generator) -> dict:
    """Figure 5 — hand-built examples where each schedule beats the other."""
    config_a = figure5a_configuration()
    widths_a = _fig5_example(
        [config_a["attacked_reading"], *config_a["correct"]], config_a["f"]
    )
    config_b = figure5b_configuration()
    widths_b = _fig5_example(
        [config_b["attacked_reading"], *config_b["correct_small"], config_b["correct_large"]],
        config_b["f"],
    )
    rows = [
        ["5(a)", f"{widths_a['ascending']:.2f}", f"{widths_a['descending']:.2f}"],
        ["5(b)", f"{widths_b['ascending']:.2f}", f"{widths_b['descending']:.2f}"],
    ]
    return {
        "fig5a": widths_a,
        "fig5b": widths_b,
        "ascending_better_in_5a": widths_a["ascending"] < widths_a["descending"],
        "descending_no_worse_in_5b": widths_b["descending"] <= widths_b["ascending"],
        "tables": [
            {
                "title": "Figure 5 — neither schedule dominates every configuration",
                "headers": ["example", "ascending width", "descending width"],
                "rows": rows,
            }
        ],
    }


def ablation_baseline_fusion(rng: np.random.Generator) -> dict:
    """Marzullo / Brooks–Iyengar vs naive baselines under a spoofed encoder."""
    widths = [0.2, 0.2, 1.0, 2.0]  # encoder, encoder, GPS, camera
    spoofed = 0
    true_value = 10.0
    rounds = 300
    suite = SensorSuite(sensors_from_widths(widths, noise=UniformNoise()))
    estimators = ("marzullo midpoint", "brooks-iyengar", "median", "mean")
    stats: dict[str, dict[str, float]] = {}
    for bias in (0.5, 2.0, 10.0):
        errors: dict[str, list[float]] = {name: [] for name in estimators}
        for _ in range(rounds):
            readings = suite.measure_all(true_value, rng)
            intervals = [reading.interval for reading in readings]
            intervals[spoofed] = intervals[spoofed].shift(bias)
            result = brooks_iyengar(intervals, 1)
            errors["marzullo midpoint"].append(abs(result.interval.center - true_value))
            errors["brooks-iyengar"].append(abs(result.estimate - true_value))
            errors["median"].append(abs(median_fusion(intervals).center - true_value))
            errors["mean"].append(abs(mean_fusion(intervals).center - true_value))
        stats[f"{bias:g}"] = {name: float(np.mean(values)) for name, values in errors.items()}
    return {
        "mean_abs_error_by_bias": stats,
        "tables": [
            {
                "title": (
                    f"Mean |estimate - truth| (mph) over {rounds} rounds — LandShark widths, "
                    "one encoder spoofed, f = 1"
                ),
                "headers": ["spoofed encoder bias", *estimators],
                "rows": [
                    [f"bias = {bias} mph", *(f"{per[name]:.3f}" for name in estimators)]
                    for bias, per in stats.items()
                ],
            }
        ],
    }


#: Registered figure functions, keyed by the :class:`FigureScenario.figure` field.
FIGURES: dict[str, Callable[[np.random.Generator], dict]] = {
    "fig1-marzullo": fig1_marzullo,
    "fig2-no-optimal-policy": fig2_no_optimal_policy,
    "fig3-theorem1": fig3_theorem1,
    "fig4-worst-case": fig4_worst_case,
    "fig5-schedule-examples": fig5_schedule_examples,
    "ablation-baseline-fusion": ablation_baseline_fusion,
}
