"""Declarative experiment specifications: experiments as frozen data.

A *scenario* is everything needed to reproduce one experiment of the paper's
evaluation (or one of the repository's extension workloads) as a frozen
dataclass: which engine backend runs it, which attack spec drives it, the
configuration grid, the sample budget, and — crucially — the base seed and
the shard layout.  Because the shard layout and the per-shard seed derivation
(:mod:`repro.utils.seeding` spawn keys) are part of the *spec*, not of the
executor, a scenario's output is a pure function of its spec: the runner
(:mod:`repro.runner`) produces bit-identical results for ``workers=1`` and
``workers=8``, and the artifact store can address results by the spec's
content hash (:func:`spec_key`).

Three scenario kinds cover the paper and the extension workloads:

* :class:`ComparisonScenario` — Table I style schedule sweeps; one or more
  :class:`ComparisonCase` grid points, each a ``(lengths, fa, schedules,
  attack, faults)`` configuration run through
  :meth:`repro.engine.base.Engine.run_rounds`;
* :class:`CaseStudyScenario` — the Table II platoon case study, with the
  attacker selected by name (``"proxy"``, ``"exact"``, or the scalar
  ``"expectation-grid"`` oracle);
* :class:`FigureScenario` — deterministic paper artifacts (Figures 1–5 and
  the baseline-fusion ablation) computed by a registered figure function
  (:mod:`repro.scenarios.figures`);
* :class:`OptimizationScenario` — a schedule *search* over one
  configuration case: a strategy from the :mod:`repro.optimize` registry
  (``exhaustive`` / ``anneal`` / ``bandit``) proposes candidate
  transmission orders and evaluates them through the engine seam, and the
  payload reports the best-found schedule against the paper's fixed
  orderings (``docs/OPTIMIZATION.md``).

The registry of named scenarios lives in :mod:`repro.scenarios.registry`,
the pre-populated catalogue in :mod:`repro.scenarios.catalog`, and the whole
subsystem is documented in ``docs/SCENARIOS.md``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import ClassVar

from repro.batch.rounds import BatchTransientFaults
from repro.channel import ChannelSpec, channel_spec_from_dict
from repro.core.exceptions import ExperimentError
from repro.engine.base import check_channel_support, resolve_attack
from repro.scheduling.comparison import ScheduleComparisonConfig
from repro.scheduling.schedule import (
    FixedSchedule,
    Schedule,
    TrustAwareSchedule,
    schedule_by_name,
)

__all__ = [
    "SCHEMA_VERSION",
    "SPEC_VERSION",
    "CHANNEL_SPEC_VERSION",
    "SUPPORTED_SPEC_VERSIONS",
    "ComparisonCase",
    "ScenarioSpec",
    "ComparisonScenario",
    "CaseStudyScenario",
    "FigureScenario",
    "OptimizationScenario",
    "schedule_from_spec",
    "spec_dict",
    "spec_from_dict",
    "spec_key",
]

#: Bumped whenever the serialised spec layout changes incompatibly; part of
#: the content hash, so old artifact-store entries invalidate themselves.
SCHEMA_VERSION = 1

#: Version of the *wire format* :func:`spec_dict` speaks — the JSON shape
#: the serving layer (:mod:`repro.serve`) accepts on ``POST /v1/run``.
#: Unlike :data:`SCHEMA_VERSION` it is **not** part of the content hash:
#: version 1 payloads omit the ``spec_version`` field entirely (absent
#: implies 1, and every pre-existing ``results/store/`` hash stays valid),
#: and :func:`spec_from_dict` tolerates an explicit ``spec_version: 1``.
#: A future incompatible wire layout bumps this constant, starts emitting
#: the field, and teaches the reader the new shape.
SPEC_VERSION = 1

#: Wire version a payload needs before it may carry a lossy-channel spec.
#: Channel-free payloads keep speaking (and hashing as) version 1 — the
#: field only appears on specs that would be misread by a pre-channel
#: build, which is exactly the versioning contract above.
CHANNEL_SPEC_VERSION = 2

#: Wire-format versions :func:`spec_from_dict` can read.
SUPPORTED_SPEC_VERSIONS = (1, CHANNEL_SPEC_VERSION)

#: Attackers a :class:`CaseStudyScenario` can name, per engine family.
CASE_STUDY_ATTACKERS = ("proxy", "exact", "expectation-grid")


def schedule_from_spec(text: str) -> Schedule:
    """Build a :class:`~repro.scheduling.schedule.Schedule` from its spec string.

    Scenario specs carry schedules as strings so they stay hashable and
    JSON-serialisable: ``"ascending"`` / ``"descending"`` / ``"random"``,
    ``"fixed:2,0,1"`` (an explicit permutation), or
    ``"trust-aware:0.5,1.0,2.0"`` (per-sensor spoofability scores).
    """
    kind, _, argument = text.partition(":")
    kind = kind.strip().lower()
    if kind == "fixed":
        if not argument:
            raise ExperimentError("a fixed schedule spec needs a permutation, e.g. 'fixed:2,0,1'")
        return FixedSchedule(tuple(int(part) for part in argument.split(",")))
    if kind == "trust-aware":
        if not argument:
            raise ExperimentError(
                "a trust-aware schedule spec needs spoofability scores, e.g. 'trust-aware:0.5,1,2'"
            )
        return TrustAwareSchedule(tuple(float(part) for part in argument.split(",")))
    return schedule_by_name(kind)


@dataclass(frozen=True)
class ComparisonCase:
    """One grid point of a Table I style scenario.

    ``label`` names the point in reports; the remaining fields mirror
    :class:`~repro.scheduling.comparison.ScheduleComparisonConfig` plus the
    engine-route attack spec and an optional transient-fault model.  All
    fields are primitives, so a case is hashable, picklable across worker
    processes, and JSON-serialisable for the artifact store.
    """

    label: str
    lengths: tuple[float, ...]
    fa: int
    f: int | None = None
    attacked_indices: tuple[int, ...] | None = None
    attack: str = "stretch"
    schedules: tuple[str, ...] = ("ascending", "descending")
    fault_probability: float = 0.0
    fault_min_offset_widths: float = 1.0
    fault_max_offset_widths: float = 3.0
    #: Optional lossy-channel model (:class:`repro.channel.ChannelSpec`);
    #: ``None`` is the perfect bus and serialises to nothing, so channel-free
    #: specs keep their pre-channel content hashes.
    channel: ChannelSpec | None = None

    def __post_init__(self) -> None:
        if not self.schedules:
            raise ExperimentError(f"case {self.label!r} needs at least one schedule")
        if self.channel is not None and not isinstance(self.channel, ChannelSpec):
            raise ExperimentError(
                f"case {self.label!r}: channel must be a ChannelSpec or None, "
                f"got {type(self.channel).__name__}"
            )
        # Fail at registration time, not mid-run on a worker: the engine
        # config, attack spec, schedule strings, fault model and channel
        # pairing all validate their own fields.
        self.comparison_config()
        check_channel_support(resolve_attack(self.attack), self.channel)
        self.schedule_objects()
        self.faults()

    def comparison_config(self) -> ScheduleComparisonConfig:
        """The engine-layer configuration for this grid point."""
        return ScheduleComparisonConfig(
            lengths=tuple(float(length) for length in self.lengths),
            fa=self.fa,
            f=self.f,
            attacked_indices=self.attacked_indices,
        )

    def schedule_objects(self) -> tuple[Schedule, ...]:
        """The schedule instances named by :attr:`schedules`."""
        return tuple(schedule_from_spec(text) for text in self.schedules)

    def faults(self) -> BatchTransientFaults | None:
        """The transient-fault model, or ``None`` when faults are disabled."""
        if self.fault_probability == 0.0:
            return None
        return BatchTransientFaults(
            probability=self.fault_probability,
            min_offset_widths=self.fault_min_offset_widths,
            max_offset_widths=self.fault_max_offset_widths,
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """Fields shared by every scenario kind.

    Attributes
    ----------
    name:
        Registry name (also the CLI spelling: ``python -m repro run NAME``).
    engine:
        Simulation backend, resolved through the :mod:`repro.engine`
        registry; ``None`` uses the (env-overridable) default backend, which
        the runner pins into the spec — and therefore into the content hash
        — before executing, so two ``REPRO_ENGINE`` sessions never share a
        store entry.
    seed:
        Base seed.  Every shard derives its stream with
        :func:`repro.utils.seeding.derive_rng` spawn keys, so the full
        result is a pure function of the spec.
    tags:
        Free-form labels for CLI filtering (``python -m repro list --tag``).
    """

    name: str
    description: str = ""
    engine: str | None = None
    seed: int = 2014
    tags: tuple[str, ...] = ()

    #: Discriminator used in serialised specs and the runner dispatch.
    kind: ClassVar[str] = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ExperimentError("a scenario needs a non-empty name")


@dataclass(frozen=True)
class ComparisonScenario(ScenarioSpec):
    """A Table I style schedule sweep over one or more configuration cases.

    ``samples`` is the Monte-Carlo budget *per case*; the runner splits it
    into shards of at most ``shard_samples`` rounds.  The shard layout is a
    pure function of ``(samples, shard_samples)``, which is what makes runs
    worker-count invariant.
    """

    cases: tuple[ComparisonCase, ...] = ()
    samples: int = 100_000
    shard_samples: int = 25_000

    kind: ClassVar[str] = "comparison"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.cases:
            raise ExperimentError(f"comparison scenario {self.name!r} needs at least one case")
        if self.samples <= 0:
            raise ExperimentError(f"samples must be positive, got {self.samples}")
        if self.shard_samples <= 0:
            raise ExperimentError(f"shard_samples must be positive, got {self.shard_samples}")
        labels = [case.label for case in self.cases]
        if len(set(labels)) != len(labels):
            raise ExperimentError(f"comparison scenario {self.name!r} has duplicate case labels")


@dataclass(frozen=True)
class CaseStudyScenario(ScenarioSpec):
    """The Table II platoon case study as a scenario.

    ``attacker`` selects the attack implementation by name:

    * ``"proxy"`` — the vectorized
      :class:`~repro.batch.rounds.ExpectationProxyBatchAttacker` (batch
      engine; the fast default, validated at the statistics level);
    * ``"exact"`` — the exact problem (2) attacker
      (:class:`repro.batch.expectation.ExactExpectationBatchAttacker`) on
      the ``expectation_grid`` resolution (batch engine);
    * ``"expectation-grid"`` — the scalar coarse-grid
      :class:`~repro.attack.expectation.ExpectationPolicy` oracle (scalar
      engine; slow, the reference).

    Batch case studies shard over platoon replicas (chunks of
    ``shard_replicas``); the scalar oracle shards one task per schedule.
    """

    engine: str | None = "batch"
    attacker: str = "proxy"
    n_steps: int = 200
    n_vehicles: int = 3
    n_replicas: int = 32
    shard_replicas: int = 8
    attacked_sensor: str | int = "random"
    schedules: tuple[str, ...] = ("ascending", "descending", "random")
    expectation_grid: tuple[int, int, int] = (2, 2, 7)

    kind: ClassVar[str] = "case-study"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.attacker not in CASE_STUDY_ATTACKERS:
            raise ExperimentError(
                f"unknown case-study attacker {self.attacker!r}; "
                f"expected one of {CASE_STUDY_ATTACKERS}"
            )
        # The case-study runner has exactly one implementation per attacker,
        # each welded to its engine — reject every other pairing so an
        # `--engine` override can never store an artifact whose embedded spec
        # names a backend that did not actually execute.
        required_engine = "scalar" if self.attacker == "expectation-grid" else "batch"
        if self.engine != required_engine:
            raise ExperimentError(
                f"attacker={self.attacker!r} runs on engine={required_engine!r} only, "
                f"got engine={self.engine!r} (the scalar oracle is attacker="
                "'expectation-grid'; 'proxy'/'exact' are batch attackers)"
            )
        for field_name in ("n_steps", "n_vehicles", "n_replicas", "shard_replicas"):
            if getattr(self, field_name) <= 0:
                raise ExperimentError(
                    f"{field_name} must be positive, got {getattr(self, field_name)}"
                )
        if not self.schedules:
            raise ExperimentError(f"case-study scenario {self.name!r} needs at least one schedule")
        if len(set(self.schedules)) != len(self.schedules):
            raise ExperimentError(
                f"case-study scenario {self.name!r} has duplicate schedule specs"
            )
        for text in self.schedules:
            schedule_from_spec(text)
        self.case_study_config()  # validates attacked_sensor eagerly

    def case_study_config(self):
        """The :class:`~repro.vehicle.case_study.CaseStudyConfig` this spec implies."""
        from repro.vehicle.case_study import CaseStudyConfig

        return CaseStudyConfig(
            n_steps=self.n_steps,
            n_vehicles=self.n_vehicles,
            attacked_sensor=self.attacked_sensor,
            seed=self.seed,
        )


@dataclass(frozen=True)
class FigureScenario(ScenarioSpec):
    """A deterministic paper artifact computed by a registered figure function.

    ``figure`` names an entry of :data:`repro.scenarios.figures.FIGURES`;
    the function receives a generator derived from :attr:`seed` and returns a
    JSON-serialisable payload.
    """

    figure: str = ""

    kind: ClassVar[str] = "figure"

    def __post_init__(self) -> None:
        super().__post_init__()
        from repro.scenarios.figures import FIGURES

        if self.figure not in FIGURES:
            raise ExperimentError(
                f"unknown figure function {self.figure!r}; available: {', '.join(sorted(FIGURES))}"
            )


@dataclass(frozen=True)
class OptimizationScenario(ScenarioSpec):
    """A schedule search over one configuration case (:mod:`repro.optimize`).

    ``case`` fixes the physics — lengths, attacked set, attack spec, fault
    model — and its ``schedules`` field names the *baseline* orderings the
    best-found schedule is reported against (the paper's fixed orderings;
    they must be deterministic, so ``"random"`` is rejected).  ``strategy``
    selects the optimizer from the :mod:`repro.optimize` registry and the
    ``anneal_*`` / ``bandit_*`` fields parameterise it; irrelevant fields
    are inert but stay part of the content hash like every other field.

    Budget semantics: every candidate measurement is ``samples``
    Monte-Carlo rounds (bandit rungs use halved budgets until the final
    rung), sharded into ``shard_samples`` chunks whose RNG streams derive
    statelessly from ``(seed, canonical permutation, shard)`` — so a
    candidate's measured width is a pure function of the spec and the
    candidate, identical across strategies, engines, worker counts and
    shard packing (`Engine.run_many` bit-identity).
    """

    engine: str | None = "batch"
    strategy: str = "exhaustive"
    case: ComparisonCase | None = None
    samples: int = 20_000
    shard_samples: int = 5_000
    shard_candidates: int = 64
    max_candidates: int = 40_320
    anneal_steps: int = 150
    anneal_initial_temperature: float = 0.5
    anneal_cooling: float = 0.97
    bandit_population: int = 16
    bandit_rounds: int = 4

    kind: ClassVar[str] = "optimization"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.case is None:
            raise ExperimentError(f"optimization scenario {self.name!r} needs a case")
        for field_name in ("samples", "shard_samples", "shard_candidates", "max_candidates"):
            if getattr(self, field_name) <= 0:
                raise ExperimentError(
                    f"{field_name} must be positive, got {getattr(self, field_name)}"
                )
        for field_name in ("anneal_steps", "bandit_population", "bandit_rounds"):
            if getattr(self, field_name) < 1:
                raise ExperimentError(
                    f"{field_name} must be at least 1, got {getattr(self, field_name)}"
                )
        if self.anneal_initial_temperature <= 0:
            raise ExperimentError(
                f"anneal_initial_temperature must be positive, got {self.anneal_initial_temperature}"
            )
        if not 0 < self.anneal_cooling <= 1:
            raise ExperimentError(
                f"anneal_cooling must be in (0, 1], got {self.anneal_cooling}"
            )
        # Baselines must name deterministic orderings: each is reduced to a
        # fixed permutation and evaluated exactly like a search candidate.
        for text in self.case.schedules:
            kind, _, _ = text.partition(":")
            if kind.strip().lower() == "random":
                raise ExperimentError(
                    f"optimization scenario {self.name!r}: baseline schedules must be "
                    "deterministic orderings (ascending/descending/fixed/trust-aware); "
                    "'random' is not a fixed permutation to optimize against"
                )
        # The optimizer registry validates the strategy (with did-you-mean
        # hints), and the exhaustive strategy guards its candidate count —
        # both eagerly, at registration time, like every other spec field.
        from repro.optimize import get_optimizer

        get_optimizer(self.strategy).validate(self)


def spec_dict(spec: ScenarioSpec) -> dict:
    """Serialise a spec to plain JSON types (the store's canonical form).

    This is also the wire format the serving layer speaks; see
    :data:`SPEC_VERSION` for how the format is versioned without
    invalidating stored content hashes, and :func:`spec_from_dict` for the
    tolerant reader.
    """
    payload = dataclasses.asdict(spec)
    payload["kind"] = spec.kind
    payload["schema"] = SCHEMA_VERSION
    version = max(SPEC_VERSION, _strip_default_channels(payload))
    if version != 1:
        # v1 is implied by absence so v1 hashes never change; only payloads
        # a pre-channel build would misread mark themselves explicitly.
        payload["spec_version"] = version
    return payload


def _strip_default_channels(payload: dict) -> int:
    """Drop ``channel: None`` from serialised cases; report the wire version.

    ``dataclasses.asdict`` emits the :attr:`ComparisonCase.channel` default
    into every case dict.  Stripping the ``None`` entries keeps channel-free
    payloads byte-identical to their pre-channel serialisation (and hence
    keeps every stored :func:`spec_key` valid); a case that *does* carry a
    channel promotes the payload to :data:`CHANNEL_SPEC_VERSION`.
    """
    version = 1
    cases = list(payload.get("cases") or ())
    if payload.get("case") is not None:
        cases.append(payload["case"])
    for case in cases:
        if not isinstance(case, dict):
            continue
        if case.get("channel") is None:
            case.pop("channel", None)
        else:
            version = CHANNEL_SPEC_VERSION
    return version


#: Scenario kinds the tolerant reader can reconstruct.
_SPEC_KINDS: dict[str, type[ScenarioSpec]] = {
    ComparisonScenario.kind: ComparisonScenario,
    CaseStudyScenario.kind: CaseStudyScenario,
    FigureScenario.kind: FigureScenario,
    OptimizationScenario.kind: OptimizationScenario,
}

#: Tuple-valued fields that JSON round-trips as lists.
_TUPLE_FIELDS = {
    "tags",
    "schedules",
    "lengths",
    "attacked_indices",
    "expectation_grid",
    "cases",
}


def _tuplify(name: str, value):
    if value is None or name not in _TUPLE_FIELDS:
        return value
    return tuple(value)


def _case_from_dict(payload: dict, version: int = CHANNEL_SPEC_VERSION) -> ComparisonCase:
    if not isinstance(payload, dict):
        raise ExperimentError(f"a comparison case must be an object, got {type(payload).__name__}")
    fields = {field.name for field in dataclasses.fields(ComparisonCase)}
    unknown = sorted(set(payload) - fields)
    if unknown:
        raise ExperimentError(f"comparison case carries unknown fields: {', '.join(unknown)}")
    values = {name: _tuplify(name, value) for name, value in payload.items()}
    if values.get("channel") is not None:
        if version < CHANNEL_SPEC_VERSION:
            raise ExperimentError(
                "a comparison case with a channel requires "
                f"spec_version {CHANNEL_SPEC_VERSION}; version-{version} payloads "
                "predate the lossy-channel wire format"
            )
        values["channel"] = channel_spec_from_dict(values["channel"])
    return ComparisonCase(**values)


def spec_from_dict(payload: dict) -> ScenarioSpec:
    """Rebuild a :class:`ScenarioSpec` from its :func:`spec_dict` form.

    The tolerant reader behind the serving layer's wire format:

    * ``spec_version`` may be absent (implies version 1) or any member of
      :data:`SUPPORTED_SPEC_VERSIONS`; anything else is rejected with the
      supported list, so an old server fails loudly on a future client.
    * ``schema`` and ``kind`` bookkeeping keys are honoured, list-valued
      fields come back as the tuples the frozen dataclasses expect, and the
      dataclass validation (``__post_init__``) runs eagerly — a malformed
      spec never reaches an engine.
    * Unknown fields are rejected by name (a typo diagnosis, not a silent
      drop).

    Round-trip guarantee: ``spec_from_dict(spec_dict(spec)) == spec`` (and
    therefore shares its :func:`spec_key`) for every registered scenario.
    """
    if not isinstance(payload, dict):
        raise ExperimentError(f"a scenario spec must be a JSON object, got {type(payload).__name__}")
    payload = dict(payload)
    version = payload.pop("spec_version", 1)
    if version not in SUPPORTED_SPEC_VERSIONS:
        raise ExperimentError(
            f"unsupported spec_version {version!r}; this build reads versions "
            f"{', '.join(str(v) for v in SUPPORTED_SPEC_VERSIONS)} "
            "(absent means 1)"
        )
    schema = payload.pop("schema", SCHEMA_VERSION)
    if schema != SCHEMA_VERSION:
        raise ExperimentError(
            f"unsupported spec schema {schema!r}; this build speaks schema {SCHEMA_VERSION}"
        )
    kind = payload.pop("kind", None)
    cls = _SPEC_KINDS.get(kind)
    if cls is None:
        raise ExperimentError(
            f"unknown scenario kind {kind!r}; expected one of {sorted(_SPEC_KINDS)}"
        )
    fields = {field.name for field in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - fields)
    if unknown:
        raise ExperimentError(
            f"{kind} spec carries unknown fields: {', '.join(unknown)}"
        )
    values = {name: _tuplify(name, value) for name, value in payload.items()}
    if cls is ComparisonScenario and "cases" in values:
        values["cases"] = tuple(_case_from_dict(case, version) for case in values["cases"])
    if cls is OptimizationScenario and values.get("case") is not None:
        values["case"] = _case_from_dict(values["case"], version)
    if cls is CaseStudyScenario and isinstance(values.get("attacked_sensor"), float):
        # JSON has one number type; an integral sensor index survives the trip.
        if values["attacked_sensor"].is_integer():
            values["attacked_sensor"] = int(values["attacked_sensor"])
    return cls(**values)


def spec_key(spec: ScenarioSpec) -> str:
    """Content-address of a spec: sha256 over its canonical JSON serialisation.

    Any field change — sample budget, seed, shard layout, engine, schema
    version — changes the key, which is how the artifact store invalidates
    stale results without bookkeeping.
    """
    canonical = json.dumps(spec_dict(spec), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
