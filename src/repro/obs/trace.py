"""Span tracing: thread-local collection scopes, no-op default, JSONL export.

Tracing is **off by default** and enabled by entering a
:func:`collect` scope::

    with obs.collect() as session:
        payload = run_scenario(spec, store=store)
        session.write_jsonl("trace.jsonl", meta={"scenario": spec.name})

Inside the scope, :func:`span` opens timed spans on a thread-local stack
(children attach to the innermost open span) and the metric helpers in
:mod:`repro.obs` record into the scope's :class:`~repro.obs.metrics.Registry`.
Outside any scope, :func:`span` returns a shared no-op context manager and
the metric helpers return immediately — instrumented hot paths cost a
thread-local read and a ``None`` check, nothing else
(``benchmarks/bench_obs.py`` gates the overhead).

Two properties are contractual:

- **RNG isolation.**  Timings come from :func:`time.perf_counter` (a
  monotonic clock); no telemetry code path touches ``numpy.random`` or any
  other entropy source, so simulated payloads are bit-identical with
  tracing on or off (``tests/obs/test_bit_identity.py``).
- **Worker-count invariance.**  A collection's :meth:`Session.snapshot` is
  plain picklable data; the runner opens one isolated scope per shard
  *inside* the worker (:func:`repro.runner.runner.execute_task_traced`) and
  grafts the snapshots back in plan order, so the merged span tree and all
  merged counter/histogram counts are identical for 1 or N workers
  (``tests/obs/test_worker_invariance.py``).

JSONL schema (one object per line):

- ``{"kind": "meta", "version": 1, ...}`` — first line, caller metadata;
- ``{"kind": "span", "span": {"name", "attrs", "duration_s", "children"}}``
  — one line per *root* span, children nested inline;
- ``{"kind": "counter"|"gauge", "name", "labels", "value"}``;
- ``{"kind": "histogram", "name", "labels", "bounds", "counts", "sum",
  "count"}`` — non-cumulative bucket counts, see
  :class:`repro.obs.metrics.Histogram`.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Iterator, Mapping

from repro.obs.metrics import Registry

__all__ = ["Collection", "Session", "collect", "enabled", "span", "event", "graft", "active"]

_STATE = threading.local()


def active() -> "Collection | None":
    """The innermost live collection on this thread, or ``None``."""
    return getattr(_STATE, "collection", None)


def enabled() -> bool:
    """True when a :func:`collect` scope is live on this thread."""
    return getattr(_STATE, "collection", None) is not None


class Collection:
    """A live telemetry scope: a registry plus a span tree under construction."""

    def __init__(self) -> None:
        self.registry = Registry()
        self.roots: list[dict] = []
        self._stack: list[dict] = []

    # -- span lifecycle -------------------------------------------------
    def start_span(self, name: str, attrs: dict) -> dict:
        node = {"name": name, "attrs": attrs, "duration_s": None, "children": [], "_start": perf_counter()}
        self._stack.append(node)
        return node

    def end_span(self, node: dict) -> None:
        node["duration_s"] = perf_counter() - node.pop("_start")
        popped = self._stack.pop()
        if popped is not node:  # pragma: no cover - misuse guard
            raise RuntimeError(f"span {popped['name']!r} closed out of order (expected {node['name']!r})")
        self._attach(node)

    def add_event(self, name: str, duration_s: float, attrs: dict) -> None:
        """Append an already-timed leaf span (safe across ``await`` points)."""
        self._attach({"name": name, "attrs": attrs, "duration_s": float(duration_s), "children": []})

    def _attach(self, node: dict) -> None:
        if self._stack:
            self._stack[-1]["children"].append(node)
        else:
            self.roots.append(node)

    # -- transport ------------------------------------------------------
    def snapshot(self) -> dict:
        """Picklable dump of finished spans and metrics (open spans excluded)."""
        return {"spans": [_strip(node) for node in self.roots], "metrics": self.registry.snapshot()}

    def graft(self, snapshot: Mapping) -> None:
        """Merge a shard :meth:`snapshot`: metrics exactly, spans as children
        of the innermost open span (or as roots), in call order — the runner
        calls this in plan order, which is what makes merged trees
        worker-count-invariant."""
        self.registry.merge(snapshot.get("metrics", {}))
        for node in snapshot.get("spans", ()):
            self._attach(dict(node))


def _strip(node: dict) -> dict:
    return {
        "name": node["name"],
        "attrs": node["attrs"],
        "duration_s": node["duration_s"],
        "children": [_strip(child) for child in node["children"]],
    }


class _NoopSpan:
    """Shared do-nothing span, returned whenever no collection is live."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopSpan()


class _Span:
    __slots__ = ("_collection", "_name", "_attrs", "_node")

    def __init__(self, collection: Collection, name: str, attrs: dict) -> None:
        self._collection = collection
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        self._node = self._collection.start_span(self._name, self._attrs)
        return self

    def __exit__(self, *exc) -> bool:
        self._collection.end_span(self._node)
        return False


def span(name: str, /, **attrs):
    """A timed span context manager; a shared no-op outside :func:`collect`."""
    collection = getattr(_STATE, "collection", None)
    if collection is None:
        return _NOOP
    return _Span(collection, name, attrs)


def event(name: str, duration_s: float, /, **attrs) -> None:
    """Record an already-timed leaf span (for async code, where a sync
    context manager spanning ``await`` points would interleave wrongly)."""
    collection = getattr(_STATE, "collection", None)
    if collection is not None:
        collection.add_event(name, duration_s, attrs)


def graft(snapshot: Mapping) -> None:
    """Merge a shard snapshot into the live collection (no-op when disabled)."""
    collection = getattr(_STATE, "collection", None)
    if collection is not None:
        collection.graft(snapshot)


class Session:
    """Handle yielded by :func:`collect`: snapshot access and JSONL export."""

    def __init__(self, collection: Collection) -> None:
        self.collection = collection

    @property
    def registry(self) -> Registry:
        return self.collection.registry

    def snapshot(self) -> dict:
        return self.collection.snapshot()

    def write_jsonl(self, path, meta: Mapping | None = None):
        """Write the trace artifact; returns the path written."""
        snapshot = self.snapshot()
        lines = [json.dumps({"kind": "meta", "version": 1, **(dict(meta) if meta else {})}, sort_keys=True)]
        lines.extend(json.dumps({"kind": "span", "span": node}, sort_keys=True) for node in snapshot["spans"])
        metrics = snapshot["metrics"]
        for row in metrics["counters"]:
            lines.append(json.dumps({"kind": "counter", **row}, sort_keys=True))
        for row in metrics["gauges"]:
            lines.append(json.dumps({"kind": "gauge", **row}, sort_keys=True))
        for row in metrics["histograms"]:
            lines.append(json.dumps({"kind": "histogram", **row}, sort_keys=True))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        return path


@contextmanager
def collect() -> Iterator[Session]:
    """Enable telemetry on this thread for the duration of the scope.

    Scopes nest: an inner ``collect()`` (a traced shard executing in-process
    on the ``workers=1`` path) shadows the outer one and restores it on
    exit, so per-shard telemetry stays isolated exactly as it would be in a
    pool worker.
    """
    previous = getattr(_STATE, "collection", None)
    collection = Collection()
    _STATE.collection = collection
    try:
        yield Session(collection)
    finally:
        _STATE.collection = previous
