"""``repro.obs`` — the unified telemetry layer (tracing + metrics).

One facade instruments all five execution layers — engines, runner shards,
the artifact store, the HTTP serving stack, and the schedule optimizer:

>>> from repro import obs
>>> with obs.collect() as session:            # enable telemetry (off by default)
...     with obs.span("engine.run", engine="fused"):
...         obs.add("repro_engine_samples_total", 100, engine="fused")
...         obs.observe("repro_engine_run_seconds", 0.25, engine="fused")
>>> session.snapshot()["spans"][0]["name"]
'engine.run'

Design rules (see ``docs/OBSERVABILITY.md`` for the full contract):

- **Zero dependencies, no-op by default.**  Outside a :func:`collect`
  scope every helper is a thread-local read and a ``None`` check;
  ``benchmarks/bench_obs.py`` gates the instrumented hot paths at <=5%
  overhead.
- **Never touches RNG.**  Timings come from monotonic clocks only, so
  payloads are bit-identical with telemetry on or off.
- **Exact merges.**  Counters add; histograms share fixed log-spaced bucket
  bounds so bucket-wise sums lose nothing; span snapshots graft in plan
  order — all merged telemetry is worker-count-invariant.

The always-on serve-layer metrics (request counters, latency histograms,
the Prometheus ``/v1/metrics`` exposition) use per-service
:class:`Registry` instances directly rather than the thread-local scope;
see :mod:`repro.serve.service`.
"""

from __future__ import annotations

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Registry,
    render_prometheus,
)
from repro.obs.trace import (
    Collection,
    Session,
    active,
    collect,
    enabled,
    event,
    graft,
    span,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "render_prometheus",
    "Collection",
    "Session",
    "active",
    "collect",
    "enabled",
    "event",
    "graft",
    "span",
    "add",
    "set_gauge",
    "observe",
]


def add(name: str, amount: float = 1.0, /, **labels: str) -> None:
    """Increment a counter in the live collection (no-op when disabled)."""
    collection = active()
    if collection is not None:
        collection.registry.counter(name, **labels).inc(amount)


def set_gauge(name: str, value: float, /, **labels: str) -> None:
    """Set a gauge in the live collection (no-op when disabled)."""
    collection = active()
    if collection is not None:
        collection.registry.gauge(name, **labels).set(value)


def observe(name: str, value: float, /, **labels: str) -> None:
    """Record a histogram observation in the live collection (no-op when disabled)."""
    collection = active()
    if collection is not None:
        collection.registry.histogram(name, **labels).observe(value)
