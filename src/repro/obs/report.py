"""The ``report perf`` view: per-layer timing/throughput from trace artifacts.

A trace artifact is the JSONL file written by ``python -m repro run NAME
--trace out.jsonl`` (schema in :mod:`repro.obs.trace`).  This module loads
it back, aggregates the span tree by span name — mapping the dotted prefix
to an execution layer (``runner.*``, ``engine.*``, ``store.*``,
``optimize.*``, ``serve.*``) — and renders a monospace table alongside the
recorded counters and histogram quantiles:

    $ python -m repro run table1-row4 --trace out.jsonl
    $ python -m repro report perf --trace out.jsonl

The payload is JSON-able (``--json`` prints it raw), so the same artifact
feeds dashboards and the tuning workflow described in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import math
import os
from typing import Iterable, Mapping

from repro.analysis.report import format_table
from repro.core.exceptions import ExperimentError
from repro.obs.metrics import Histogram

__all__ = ["load_trace", "build_perf_report", "render_perf_report"]


def load_trace(path) -> list[dict]:
    """Read a JSONL trace artifact; :class:`ExperimentError` on bad input."""
    if not path:
        raise ExperimentError(
            "report perf reads a trace artifact: pass --trace PATH "
            "(record one with `python -m repro run NAME --trace PATH`)"
        )
    if not os.path.exists(path):
        raise ExperimentError(
            f"trace artifact {path!r} does not exist "
            "(record one with `python -m repro run NAME --trace PATH`)"
        )
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ExperimentError(f"trace artifact {path!r} line {number} is not JSON: {error}") from error
            if not isinstance(record, Mapping) or "kind" not in record:
                raise ExperimentError(f"trace artifact {path!r} line {number} has no 'kind' field")
            records.append(dict(record))
    if not records:
        raise ExperimentError(f"trace artifact {path!r} is empty")
    return records


def _layer(name: str) -> str:
    return name.split(".", 1)[0] if "." in name else "other"


def _walk(spans: Iterable[Mapping], table: dict) -> None:
    for node in spans:
        row = table.setdefault(
            node["name"], {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        duration = float(node.get("duration_s") or 0.0)
        row["count"] += 1
        row["total_s"] += duration
        row["max_s"] = max(row["max_s"], duration)
        _walk(node.get("children", ()), table)


def build_perf_report(path) -> dict:
    """Aggregate a trace artifact into the ``report perf`` payload."""
    records = load_trace(path)
    meta = next((r for r in records if r["kind"] == "meta"), {})
    spans: dict[str, dict] = {}
    _walk((r["span"] for r in records if r["kind"] == "span"), spans)
    counters = [r for r in records if r["kind"] == "counter"]
    gauges = [r for r in records if r["kind"] == "gauge"]
    histograms = []
    for row in (r for r in records if r["kind"] == "histogram"):
        histogram = Histogram(row["name"], row["labels"], bounds=row["bounds"])
        histogram.counts = [int(c) for c in row["counts"]]
        histogram.count = int(row["count"])
        histogram.total = float(row["sum"])
        quantiles = {
            q: histogram.quantile(q) if histogram.count else math.nan for q in (0.5, 0.95, 0.99)
        }
        histograms.append(
            {
                "name": row["name"],
                "labels": row["labels"],
                "count": histogram.count,
                "mean_ms": (histogram.total / histogram.count * 1e3) if histogram.count else math.nan,
                "p50_ms": quantiles[0.5] * 1e3,
                "p95_ms": quantiles[0.95] * 1e3,
                "p99_ms": quantiles[0.99] * 1e3,
            }
        )

    samples = sum(
        float(row["value"]) for row in counters if row["name"] == "repro_engine_samples_total"
    )
    engine_seconds = sum(
        stats["total_s"] for name, stats in spans.items() if _layer(name) == "engine"
    )
    span_rows = [
        {
            "span": name,
            "layer": _layer(name),
            "count": stats["count"],
            "total_s": stats["total_s"],
            "mean_ms": stats["total_s"] / stats["count"] * 1e3,
            "max_ms": stats["max_s"] * 1e3,
        }
        for name, stats in sorted(spans.items(), key=lambda item: -item[1]["total_s"])
    ]
    return {
        "kind": "report",
        "report": "perf",
        "meta": {k: v for k, v in meta.items() if k != "kind"},
        "spans": span_rows,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "throughput": {
            "samples": samples,
            "engine_seconds": engine_seconds,
            "samples_per_second": samples / engine_seconds if engine_seconds else math.nan,
        },
    }


def _fmt(value: float, digits: int = 3) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "-"
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    return f"{value:.{digits}f}"


def render_perf_report(payload: Mapping) -> str:
    """Human-readable rendering of :func:`build_perf_report`'s payload."""
    sections = []
    if payload["spans"]:
        sections.append(
            format_table(
                ["span", "layer", "count", "total s", "mean ms", "max ms"],
                [
                    [
                        row["span"],
                        row["layer"],
                        row["count"],
                        _fmt(row["total_s"]),
                        _fmt(row["mean_ms"]),
                        _fmt(row["max_ms"]),
                    ]
                    for row in payload["spans"]
                ],
                title="per-span timings",
            )
        )
    if payload["counters"] or payload["gauges"]:
        sections.append(
            format_table(
                ["metric", "labels", "value"],
                [
                    [
                        row["name"],
                        ",".join(f"{k}={v}" for k, v in sorted(row["labels"].items())) or "-",
                        _fmt(float(row["value"]), 0),
                    ]
                    for row in [*payload["counters"], *payload["gauges"]]
                ],
                title="counters and gauges",
            )
        )
    if payload["histograms"]:
        sections.append(
            format_table(
                ["histogram", "labels", "count", "mean ms", "p50 ms", "p95 ms", "p99 ms"],
                [
                    [
                        row["name"],
                        ",".join(f"{k}={v}" for k, v in sorted(row["labels"].items())) or "-",
                        row["count"],
                        _fmt(row["mean_ms"]),
                        _fmt(row["p50_ms"]),
                        _fmt(row["p95_ms"]),
                        _fmt(row["p99_ms"]),
                    ]
                    for row in payload["histograms"]
                ],
                title="latency histograms",
            )
        )
    throughput = payload["throughput"]
    sections.append(
        "throughput: "
        f"{_fmt(throughput['samples'], 0)} samples in "
        f"{_fmt(throughput['engine_seconds'])} engine-seconds"
        + (
            f" ({_fmt(throughput['samples_per_second'], 0)} samples/s)"
            if throughput["samples"] and throughput["engine_seconds"]
            else ""
        )
    )
    return "\n\n".join(sections)
