"""Process-local metric primitives: counters, gauges, histograms, registry.

The metric model is deliberately tiny and dependency-free:

- a :class:`Counter` is a monotonically increasing float;
- a :class:`Gauge` is a last-write-wins float with a ``set_max`` helper for
  high-water marks;
- a :class:`Histogram` buckets observations into **fixed, log-spaced bucket
  bounds** (:data:`DEFAULT_BUCKETS`, three buckets per decade from 10 µs to
  100 s).  Fixed bounds are the load-bearing choice: two histograms of the
  same metric always share bounds, so merging snapshots is exact bucket-wise
  integer addition — shard telemetry merged by the runner is bit-identical
  no matter how many workers produced it.

A :class:`Registry` owns a set of metrics keyed by ``(name, labels)``.
Registries are process-local and cheap; the serve layer creates one per
:class:`~repro.serve.service.FusionService` so concurrent services (and
tests) never share counters, while traced runs create one per
:func:`repro.obs.trace.collect` scope.  ``snapshot()`` produces a plain
picklable/JSON-able dict and ``merge()`` folds such a snapshot back in —
the pair is the transport used to ship worker telemetry across the
process pool.

:func:`render_prometheus` renders one or more registries in the Prometheus
text exposition format (``text/plain; version=0.0.4``): counters as
``*_total`` samples, histograms as cumulative ``_bucket{le="..."}`` series
plus ``_sum``/``_count``.  No client library is involved; the format is
simple enough to emit directly.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Iterable, Mapping

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "render_prometheus",
]

#: Fixed log-spaced histogram bounds: three per decade, 1e-5 s .. 1e2 s.
#: Every histogram in the repo uses these bounds unless a caller overrides
#: them, which is what makes cross-shard merges exact (bucket-wise sums of
#: identically-bounded histograms lose nothing).
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    round(10.0 ** (exponent / 3.0), 10) for exponent in range(-15, 7)
)


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labels: Mapping[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = [*sorted((str(k), str(v)) for k, v in labels.items()), *extra]
    if not items:
        return ""
    escaped = (
        f'{key}="' + value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n") + '"'
        for key, value in items
    )
    return "{" + ",".join(escaped) + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing count (render suffix convention: ``_total``)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    kind = "counter"

    def __init__(self, name: str, labels: Mapping[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc({amount}))")
        with self._lock:
            self._value += amount


class Gauge:
    """A last-write-wins value; merges keep the maximum (high-water mark)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    kind = "gauge"

    def __init__(self, name: str, labels: Mapping[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def set_max(self, value: float) -> None:
        with self._lock:
            if value > self._value:
                self._value = float(value)


class Histogram:
    """Fixed-bound bucketed observations with exact merges.

    ``counts[i]`` holds observations ``<= bounds[i]`` (non-cumulative);
    ``counts[-1]`` is the overflow bucket.  Quantiles are estimated as the
    upper bound of the bucket containing the requested rank — coarse (three
    buckets per decade) but merge-stable: the estimate is a pure function
    of the bucket counts, so it is identical however the observations were
    sharded.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "total", "count", "_lock")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Mapping[str, str],
        bounds: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = dict(labels)
        self.bounds = tuple(float(bound) for bound in bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram {name!r} bounds must be sorted")
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.total += float(value)
            self.count += 1

    def quantile(self, q: float) -> float:
        """Upper bucket bound at rank ``q`` (0 < q <= 1); ``nan`` when empty."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile {q} outside (0, 1]")
        if self.count == 0:
            return math.nan
        rank = math.ceil(q * self.count)
        cumulative = 0
        for index, bucket in enumerate(self.counts):
            cumulative += bucket
            if cumulative >= rank:
                return self.bounds[index] if index < len(self.bounds) else math.inf
        return math.inf  # pragma: no cover - rank <= count by construction


class Registry:
    """A process-local collection of metrics keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, labels: Mapping[str, str], **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, labels, **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {type(metric).__name__}, "
                    f"requested {cls.__name__}"
                )
            return metric

    def counter(self, name: str, /, **labels: str) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, /, **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, /, buckets: Iterable[float] = DEFAULT_BUCKETS, **labels: str
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, bounds=buckets)

    def metrics(self) -> list:
        """All registered metrics in deterministic (name, labels) order."""
        with self._lock:
            return [self._metrics[key] for key in sorted(self._metrics)]

    def snapshot(self) -> dict:
        """A plain picklable/JSON-able dump, the merge/transport format."""
        counters, gauges, histograms = [], [], []
        for metric in self.metrics():
            if isinstance(metric, Counter):
                counters.append({"name": metric.name, "labels": metric.labels, "value": metric.value})
            elif isinstance(metric, Gauge):
                gauges.append({"name": metric.name, "labels": metric.labels, "value": metric.value})
            else:
                histograms.append(
                    {
                        "name": metric.name,
                        "labels": metric.labels,
                        "bounds": list(metric.bounds),
                        "counts": list(metric.counts),
                        "sum": metric.total,
                        "count": metric.count,
                    }
                )
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge(self, snapshot: Mapping) -> None:
        """Fold a :meth:`snapshot` back in; exact for counters and histograms."""
        for row in snapshot.get("counters", ()):
            self.counter(row["name"], **row["labels"]).inc(row["value"])
        for row in snapshot.get("gauges", ()):
            self.gauge(row["name"], **row["labels"]).set_max(row["value"])
        for row in snapshot.get("histograms", ()):
            histogram = self.histogram(row["name"], buckets=row["bounds"], **row["labels"])
            if list(histogram.bounds) != [float(b) for b in row["bounds"]]:
                raise ValueError(
                    f"histogram {row['name']!r} bucket bounds differ; merge would be lossy"
                )
            with histogram._lock:
                for index, bucket in enumerate(row["counts"]):
                    histogram.counts[index] += int(bucket)
                histogram.total += float(row["sum"])
                histogram.count += int(row["count"])


def render_prometheus(*registries: Registry) -> str:
    """Render registries in the Prometheus text exposition format (0.0.4)."""
    merged = Registry()
    for registry in registries:
        merged.merge(registry.snapshot())
    lines: list[str] = []
    seen_types: set[str] = set()
    for metric in merged.metrics():
        if metric.name not in seen_types:
            seen_types.add(metric.name)
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            lines.append(f"{metric.name}{_render_labels(metric.labels)} {_format_value(metric.value)}")
        else:
            cumulative = 0
            for index, bound in enumerate((*metric.bounds, math.inf)):
                cumulative += metric.counts[index]
                labels = _render_labels(metric.labels, (("le", _format_value(bound)),))
                lines.append(f"{metric.name}_bucket{labels} {cumulative}")
            labels = _render_labels(metric.labels)
            lines.append(f"{metric.name}_sum{labels} {_format_value(metric.total)}")
            lines.append(f"{metric.name}_count{labels} {metric.count}")
    return "\n".join(lines) + "\n"
