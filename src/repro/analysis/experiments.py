"""Canonical experiment configurations from the paper's evaluation section.

Keeping the exact configurations in one importable place means the benchmarks,
the examples and EXPERIMENTS.md all draw from the same source of truth:

* :data:`TABLE1_CONFIGURATIONS` — the eight ``(n, fa, L)`` rows of Table I;
* :func:`figure1_intervals` — the five-sensor configuration used to draw
  Marzullo's algorithm for ``f = 0, 1, 2`` in Figure 1;
* :func:`figure2_configuration`, :func:`figure5a_configuration`,
  :func:`figure5b_configuration` — the hand-built illustrative examples;
* :data:`TABLE2_SCHEDULES` — the three schedules compared in Table II.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # annotation-only: repro.engine is imported lazily below
    from repro.engine.base import AttackSpec

from repro.core.interval import Interval
from repro.scheduling.comparison import ScheduleComparison, ScheduleComparisonConfig
from repro.scheduling.schedule import (
    AscendingSchedule,
    DescendingSchedule,
    RandomSchedule,
    Schedule,
)

__all__ = [
    "Table1Entry",
    "TABLE1_CONFIGURATIONS",
    "TABLE1_PAPER_RESULTS",
    "TABLE2_PAPER_RESULTS",
    "TABLE2_SCHEDULES",
    "figure1_intervals",
    "figure2_configuration",
    "figure5a_configuration",
    "figure5b_configuration",
    "table1_batch_sweep",
    "table1_row_name",
]


def table1_row_name(index: int) -> str:
    """Scenario-registry name of Table I row ``index`` (0-based).

    The scenario catalogue (:mod:`repro.scenarios.catalog`) registers each
    row of :data:`TABLE1_CONFIGURATIONS` under this name, so
    ``python -m repro run table1-row1`` reproduces the first row.
    """
    if not 0 <= index < len(TABLE1_CONFIGURATIONS):
        raise IndexError(f"Table I has {len(TABLE1_CONFIGURATIONS)} rows, no row index {index}")
    return f"table1-row{index + 1}"


@dataclass(frozen=True)
class Table1Entry:
    """One row of Table I: a configuration plus the paper's reported numbers."""

    n: int
    fa: int
    lengths: tuple[float, ...]
    paper_ascending: float
    paper_descending: float

    def comparison_config(self, positions: int = 3) -> ScheduleComparisonConfig:
        """Build the schedule-comparison configuration for this row."""
        return ScheduleComparisonConfig(lengths=self.lengths, fa=self.fa, positions=positions)

    def engine_comparison(
        self,
        engine: str | object | None = "batch",
        samples: int = 100_000,
        rng: np.random.Generator | None = None,
        schedules: Sequence[Schedule] | None = None,
        attack: "AttackSpec" = "stretch",
    ) -> ScheduleComparison:
        """Run this row's schedule sweep on a registered simulation engine.

        ``attack`` selects the engine attacker spec: the greedy stretch
        attacker by default, or ``"expectation"`` for the paper's exact
        problem (2) attacker (vectorized on the batch engine by
        :class:`repro.batch.expectation.ExactExpectationBatchAttacker`, so
        Table I rows run at 10³–10⁵ Monte-Carlo trials; drop ``samples``
        accordingly — the exact attacker costs more per round).  The scalar
        exhaustive path (via :meth:`comparison_config` and
        :func:`repro.scheduling.comparison.compare_schedules`) remains the
        paper-methodology reference.
        """
        from repro.engine import get_engine

        if schedules is None:
            schedules = (AscendingSchedule(), DescendingSchedule())
        return get_engine(engine).compare(
            self.comparison_config(), schedules, samples=samples, rng=rng, attack=attack
        )

    def batch_comparison(
        self,
        samples: int = 100_000,
        rng: np.random.Generator | None = None,
        schedules: Sequence[Schedule] | None = None,
        attack: "AttackSpec" = "stretch",
    ) -> ScheduleComparison:
        """Shorthand for :meth:`engine_comparison` on the batch engine."""
        return self.engine_comparison(
            "batch", samples=samples, rng=rng, schedules=schedules, attack=attack
        )


#: The eight configurations of Table I with the expected fusion lengths the
#: paper reports for the Ascending and Descending schedules.
TABLE1_CONFIGURATIONS: tuple[Table1Entry, ...] = (
    Table1Entry(3, 1, (5.0, 11.0, 17.0), 10.77, 13.58),
    Table1Entry(3, 1, (5.0, 11.0, 11.0), 9.43, 10.16),
    Table1Entry(4, 1, (5.0, 8.0, 17.0, 20.0), 7.66, 8.75),
    Table1Entry(4, 1, (5.0, 8.0, 8.0, 11.0), 6.32, 6.53),
    Table1Entry(5, 1, (5.0, 5.0, 5.0, 5.0, 20.0), 5.4, 5.57),
    Table1Entry(5, 1, (5.0, 5.0, 5.0, 14.0, 20.0), 6.33, 7.03),
    Table1Entry(5, 2, (5.0, 5.0, 5.0, 5.0, 20.0), 5.22, 5.31),
    Table1Entry(5, 2, (5.0, 5.0, 5.0, 14.0, 17.0), 6.87, 7.74),
)

#: Paper numbers of Table I keyed by (n, fa, lengths) for quick lookup.
TABLE1_PAPER_RESULTS = {
    (entry.n, entry.fa, entry.lengths): (entry.paper_ascending, entry.paper_descending)
    for entry in TABLE1_CONFIGURATIONS
}

#: Table II of the paper: percentage of rounds above 10.5 mph / below 9.5 mph.
TABLE2_PAPER_RESULTS = {
    "ascending": (0.0, 0.0),
    "descending": (17.42, 17.65),
    "random": (5.72, 5.97),
}

#: The schedules compared in the case study, in the paper's column order.
TABLE2_SCHEDULES = (AscendingSchedule(), DescendingSchedule(), RandomSchedule())


def table1_batch_sweep(
    samples: int = 100_000,
    rng: np.random.Generator | None = None,
    configurations: Sequence[Table1Entry] = TABLE1_CONFIGURATIONS,
    engine: str | object | None = "batch",
    attack: "AttackSpec" = "stretch",
) -> list[tuple[Table1Entry, ScheduleComparison]]:
    """Run every Table I row on a simulation engine at Monte-Carlo scale.

    Returns ``(entry, comparison)`` pairs; each comparison holds one
    :class:`~repro.scheduling.comparison.ScheduleRow` per schedule exactly
    like the scalar path, so reporting code is shared.  The backend defaults
    to the vectorized batch engine and is resolved through the
    :mod:`repro.engine` registry; ``attack="expectation"`` swaps the greedy
    stretch attacker for the exact problem (2) attacker (use ~10³ samples —
    exact decisions cost more per round).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    return [
        (entry, entry.engine_comparison(engine, samples=samples, rng=rng, attack=attack))
        for entry in configurations
    ]


def figure1_intervals() -> list[Interval]:
    """A five-sensor configuration illustrating Marzullo's algorithm (Fig. 1).

    The exact numbers in the paper's figure are not given; this configuration
    reproduces its qualitative structure — five partially overlapping
    intervals whose fusion interval grows as ``f`` increases from 0 to 2.
    """
    return [
        Interval(0.0, 4.0),
        Interval(1.5, 5.5),
        Interval(3.0, 6.0),
        Interval(3.5, 9.0),
        Interval(3.8, 10.0),
    ]


def figure2_configuration() -> dict[str, Interval | float]:
    """The Figure 2 setup: attacker has seen only ``s1`` when placing ``a1``.

    Returns the seen correct interval ``s1``, the two possible positions of
    the unseen correct interval ``s2`` (left / right of ``s1``), and the width
    of the attacked interval — enough to demonstrate that neither one-sided
    nor two-sided placement of ``a1`` is optimal for both realisations.
    """
    return {
        "s1": Interval(4.0, 10.0),
        "s2_left": Interval(1.0, 6.0),
        "s2_right": Interval(8.0, 13.0),
        "attacked_width": 3.0,
        "f": 1,
    }


def figure5a_configuration() -> dict[str, object]:
    """Figure 5(a): an example where the Ascending schedule is better.

    Three sensors; the attacked one is the most precise.  Under Descending the
    attacker sees the two wide intervals before placing hers and can stretch
    the fusion interval much further than under Ascending, where she must
    commit first.
    """
    return {
        "correct": [Interval(4.0, 14.0), Interval(6.0, 16.0)],
        "attacked_width": 4.0,
        "attacked_reading": Interval(7.0, 11.0),
        "f": 1,
    }


def figure5b_configuration() -> dict[str, object]:
    """Figure 5(b): an example where the Descending schedule is better.

    The two precise intervals nearly coincide while the wide interval hangs
    far to one side; seeing the wide interval first (Descending) tempts the
    attacker into a placement that ends up worse than the Ascending one.
    """
    return {
        "correct_small": [Interval(5.0, 7.0), Interval(5.5, 7.5)],
        "correct_large": Interval(6.0, 18.0),
        "attacked_width": 3.0,
        "attacked_reading": Interval(5.0, 8.0),
        "f": 1,
    }
