"""Analysis helpers: metrics, report formatting and canonical experiment configs."""

from repro.analysis.experiments import (
    TABLE1_CONFIGURATIONS,
    TABLE1_PAPER_RESULTS,
    TABLE2_PAPER_RESULTS,
    TABLE2_SCHEDULES,
    Table1Entry,
    figure1_intervals,
    figure2_configuration,
    figure5a_configuration,
    figure5b_configuration,
    table1_batch_sweep,
)
from repro.analysis.metrics import (
    FusionStatistics,
    containment_rate,
    summarize_widths,
    violation_rates,
)
from repro.analysis.report import format_percentage, format_table, format_table1_row

__all__ = [
    "FusionStatistics",
    "summarize_widths",
    "violation_rates",
    "containment_rate",
    "format_table",
    "format_table1_row",
    "format_percentage",
    "Table1Entry",
    "TABLE1_CONFIGURATIONS",
    "TABLE1_PAPER_RESULTS",
    "TABLE2_PAPER_RESULTS",
    "TABLE2_SCHEDULES",
    "figure1_intervals",
    "figure2_configuration",
    "figure5a_configuration",
    "figure5b_configuration",
    "table1_batch_sweep",
]
