"""Aggregate metrics over collections of fusion rounds.

The paper evaluates fusion performance with two kinds of numbers: expected
fusion-interval lengths (Table I) and critical-bound violation percentages
(Table II).  This module computes both, plus a handful of secondary metrics
(containment of the true value, estimate error, detection rate) used by the
examples and the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.exceptions import ExperimentError
from repro.core.interval import Interval

__all__ = ["FusionStatistics", "summarize_widths", "violation_rates", "containment_rate"]


@dataclass(frozen=True)
class FusionStatistics:
    """Summary statistics of fusion-interval widths over many rounds."""

    count: int
    mean_width: float
    std_width: float
    min_width: float
    max_width: float
    median_width: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for report formatting."""
        return {
            "count": float(self.count),
            "mean": self.mean_width,
            "std": self.std_width,
            "min": self.min_width,
            "max": self.max_width,
            "median": self.median_width,
        }


def summarize_widths(widths: Sequence[float]) -> FusionStatistics:
    """Summarise a sequence of fusion-interval widths."""
    if not widths:
        raise ExperimentError("cannot summarise an empty width collection")
    array = np.asarray(widths, dtype=float)
    return FusionStatistics(
        count=int(array.size),
        mean_width=float(array.mean()),
        std_width=float(array.std()),
        min_width=float(array.min()),
        max_width=float(array.max()),
        median_width=float(np.median(array)),
    )


def violation_rates(
    fusions: Sequence[Interval], upper_limit: float, lower_limit: float
) -> tuple[float, float]:
    """Fraction of fusion intervals whose bounds cross the safety limits.

    Returns ``(upper_rate, lower_rate)`` where ``upper_rate`` is the fraction
    with ``hi > upper_limit`` and ``lower_rate`` the fraction with
    ``lo < lower_limit``.
    """
    if not fusions:
        raise ExperimentError("cannot compute violation rates over zero rounds")
    upper = sum(1 for s in fusions if s.hi > upper_limit) / len(fusions)
    lower = sum(1 for s in fusions if s.lo < lower_limit) / len(fusions)
    return upper, lower


def containment_rate(fusions: Sequence[Interval], true_values: Sequence[float]) -> float:
    """Fraction of rounds whose fusion interval contains the true value.

    With ``f`` chosen correctly (at least as large as the number of actually
    faulty/compromised sensors) this is guaranteed to be 1.0; the metric is
    used by tests and ablations that deliberately under-provision ``f``.
    """
    if len(fusions) != len(true_values):
        raise ExperimentError("fusions and true_values must have the same length")
    if not fusions:
        raise ExperimentError("cannot compute containment over zero rounds")
    hits = sum(1 for fusion, value in zip(fusions, true_values) if fusion.contains(value))
    return hits / len(fusions)
