"""Plain-text table rendering for benchmark and example output.

The benchmarks print tables shaped like the paper's Table I and Table II; the
helpers here keep that formatting in one place (monospace columns, no external
dependencies) so every harness produces consistent, diff-able output.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.exceptions import ExperimentError

__all__ = ["format_table", "format_table1_row", "format_percentage"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render a simple monospace table.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Row cells; each row must have exactly ``len(headers)`` entries.
    title:
        Optional title printed above the table.
    """
    if not headers:
        raise ExperimentError("a table needs at least one column")
    str_rows = [[_stringify(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ExperimentError(
                f"row {row} has {len(row)} cells but the table has {len(headers)} columns"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_table1_row(n: int, fa: int, lengths: Sequence[float]) -> str:
    """The configuration label used in the paper's Table I rows."""
    lengths_str = ", ".join(f"{length:g}" for length in lengths)
    return f"n = {n}, fa = {fa}, L = {{{lengths_str}}}"


def format_percentage(value: float) -> str:
    """Format a percentage the way Table II does (two decimals, % suffix)."""
    return f"{value:.2f}%"
