"""Fusion-as-a-service: async serving of scenario requests with micro-batching.

The serving layer turns the repository's scenario subsystem into a network
service without adding a single dependency: a raw-:mod:`asyncio` HTTP/1.1
front end (:mod:`repro.serve.http`) over a transport-independent core
(:mod:`repro.serve.service`) whose throughput trick is dynamic request
batching (:mod:`repro.serve.collator`) onto the packed
:meth:`repro.engine.base.Engine.run_many` seam — coalesced requests share
one engine pass yet receive bit-identical payloads to a solo
``python -m repro run``.

Start a server with ``python -m repro serve`` or programmatically through
the :mod:`repro.api` facade; ``docs/SERVING.md`` documents the wire
protocol, the batching windows and the determinism contract.
"""

from repro.serve.collator import BatchCollator, plan_key
from repro.serve.http import FusionServer
from repro.serve.service import API_VERSION, FusionService

__all__ = [
    "API_VERSION",
    "BatchCollator",
    "FusionServer",
    "FusionService",
    "plan_key",
]
