"""The fusion service: validated scenario requests over shared engine passes.

:class:`FusionService` is the transport-independent core of
fusion-as-a-service — the HTTP server (:mod:`repro.serve.http`), the
:func:`repro.api.serve` facade entry and the in-process tests all drive this
one object.  A request is a scenario spec (by registry name or as a
:func:`~repro.scenarios.spec.spec_dict` wire payload); the response carries
the *exact* payload ``python -m repro run`` would store for that spec, plus
serving provenance.  Three layers make repeated work cheap, in lookup
order:

1. **Artifact-store hits** — a previously computed spec answers from its
   content-addressed document without simulating (reads and writes hop to a
   worker thread, so a large-artifact read never stalls the event loop);
2. **In-flight dedup** — concurrent requests for an identical spec key
   attach to the first one's computation and all receive its payload;
3. **Plan coalescing** — comparison shards that are *not* identical but
   share a plan (same physics, different samples/seed) fuse into packed
   :meth:`~repro.engine.base.Engine.run_many` passes through the
   :class:`~repro.serve.collator.BatchCollator`.

Bit-identity is preserved at every layer: the service derives shard RNG
streams exactly like the CLI runner (:func:`repro.utils.seeding.derive_rng`
per ``(case, shard)``, schedules consuming the stream sequentially), reduces
results with the runner's own :func:`~repro.runner.runner.comparison_stats_row`
/ :func:`~repro.runner.runner.merge_outcomes` arithmetic, and the
``run_many`` seam guarantees a coalesced shard equals a solo one.
"""

from __future__ import annotations

import asyncio
import dataclasses
import functools
import os
import time
from concurrent.futures import ThreadPoolExecutor
from datetime import datetime, timezone

from repro import obs
from repro.core.exceptions import ExperimentError
from repro.obs import Registry, render_prometheus
from repro.runner import (
    ArtifactStore,
    comparison_stats_row,
    execute_task,
    merge_outcomes,
    plan_tasks,
    resolve_spec_engine,
)
from repro.scenarios import available_scenarios, get_scenario
from repro.scenarios.spec import (
    SPEC_VERSION,
    ComparisonScenario,
    ScenarioSpec,
    spec_from_dict,
    spec_key,
)
from repro.serve.collator import BatchCollator
from repro.utils.seeding import derive_rng

__all__ = ["API_VERSION", "FusionService"]

#: Version of the request/response envelope (routes, field names).  Distinct
#: from the scenario wire format's ``spec_version``: the envelope can evolve
#: (new provenance fields, new routes) without touching spec hashing.
API_VERSION = 1


class FusionService:
    """Transport-independent serving core; one instance per server."""

    def __init__(
        self,
        store: ArtifactStore | None = None,
        max_wait_ms: float = 2.0,
        max_batch: int = 64,
        threads: int | None = None,
    ) -> None:
        self.store = store
        # Engine passes and store IO run on a pool the service *owns*: the
        # loop's default executor is shared by every asyncio.to_thread user
        # in the process, and a saturated shared pool (e.g. in-process test
        # clients) must not be able to starve the simulation work — or vice
        # versa.  ``threads`` bounds blocking-work concurrency.
        self._executor = ThreadPoolExecutor(
            max_workers=threads or max(2, min(8, os.cpu_count() or 2)),
            thread_name_prefix="repro-serve",
        )
        #: Per-service metric registry (always on, unlike the thread-local
        #: tracing scopes): concurrent services never pool counters, and the
        #: collator shares it so one Prometheus exposition covers both.
        self.registry = Registry()
        self.collator = BatchCollator(
            max_wait_ms=max_wait_ms,
            max_batch=max_batch,
            executor=self._executor,
            registry=self.registry,
        )
        self._inflight: dict[str, asyncio.Task] = {}
        self._served = self.registry.counter("repro_served_requests_total")
        self._cache_hits = self.registry.counter("repro_served_cache_hits_total")
        self._deduplicated = self.registry.counter("repro_served_deduplicated_total")
        self._latency = self.registry.histogram("repro_request_seconds")

    @property
    def served(self) -> int:
        """Requests answered (every ``_respond``, whatever the layer)."""
        return int(self._served.value)

    @property
    def cache_hits(self) -> int:
        """Requests answered from the artifact store."""
        return int(self._cache_hits.value)

    @property
    def deduplicated(self) -> int:
        """Requests that attached to an identical in-flight computation."""
        return int(self._deduplicated.value)

    async def _offload(self, fn, *args):
        """Run blocking work on the service's own pool."""
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, functools.partial(fn, *args)
        )

    def close(self) -> None:
        """Release the worker pool (idempotent; in-flight batches finish)."""
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    # request parsing

    def resolve_request(self, request: dict) -> tuple[ScenarioSpec, bool]:
        """Parse a ``POST /v1/run`` body into ``(spec, force)``.

        The body names exactly one of ``scenario`` (a registry name) or
        ``spec`` (a :func:`~repro.scenarios.spec.spec_dict` payload, read by
        the tolerant versioned :func:`~repro.scenarios.spec.spec_from_dict`),
        optionally ``engine`` (an override, deriving a *new* spec exactly
        like the CLI's ``--engine``) and ``force`` (skip the caches).
        Unknown fields are rejected by name.
        """
        if not isinstance(request, dict):
            raise ExperimentError(
                f"a run request must be a JSON object, got {type(request).__name__}"
            )
        request = dict(request)
        api_version = request.pop("api_version", API_VERSION)
        if api_version != API_VERSION:
            raise ExperimentError(
                f"unsupported api_version {api_version!r}; this server speaks {API_VERSION}"
            )
        force = request.pop("force", False)
        if not isinstance(force, bool):
            raise ExperimentError(f"force must be a boolean, got {force!r}")
        scenario = request.pop("scenario", None)
        spec_payload = request.pop("spec", None)
        engine = request.pop("engine", None)
        if request:
            raise ExperimentError(
                f"run request carries unknown fields: {', '.join(sorted(request))}"
            )
        if (scenario is None) == (spec_payload is None):
            raise ExperimentError(
                "a run request names exactly one of 'scenario' (a registry name) "
                "or 'spec' (a serialised scenario spec)"
            )
        if scenario is not None:
            if not isinstance(scenario, str):
                raise ExperimentError(f"scenario must be a name, got {scenario!r}")
            spec = get_scenario(scenario)
        else:
            spec = spec_from_dict(spec_payload)
        if engine is not None:
            # Engine choice is part of a result's identity (a new content
            # hash), mirroring the CLI's --engine semantics.
            spec = dataclasses.replace(spec, engine=engine)
        return resolve_spec_engine(spec), force

    # ------------------------------------------------------------------
    # execution

    async def run_request(self, request: dict) -> dict:
        """Serve a parsed wire request (the ``POST /v1/run`` handler)."""
        spec, force = self.resolve_request(request)
        return await self.run_spec(spec, force=force)

    async def run_spec(self, spec: ScenarioSpec, force: bool = False) -> dict:
        """Serve a spec; returns the versioned response envelope."""
        spec = resolve_spec_engine(spec)
        key = spec_key(spec)
        started = time.perf_counter()
        if not force:
            if self.store is not None:
                document = await self._offload(self.store.load, spec)
                if document is not None:
                    self._cache_hits.inc()
                    return self._respond(
                        spec, key, document["payload"], started, cached=True
                    )
            running = self._inflight.get(key)
            if running is not None:
                self._deduplicated.inc()
                # shield: a waiter's disconnect must not cancel the shared
                # computation out from under the other attached requests.
                payload = await asyncio.shield(running)
                return self._respond(spec, key, payload, started, deduplicated=True)
        task = asyncio.get_running_loop().create_task(self._execute(spec))
        if not force:
            self._inflight[key] = task
        try:
            payload = await asyncio.shield(task)
        finally:
            if self._inflight.get(key) is task:
                del self._inflight[key]
        return self._respond(spec, key, payload, started)

    def _respond(
        self,
        spec: ScenarioSpec,
        key: str,
        payload: dict,
        started: float,
        cached: bool = False,
        deduplicated: bool = False,
    ) -> dict:
        elapsed = time.perf_counter() - started
        self._served.inc()
        self._latency.observe(elapsed)
        # Per-request telemetry: a completed leaf span (never a context
        # manager across awaits — interleaved requests on one loop thread
        # would corrupt the span stack).
        obs.event("serve.request", elapsed, name=spec.name, cached=cached, deduplicated=deduplicated)
        return {
            "api_version": API_VERSION,
            "spec_version": SPEC_VERSION,
            "name": spec.name,
            "kind": spec.kind,
            "engine": spec.engine,
            "key": key,
            "cached": cached,
            "deduplicated": deduplicated,
            "elapsed_seconds": elapsed,
            "payload": payload,
        }

    async def _execute(self, spec: ScenarioSpec) -> dict:
        if spec.kind == ComparisonScenario.kind:
            payload = await self._execute_comparison(spec)
        else:
            # Case studies and figures have no micro-batching seam (their
            # kernels already batch internally); run the shard plan on a
            # worker thread — identical to the CLI's workers=1 path.
            payload = await self._offload(self._execute_blocking, spec)
        if self.store is not None:
            await self._offload(
                self.store.save,
                spec,
                payload,
                {
                    "shards": len(plan_tasks(spec)),
                    "workers": 0,
                    "served": True,
                    "created_at": datetime.now(timezone.utc).isoformat(),
                },
            )
        return payload

    @staticmethod
    def _execute_blocking(spec: ScenarioSpec) -> dict:
        return merge_outcomes(spec, [execute_task(task) for task in plan_tasks(spec)])

    async def _execute_comparison(self, spec: ComparisonScenario) -> dict:
        # Shards run concurrently (each owns its derived stream); the
        # gather preserves plan order for the merge regardless of which
        # packed batch finishes first.
        outcomes = await asyncio.gather(
            *(self._run_shard(spec, task.params) for task in plan_tasks(spec))
        )
        return merge_outcomes(spec, list(outcomes))

    async def _run_shard(self, spec: ComparisonScenario, params: tuple) -> list[dict]:
        case_index, shard_index, samples = params
        case = spec.cases[case_index]
        rng = derive_rng(spec.seed, case_index, shard_index)
        rows = []
        # The runner convention: one stream per (case, shard), consumed by
        # the schedules *sequentially* — so each submit must resolve before
        # the next schedule draws from the stream.  Coalescing happens
        # across shards/requests, never across a single shard's schedules.
        for schedule in case.schedules:
            result = await self.collator.submit(spec.engine, case, schedule, samples, rng)
            rows.append(comparison_stats_row(result))
        return rows

    # ------------------------------------------------------------------
    # introspection

    def metrics(self) -> dict:
        """Counters for ``GET /v1/metrics?format=json``.

        The historical keys are untouched (dashboards and the serve tests
        rely on them); the latency block summarises the request-duration
        histogram the Prometheus exposition serves bucket-by-bucket.
        """
        latency = self._latency
        quantile = lambda q: latency.quantile(q) * 1e3 if latency.count else None  # noqa: E731
        return {
            "api_version": API_VERSION,
            "served": self.served,
            "cache_hits": self.cache_hits,
            "deduplicated": self.deduplicated,
            "inflight": len(self._inflight),
            "collator": self.collator.stats(),
            "latency": {
                "count": latency.count,
                "mean_ms": latency.total / latency.count * 1e3 if latency.count else None,
                "p50_ms": quantile(0.5),
                "p95_ms": quantile(0.95),
                "p99_ms": quantile(0.99),
            },
        }

    def prometheus(self) -> str:
        """The ``GET /v1/metrics`` body: Prometheus text exposition 0.0.4."""
        self.registry.gauge("repro_inflight_requests").set(len(self._inflight))
        return render_prometheus(self.registry)

    def scenarios(self) -> dict:
        """Catalogue for ``GET /v1/scenarios``."""
        entries = []
        for name in available_scenarios():
            spec = get_scenario(name)
            entries.append(
                {
                    "name": spec.name,
                    "kind": spec.kind,
                    "engine": spec.engine,
                    "description": spec.description,
                    "tags": list(spec.tags),
                }
            )
        return {"api_version": API_VERSION, "scenarios": entries}
