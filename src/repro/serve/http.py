"""A small, dependency-free HTTP/1.1 front end for the fusion service.

Built directly on :func:`asyncio.start_server` — the repository's rule of
standing only on the scientific Python stack extends to serving: no web
framework, no event-loop replacement, just enough HTTP/1.1 to speak JSON
with standard clients (``curl``, :mod:`http.client`, ``urllib``).
Persistent connections are supported (HTTP/1.1 default keep-alive), request
bodies are bounded, and every response is ``application/json`` — except the
Prometheus exposition, which is the one plain-text route.

Routes (all under the versioned ``/v1`` prefix, mirroring
:data:`repro.serve.service.API_VERSION`):

========  ==================  ==============================================
method    path                handler
========  ==================  ==============================================
POST      ``/v1/run``         run a scenario request (name or inline spec)
GET       ``/v1/health``      liveness + engine/version info
GET       ``/v1/metrics``     Prometheus text exposition (counters, request
                              latency histogram); ``?format=json`` returns
                              the legacy JSON counter document
GET       ``/v1/scenarios``   the registered scenario catalogue
========  ==================  ==============================================

Error mapping: malformed JSON or an invalid spec is ``400`` with an
``error`` body (:class:`~repro.core.exceptions.ExperimentError` messages
pass through verbatim — they are written to be actionable), unknown paths
are ``404``, wrong methods ``405``, oversized bodies ``413``, and anything
unexpected is a ``500`` that never takes the server down.
"""

from __future__ import annotations

import asyncio
import json
from urllib.parse import parse_qs

from repro.core.exceptions import ExperimentError
from repro.engine import available_engines, default_engine_name
from repro.serve.service import API_VERSION, FusionService

__all__ = ["FusionServer", "MAX_BODY_BYTES"]

#: Upper bound on request bodies; a scenario spec is a few KB, so this is
#: generous headroom, not a tuning knob.
MAX_BODY_BYTES = 8 * 1024 * 1024

_MAX_HEADER_BYTES = 64 * 1024


class _HttpError(Exception):
    """Internal: carries a status + message to the response writer."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


_STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class FusionServer:
    """Bind a :class:`~repro.serve.service.FusionService` to a TCP port.

    ``port=0`` asks the OS for a free port (the test/benchmark idiom);
    :attr:`port` reports the bound value after :meth:`start`.  Use as an
    async context manager or call :meth:`start` / :meth:`aclose` directly;
    :meth:`serve_forever` blocks until cancelled.
    """

    def __init__(
        self,
        service: FusionService,
        host: str = "127.0.0.1",
        port: int = 8014,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "FusionServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # connection handling

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except asyncio.IncompleteReadError:
                    break  # client closed between requests — normal keep-alive end
                if request is None:
                    break
                method, path, query, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                status, payload = await self._dispatch(method, path, query, body)
                await self._write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, _HttpError) as error:
            if isinstance(error, _HttpError):
                # Protocol-level failure (oversized/garbled request): answer
                # once if the socket still works, then drop the connection.
                try:
                    await self._write_response(
                        writer, error.status, {"error": str(error)}, keep_alive=False
                    )
                except (ConnectionResetError, BrokenPipeError):
                    pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, path, _version = request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        headers: dict[str, str] = {}
        total = len(request_line)
        while True:
            line = await reader.readline()
            total += len(line)
            if total > _MAX_HEADER_BYTES:
                raise _HttpError(400, "request headers too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip().lower()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _HttpError(400, f"invalid Content-Length {length_text!r}") from None
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        path, _, query = path.partition("?")
        return method.upper(), path, query, headers, body

    async def _dispatch(
        self, method: str, path: str, query: str, body: bytes
    ) -> tuple[int, dict | str]:
        try:
            if path == "/v1/run":
                if method != "POST":
                    return 405, {"error": "use POST for /v1/run"}
                try:
                    request = json.loads(body.decode("utf-8") or "null")
                except (UnicodeDecodeError, json.JSONDecodeError) as error:
                    return 400, {"error": f"request body is not valid JSON: {error}"}
                return 200, await self.service.run_request(request)
            if method != "GET":
                return 405, {"error": f"use GET for {path}"}
            if path == "/v1/health":
                return 200, {
                    "status": "ok",
                    "api_version": API_VERSION,
                    "default_engine": default_engine_name(),
                    "engines": list(available_engines()),
                }
            if path == "/v1/metrics":
                # Prometheus text by default; ?format=json keeps the legacy
                # counter document for JSON dashboards and the test client.
                wire_format = parse_qs(query).get("format", ["prometheus"])[-1]
                if wire_format == "json":
                    return 200, self.service.metrics()
                if wire_format != "prometheus":
                    return 400, {
                        "error": f"unknown metrics format {wire_format!r}; "
                        "use 'prometheus' (default) or 'json'"
                    }
                return 200, self.service.prometheus()
            if path == "/v1/scenarios":
                return 200, self.service.scenarios()
            return 404, {"error": f"unknown path {path!r} (routes live under /v1)"}
        except ExperimentError as error:
            return 400, {"error": str(error)}
        except Exception as error:  # noqa: BLE001 — a bad request must not kill the server
            return 500, {"error": f"internal error: {type(error).__name__}: {error}"}

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter, status: int, payload: dict | str, keep_alive: bool
    ) -> None:
        if isinstance(payload, str):
            # The Prometheus exposition: already-rendered text.
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        phrase = _STATUS_PHRASES.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {phrase}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
