"""Dynamic micro-batching of comparison work onto shared engine passes.

The serving layer's throughput comes from one observation: the packed
:meth:`repro.engine.base.Engine.run_many` seam makes ``k`` same-plan
requests cost roughly one engine invocation, and the bit-identity contract
of that seam means coalescing is *invisible* in the payloads.  The
:class:`BatchCollator` is the piece that finds the ``k``: every comparison
shard submitted to the service lands here keyed by its *plan* — engine
backend, comparison configuration, attack spec, fault model and schedule,
everything except the per-request ``(samples, rng)`` pair — and submissions
sharing a plan key within a ``max_wait_ms`` window (or until ``max_batch``
of them pile up) fuse into a single ``run_many`` call on a worker thread.

The waiting window is the classic dynamic-batching trade: a few
milliseconds of added latency on the first request of a burst buys
near-linear throughput scaling when many clients ask for the same physics
(the common case for a fusion service sitting behind a dashboard or a
parameter sweep).  ``benchmarks/bench_serve.py`` gates the win at ≥3x for
64 concurrent same-plan clients.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import ExperimentError
from repro.engine import get_engine
from repro.obs import Registry
from repro.scenarios.spec import ComparisonCase, schedule_from_spec

__all__ = ["BatchCollator", "plan_key"]


def plan_key(engine: str, case: ComparisonCase, schedule: str) -> tuple:
    """The coalescing key: everything about a shard except ``(samples, rng)``.

    Two submissions with equal plan keys describe the same physics — same
    backend, sensor lengths, attacker counts, attack spec, fault model and
    schedule — and may therefore share one packed ``run_many`` pass.  The
    case ``label`` is deliberately excluded: it names a grid point in
    reports and has no effect on simulation.
    """
    return (
        engine,
        tuple(case.lengths),
        case.fa,
        case.f,
        case.attacked_indices,
        case.attack,
        case.fault_probability,
        case.fault_min_offset_widths,
        case.fault_max_offset_widths,
        case.channel,
        schedule,
    )


@dataclass
class _PendingBatch:
    """Submissions accumulated for one plan key, awaiting a flush."""

    engine: str
    case: ComparisonCase
    schedule: str
    budgets: list[int] = field(default_factory=list)
    rngs: list[np.random.Generator] = field(default_factory=list)
    futures: list[asyncio.Future] = field(default_factory=list)
    timer: asyncio.TimerHandle | None = None


class BatchCollator:
    """Coalesce same-plan comparison shards into packed engine passes.

    Single-threaded asyncio discipline: ``submit``/flush bookkeeping runs on
    the event loop (no locks), only the engine work leaves the loop via
    :func:`asyncio.to_thread`.  A batch flushes when either ``max_batch``
    submissions have accumulated or ``max_wait_ms`` has passed since its
    first submission, whichever comes first; ``max_batch=1`` degenerates to
    pass-through (no coalescing, no added latency) which is the baseline leg
    of the serving benchmark.
    """

    def __init__(
        self,
        max_wait_ms: float = 2.0,
        max_batch: int = 64,
        executor=None,
        registry: Registry | None = None,
    ) -> None:
        if max_wait_ms < 0:
            raise ExperimentError(f"max_wait_ms must be non-negative, got {max_wait_ms}")
        if max_batch < 1:
            raise ExperimentError(f"max_batch must be at least 1, got {max_batch}")
        self.max_wait_ms = float(max_wait_ms)
        self.max_batch = int(max_batch)
        #: Where the blocking engine passes run.  ``None`` uses the loop's
        #: default executor; the service installs a dedicated pool so engine
        #: work can never be starved by (or starve) other ``to_thread``
        #: users sharing the loop.
        self.executor = executor
        self._pending: dict[tuple, _PendingBatch] = {}
        #: Coalescing accounting lives on a ``repro.obs`` registry — the
        #: service passes its own so one ``/v1/metrics`` exposition covers
        #: both layers; a standalone collator gets a private one.
        self.registry = registry if registry is not None else Registry()
        self._requests = self.registry.counter("repro_collator_requests_total")
        self._batches = self.registry.counter("repro_collator_batches_total")
        self._max_batch_observed = self.registry.gauge("repro_collator_max_batch_observed")

    @property
    def requests(self) -> int:
        """Submissions accepted (one per shard×schedule awaited on us)."""
        return int(self._requests.value)

    @property
    def batches(self) -> int:
        """Packed engine passes dispatched; ``requests - batches`` is the
        number of engine invocations coalescing saved."""
        return int(self._batches.value)

    @property
    def max_batch_observed(self) -> int:
        """Largest batch dispatched so far."""
        return int(self._max_batch_observed.value)

    async def submit(
        self,
        engine: str,
        case: ComparisonCase,
        schedule: str,
        samples: int,
        rng: np.random.Generator,
    ):
        """Queue one ``(samples, rng)`` unit of ``plan_key(engine, case,
        schedule)`` work; resolves to its :class:`~repro.engine.base.RoundsResult`.

        The result is bit-identical to
        ``get_engine(engine).run_rounds(case..., samples, rng)`` no matter
        how many other submissions share the pass (the ``run_many``
        contract).
        """
        loop = asyncio.get_running_loop()
        key = plan_key(engine, case, schedule)
        pending = self._pending.get(key)
        if pending is None:
            pending = _PendingBatch(engine=engine, case=case, schedule=schedule)
            self._pending[key] = pending
            if self.max_batch > 1 and self.max_wait_ms > 0:
                pending.timer = loop.call_later(
                    self.max_wait_ms / 1000.0, self._flush, key
                )
        future: asyncio.Future = loop.create_future()
        pending.budgets.append(int(samples))
        pending.rngs.append(rng)
        pending.futures.append(future)
        self._requests.inc()
        if len(pending.budgets) >= self.max_batch or pending.timer is None:
            self._flush(key)
        return await future

    def _flush(self, key: tuple) -> None:
        """Detach the pending batch for ``key`` and dispatch it."""
        pending = self._pending.pop(key, None)
        if pending is None:  # raced with a max_batch flush; timer fired late
            return
        if pending.timer is not None:
            pending.timer.cancel()
        self._batches.inc()
        self._max_batch_observed.set_max(len(pending.budgets))
        asyncio.get_running_loop().create_task(self._run_batch(pending))

    async def _run_batch(self, pending: _PendingBatch) -> None:
        try:
            results = await asyncio.get_running_loop().run_in_executor(
                self.executor, self._simulate, pending
            )
        except BaseException as error:  # noqa: BLE001 — every waiter must learn of it
            for future in pending.futures:
                if not future.done():
                    future.set_exception(error)
            return
        for future, result in zip(pending.futures, results):
            if not future.done():  # a waiter may have been cancelled meanwhile
                future.set_result(result)

    @staticmethod
    def _simulate(pending: _PendingBatch):
        """The blocking engine pass (runs on a worker thread)."""
        engine = get_engine(pending.engine)
        return engine.run_many(
            pending.case.comparison_config(),
            schedule_from_spec(pending.schedule),
            pending.case.attack,
            pending.case.faults(),
            budgets=pending.budgets,
            rngs=pending.rngs,
            channel=pending.case.channel,
        )

    def stats(self) -> dict:
        """Counters for ``/v1/metrics`` and the coalescing assertions in tests."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "coalesced": self.requests - self.batches,
            "max_batch_observed": self.max_batch_observed,
            "max_wait_ms": self.max_wait_ms,
            "max_batch": self.max_batch,
        }
