"""repro — a reproduction of "Attack-Resilient Sensor Fusion" (DATE 2014).

The library implements Marzullo-style interval fusion for abstract sensors,
the paper's attacker model (stealth constraints, partial-information and
omniscient attack policies), communication schedules over a shared broadcast
bus, and the LandShark platoon case study, together with the machinery that
regenerates every table and figure of the paper's evaluation.

Quick start::

    from repro import Interval, fuse

    intervals = [Interval(0.0, 2.0), Interval(1.0, 3.0), Interval(1.5, 4.0)]
    fusion = fuse(intervals, f=1)

See ``README.md`` for the architecture overview and ``EXPERIMENTS.md`` for
the paper-versus-measured comparison of every experiment.
"""

from repro.core import (
    DetectionResult,
    FusionEngine,
    FusionOutcome,
    Interval,
    IntervalSet,
    convex_hull,
    detect,
    fuse,
    fuse_or_none,
    intersect_all,
    max_safe_fault_bound,
)
from repro.attack import (
    AttackContext,
    AttackPolicy,
    ExpectationPolicy,
    GreedyExtendPolicy,
    OmniscientPolicy,
    RandomAdmissiblePolicy,
    TruthfulPolicy,
    optimal_attack,
    optimal_fusion_width,
)
from repro.scheduling import (
    AscendingSchedule,
    DescendingSchedule,
    FixedSchedule,
    RandomSchedule,
    RoundConfig,
    RoundResult,
    Schedule,
    ScheduleComparisonConfig,
    compare_schedules,
    run_round,
)
from repro.sensors import Sensor, SensorSpec, SensorSuite, landshark_specs, sensors_from_widths
from repro.vehicle import CaseStudyConfig, Platoon, PlatoonConfig, run_case_study
from repro.engine import (
    BatchEngine,
    Engine,
    RoundsResult,
    ScalarEngine,
    available_engines,
    default_engine_name,
    get_engine,
    register_engine,
)
from repro.runner import ArtifactStore, ScenarioRun, default_store, run_scenario
from repro.scenarios import (
    CaseStudyScenario,
    ComparisonCase,
    ComparisonScenario,
    FigureScenario,
    ScenarioSpec,
    available_scenarios,
    get_scenario,
    list_scenarios,
    register_scenario,
    spec_key,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Interval",
    "IntervalSet",
    "convex_hull",
    "intersect_all",
    "fuse",
    "fuse_or_none",
    "max_safe_fault_bound",
    "FusionEngine",
    "FusionOutcome",
    "DetectionResult",
    "detect",
    # attack
    "AttackContext",
    "AttackPolicy",
    "TruthfulPolicy",
    "RandomAdmissiblePolicy",
    "GreedyExtendPolicy",
    "ExpectationPolicy",
    "OmniscientPolicy",
    "optimal_attack",
    "optimal_fusion_width",
    # scheduling
    "Schedule",
    "AscendingSchedule",
    "DescendingSchedule",
    "RandomSchedule",
    "FixedSchedule",
    "RoundConfig",
    "RoundResult",
    "run_round",
    "ScheduleComparisonConfig",
    "compare_schedules",
    # sensors
    "Sensor",
    "SensorSpec",
    "SensorSuite",
    "landshark_specs",
    "sensors_from_widths",
    # vehicle
    "PlatoonConfig",
    "Platoon",
    "CaseStudyConfig",
    "run_case_study",
    # engine
    "Engine",
    "ScalarEngine",
    "BatchEngine",
    "RoundsResult",
    "get_engine",
    "register_engine",
    "available_engines",
    "default_engine_name",
    # scenarios
    "ScenarioSpec",
    "ComparisonCase",
    "ComparisonScenario",
    "CaseStudyScenario",
    "FigureScenario",
    "register_scenario",
    "get_scenario",
    "available_scenarios",
    "list_scenarios",
    "spec_key",
    # runner
    "run_scenario",
    "ScenarioRun",
    "ArtifactStore",
    "default_store",
]
