"""ASCII visualisation of interval configurations (the paper's figure layout)."""

from repro.viz.ascii import LabeledInterval, render_fusion_figure, render_intervals

__all__ = ["LabeledInterval", "render_intervals", "render_fusion_figure"]
