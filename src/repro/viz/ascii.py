"""ASCII rendering of interval configurations.

The paper's figures are all of the same shape: a stack of labelled sensor
intervals on a common axis with the fusion interval(s) drawn below a dashed
separator.  :func:`render_intervals` reproduces that layout in plain text so
that the figure benchmarks and the examples can show configurations directly
in a terminal (and in ``EXPERIMENTS.md``) without any plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.exceptions import ExperimentError
from repro.core.interval import Interval

__all__ = ["LabeledInterval", "render_intervals", "render_fusion_figure"]


@dataclass(frozen=True)
class LabeledInterval:
    """An interval with a display label and an optional attacked marker."""

    label: str
    interval: Interval
    attacked: bool = False


def _scale(value: float, lo: float, hi: float, width: int) -> int:
    """Map ``value`` from ``[lo, hi]`` to a character column."""
    if hi <= lo:
        return 0
    fraction = (value - lo) / (hi - lo)
    return int(round(fraction * (width - 1)))


def _render_bar(interval: Interval, lo: float, hi: float, width: int, attacked: bool) -> str:
    start = _scale(interval.lo, lo, hi, width)
    end = _scale(interval.hi, lo, hi, width)
    end = max(end, start)
    fill = "~" if attacked else "="
    chars = [" "] * width
    for column in range(start, end + 1):
        chars[column] = fill
    chars[start] = "|"
    chars[end] = "|"
    return "".join(chars)


def render_intervals(
    items: Sequence[LabeledInterval],
    width: int = 60,
    axis_lo: float | None = None,
    axis_hi: float | None = None,
) -> str:
    """Render labelled intervals on a shared axis.

    Attacked intervals are drawn with ``~`` (the paper draws them as
    sinusoids), correct ones with ``=``.
    """
    if not items:
        raise ExperimentError("nothing to render")
    if width < 10:
        raise ExperimentError(f"rendering width must be at least 10 columns, got {width}")
    lo = min(item.interval.lo for item in items) if axis_lo is None else axis_lo
    hi = max(item.interval.hi for item in items) if axis_hi is None else axis_hi
    if hi <= lo:
        hi = lo + 1.0
    label_width = max(len(item.label) for item in items)
    lines = []
    for item in items:
        bar = _render_bar(item.interval, lo, hi, width, item.attacked)
        lines.append(f"{item.label.rjust(label_width)} {bar} [{item.interval.lo:g}, {item.interval.hi:g}]")
    axis = f"{' ' * label_width} {str(round(lo, 3)).ljust(width // 2)}{str(round(hi, 3)).rjust(width - width // 2)}"
    lines.append(axis)
    return "\n".join(lines)


def render_fusion_figure(
    sensors: Sequence[LabeledInterval],
    fusions: Sequence[LabeledInterval],
    width: int = 60,
) -> str:
    """Render sensors above a dashed separator and fusion intervals below it.

    This is the layout of every figure in the paper ("dashed horizontal line
    separates sensor intervals from fusion intervals").
    """
    if not sensors or not fusions:
        raise ExperimentError("need both sensor and fusion intervals to render a figure")
    everything = list(sensors) + list(fusions)
    lo = min(item.interval.lo for item in everything)
    hi = max(item.interval.hi for item in everything)
    label_width = max(len(item.label) for item in everything)
    separator = f"{'-' * label_width} {'-' * width}"
    top = render_intervals(
        [LabeledInterval(i.label.rjust(label_width), i.interval, i.attacked) for i in sensors],
        width,
        lo,
        hi,
    )
    bottom = render_intervals(
        [LabeledInterval(i.label.rjust(label_width), i.interval, i.attacked) for i in fusions],
        width,
        lo,
        hi,
    )
    # Drop the duplicated axis line from the top block.
    top_lines = top.splitlines()[:-1]
    return "\n".join([*top_lines, separator, bottom])
