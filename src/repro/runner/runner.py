"""The sharded parallel scenario runner.

``run_scenario`` turns a declarative :class:`~repro.scenarios.spec.ScenarioSpec`
into results, with three guarantees:

1. **Worker-count invariance.**  A scenario is *planned* into shard tasks
   whose layout depends only on the spec (``ceil(samples / shard_samples)``
   shards per comparison case, ``ceil(n_replicas / shard_replicas)`` replica
   chunks per batch case study, one task per schedule for the scalar
   oracle).  Every shard derives its own RNG stream statelessly from the
   spec seed and its position (:func:`repro.utils.seeding.derive_rng` spawn
   keys), and shard results are merged in plan order — so ``workers=1`` and
   ``workers=8`` produce bit-identical payloads.
2. **Parallelism without protocol.**  Shard tasks are plain picklable
   dataclasses executed by a module-level function, fanned out over a
   :class:`concurrent.futures.ProcessPoolExecutor`; no shared state, no
   ordering assumptions (``Executor.map`` preserves plan order regardless of
   completion order).
3. **Free repeats.**  With an :class:`~repro.runner.store.ArtifactStore`,
   an unchanged spec is a content-hash cache hit and returns without
   simulating; ``force=True`` recomputes and overwrites.

The per-kind planning/execution/merging lives in the ``_plan_*`` /
``_execute_*`` / ``_merge_*`` trios below; adding a scenario kind means
adding one trio and a dispatch entry.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from datetime import datetime, timezone

import numpy as np

from repro import obs
from repro.core.exceptions import ExperimentError
from repro.engine import default_engine_name, get_engine
from repro.runner.store import ArtifactStore
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import (
    CaseStudyScenario,
    ComparisonScenario,
    FigureScenario,
    OptimizationScenario,
    ScenarioSpec,
    schedule_from_spec,
    spec_key,
)
from repro.utils.seeding import derive_rng

__all__ = [
    "ShardTask",
    "ScenarioRun",
    "comparison_stats_row",
    "execute_task",
    "merge_outcomes",
    "plan_tasks",
    "resolve_spec_engine",
    "run_scenario",
]


@dataclass(frozen=True)
class ShardTask:
    """One unit of scenario work, picklable across worker processes.

    ``index`` is the task's position in the plan — the merge order — and
    ``params`` carries the kind-specific coordinates (e.g. ``(case_index,
    shard_index, shard_samples)`` for a comparison shard).  The RNG stream
    is *not* carried: workers rebuild it from the spec seed and the
    coordinates, which is what keeps execution order irrelevant.
    """

    spec: ScenarioSpec
    index: int
    params: tuple = ()


@dataclass(frozen=True)
class ScenarioRun:
    """Outcome of :func:`run_scenario`: payload plus provenance."""

    spec: ScenarioSpec
    key: str
    payload: dict
    cached: bool
    shards: int
    workers: int
    elapsed_seconds: float
    store_path: str | None = field(default=None)


def _shard_sizes(total: int, shard_size: int) -> list[int]:
    """Split ``total`` into deterministic chunks of at most ``shard_size``."""
    sizes = [shard_size] * (total // shard_size)
    if total % shard_size:
        sizes.append(total % shard_size)
    return sizes


# --------------------------------------------------------------------------
# comparison scenarios


def _plan_comparison(spec: ComparisonScenario) -> list[ShardTask]:
    tasks = []
    for case_index in range(len(spec.cases)):
        for shard_index, samples in enumerate(_shard_sizes(spec.samples, spec.shard_samples)):
            tasks.append(
                ShardTask(spec=spec, index=len(tasks), params=(case_index, shard_index, samples))
            )
    return tasks


def comparison_stats_row(result) -> dict:
    """Reduce one :class:`~repro.engine.base.RoundsResult` to its shard row.

    The sufficient statistics a comparison merge consumes — the merge only
    ever reduces to means and fractions, and the per-shard sums are combined
    in plan order, so payloads stay worker-count invariant while shard IPC
    drops from megabytes to bytes.  Public because the serving layer
    (:mod:`repro.serve`) produces ``RoundsResult`` values through the batch
    collator and must reduce them with *exactly* the runner's arithmetic to
    keep served payloads bit-identical to ``python -m repro run`` artifacts.
    """
    if result.flagged is None:
        raise ExperimentError(
            "engine returned a RoundsResult without the per-sensor flagged "
            "array; scenario payloads require it (fill broadcast_lo/"
            "broadcast_hi/flagged like the built-in backends)"
        )
    valid = result.valid
    row = {
        "schedule": result.schedule_name,
        "samples": result.samples,
        "valid": int(np.count_nonzero(valid)),
        "width_sum": float(result.widths[valid].sum()),
        "detected": int(np.count_nonzero(result.attacker_detected)),
        "flagged_counts": [int(count) for count in result.flagged[valid].sum(axis=0)],
    }
    if result.channel_dropped is not None:
        # Channel counters only appear on lossy runs, so channel-free
        # scenario payloads stay byte-identical to pre-channel builds.
        row["channel_dropped"] = int(result.channel_dropped.sum())
        row["channel_retransmits"] = int(result.channel_retransmits.sum())
    return row


def _execute_comparison(task: ShardTask) -> list[dict]:
    spec: ComparisonScenario = task.spec
    case_index, shard_index, samples = task.params
    case = spec.cases[case_index]
    engine = get_engine(spec.engine)
    config = case.comparison_config()
    faults = case.faults()
    # One stream per (case, shard), consumed by the schedules sequentially —
    # the same convention as Engine.compare, so a single-shard scenario
    # reproduces an engine.compare call exactly.
    rng = derive_rng(spec.seed, case_index, shard_index)
    # Only lossy cases pass the channel through, so third-party backends
    # predating the channel parameter keep working on channel-free scenarios.
    channel_args = (case.channel,) if case.channel is not None else ()
    return [
        comparison_stats_row(
            engine.run_rounds(
                config, schedule, case.attack, faults, samples, rng, *channel_args
            )
        )
        for schedule in case.schedule_objects()
    ]


def _merge_comparison(spec: ComparisonScenario, outcomes: list[list[dict]]) -> dict:
    tasks_per_case = len(_shard_sizes(spec.samples, spec.shard_samples))
    cases = []
    for case_index, case in enumerate(spec.cases):
        shard_rows = outcomes[case_index * tasks_per_case : (case_index + 1) * tasks_per_case]
        rows = []
        # Rows merge by schedule *position*, never by name: two distinct
        # fixed/trust-aware schedules share a display name but stay separate.
        for position, schedule_name in enumerate(row["schedule"] for row in shard_rows[0]):
            shards = [shard[position] for shard in shard_rows]
            samples = sum(shard["samples"] for shard in shards)
            valid = sum(shard["valid"] for shard in shards)
            width_sum = sum(shard["width_sum"] for shard in shards)
            flagged_counts = np.sum([shard["flagged_counts"] for shard in shards], axis=0)
            row = {
                "schedule": schedule_name,
                "samples": samples,
                "expected_width": width_sum / valid if valid else float("nan"),
                "valid_fraction": valid / samples,
                "detected_fraction": sum(shard["detected"] for shard in shards) / samples,
                "flagged_fraction_per_sensor": [
                    count / valid if valid else float("nan") for count in flagged_counts
                ],
            }
            if "channel_dropped" in shards[0]:
                row["channel_dropped"] = sum(shard["channel_dropped"] for shard in shards)
                row["channel_retransmits"] = sum(
                    shard["channel_retransmits"] for shard in shards
                )
            rows.append(row)
        merged = {
            "label": case.label,
            "lengths": list(case.lengths),
            "fa": case.fa,
            "f": case.comparison_config().resolved_f,
            "attack": case.attack,
            "fault_probability": case.fault_probability,
            "rows": rows,
        }
        if case.channel is not None:
            merged["channel"] = case.channel.to_dict()
        cases.append(merged)
    return {"kind": spec.kind, "cases": cases}


# --------------------------------------------------------------------------
# case-study scenarios


def _case_study_attacker_factory(spec: CaseStudyScenario):
    if spec.attacker == "proxy":
        return None  # batch_case_study_for_schedule's default proxy attacker
    true_value_positions, placement_positions, grid_positions = spec.expectation_grid

    def factory():
        from repro.batch.expectation import ExactExpectationBatchAttacker

        return ExactExpectationBatchAttacker(
            true_value_positions=true_value_positions,
            placement_positions=placement_positions,
            grid_positions=grid_positions,
        )

    return factory


def _plan_case_study(spec: CaseStudyScenario) -> list[ShardTask]:
    if spec.attacker == "expectation-grid":
        # The scalar oracle cannot shard replicas; parallelise per schedule
        # with the exact stream ScalarEngine.run_case_study derives.
        return [
            ShardTask(spec=spec, index=index, params=("schedule", index))
            for index in range(len(spec.schedules))
        ]
    return [
        ShardTask(spec=spec, index=index, params=("replicas", index, replicas))
        for index, replicas in enumerate(_shard_sizes(spec.n_replicas, spec.shard_replicas))
    ]


def _execute_case_study(task: ShardTask) -> list[dict]:
    spec: CaseStudyScenario = task.spec
    config = spec.case_study_config()
    schedules = [schedule_from_spec(text) for text in spec.schedules]
    if task.params[0] == "schedule":
        from repro.attack.expectation import ExpectationPolicy
        from repro.vehicle.case_study import run_case_study_for_schedule

        schedule_index = task.params[1]
        true_value_positions, placement_positions, grid_positions = spec.expectation_grid

        def policy_factory():
            return ExpectationPolicy(
                true_value_positions=true_value_positions,
                placement_positions=placement_positions,
                grid_positions=grid_positions,
            )

        stats = run_case_study_for_schedule(
            config,
            schedules[schedule_index],
            policy_factory,
            derive_rng(spec.seed, schedule_index),
        )
        return [_stats_dict(schedule_index, stats)]

    from repro.batch.case_study import batch_case_study_for_schedule

    _, shard_index, replicas = task.params
    attacker_factory = _case_study_attacker_factory(spec)
    shard_stats = []
    for schedule_index, schedule in enumerate(schedules):
        stats = batch_case_study_for_schedule(
            config,
            schedule,
            n_replicas=replicas,
            rng=derive_rng(spec.seed, schedule_index, shard_index),
            attacker_factory=attacker_factory,
        )
        shard_stats.append(_stats_dict(schedule_index, stats))
    return shard_stats


def _stats_dict(schedule_index: int, stats) -> dict:
    return {
        "schedule_index": schedule_index,
        "rounds": stats.rounds,
        "upper_violations": stats.upper_violations,
        "lower_violations": stats.lower_violations,
    }


def _merge_case_study(spec: CaseStudyScenario, outcomes: list[list[dict]]) -> dict:
    # Keyed by schedule *position* in the spec, never by display name: two
    # distinct fixed:... schedules both render as "fixed" but must not pool.
    totals = [
        {"rounds": 0, "upper_violations": 0, "lower_violations": 0} for _ in spec.schedules
    ]
    for shard_stats in outcomes:
        for stats in shard_stats:
            row = totals[stats["schedule_index"]]
            row["rounds"] += stats["rounds"]
            row["upper_violations"] += stats["upper_violations"]
            row["lower_violations"] += stats["lower_violations"]
    rows = []
    for text, row in zip(spec.schedules, totals):
        rows.append(
            {
                "schedule": schedule_from_spec(text).name,
                "schedule_spec": text,
                **row,
                "upper_percentage": 100.0 * row["upper_violations"] / row["rounds"],
                "lower_percentage": 100.0 * row["lower_violations"] / row["rounds"],
            }
        )
    return {"kind": spec.kind, "attacker": spec.attacker, "rows": rows}


# --------------------------------------------------------------------------
# figure scenarios


def _plan_figure(spec: FigureScenario) -> list[ShardTask]:
    return [ShardTask(spec=spec, index=0)]


def _execute_figure(task: ShardTask) -> dict:
    from repro.scenarios.figures import FIGURES

    spec: FigureScenario = task.spec
    return FIGURES[spec.figure](derive_rng(spec.seed, 0))


def _merge_figure(spec: FigureScenario, outcomes: list[dict]) -> dict:
    return {"kind": spec.kind, "figure": spec.figure, **outcomes[0]}


# --------------------------------------------------------------------------
# optimization scenarios (strategy logic lives in repro.optimize; the trio
# here only adapts it to the ShardTask protocol)


def _plan_optimization(spec: OptimizationScenario) -> list[ShardTask]:
    from repro.optimize import get_optimizer

    return [
        ShardTask(spec=spec, index=index, params=params)
        for index, params in enumerate(get_optimizer(spec.strategy).plan(spec))
    ]


def _execute_optimization(task: ShardTask) -> dict:
    from repro.optimize import ScheduleEvaluator, get_optimizer

    spec: OptimizationScenario = task.spec
    evaluator = ScheduleEvaluator(spec)
    outcome = get_optimizer(spec.strategy).execute(spec, evaluator, task.params)
    outcome["counters"] = evaluator.counters()
    return outcome


def _merge_optimization(spec: OptimizationScenario, outcomes: list[dict]) -> dict:
    from repro.optimize import assemble_payload

    return assemble_payload(spec, outcomes)


# --------------------------------------------------------------------------
# dispatch + entry point

_PLANNERS = {
    ComparisonScenario.kind: _plan_comparison,
    CaseStudyScenario.kind: _plan_case_study,
    FigureScenario.kind: _plan_figure,
    OptimizationScenario.kind: _plan_optimization,
}

_EXECUTORS = {
    ComparisonScenario.kind: _execute_comparison,
    CaseStudyScenario.kind: _execute_case_study,
    FigureScenario.kind: _execute_figure,
    OptimizationScenario.kind: _execute_optimization,
}

_MERGERS = {
    ComparisonScenario.kind: _merge_comparison,
    CaseStudyScenario.kind: _merge_case_study,
    FigureScenario.kind: _merge_figure,
    OptimizationScenario.kind: _merge_optimization,
}


def plan_tasks(spec: ScenarioSpec) -> list[ShardTask]:
    """The spec's shard plan — a pure function of the spec."""
    planner = _PLANNERS.get(spec.kind)
    if planner is None:
        raise ExperimentError(f"no runner for scenario kind {spec.kind!r}")
    return planner(spec)


def execute_task(task: ShardTask):
    """Execute one shard task (module-level so worker processes can pickle it)."""
    return _EXECUTORS[task.spec.kind](task)


def execute_task_traced(task: ShardTask):
    """Traced twin of :func:`execute_task`: ``(outcome, telemetry snapshot)``.

    The telemetry scope is opened *inside* this function, so per-shard spans
    and metrics are collected identically whether the call runs in a pool
    worker (where the parent's thread-local scope never propagates) or
    in-process on the ``workers=1`` path — that symmetry is what makes the
    merged trace worker-count-invariant.  Module-level so worker processes
    can pickle it; the returned snapshot is plain picklable data.
    """
    with obs.collect() as session:
        with obs.span("runner.shard", index=task.index, kind=task.spec.kind):
            outcome = _EXECUTORS[task.spec.kind](task)
        snapshot = session.snapshot()
    return outcome, snapshot


def merge_outcomes(spec: ScenarioSpec, outcomes: list) -> dict:
    """Merge plan-ordered shard outcomes into the scenario payload.

    The exact reduction :func:`run_scenario` applies; public so alternative
    executors (the serving layer routes comparison shards through a batch
    collator instead of a process pool) can reuse the arithmetic and stay
    bit-identical to CLI artifacts.  ``outcomes`` must align with
    :func:`plan_tasks` order.
    """
    merger = _MERGERS.get(spec.kind)
    if merger is None:
        raise ExperimentError(f"no runner for scenario kind {spec.kind!r}")
    return merger(spec, outcomes)


def resolve_spec_engine(spec: ScenarioSpec) -> ScenarioSpec:
    """Pin the env-resolved default backend into a comparison/optimization spec.

    Applied *before* hashing: otherwise two ``REPRO_ENGINE`` sessions would
    share one store entry and a future non-bit-parity backend could serve
    another backend's numbers.  Case-study specs (whose engines are
    validated fields) and explicitly pinned specs pass through unchanged.
    """
    if spec.engine is None and spec.kind in (
        ComparisonScenario.kind,
        OptimizationScenario.kind,
    ):
        return dataclasses.replace(spec, engine=default_engine_name())
    return spec


def run_scenario(
    scenario: str | ScenarioSpec,
    workers: int = 1,
    store: ArtifactStore | None = None,
    force: bool = False,
) -> ScenarioRun:
    """Run a scenario (by name or spec), sharded over ``workers`` processes.

    With a ``store``, an unchanged spec is served from its content-addressed
    artifact without re-simulation (``force=True`` recomputes).  The payload
    is bit-identical for any ``workers`` value — see the module docstring
    for why — so cached and fresh runs are interchangeable.
    """
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    if workers < 1:
        raise ExperimentError(f"need at least one worker, got {workers}")
    spec = resolve_spec_engine(spec)
    key = spec_key(spec)
    with obs.span(
        "runner.run_scenario", scenario=spec.name, kind=spec.kind, workers=workers
    ):
        if store is not None and not force:
            document = store.load(spec)
            if document is not None:
                return ScenarioRun(
                    spec=spec,
                    key=key,
                    payload=document["payload"],
                    cached=True,
                    shards=int(document.get("meta", {}).get("shards", 0)),
                    workers=0,
                    elapsed_seconds=0.0,
                    store_path=str(store.path_for(spec)),
                )
        with obs.span("runner.plan", scenario=spec.name):
            tasks = plan_tasks(spec)
        tracing = obs.enabled()
        started = time.perf_counter()
        if workers == 1 or len(tasks) == 1:
            executor = execute_task_traced if tracing else execute_task
            outcomes = [executor(task) for task in tasks]
        else:
            with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
                # Executor.map returns results in submission (= plan/merge) order
                # no matter which worker finishes first.
                outcomes = list(pool.map(execute_task_traced if tracing else execute_task, tasks))
        if tracing:
            # Plan-ordered grafting: shard span trees and metrics land in the
            # parent scope in the same order however many workers ran them.
            outcomes, snapshots = zip(*outcomes) if outcomes else ((), ())
            outcomes = list(outcomes)
            for snapshot in snapshots:
                obs.graft(snapshot)
        with obs.span("runner.merge", scenario=spec.name, shards=len(tasks)):
            payload = merge_outcomes(spec, outcomes)
        elapsed = time.perf_counter() - started
        store_path = None
        if store is not None:
            store_path = str(
                store.save(
                    spec,
                    payload,
                    meta={
                        "shards": len(tasks),
                        "workers": workers,
                        "elapsed_seconds": elapsed,
                        "created_at": datetime.now(timezone.utc).isoformat(),
                    },
                )
            )
    return ScenarioRun(
        spec=spec,
        key=key,
        payload=payload,
        cached=False,
        shards=len(tasks),
        workers=workers,
        elapsed_seconds=elapsed,
        store_path=store_path,
    )
