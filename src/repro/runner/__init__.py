"""Sharded parallel execution and content-addressed caching of scenarios.

See ``docs/SCENARIOS.md`` for the runner's determinism guarantees and the
artifact-store layout.
"""

from repro.runner.runner import (
    ScenarioRun,
    ShardTask,
    comparison_stats_row,
    execute_task,
    merge_outcomes,
    plan_tasks,
    resolve_spec_engine,
    run_scenario,
)
from repro.runner.store import (
    DEFAULT_STORE_DIR,
    STORE_ENV_VAR,
    ArtifactStore,
    default_store,
)

__all__ = [
    "ShardTask",
    "ScenarioRun",
    "comparison_stats_row",
    "merge_outcomes",
    "plan_tasks",
    "execute_task",
    "resolve_spec_engine",
    "run_scenario",
    "ArtifactStore",
    "default_store",
    "STORE_ENV_VAR",
    "DEFAULT_STORE_DIR",
]
