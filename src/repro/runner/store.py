"""Content-addressed artifact store for scenario results.

Layout: one JSON document per result at ``<root>/<spec_key(spec)>.json``
(default root ``results/store/``, overridable with the ``REPRO_STORE_DIR``
environment variable or the CLI's ``--store``).  The filename *is* the
invalidation mechanism: any change to the spec — sample budget, seed, shard
layout, engine, attack, schema version — changes its sha256 content hash
(:func:`repro.scenarios.spec.spec_key`), so a stale result is simply never
looked up again.  No mtimes, no manifests, no bookkeeping.

Each document carries the full serialised spec next to the payload, which
lets :meth:`ArtifactStore.load` verify the (astronomically unlikely) hash
collision / hand-edited file case, and makes every artifact self-describing
for archival (CI uploads the whole directory as a workflow artifact).
Corrupt artifacts — truncated writes, non-JSON bytes, embedded-spec
mismatches — are treated as cache misses (with a warning) and healed by
the next atomic :meth:`ArtifactStore.save`, never crashes.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.scenarios.spec import ScenarioSpec, spec_dict, spec_key

__all__ = ["STORE_ENV_VAR", "DEFAULT_STORE_DIR", "ArtifactStore", "default_store"]

#: Environment variable overriding the default store directory.
STORE_ENV_VAR = "REPRO_STORE_DIR"

#: Store root used when neither the caller nor the environment picks one.
DEFAULT_STORE_DIR = Path("results") / "store"


@dataclass(frozen=True)
class ArtifactStore:
    """A directory of content-addressed scenario results."""

    root: Path

    def path_for(self, spec: ScenarioSpec) -> Path:
        """The (content-addressed) file a result for ``spec`` lives at."""
        return self.root / f"{spec_key(spec)}.json"

    def load(self, spec: ScenarioSpec) -> dict | None:
        """Return the stored document for ``spec``, or ``None`` on a miss.

        Robustness contract: a corrupt artifact — truncated or non-JSON
        bytes (a crashed writer, a torn disk), a document without a
        ``payload``, or an embedded spec that does not match ``spec`` (hash
        collision or a hand-edited file) — is treated as a **cache miss**,
        never a crash.  The runner then re-simulates and
        :meth:`save` atomically replaces the bad file.  A warning is
        emitted so silent corruption still surfaces in logs.
        """
        path = self.path_for(spec)
        with obs.span("store.load", name=spec.name):
            if not path.exists():
                obs.add("repro_store_reads_total", outcome="miss")
                return None
            try:
                document = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as error:
                self._warn_corrupt(path, f"unreadable ({error})")
                obs.add("repro_store_reads_total", outcome="corrupt")
                return None
            if (
                not isinstance(document, dict)
                or not isinstance(document.get("payload"), dict)
            ):
                self._warn_corrupt(path, "document carries no payload")
                obs.add("repro_store_reads_total", outcome="corrupt")
                return None
            if document.get("spec") != _jsonified_spec(spec):
                self._warn_corrupt(path, "embedded spec does not match the requested spec")
                obs.add("repro_store_reads_total", outcome="corrupt")
                return None
            obs.add("repro_store_reads_total", outcome="hit")
            return document

    @staticmethod
    def _warn_corrupt(path: Path, reason: str) -> None:
        warnings.warn(
            f"artifact {path} is corrupt — {reason}; treating it as a cache miss "
            "(the result will be re-simulated and the artifact rewritten)",
            RuntimeWarning,
            stacklevel=3,
        )

    def save(self, spec: ScenarioSpec, payload: dict, meta: dict | None = None) -> Path:
        """Persist ``payload`` for ``spec``; returns the written path."""
        with obs.span("store.save", name=spec.name):
            return self._save(spec, payload, meta)

    def _save(self, spec: ScenarioSpec, payload: dict, meta: dict | None) -> Path:
        obs.add("repro_store_writes_total")
        self.root.mkdir(parents=True, exist_ok=True)
        document = {
            "key": spec_key(spec),
            "name": spec.name,
            "kind": spec.kind,
            "spec": spec_dict(spec),
            "meta": meta or {},
            "payload": payload,
        }
        path = self.path_for(spec)
        # Atomic publish via a per-writer scratch file: a concurrent reader
        # never sees a half-written document, and two concurrent writers of
        # the same spec each publish a complete one (last replace wins).
        handle, scratch = tempfile.mkstemp(
            dir=self.root, prefix=f".{spec_key(spec)[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(json.dumps(document, sort_keys=True, indent=2) + "\n")
            os.replace(scratch, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(scratch)
            raise
        return path

    def entries(self) -> list[dict]:
        """Summaries (name, kind, key, meta, size, mtime) of every artifact.

        ``size_bytes`` and ``modified`` (epoch seconds) come from the
        filesystem, so housekeeping (``python -m repro store ls`` / ``gc``)
        works without parsing payloads; unreadable files are skipped.
        """
        if not self.root.exists():
            return []
        summaries = []
        for path in sorted(self.root.glob("*.json")):
            try:
                stat = path.stat()
                document = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            summaries.append(
                {
                    "name": document.get("name"),
                    "kind": document.get("kind"),
                    "key": document.get("key"),
                    "meta": document.get("meta", {}),
                    "path": str(path),
                    "size_bytes": stat.st_size,
                    "modified": stat.st_mtime,
                }
            )
        return summaries

    @staticmethod
    def _recency(entry: dict) -> tuple:
        """Total order on entries: mtime, then key, then path.

        Filesystem mtimes have coarse granularity (a second on some mounts),
        so two artifacts written back-to-back routinely share one.  The
        content-hash key (and, belt-and-braces, the path) breaks the tie, so
        :meth:`latest_index` and :meth:`gc` pick the same winner on every
        platform and directory-walk order.
        """
        return (entry["modified"], entry["key"] or "", entry["path"])

    def latest_index(self) -> dict[str, dict]:
        """Scenario name → its most recently written entry.

        The content-addressed layout keeps every historical key of a scenario
        (each spec change writes a new file); this view answers "what is the
        current result for NAME" by modification time, with equal mtimes
        broken deterministically (:meth:`_recency`).
        """
        index: dict[str, dict] = {}
        for entry in self.entries():
            name = entry["name"]
            current = index.get(name)
            if current is None or self._recency(entry) > self._recency(current):
                index[name] = entry
        return index

    def gc(self, keep_latest: int = 1) -> list[dict]:
        """Delete superseded artifacts, keeping each scenario's newest entries.

        For every scenario name, the ``keep_latest`` most recently modified
        files survive; older keys (stale spec versions that will never be
        looked up again) are removed.  Returns the deleted entries so callers
        can report reclaimed space.  Files that vanish mid-walk (a concurrent
        gc) are counted as already collected.
        """
        if keep_latest < 1:
            raise ValueError(f"gc must keep at least one entry per name, got {keep_latest}")
        by_name: dict[str, list[dict]] = {}
        for entry in self.entries():
            by_name.setdefault(entry["name"], []).append(entry)
        deleted = []
        for entries in by_name.values():
            entries.sort(key=self._recency, reverse=True)
            for entry in entries[keep_latest:]:
                with contextlib.suppress(FileNotFoundError):
                    os.unlink(entry["path"])
                    deleted.append(entry)
        return deleted


def _jsonified_spec(spec: ScenarioSpec) -> dict:
    """The spec as it reads back from JSON (tuples become lists, int keys str)."""
    return json.loads(json.dumps(spec_dict(spec)))


def default_store(root: str | Path | None = None) -> ArtifactStore:
    """Build the store at ``root`` / ``$REPRO_STORE_DIR`` / ``results/store``."""
    if root is None:
        root = os.environ.get(STORE_ENV_VAR, "").strip() or DEFAULT_STORE_DIR
    return ArtifactStore(root=Path(root))
