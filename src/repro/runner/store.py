"""Content-addressed artifact store for scenario results.

Layout: one JSON document per result at ``<root>/<spec_key(spec)>.json``
(default root ``results/store/``, overridable with the ``REPRO_STORE_DIR``
environment variable or the CLI's ``--store``).  The filename *is* the
invalidation mechanism: any change to the spec — sample budget, seed, shard
layout, engine, attack, schema version — changes its sha256 content hash
(:func:`repro.scenarios.spec.spec_key`), so a stale result is simply never
looked up again.  No mtimes, no manifests, no bookkeeping.

Each document carries the full serialised spec next to the payload, which
lets :meth:`ArtifactStore.load` verify the (astronomically unlikely) hash
collision / hand-edited file case, and makes every artifact self-describing
for archival (CI uploads the whole directory as a workflow artifact).
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.core.exceptions import ExperimentError
from repro.scenarios.spec import ScenarioSpec, spec_dict, spec_key

__all__ = ["STORE_ENV_VAR", "DEFAULT_STORE_DIR", "ArtifactStore", "default_store"]

#: Environment variable overriding the default store directory.
STORE_ENV_VAR = "REPRO_STORE_DIR"

#: Store root used when neither the caller nor the environment picks one.
DEFAULT_STORE_DIR = Path("results") / "store"


@dataclass(frozen=True)
class ArtifactStore:
    """A directory of content-addressed scenario results."""

    root: Path

    def path_for(self, spec: ScenarioSpec) -> Path:
        """The (content-addressed) file a result for ``spec`` lives at."""
        return self.root / f"{spec_key(spec)}.json"

    def load(self, spec: ScenarioSpec) -> dict | None:
        """Return the stored document for ``spec``, or ``None`` on a miss.

        A document whose embedded spec does not match ``spec`` (hash
        collision or a hand-edited file) raises rather than silently serving
        wrong results.
        """
        path = self.path_for(spec)
        if not path.exists():
            return None
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise ExperimentError(f"artifact {path} is unreadable: {error}") from error
        if document.get("spec") != _jsonified_spec(spec):
            raise ExperimentError(
                f"artifact {path} does not match the requested spec; delete it or "
                "bump the scenario (its content hash should have prevented this)"
            )
        return document

    def save(self, spec: ScenarioSpec, payload: dict, meta: dict | None = None) -> Path:
        """Persist ``payload`` for ``spec``; returns the written path."""
        self.root.mkdir(parents=True, exist_ok=True)
        document = {
            "key": spec_key(spec),
            "name": spec.name,
            "kind": spec.kind,
            "spec": spec_dict(spec),
            "meta": meta or {},
            "payload": payload,
        }
        path = self.path_for(spec)
        # Atomic publish via a per-writer scratch file: a concurrent reader
        # never sees a half-written document, and two concurrent writers of
        # the same spec each publish a complete one (last replace wins).
        handle, scratch = tempfile.mkstemp(
            dir=self.root, prefix=f".{spec_key(spec)[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(json.dumps(document, sort_keys=True, indent=2) + "\n")
            os.replace(scratch, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(scratch)
            raise
        return path

    def entries(self) -> list[dict]:
        """Summaries (name, kind, key, meta) of every stored artifact."""
        if not self.root.exists():
            return []
        summaries = []
        for path in sorted(self.root.glob("*.json")):
            try:
                document = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            summaries.append(
                {
                    "name": document.get("name"),
                    "kind": document.get("kind"),
                    "key": document.get("key"),
                    "meta": document.get("meta", {}),
                    "path": str(path),
                }
            )
        return summaries


def _jsonified_spec(spec: ScenarioSpec) -> dict:
    """The spec as it reads back from JSON (tuples become lists, int keys str)."""
    return json.loads(json.dumps(spec_dict(spec)))


def default_store(root: str | Path | None = None) -> ArtifactStore:
    """Build the store at ``root`` / ``$REPRO_STORE_DIR`` / ``results/store``."""
    if root is None:
        root = os.environ.get(STORE_ENV_VAR, "").strip() or DEFAULT_STORE_DIR
    return ArtifactStore(root=Path(root))
