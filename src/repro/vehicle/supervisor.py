"""High-level safety supervisor of the platoon case study.

The case study encodes two safety restrictions into the *fusion interval*
rather than the point estimate: the speed must not exceed ``v + δ1`` (risk of
rear-ending the vehicle in front or being unable to stop) and must not drop
below ``v - δ2`` (risk of being rear-ended by the vehicle behind).  Whenever
the fusion interval's upper bound exceeds ``v + δ1`` or its lower bound falls
below ``v - δ2``, a high-level algorithm preempts the low-level controller.

The supervisor below records those events (they are exactly what Table II
counts) and, when preempting, replaces the controller command with a
conservative one computed from the violated bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import VehicleError
from repro.core.interval import Interval

__all__ = ["SafetyLimits", "SupervisorDecision", "SafetySupervisor"]


@dataclass(frozen=True)
class SafetyLimits:
    """The platoon's speed envelope around the target ``v``.

    Attributes
    ----------
    target_speed:
        The leader-assigned target ``v`` (10 mph in the paper).
    delta_upper:
        Allowed excess over the target (``δ1``, 0.5 mph in the paper).
    delta_lower:
        Allowed deficit below the target (``δ2``, 0.5 mph in the paper).
    """

    target_speed: float
    delta_upper: float = 0.5
    delta_lower: float = 0.5

    def __post_init__(self) -> None:
        if self.target_speed <= 0:
            raise VehicleError(f"target speed must be positive, got {self.target_speed}")
        if self.delta_upper <= 0 or self.delta_lower <= 0:
            raise VehicleError("safety margins must be positive")

    @property
    def upper_limit(self) -> float:
        """Speed above which the platoon is unsafe (``v + δ1``)."""
        return self.target_speed + self.delta_upper

    @property
    def lower_limit(self) -> float:
        """Speed below which the platoon is unsafe (``v - δ2``)."""
        return self.target_speed - self.delta_lower


@dataclass(frozen=True)
class SupervisorDecision:
    """Outcome of one supervisor check.

    Attributes
    ----------
    upper_violation:
        ``True`` if the fusion interval's upper bound exceeded ``v + δ1``.
    lower_violation:
        ``True`` if the fusion interval's lower bound fell below ``v - δ2``.
    preempted:
        ``True`` if the supervisor overrode the low-level controller.
    command:
        The acceleration command to apply this step (the controller's command
        when not preempted, the supervisor's conservative command otherwise).
    """

    upper_violation: bool
    lower_violation: bool
    preempted: bool
    command: float

    @property
    def any_violation(self) -> bool:
        """``True`` if either safety bound was violated."""
        return self.upper_violation or self.lower_violation


class SafetySupervisor:
    """Checks the fusion interval against the platoon's speed envelope."""

    def __init__(self, limits: SafetyLimits, preempt_gain: float = 2.0) -> None:
        if preempt_gain <= 0:
            raise VehicleError(f"preempt gain must be positive, got {preempt_gain}")
        self._limits = limits
        self._preempt_gain = preempt_gain
        self._upper_violations = 0
        self._lower_violations = 0
        self._checks = 0

    @property
    def limits(self) -> SafetyLimits:
        """The configured safety envelope."""
        return self._limits

    @property
    def checks(self) -> int:
        """Number of supervisor checks performed so far."""
        return self._checks

    @property
    def upper_violations(self) -> int:
        """Number of checks with the fusion upper bound above ``v + δ1``."""
        return self._upper_violations

    @property
    def lower_violations(self) -> int:
        """Number of checks with the fusion lower bound below ``v - δ2``."""
        return self._lower_violations

    def reset(self) -> None:
        """Clear the violation counters."""
        self._upper_violations = 0
        self._lower_violations = 0
        self._checks = 0

    def review(self, fusion: Interval, controller_command: float) -> SupervisorDecision:
        """Check one round's fusion interval and decide the applied command."""
        self._checks += 1
        upper_violation = fusion.hi > self._limits.upper_limit
        lower_violation = fusion.lo < self._limits.lower_limit
        if upper_violation:
            self._upper_violations += 1
        if lower_violation:
            self._lower_violations += 1
        if not (upper_violation or lower_violation):
            return SupervisorDecision(
                upper_violation=False,
                lower_violation=False,
                preempted=False,
                command=controller_command,
            )
        # Preempt: steer the worst-case speed back inside the envelope.  When
        # the upper bound is violated the vehicle might be too fast, so brake
        # proportionally to the overshoot; symmetrically accelerate when the
        # lower bound is violated.  If both are violated (a very wide fusion
        # interval) braking wins — collisions with the front vehicle or an
        # obstacle are the more severe hazard in the case study.
        if upper_violation:
            command = -self._preempt_gain * (fusion.hi - self._limits.upper_limit)
        else:
            command = self._preempt_gain * (self._limits.lower_limit - fusion.lo)
        return SupervisorDecision(
            upper_violation=upper_violation,
            lower_violation=lower_violation,
            preempted=True,
            command=command,
        )
