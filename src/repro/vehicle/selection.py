"""Attacked-sensor selection strategies for the case study.

The paper's case study assumes "at most one sensor can be attacked at any
given point of time" and that "any sensor can be attacked".  Which sensor the
attacker grabs is therefore an experiment parameter:

* :class:`RandomSensorSelector` — a uniformly random sensor each fusion round
  (the paper's neutral assumption; this is the case-study default);
* :class:`MostPreciseSelector` — always an encoder, the strongest choice by
  Theorem 4 (used by the ablation benchmarks to show the worst case);
* :class:`FixedSelector` — an explicit, fixed set of sensors;
* :class:`NoAttackSelector` — nobody is attacked (baseline).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import ExperimentError
from repro.sensors.suite import SensorSuite

__all__ = [
    "AttackedSensorSelector",
    "NoAttackSelector",
    "FixedSelector",
    "MostPreciseSelector",
    "RandomSensorSelector",
    "selector_from_spec",
]


class AttackedSensorSelector(abc.ABC):
    """Strategy choosing which sensors are compromised in a fusion round."""

    @abc.abstractmethod
    def select(self, suite: SensorSuite, rng: np.random.Generator) -> tuple[int, ...]:
        """Return the compromised sensor indices for the upcoming round."""


@dataclass(frozen=True)
class NoAttackSelector(AttackedSensorSelector):
    """No sensor is ever compromised."""

    def select(self, suite: SensorSuite, rng: np.random.Generator) -> tuple[int, ...]:
        return ()


@dataclass(frozen=True)
class FixedSelector(AttackedSensorSelector):
    """A fixed set of compromised sensors, the same every round."""

    indices: tuple[int, ...]

    def select(self, suite: SensorSuite, rng: np.random.Generator) -> tuple[int, ...]:
        for index in self.indices:
            if not 0 <= index < len(suite):
                raise ExperimentError(
                    f"attacked sensor index {index} out of range for {len(suite)} sensors"
                )
        return tuple(sorted(set(self.indices)))


@dataclass(frozen=True)
class MostPreciseSelector(AttackedSensorSelector):
    """Compromise the ``count`` most precise sensors (Theorem 4's worst case)."""

    count: int = 1

    def select(self, suite: SensorSuite, rng: np.random.Generator) -> tuple[int, ...]:
        if not 1 <= self.count <= len(suite):
            raise ExperimentError(
                f"cannot attack {self.count} sensors out of {len(suite)}"
            )
        widths = suite.widths
        order = sorted(range(len(suite)), key=lambda i: (widths[i], i))
        return tuple(sorted(order[: self.count]))


@dataclass(frozen=True)
class RandomSensorSelector(AttackedSensorSelector):
    """Compromise ``count`` uniformly random sensors, re-drawn every round."""

    count: int = 1

    def select(self, suite: SensorSuite, rng: np.random.Generator) -> tuple[int, ...]:
        if not 1 <= self.count <= len(suite):
            raise ExperimentError(
                f"cannot attack {self.count} sensors out of {len(suite)}"
            )
        chosen = rng.choice(len(suite), size=self.count, replace=False)
        return tuple(sorted(int(i) for i in chosen))


def selector_from_spec(spec: str | int | tuple[int, ...]) -> AttackedSensorSelector:
    """Build a selector from the case study's ``attacked_sensor`` setting.

    ``"random"`` → random sensor each round, ``"most_precise"`` → the most
    precise sensor, ``"none"`` → no attack, an integer or tuple → fixed.
    """
    if isinstance(spec, tuple):
        return FixedSelector(indices=spec)
    if isinstance(spec, int):
        return FixedSelector(indices=(spec,))
    if spec == "random":
        return RandomSensorSelector()
    if spec == "most_precise":
        return MostPreciseSelector()
    if spec == "none":
        return NoAttackSelector()
    raise ExperimentError(f"unknown attacked-sensor specification {spec!r}")
