"""Low-level speed controller driven by the fused sensor estimate.

Each LandShark has a low-level controller that tries to keep the speed at the
platoon target ``v``.  The controller only ever sees the *fused* estimate (the
midpoint of the fusion interval), never the true speed — this is exactly the
attack surface the paper studies: by widening or skewing the fusion interval,
the attacker distorts what the controller reacts to.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import VehicleError

__all__ = ["SpeedController"]


@dataclass
class SpeedController:
    """A PI speed controller operating on the fused speed estimate.

    Parameters
    ----------
    kp:
        Proportional gain (acceleration per mph of speed error).
    ki:
        Integral gain.
    integral_limit:
        Anti-windup clamp on the accumulated integral term.
    """

    kp: float = 2.0
    ki: float = 0.5
    integral_limit: float = 5.0

    def __post_init__(self) -> None:
        if self.kp < 0 or self.ki < 0:
            raise VehicleError("controller gains must be non-negative")
        if self.integral_limit <= 0:
            raise VehicleError("integral limit must be positive")
        self._integral = 0.0

    def reset(self) -> None:
        """Clear the integral state (used between simulation runs)."""
        self._integral = 0.0

    def command(self, target_speed: float, estimated_speed: float, dt: float) -> float:
        """Return the commanded acceleration for one control step."""
        if dt <= 0:
            raise VehicleError(f"control step must be positive, got {dt}")
        error = target_speed - estimated_speed
        self._integral += error * dt
        self._integral = max(-self.integral_limit, min(self.integral_limit, self._integral))
        return self.kp * error + self.ki * self._integral
