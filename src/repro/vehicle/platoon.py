"""The three-vehicle platoon of the case study.

Three LandSharks move away from enemy territory in a platoon; the leader sets
a target speed ``v`` for all three, and each vehicle regulates its own speed
with its own sensors, bus, fusion and supervisor.  The platoon layer tracks
positions so that inter-vehicle gaps (the physical quantity the safety
envelope protects) can be inspected, and aggregates the per-vehicle violation
statistics that Table II reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.attack.policy import AttackPolicy
from repro.core.exceptions import VehicleError
from repro.scheduling.schedule import Schedule
from repro.vehicle.landshark import LandShark, StepRecord
from repro.vehicle.selection import AttackedSensorSelector
from repro.vehicle.supervisor import SafetyLimits

__all__ = ["PlatoonConfig", "PlatoonStep", "Platoon"]


@dataclass(frozen=True)
class PlatoonConfig:
    """Configuration of the platoon simulation.

    Attributes
    ----------
    target_speed:
        Leader-assigned target ``v`` (10 mph in the paper).
    delta_upper / delta_lower:
        The safety margins ``δ1`` and ``δ2`` (0.5 mph each in the paper).
    n_vehicles:
        Number of LandSharks in the platoon (three in the paper).
    initial_gap:
        Initial spacing between consecutive vehicles (in position units).
    attacked_indices:
        Sensor indices under attack on each vehicle (at most one sensor can be
        attacked at any time in the case study).
    """

    target_speed: float = 10.0
    delta_upper: float = 0.5
    delta_lower: float = 0.5
    n_vehicles: int = 3
    initial_gap: float = 5.0
    attacked_indices: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.n_vehicles < 1:
            raise VehicleError(f"a platoon needs at least one vehicle, got {self.n_vehicles}")
        if self.initial_gap <= 0:
            raise VehicleError(f"initial gap must be positive, got {self.initial_gap}")
        if len(self.attacked_indices) > 1:
            raise VehicleError(
                "the case study assumes at most one sensor is attacked at any given time"
            )

    def limits(self) -> SafetyLimits:
        """The safety envelope shared by every vehicle of the platoon."""
        return SafetyLimits(
            target_speed=self.target_speed,
            delta_upper=self.delta_upper,
            delta_lower=self.delta_lower,
        )


@dataclass(frozen=True)
class PlatoonStep:
    """One synchronous step of the whole platoon."""

    step_index: int
    records: tuple[StepRecord, ...]
    gaps: tuple[float, ...]

    @property
    def any_upper_violation(self) -> bool:
        """``True`` if any vehicle saw an upper-bound violation this step."""
        return any(r.upper_violation for r in self.records)

    @property
    def any_lower_violation(self) -> bool:
        """``True`` if any vehicle saw a lower-bound violation this step."""
        return any(r.lower_violation for r in self.records)

    @property
    def min_gap(self) -> float:
        """Smallest inter-vehicle gap after this step (∞ for a single vehicle)."""
        return min(self.gaps) if self.gaps else float("inf")


class Platoon:
    """A platoon of LandSharks sharing one schedule and attack configuration."""

    def __init__(
        self,
        config: PlatoonConfig,
        schedule: Schedule,
        attack_policy: AttackPolicy | None = None,
        attacked_selector: AttackedSensorSelector | None = None,
    ) -> None:
        self._config = config
        limits = config.limits()
        self._vehicles: list[LandShark] = []
        for index in range(config.n_vehicles):
            # The leader is at the largest position; followers start behind it
            # with the configured gap.
            position = -config.initial_gap * index
            self._vehicles.append(
                LandShark(
                    name=f"landshark-{index}",
                    schedule=schedule,
                    limits=limits,
                    attacked_indices=config.attacked_indices,
                    attack_policy=attack_policy,
                    attacked_selector=attacked_selector,
                    initial_position=position,
                )
            )
        self._step_index = 0

    @property
    def vehicles(self) -> Sequence[LandShark]:
        """The platoon members, leader first."""
        return tuple(self._vehicles)

    @property
    def config(self) -> PlatoonConfig:
        """The platoon configuration."""
        return self._config

    def gaps(self) -> tuple[float, ...]:
        """Current gaps between consecutive vehicles (leader to tail)."""
        positions = [vehicle.position for vehicle in self._vehicles]
        return tuple(positions[i] - positions[i + 1] for i in range(len(positions) - 1))

    def step(self, rng: np.random.Generator) -> PlatoonStep:
        """Advance every vehicle by one control period."""
        records = tuple(vehicle.step(rng) for vehicle in self._vehicles)
        result = PlatoonStep(step_index=self._step_index, records=records, gaps=self.gaps())
        self._step_index += 1
        return result

    def run(self, n_steps: int, rng: np.random.Generator) -> list[PlatoonStep]:
        """Run ``n_steps`` synchronous platoon steps."""
        if n_steps <= 0:
            raise VehicleError(f"need a positive number of steps, got {n_steps}")
        return [self.step(rng) for _ in range(n_steps)]
