"""LandShark vehicle assembly: dynamics + sensors + bus + fusion + control.

A :class:`LandShark` bundles everything one vehicle of the platoon needs:

* the longitudinal dynamics (the "plant"),
* the four-sensor speed suite of the case study (GPS, camera, two encoders),
* its own shared bus with the configured communication schedule,
* the attacker node (if this vehicle is under attack),
* the controller-side fusion engine, the PI speed controller and the safety
  supervisor.

One call to :meth:`step` performs a full control period: measure, broadcast
according to the schedule (with the attacker forging her slots), fuse, detect,
review against the safety envelope, and advance the dynamics with the applied
command.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attack.policy import AttackPolicy, TruthfulPolicy
from repro.bus.can import SharedBus
from repro.bus.nodes import AttackerNode, BusRound, BusRoundResult
from repro.core.exceptions import VehicleError
from repro.core.interval import Interval
from repro.sensors.library import landshark_specs, make_sensor
from repro.sensors.noise import NoiseModel, UniformNoise
from repro.sensors.suite import SensorSuite
from repro.scheduling.schedule import Schedule
from repro.vehicle.controller import SpeedController
from repro.vehicle.dynamics import LongitudinalVehicle, VehicleParameters, VehicleState
from repro.vehicle.selection import AttackedSensorSelector, FixedSelector
from repro.vehicle.supervisor import SafetyLimits, SafetySupervisor, SupervisorDecision

__all__ = ["landshark_suite", "StepRecord", "LandShark"]


def landshark_suite(noise: NoiseModel | None = None) -> SensorSuite:
    """The case study's four-sensor speed suite (widths 0.2, 0.2, 1.0, 2.0 mph)."""
    noise = noise if noise is not None else UniformNoise()
    return SensorSuite(make_sensor(spec, noise) for spec in landshark_specs())


@dataclass(frozen=True)
class StepRecord:
    """Everything recorded about one control period of one vehicle."""

    step_index: int
    true_speed: float
    fusion: Interval
    estimate: float
    decision: SupervisorDecision
    round_result: BusRoundResult

    @property
    def upper_violation(self) -> bool:
        """Fusion upper bound exceeded ``v + δ1`` this step."""
        return self.decision.upper_violation

    @property
    def lower_violation(self) -> bool:
        """Fusion lower bound fell below ``v - δ2`` this step."""
        return self.decision.lower_violation


class LandShark:
    """One LandShark vehicle of the platoon."""

    def __init__(
        self,
        name: str,
        schedule: Schedule,
        limits: SafetyLimits,
        attacked_indices: tuple[int, ...] = (),
        attack_policy: AttackPolicy | None = None,
        attacked_selector: AttackedSensorSelector | None = None,
        suite: SensorSuite | None = None,
        parameters: VehicleParameters | None = None,
        initial_speed: float | None = None,
        initial_position: float = 0.0,
        f: int | None = None,
    ) -> None:
        if not name:
            raise VehicleError("a LandShark needs a non-empty name")
        self.name = name
        self._limits = limits
        self._suite = suite if suite is not None else landshark_suite()
        initial = VehicleState(
            speed=limits.target_speed if initial_speed is None else initial_speed,
            position=initial_position,
        )
        self._vehicle = LongitudinalVehicle(parameters, initial)
        self._controller = SpeedController()
        self._supervisor = SafetySupervisor(limits)
        self._attacked_selector = (
            attacked_selector
            if attacked_selector is not None
            else FixedSelector(indices=tuple(attacked_indices))
        )
        attacker = AttackerNode(
            compromised_indices=tuple(attacked_indices),
            policy=attack_policy if attack_policy is not None else TruthfulPolicy(),
        )
        self._bus = SharedBus()
        self._round = BusRound(self._suite, schedule, attacker, f)
        self._step_index = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def suite(self) -> SensorSuite:
        """The vehicle's sensor suite."""
        return self._suite

    @property
    def supervisor(self) -> SafetySupervisor:
        """The vehicle's safety supervisor (holds the violation counters)."""
        return self._supervisor

    @property
    def true_speed(self) -> float:
        """Current true speed of the vehicle."""
        return self._vehicle.speed

    @property
    def position(self) -> float:
        """Current position of the vehicle."""
        return self._vehicle.position

    @property
    def target_speed(self) -> float:
        """The platoon target speed this vehicle regulates to."""
        return self._limits.target_speed

    # ------------------------------------------------------------------
    # One control period
    # ------------------------------------------------------------------
    def step(self, rng: np.random.Generator) -> StepRecord:
        """Run one full control period and advance the dynamics."""
        true_speed = self._vehicle.speed
        self._round.attacker.set_compromised(self._attacked_selector.select(self._suite, rng))
        round_result = self._round.run(self._bus, true_speed, rng)
        estimate = round_result.fusion.center
        command = self._controller.command(
            self._limits.target_speed, estimate, self._vehicle.parameters.dt
        )
        decision = self._supervisor.review(round_result.fusion, command)
        self._vehicle.step(decision.command, rng)
        record = StepRecord(
            step_index=self._step_index,
            true_speed=true_speed,
            fusion=round_result.fusion,
            estimate=estimate,
            decision=decision,
            round_result=round_result,
        )
        self._step_index += 1
        return record
