"""Longitudinal vehicle dynamics for the LandShark case study.

The paper's case study runs on a physical LandShark UGV; per the substitution
rule we replace it with a simple longitudinal model that preserves the only
property the fusion/attack layer consumes: a slowly varying true speed that
the controller regulates around a target using the fused estimate.

The model is a first-order speed response

    v[k+1] = v[k] + dt * (u[k] - drag * v[k]) + w[k]

with the commanded acceleration ``u`` saturated at ``±max_accel`` and a small
bounded process disturbance ``w`` modelling terrain variation.  Position is
integrated alongside speed so the platoon layer can reason about spacing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import VehicleError

__all__ = ["VehicleParameters", "VehicleState", "LongitudinalVehicle"]


@dataclass(frozen=True)
class VehicleParameters:
    """Physical parameters of the longitudinal model.

    Attributes
    ----------
    dt:
        Simulation time step in seconds.
    drag:
        First-order speed damping coefficient (1/s).
    max_accel:
        Saturation of the commanded acceleration (mph/s).
    max_disturbance:
        Bound on the per-step process disturbance (mph); the disturbance is
        uniform on ``[-max_disturbance, +max_disturbance]``.
    max_speed:
        Hard physical speed limit (mph); speed is clipped to ``[0, max_speed]``.
    """

    dt: float = 0.1
    drag: float = 0.01
    max_accel: float = 3.0
    max_disturbance: float = 0.02
    max_speed: float = 40.0

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise VehicleError(f"time step must be positive, got {self.dt}")
        if self.drag < 0:
            raise VehicleError(f"drag must be non-negative, got {self.drag}")
        if self.max_accel <= 0:
            raise VehicleError(f"max_accel must be positive, got {self.max_accel}")
        if self.max_disturbance < 0:
            raise VehicleError(f"max_disturbance must be non-negative, got {self.max_disturbance}")
        if self.max_speed <= 0:
            raise VehicleError(f"max_speed must be positive, got {self.max_speed}")


@dataclass
class VehicleState:
    """Mutable kinematic state of one vehicle."""

    speed: float = 0.0
    position: float = 0.0

    def __post_init__(self) -> None:
        if self.speed < 0:
            raise VehicleError(f"speed must be non-negative, got {self.speed}")


class LongitudinalVehicle:
    """First-order longitudinal vehicle model."""

    def __init__(
        self,
        parameters: VehicleParameters | None = None,
        initial_state: VehicleState | None = None,
    ) -> None:
        self._parameters = parameters if parameters is not None else VehicleParameters()
        self._state = initial_state if initial_state is not None else VehicleState()

    @property
    def parameters(self) -> VehicleParameters:
        """The (immutable) physical parameters."""
        return self._parameters

    @property
    def state(self) -> VehicleState:
        """Current kinematic state (speed, position)."""
        return self._state

    @property
    def speed(self) -> float:
        """Current true speed (the quantity the sensors measure)."""
        return self._state.speed

    @property
    def position(self) -> float:
        """Current position along the road."""
        return self._state.position

    def step(self, commanded_accel: float, rng: np.random.Generator) -> VehicleState:
        """Advance the model by one time step under ``commanded_accel``."""
        p = self._parameters
        accel = float(np.clip(commanded_accel, -p.max_accel, p.max_accel))
        disturbance = float(rng.uniform(-p.max_disturbance, p.max_disturbance))
        new_speed = self._state.speed + p.dt * (accel - p.drag * self._state.speed) + disturbance
        new_speed = float(np.clip(new_speed, 0.0, p.max_speed))
        new_position = self._state.position + p.dt * self._state.speed
        self._state = VehicleState(speed=new_speed, position=new_position)
        return self._state
