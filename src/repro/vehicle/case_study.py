"""The Table II case study: critical speed violations per schedule.

Three LandSharks drive in a platoon at a target speed of ``v = 10`` mph with
safety margins ``δ1 = δ2 = 0.5`` mph.  At most one sensor is attacked at any
time; the attacker forges that sensor's interval (stealthily) to maximise the
fusion interval, and the case study counts how often the fusion interval's
bounds cross the critical speeds — the events that force the high-level
safety algorithm to preempt the controller:

* percentage of fusion rounds with the upper bound above 10.5 mph,
* percentage of fusion rounds with the lower bound below 9.5 mph,

for the Ascending, Descending and Random schedules (Table II of the paper).

Which sensor is attacked is configurable:

* ``"random"`` (default) — a uniformly random sensor each fusion round; this
  matches the paper's assumption that "any sensor can be attacked";
* ``"most_precise"`` — the attacker always compromises one of the wheel
  encoders, the strongest choice by Theorem 4 (roughly doubles the violation
  rates; used by the ablation benchmark);
* an integer index — a fixed sensor.

:func:`run_case_study` dispatches through the :mod:`repro.engine` registry:
``engine="scalar"`` steps the original per-vehicle object stack,
``engine="batch"`` runs the vectorized closed-loop stepper of
:mod:`repro.batch.case_study` (10⁴+ platoon rounds per schedule in seconds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.attack.expectation import ExpectationPolicy
from repro.attack.policy import AttackPolicy
from repro.core.exceptions import ExperimentError
from repro.scheduling.schedule import Schedule
from repro.utils.seeding import ensure_rng
from repro.vehicle.platoon import Platoon, PlatoonConfig
from repro.vehicle.selection import AttackedSensorSelector, selector_from_spec

__all__ = [
    "CaseStudyConfig",
    "ViolationStats",
    "CaseStudyResult",
    "default_attack_policy",
    "run_case_study_for_schedule",
    "run_case_study",
]


def default_attack_policy() -> AttackPolicy:
    """The attacker used by the case study: expectation-maximising, coarse grid.

    The coarse discretisation keeps a multi-thousand-round platoon simulation
    tractable while preserving the attacker's qualitative behaviour (attack
    towards whichever side the seen intervals leave room for).
    """
    return ExpectationPolicy(true_value_positions=2, placement_positions=2, grid_positions=7)


@dataclass(frozen=True)
class CaseStudyConfig:
    """Configuration of the Table II experiment.

    Attributes
    ----------
    target_speed / delta_upper / delta_lower:
        The platoon speed envelope (10 ± 0.5 mph in the paper).
    n_vehicles:
        Platoon size (three in the paper).
    n_steps:
        Number of control periods simulated per schedule.
    attacked_sensor:
        ``"most_precise"``, ``"random"`` or an explicit sensor index.
    seed:
        Base RNG seed; each schedule derives its own stream from it.
    """

    target_speed: float = 10.0
    delta_upper: float = 0.5
    delta_lower: float = 0.5
    n_vehicles: int = 3
    n_steps: int = 200
    attacked_sensor: str | int = "random"
    seed: int = 2014

    def __post_init__(self) -> None:
        if self.n_steps <= 0:
            raise ExperimentError(f"n_steps must be positive, got {self.n_steps}")
        # Validate the attacked-sensor specification eagerly so that typos
        # fail at configuration time rather than mid-simulation.
        self.attacked_selector()

    def attacked_selector(self) -> AttackedSensorSelector:
        """The attacked-sensor selection strategy implied by the config."""
        return selector_from_spec(self.attacked_sensor)

    def platoon_config(self) -> PlatoonConfig:
        """Build the platoon configuration (attacked set is chosen per round)."""
        return PlatoonConfig(
            target_speed=self.target_speed,
            delta_upper=self.delta_upper,
            delta_lower=self.delta_lower,
            n_vehicles=self.n_vehicles,
        )


@dataclass(frozen=True)
class ViolationStats:
    """Violation percentages for one schedule (one row pair of Table II)."""

    schedule_name: str
    rounds: int
    upper_violations: int
    lower_violations: int

    @property
    def upper_percentage(self) -> float:
        """Percentage of rounds with the fusion upper bound above ``v + δ1``."""
        return 100.0 * self.upper_violations / self.rounds if self.rounds else 0.0

    @property
    def lower_percentage(self) -> float:
        """Percentage of rounds with the fusion lower bound below ``v - δ2``."""
        return 100.0 * self.lower_violations / self.rounds if self.rounds else 0.0


@dataclass(frozen=True)
class CaseStudyResult:
    """Violation statistics for every schedule of the case study."""

    config: CaseStudyConfig
    stats: tuple[ViolationStats, ...]

    def for_schedule(self, name: str) -> ViolationStats:
        """Return the statistics row for schedule ``name``."""
        for row in self.stats:
            if row.schedule_name == name:
                return row
        raise ExperimentError(f"no case-study statistics for schedule {name!r}")


def run_case_study_for_schedule(
    config: CaseStudyConfig,
    schedule: Schedule,
    policy_factory: Callable[[], AttackPolicy] = default_attack_policy,
    rng: np.random.Generator | None = None,
) -> ViolationStats:
    """Run the platoon under one schedule and count critical speed violations.

    This is the scalar reference driver (one Python call per control period
    and vehicle); the vectorized counterpart is
    :func:`repro.batch.case_study.batch_case_study_for_schedule`.
    """
    rng = ensure_rng(rng, config.seed)
    platoon = Platoon(
        config.platoon_config(),
        schedule,
        policy_factory(),
        attacked_selector=config.attacked_selector(),
    )
    upper = 0
    lower = 0
    rounds = 0
    for _ in range(config.n_steps):
        step = platoon.step(rng)
        for record in step.records:
            rounds += 1
            if record.upper_violation:
                upper += 1
            if record.lower_violation:
                lower += 1
    return ViolationStats(
        schedule_name=schedule.name,
        rounds=rounds,
        upper_violations=upper,
        lower_violations=lower,
    )


def run_case_study(
    config: CaseStudyConfig | None = None,
    schedules: Sequence[Schedule] | None = None,
    policy_factory: Callable[[], AttackPolicy] | None = None,
    engine: str | object | None = None,
    **engine_options,
) -> CaseStudyResult:
    """Run the full Table II experiment (all three schedules by default).

    Parameters
    ----------
    policy_factory:
        Scalar attack-policy factory (defaults to the paper's coarse-grid
        expectation attacker).  Only the scalar engine can honour it; the
        batch engine rejects it and takes ``attacker_factory`` instead.
    engine:
        Simulation backend: ``"scalar"`` (the reference per-vehicle object
        stack), ``"batch"`` (the vectorized closed-loop stepper of
        :mod:`repro.batch.case_study`, typically 10–100x faster and scaled
        up by the ``n_replicas`` option), any registered engine name, or an
        :class:`~repro.engine.base.Engine` instance.  ``None`` picks the
        default backend, overridable via the ``REPRO_ENGINE`` environment
        variable.
    engine_options:
        Backend-specific options forwarded verbatim, e.g. ``n_replicas=64``
        or ``attacker_factory=...`` for the batch engine.
    """
    # Imported lazily: the engine backends wrap the drivers in this module.
    from repro.engine import get_engine

    if policy_factory is not None:
        engine_options = {"policy_factory": policy_factory, **engine_options}
    return get_engine(engine).run_case_study(config, schedules, **engine_options)
