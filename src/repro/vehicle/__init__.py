"""Vehicle substrate: dynamics, control, supervision, platoon and case study."""

from repro.vehicle.case_study import (
    CaseStudyConfig,
    CaseStudyResult,
    ViolationStats,
    default_attack_policy,
    run_case_study,
    run_case_study_for_schedule,
)
from repro.vehicle.controller import SpeedController
from repro.vehicle.dynamics import LongitudinalVehicle, VehicleParameters, VehicleState
from repro.vehicle.landshark import LandShark, StepRecord, landshark_suite
from repro.vehicle.platoon import Platoon, PlatoonConfig, PlatoonStep
from repro.vehicle.selection import (
    AttackedSensorSelector,
    FixedSelector,
    MostPreciseSelector,
    NoAttackSelector,
    RandomSensorSelector,
    selector_from_spec,
)
from repro.vehicle.supervisor import SafetyLimits, SafetySupervisor, SupervisorDecision

__all__ = [
    "VehicleParameters",
    "VehicleState",
    "LongitudinalVehicle",
    "SpeedController",
    "SafetyLimits",
    "SafetySupervisor",
    "SupervisorDecision",
    "LandShark",
    "StepRecord",
    "landshark_suite",
    "Platoon",
    "PlatoonConfig",
    "PlatoonStep",
    "CaseStudyConfig",
    "ViolationStats",
    "CaseStudyResult",
    "default_attack_policy",
    "run_case_study",
    "run_case_study_for_schedule",
    "AttackedSensorSelector",
    "NoAttackSelector",
    "FixedSelector",
    "MostPreciseSelector",
    "RandomSensorSelector",
    "selector_from_spec",
]
