"""``python -m repro`` — the single entry point reproducing the paper.

Six subcommands over the scenario subsystem (``docs/SCENARIOS.md``), each a
thin shell over the :mod:`repro.api` facade:

* ``python -m repro list [--tag TAG] [--kind KIND] [--json]`` — the
  registered scenario catalogue;
* ``python -m repro run NAME... [--engine E] [--workers N] [--force]
  [--store DIR] [--json]`` — run scenarios through the sharded parallel
  runner; results land in the content-addressed artifact store, so an
  unchanged spec is a cache hit and reruns are free;
* ``python -m repro optimize NAME [--strategy S] [...]`` — schedule search
  (``docs/OPTIMIZATION.md``): resolve NAME to an optimization scenario
  (``table1-row4`` finds ``optimize-table1-row4``; single-case comparison
  scenarios derive one) and report the best-found transmission order
  against the paper's fixed baselines;
* ``python -m repro report NAME [...]`` — render a scenario's (cached or
  freshly computed) payload as tables, plus derived cross-scenario reports:
  ``table2-exact-vs-proxy`` (the exact problem (2) attacker versus the
  vectorized proxy on the Table II case study) and ``experiments`` (the
  whole evaluation backbone from stored artifacts — the source of
  ``EXPERIMENTS.md``);
* ``python -m repro serve [--host H] [--port P] [--max-wait-ms W]
  [--max-batch B] [--store DIR]`` — fusion-as-a-service: the asyncio HTTP
  server with dynamic request batching (``docs/SERVING.md``);
* ``python -m repro store ls|gc`` — artifact-store housekeeping: list each
  scenario's latest artifact, collect superseded keys.

Every flag keeps the determinism contract: ``--workers`` changes wall-clock
time, never results; ``--engine`` derives a *new* spec (different content
hash) rather than mutating the stored one; serving coalesces work without
changing a single payload byte.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from contextlib import contextmanager
from typing import Sequence

from repro import api, obs
from repro.analysis.experiments import TABLE1_CONFIGURATIONS, table1_row_name
from repro.analysis.report import format_table
from repro.core.exceptions import ExperimentError
from repro.runner import ArtifactStore, ScenarioRun, default_store
from repro.scenarios import (
    available_scenarios,
    get_scenario,
    list_scenarios,
    near_misses,
    spec_dict,
    spec_key,
)

__all__ = ["main", "report_experiments", "report_table2_exact_vs_proxy"]


def _render_comparison(payload: dict) -> str:
    blocks = []
    for case in payload["cases"]:
        lossy = case.get("channel") is not None
        rows = [
            [
                row["schedule"],
                f"{row['expected_width']:.4f}",
                f"{row['detected_fraction']:.4f}",
                f"{row['valid_fraction']:.4f}",
                str(row["samples"]),
            ]
            + ([str(row["channel_dropped"]), str(row["channel_retransmits"])] if lossy else [])
            for row in case["rows"]
        ]
        title = (
            f"{case['label']} — L={tuple(case['lengths'])}, fa={case['fa']}, "
            f"f={case['f']}, attack={case['attack']}"
        )
        if case.get("fault_probability"):
            title += f", fault p={case['fault_probability']:g}"
        if lossy:
            channel = case["channel"]
            title += f", channel={channel['model']}"
        headers = ["schedule", "expected width", "detected", "valid", "samples"]
        if lossy:
            headers += ["dropped", "retransmits"]
        blocks.append(format_table(headers, rows, title=title))
    return "\n\n".join(blocks)


def _render_case_study(payload: dict) -> str:
    rows = [
        [
            row["schedule"],
            f"{row['upper_percentage']:.2f}%",
            f"{row['lower_percentage']:.2f}%",
            str(row["rounds"]),
        ]
        for row in payload["rows"]
    ]
    return format_table(
        ["schedule", "above v+δ1", "below v-δ2", "rounds"],
        rows,
        title=f"Table II case study — attacker: {payload['attacker']}",
    )


def _render_figure(payload: dict) -> str:
    blocks = [
        format_table(table["headers"], table["rows"], title=table.get("title", ""))
        for table in payload.get("tables", ())
    ]
    if "ascii" in payload:
        blocks.append(payload["ascii"])
    return "\n\n".join(blocks) if blocks else json.dumps(payload, indent=2, sort_keys=True)


def _render_optimization(payload: dict) -> str:
    case = payload["case"]
    title = (
        f"Schedule search ({payload['strategy']}) — {case['label']}: "
        f"L={tuple(case['lengths'])}, fa={case['fa']}, f={case['f']}, "
        f"attack={case['attack']}"
    )
    baseline_rows = [
        [
            row["schedule_spec"],
            row["schedule"],
            f"{row['expected_width']:.4f}",
            f"{row['detected_fraction']:.4f}",
        ]
        for row in payload["baselines"]
    ]
    top_rows = [
        [
            str(rank + 1),
            row["schedule"],
            f"{row['expected_width']:.4f}",
            f"{row['detected_fraction']:.4f}",
            str(row["samples"]),
        ]
        for rank, row in enumerate(payload["rows"][:10])
    ]
    improvement = payload["improvement"]
    summary = (
        f"best {payload['best']['schedule']} at width "
        f"{payload['best']['expected_width']:.4f} — "
        f"{improvement['width_reduction']:.4f} ({improvement['percent']:.2f}%) below the "
        f"best baseline {improvement['best_baseline_spec']!r} "
        f"[{payload['evaluated_candidates']}/{payload['distinct_schedules']} distinct "
        f"schedules measured at {payload['samples_per_candidate']} samples each]"
    )
    return "\n\n".join(
        [
            format_table(
                ["baseline", "canonical", "expected width", "detected"],
                baseline_rows,
                title=title,
            ),
            format_table(
                ["rank", "schedule", "expected width", "detected", "samples"],
                top_rows,
                title="best candidates"
                + (" (truncated)" if payload["rows_truncated"] or len(payload["rows"]) > 10 else ""),
            ),
            summary,
        ]
    )


_RENDERERS = {
    "comparison": _render_comparison,
    "case-study": _render_case_study,
    "figure": _render_figure,
    "optimization": _render_optimization,
}


def render_payload(payload: dict) -> str:
    """Human-readable rendering of a scenario payload (tables)."""
    renderer = _RENDERERS.get(payload.get("kind"))
    if renderer is None:
        return json.dumps(payload, indent=2, sort_keys=True)
    return renderer(payload)


def _run_dict(run: ScenarioRun) -> dict:
    return {
        "name": run.spec.name,
        "key": run.key,
        "cached": run.cached,
        "shards": run.shards,
        "workers": run.workers,
        "elapsed_seconds": run.elapsed_seconds,
        "store_path": run.store_path,
        "payload": run.payload,
    }


@contextmanager
def _trace_scope(args: argparse.Namespace, *names: str):
    """Record telemetry for the wrapped command when ``--trace`` is set.

    A no-op without a path; with one, the command body runs inside an
    ``obs.collect()`` scope and the trace artifact is written on success
    (``python -m repro report perf PATH`` reads it back).
    """
    path = getattr(args, "trace", None)
    if not path:
        yield
        return
    with obs.collect() as session:
        yield
        session.write_jsonl(path, meta={"command": args.command, "names": list(names)})
    print(f"trace written to {path}", file=sys.stderr)


def _resolve_spec(name: str, engine: str | None):
    spec = get_scenario(name)
    if engine is not None:
        # A new spec (and therefore a new content hash): engine choice is
        # part of a result's identity, never an in-place mutation.
        spec = dataclasses.replace(spec, engine=engine)
    return spec


def _cmd_list(args: argparse.Namespace) -> int:
    specs = list_scenarios(tag=args.tag, kind=args.kind)
    if args.json:
        entries = [
            {
                "name": spec.name,
                "kind": spec.kind,
                "engine": spec.engine,
                "tags": list(spec.tags),
                "key": spec_key(spec),
                "description": spec.description,
            }
            for spec in specs
        ]
        print(json.dumps({"scenarios": entries}, indent=2, sort_keys=True))
        return 0
    rows = [
        [spec.name, spec.kind, spec.engine or "default", ",".join(spec.tags), spec.description]
        for spec in specs
    ]
    print(
        format_table(
            ["name", "kind", "engine", "tags", "description"],
            rows,
            title=f"{len(rows)} registered scenarios",
        )
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    store = default_store(args.store)
    runs = []
    with _trace_scope(args, *args.names):
        for name in args.names:
            spec = _resolve_spec(name, args.engine)
            run = api.run(spec, workers=args.workers, store=store, force=args.force)
            runs.append(run)
            if not args.json:
                if run.cached:
                    source = "store (cache hit)"
                else:
                    source = f"{run.shards} shard(s) on {run.workers} worker(s) in {run.elapsed_seconds:.2f}s"
                print(f"== {run.spec.name} [{run.key[:12]}] — {source}")
                print(render_payload(run.payload))
                print()
    if args.json:
        print(json.dumps({"results": [_run_dict(run) for run in runs]}, indent=2, sort_keys=True))
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    store = default_store(args.store)
    spec = api.resolve_optimization_scenario(args.name)
    if args.engine is not None:
        # Like `repro run --engine`: a new spec (and content hash), never an
        # in-place mutation of the registered one.
        spec = dataclasses.replace(spec, engine=args.engine)
    with _trace_scope(args, spec.name):
        run = api.optimize(
            spec,
            strategy=args.strategy,
            workers=args.workers,
            store=store,
            force=args.force,
        )
    if args.json:
        # The full machine-readable round trip: the embedded spec dict feeds
        # spec_from_dict back to an identical spec (and content key).
        document = _run_dict(run)
        document["spec"] = spec_dict(run.spec)
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    if run.cached:
        source = "store (cache hit)"
    else:
        source = f"{run.shards} shard(s) on {run.workers} worker(s) in {run.elapsed_seconds:.2f}s"
    print(f"== {run.spec.name} [{run.key[:12]}] — {source}")
    print(render_payload(run.payload))
    return 0


def report_table2_exact_vs_proxy(
    store: ArtifactStore, workers: int = 1, force: bool = False
) -> dict:
    """Quantify the proxy attacker's statistics gap on the Table II case study.

    Runs the registered ``table2-exact`` scenario and a proxy twin derived
    from it (identical seed, steps, replicas and shard layout — only the
    attacker differs), so the violation-rate differences measure the
    attacker change alone.  Both legs are served from the artifact store
    when cached.
    """
    exact_spec = get_scenario("table2-exact")
    proxy_spec = dataclasses.replace(
        exact_spec,
        name="table2-exact-proxy-twin",
        description="Proxy-attacker twin of table2-exact (same scale, attacker swapped)",
        attacker="proxy",
    )
    exact = api.run(exact_spec, workers=workers, store=store, force=force)
    proxy = api.run(proxy_spec, workers=workers, store=store, force=force)
    proxy_rows = {row["schedule"]: row for row in proxy.payload["rows"]}
    rows = []
    for exact_row in exact.payload["rows"]:
        proxy_row = proxy_rows[exact_row["schedule"]]
        rows.append(
            {
                "schedule": exact_row["schedule"],
                "exact_upper_percentage": exact_row["upper_percentage"],
                "exact_lower_percentage": exact_row["lower_percentage"],
                "proxy_upper_percentage": proxy_row["upper_percentage"],
                "proxy_lower_percentage": proxy_row["lower_percentage"],
                "upper_gap": exact_row["upper_percentage"] - proxy_row["upper_percentage"],
                "lower_gap": exact_row["lower_percentage"] - proxy_row["lower_percentage"],
            }
        )
    return {
        "kind": "report",
        "report": "table2-exact-vs-proxy",
        "rounds_per_schedule": exact.payload["rows"][0]["rounds"],
        "rows": rows,
    }


def _render_exact_vs_proxy(payload: dict) -> str:
    rows = [
        [
            row["schedule"],
            f"{row['exact_upper_percentage']:.2f} / {row['exact_lower_percentage']:.2f}",
            f"{row['proxy_upper_percentage']:.2f} / {row['proxy_lower_percentage']:.2f}",
            f"{row['upper_gap']:+.2f} / {row['lower_gap']:+.2f}",
        ]
        for row in payload["rows"]
    ]
    return format_table(
        ["schedule", "exact % (upper/lower)", "proxy % (upper/lower)", "gap (pp)"],
        rows,
        title=(
            "Exact problem (2) attacker vs the vectorized proxy — Table II, "
            f"{payload['rounds_per_schedule']} rounds per schedule"
        ),
    )


#: The backbone of ``EXPERIMENTS.md``: every Table I row under the greedy
#: stretch attacker, the exact-attacker rerun, and the three Table II legs.
#: (Figure scenarios are deterministic constructions, not measurements, so
#: the experiments document leaves them out.)
EXPERIMENTS_BACKBONE = (
    *(table1_row_name(index) for index in range(len(TABLE1_CONFIGURATIONS))),
    "table1-expectation",
    "table2-proxy",
    "table2-exact",
    "table2-scalar",
)


def report_experiments(store: ArtifactStore, workers: int = 1, force: bool = False) -> dict:
    """The source of ``EXPERIMENTS.md``: every backbone scenario's current artifact.

    For each name in :data:`EXPERIMENTS_BACKBONE` the *newest stored
    artifact* is used as is, whichever engine produced it — so a
    ``python -m repro run NAME --engine numba`` (or ``fused``) refresh
    flows into the regenerated document under its own key with the same
    payload bytes.  Only scenarios absent from the store are computed, at
    their registered spec; ``force=True`` recomputes everything.
    """
    from pathlib import Path

    latest = {} if force else store.latest_index()
    sections = []
    for name in EXPERIMENTS_BACKBONE:
        document = None
        entry = latest.get(name)
        if entry is not None:
            try:
                document = json.loads(Path(entry["path"]).read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                document = None
        if document is not None and "payload" in document:
            meta = document.get("meta", {})
            sections.append(
                {
                    "name": name,
                    "key": document.get("key"),
                    "cached": True,
                    "engine": (document.get("spec") or {}).get("engine") or "default",
                    "created_at": meta.get("created_at"),
                    "payload": document["payload"],
                }
            )
        else:
            run = api.run(get_scenario(name), workers=workers, store=store, force=force)
            sections.append(
                {
                    "name": name,
                    "key": run.key,
                    "cached": run.cached,
                    "engine": run.spec.engine or "default",
                    "created_at": None,
                    "payload": run.payload,
                }
            )
    return {"kind": "report", "report": "experiments", "sections": sections}


def _render_experiments(payload: dict) -> str:
    lines = [
        "# Experiments",
        "",
        "Measured results for the paper's evaluation backbone, regenerated",
        "from the content-addressed artifact store with:",
        "",
        "```bash",
        "python -m repro report experiments > EXPERIMENTS.md",
        "```",
        "",
        "Each section renders the scenario name's *current* stored artifact —",
        "whichever engine produced it, so `python -m repro run NAME --engine",
        "fused` (or `numba`, when installed) refreshes a section under a new",
        "key with bit-identical numbers.  Scenarios missing from the store are",
        "computed on the spot at their registered spec.  Paper reference",
        "numbers are quoted in the scenario descriptions (`python -m repro",
        "list`); `repro.analysis.experiments` is their source of truth.",
        "",
        "| scenario | engine | artifact key | computed at |",
        "|---|---|---|---|",
    ]
    for section in payload["sections"]:
        lines.append(
            f"| {section['name']} | {section['engine']} | "
            f"`{(section['key'] or '?')[:12]}` | {section['created_at'] or 'this run'} |"
        )
    for section in payload["sections"]:
        lines += [
            "",
            f"## {section['name']}",
            "",
            "```",
            render_payload(section["payload"]).rstrip(),
            "```",
        ]
    return "\n".join(lines)


#: Derived cross-scenario reports: name -> (builder, renderer).
_REPORTS = {
    "experiments": (report_experiments, _render_experiments),
    "table2-exact-vs-proxy": (report_table2_exact_vs_proxy, _render_exact_vs_proxy),
}


def _cmd_report(args: argparse.Namespace) -> int:
    store = default_store(args.store)
    if args.name == "perf":
        # `report perf` *reads* the --trace artifact recorded by an earlier
        # `run --trace PATH`, so it is resolved before the scenario/report
        # namespaces (and --trace here is an input, not a recording path).
        from repro.obs.report import build_perf_report, render_perf_report

        payload = build_perf_report(args.trace)
        print(json.dumps(payload, indent=2, sort_keys=True) if args.json else render_perf_report(payload))
        return 0
    if args.name in _REPORTS:
        if args.engine is not None:
            raise ExperimentError(
                f"derived report {args.name!r} fixes its scenarios' engines; "
                "--engine only applies to plain scenario names"
            )
        builder, renderer = _REPORTS[args.name]
        payload = builder(store, workers=args.workers, force=args.force)
        print(json.dumps(payload, indent=2, sort_keys=True) if args.json else renderer(payload))
        return 0
    if args.name not in available_scenarios():
        # One message covering both namespaces the command accepts, with
        # did-you-mean hints drawn from reports *and* scenarios.
        close = near_misses(args.name, [*_REPORTS, "perf", *available_scenarios()])
        hint = f"; did you mean: {', '.join(close)}?" if close else ""
        raise ExperimentError(
            f"unknown scenario or derived report {args.name!r}{hint} "
            f"(derived reports: {', '.join(sorted([*_REPORTS, 'perf']))}; run "
            "`python -m repro list` for the scenario catalogue)"
        )
    spec = _resolve_spec(args.name, args.engine)
    with _trace_scope(args, spec.name):
        run = api.run(spec, workers=args.workers, store=store, force=args.force)
    print(json.dumps(_run_dict(run), indent=2, sort_keys=True) if args.json else render_payload(run.payload))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    api.serve(
        host=args.host,
        port=args.port,
        store=args.store if args.store else "default",
        max_wait_ms=args.max_wait_ms,
        max_batch=args.max_batch,
        metrics_interval=10.0 if args.metrics else None,
    )
    return 0


def _format_size(size: int) -> str:
    if size >= 1024 * 1024:
        return f"{size / (1024 * 1024):.1f}M"
    if size >= 1024:
        return f"{size / 1024:.1f}K"
    return f"{size}B"


def _format_age(seconds: float) -> str:
    seconds = max(0.0, seconds)
    if seconds >= 86_400:
        return f"{seconds / 86_400:.1f}d"
    if seconds >= 3_600:
        return f"{seconds / 3_600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.0f}m"
    return f"{seconds:.0f}s"


def _cmd_store_ls(args: argparse.Namespace) -> int:
    store = default_store(args.store)
    index = store.latest_index()
    entries = [index[name] for name in sorted(index)]
    total = len(store.entries())
    if args.json:
        print(
            json.dumps(
                {"root": str(store.root), "artifacts": total, "latest": entries},
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    now = time.time()
    rows = [
        [
            entry["name"],
            (entry["key"] or "")[:12],
            entry["kind"] or "?",
            _format_size(entry["size_bytes"]),
            _format_age(now - entry["modified"]),
        ]
        for entry in entries
    ]
    print(
        format_table(
            ["name", "latest key", "kind", "size", "age"],
            rows,
            title=f"{store.root} — {total} artifact(s), {len(rows)} scenario name(s)",
        )
    )
    return 0


def _cmd_store_gc(args: argparse.Namespace) -> int:
    store = default_store(args.store)
    if args.keep_latest < 1:
        raise ExperimentError(
            f"--keep-latest must be at least 1, got {args.keep_latest}"
        )
    deleted = store.gc(keep_latest=args.keep_latest)
    reclaimed = sum(entry["size_bytes"] for entry in deleted)
    if args.json:
        print(
            json.dumps(
                {
                    "root": str(store.root),
                    "deleted": deleted,
                    "reclaimed_bytes": reclaimed,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    for entry in deleted:
        print(f"deleted {entry['name']} [{(entry['key'] or '')[:12]}] ({_format_size(entry['size_bytes'])})")
    print(
        f"kept the latest {args.keep_latest} per name; "
        f"removed {len(deleted)} artifact(s), reclaimed {_format_size(reclaimed)}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce the paper's evaluation through the declarative scenario "
            "subsystem (see docs/SCENARIOS.md)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list registered scenarios")
    list_parser.add_argument("--tag", help="only scenarios carrying this tag")
    list_parser.add_argument("--kind", help="only scenarios of this kind")
    list_parser.add_argument("--json", action="store_true", help="machine-readable output")
    list_parser.set_defaults(handler=_cmd_list)

    def add_run_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--engine", help="override the scenario's engine backend")
        sub.add_argument(
            "--workers",
            type=int,
            default=1,
            help="parallel worker processes (results are identical for any value)",
        )
        sub.add_argument("--force", action="store_true", help="recompute even on a cache hit")
        sub.add_argument("--store", help="artifact store directory (default results/store)")
        sub.add_argument("--json", action="store_true", help="machine-readable output")
        sub.add_argument(
            "--trace",
            default=os.environ.get("REPRO_TRACE") or None,
            metavar="PATH",
            help=(
                "record a JSONL telemetry trace of this command to PATH "
                "(render it with `python -m repro report perf --trace PATH`; "
                "default from $REPRO_TRACE)"
            ),
        )

    run_parser = subparsers.add_parser("run", help="run scenarios through the sharded runner")
    run_parser.add_argument("names", nargs="+", metavar="NAME", help="scenario name(s)")
    add_run_options(run_parser)
    run_parser.set_defaults(handler=_cmd_run)

    optimize_parser = subparsers.add_parser(
        "optimize",
        help="search a configuration's schedule space (docs/OPTIMIZATION.md)",
    )
    optimize_parser.add_argument(
        "name",
        metavar="NAME",
        help=(
            "optimization scenario, its short name (table1-row4 finds "
            "optimize-table1-row4), or a single-case comparison scenario to derive from"
        ),
    )
    optimize_parser.add_argument(
        "--strategy",
        help="override the search strategy (exhaustive, anneal, bandit)",
    )
    add_run_options(optimize_parser)
    optimize_parser.set_defaults(handler=_cmd_optimize)

    report_parser = subparsers.add_parser(
        "report", help="render a scenario payload or a derived report"
    )
    report_parser.add_argument(
        "name",
        metavar="NAME",
        help=(
            "scenario name or derived report "
            f"({', '.join(sorted([*_REPORTS, 'perf']))}; perf reads a --trace artifact)"
        ),
    )
    add_run_options(report_parser)
    report_parser.set_defaults(handler=_cmd_report)

    serve_parser = subparsers.add_parser(
        "serve", help="run fusion-as-a-service (asyncio HTTP with request batching)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument("--port", type=int, default=8014, help="TCP port (0 picks one)")
    serve_parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="dynamic-batching window: how long a request waits for same-plan company",
    )
    serve_parser.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="flush a batch at this many coalesced requests (1 disables coalescing)",
    )
    serve_parser.add_argument("--store", help="artifact store directory (default results/store)")
    serve_parser.add_argument(
        "--metrics",
        action="store_true",
        help="print a one-line counter summary to stderr every 10s "
        "(the /v1/metrics exposition is always on)",
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    store_parser = subparsers.add_parser("store", help="artifact-store housekeeping")
    store_subparsers = store_parser.add_subparsers(dest="store_command", required=True)
    ls_parser = store_subparsers.add_parser(
        "ls", help="each scenario name's latest artifact (key, size, age)"
    )
    ls_parser.add_argument("--store", help="artifact store directory (default results/store)")
    ls_parser.add_argument("--json", action="store_true", help="machine-readable output")
    ls_parser.set_defaults(handler=_cmd_store_ls)
    gc_parser = store_subparsers.add_parser(
        "gc", help="delete superseded artifacts (older keys of each scenario name)"
    )
    gc_parser.add_argument(
        "--keep-latest",
        type=int,
        default=1,
        help="artifacts to keep per scenario name (newest first, default 1)",
    )
    gc_parser.add_argument("--store", help="artifact store directory (default results/store)")
    gc_parser.add_argument("--json", action="store_true", help="machine-readable output")
    gc_parser.set_defaults(handler=_cmd_store_gc)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ExperimentError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error for a CLI.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
