"""Windowed fault/attack detection over time — the paper's footnote-1 extension.

The base detection procedure is memoryless: every round, any interval that
misses the fusion interval is discarded.  With random transient faults that
would permanently discard honest sensors after a single glitch.  The paper's
footnote 1 sketches the fix: keep a fault model over time and only treat a
sensor as compromised "if it is faulty more than ``f_w`` out of ``w``
measurements".

:class:`WindowedDetector` implements that rule as a sliding window of the
per-round detection flags, and :class:`WindowedFusionPipeline` combines it
with the fusion engine: discarded sensors are excluded from subsequent rounds
(their slots are simply ignored), while transiently faulty sensors recover as
soon as their flags age out of the window.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence

from repro.core.detection import detect
from repro.core.exceptions import FusionError
from repro.core.interval import Interval, IntervalSet
from repro.core.marzullo import fuse_or_none, max_safe_fault_bound

__all__ = ["WindowedDetector", "WindowedRoundOutcome", "WindowedFusionPipeline"]


class WindowedDetector:
    """Sliding-window flag counter deciding which sensors to discard.

    Parameters
    ----------
    n_sensors:
        Number of sensors being tracked.
    window:
        Window length ``w`` in rounds.
    max_flags:
        A sensor is declared compromised once it has been flagged in strictly
        more than ``max_flags`` of the last ``window`` rounds (the paper's
        "faulty more than f out of w measurements").
    """

    def __init__(self, n_sensors: int, window: int, max_flags: int) -> None:
        if n_sensors <= 0:
            raise FusionError(f"need at least one sensor, got {n_sensors}")
        if window <= 0:
            raise FusionError(f"window must be positive, got {window}")
        if not 0 <= max_flags <= window:
            raise FusionError(f"max_flags must be in [0, {window}], got {max_flags}")
        self._n = n_sensors
        self._window = window
        self._max_flags = max_flags
        self._history: list[deque[bool]] = [deque(maxlen=window) for _ in range(n_sensors)]
        self._discarded: set[int] = set()

    @property
    def window(self) -> int:
        """Window length in rounds."""
        return self._window

    @property
    def max_flags(self) -> int:
        """Flag budget within the window."""
        return self._max_flags

    @property
    def discarded(self) -> frozenset[int]:
        """Sensors currently declared compromised."""
        return frozenset(self._discarded)

    def flag_count(self, sensor_index: int) -> int:
        """Number of flags for ``sensor_index`` within the current window."""
        return sum(self._history[sensor_index])

    def reset(self) -> None:
        """Clear all history and discard decisions."""
        for history in self._history:
            history.clear()
        self._discarded.clear()

    def update(self, flagged: Sequence[bool]) -> frozenset[int]:
        """Record one round of per-sensor flags and return the discarded set.

        ``flagged[i]`` is whether sensor ``i`` was flagged this round (sensors
        already discarded should be reported as ``False``; their history is
        frozen).  Discard decisions are permanent, as in the paper — once a
        sensor exceeds its flag budget it is treated as compromised for good.
        """
        if len(flagged) != self._n:
            raise FusionError(
                f"expected {self._n} flags, got {len(flagged)}"
            )
        for index, is_flagged in enumerate(flagged):
            if index in self._discarded:
                continue
            self._history[index].append(bool(is_flagged))
            if self.flag_count(index) > self._max_flags:
                self._discarded.add(index)
        return self.discarded


@dataclass(frozen=True)
class WindowedRoundOutcome:
    """Result of one round processed through the windowed pipeline.

    Attributes
    ----------
    fusion:
        The fusion interval of this round.
    effective_f:
        The fault bound the round was actually fused with.  It normally
        equals the configured bound (clamped to the number of remaining
        sensors); when even that bound leaves no point covered — i.e. more
        sensors misbehaved this round than assumed — it is the smallest
        larger bound that yields a non-empty fusion interval, so the round
        still produces an (appropriately wide) estimate and the offending
        sensors still get flagged.
    used_indices:
        Sensors whose intervals participated in the fusion (not yet discarded).
    flagged_indices:
        Sensors flagged by the memoryless detection this round.
    discarded_indices:
        Sensors permanently discarded so far (including earlier rounds).
    """

    fusion: Interval
    effective_f: int
    used_indices: tuple[int, ...]
    flagged_indices: tuple[int, ...]
    discarded_indices: tuple[int, ...]

    def is_discarded(self, sensor_index: int) -> bool:
        """Return ``True`` if ``sensor_index`` is permanently discarded."""
        return sensor_index in self.discarded_indices


class WindowedFusionPipeline:
    """Round-by-round fusion that tolerates transient faults.

    Each round the pipeline fuses the intervals of all not-yet-discarded
    sensors (adapting ``f`` to the number of remaining sensors), runs the
    memoryless detection, feeds the flags into the windowed detector and
    reports which sensors are now permanently discarded.
    """

    def __init__(
        self,
        n_sensors: int,
        window: int,
        max_flags: int,
        f: int | None = None,
        min_sensors: int = 2,
    ) -> None:
        if min_sensors < 1:
            raise FusionError(f"min_sensors must be at least 1, got {min_sensors}")
        self._n = n_sensors
        self._configured_f = f
        self._min_sensors = min_sensors
        self._detector = WindowedDetector(n_sensors, window, max_flags)

    @property
    def detector(self) -> WindowedDetector:
        """The underlying windowed detector (exposes counts and discards)."""
        return self._detector

    def _effective_f(self, n_active: int) -> int:
        f = self._configured_f if self._configured_f is not None else max_safe_fault_bound(n_active)
        return min(f, max_safe_fault_bound(n_active))

    def process_round(self, intervals: Sequence[Interval]) -> WindowedRoundOutcome:
        """Fuse one round of intervals (one per sensor, in sensor order)."""
        if len(intervals) != self._n:
            raise FusionError(f"expected {self._n} intervals, got {len(intervals)}")
        active = [i for i in range(self._n) if i not in self._detector.discarded]
        if len(active) < self._min_sensors:
            raise FusionError(
                f"only {len(active)} sensors remain after discards; "
                f"at least {self._min_sensors} are required"
            )
        used = IntervalSet(intervals[i] for i in active)
        # Fuse with the configured bound; if more sensors misbehave this round
        # than the bound assumes, no point reaches the required coverage and
        # the fusion interval is empty — widen the bound just enough to get a
        # usable (conservative) interval so the round can still be processed
        # and the misbehaving sensors flagged.
        fusion: Interval | None = None
        effective_f = self._effective_f(len(active))
        for f_round in range(effective_f, len(active)):
            fusion = fuse_or_none(list(used), f_round)
            if fusion is not None:
                effective_f = f_round
                break
        if fusion is None:
            raise FusionError("no fault bound yields a non-empty fusion interval")
        detection = detect(list(used), fusion)
        flagged_sensors = {active[slot] for slot in detection.flagged_indices}
        flags = [index in flagged_sensors for index in range(self._n)]
        discarded = self._detector.update(flags)
        return WindowedRoundOutcome(
            fusion=fusion,
            effective_f=effective_f,
            used_indices=tuple(active),
            flagged_indices=tuple(sorted(flagged_sensors)),
            discarded_indices=tuple(sorted(discarded)),
        )
