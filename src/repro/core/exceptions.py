"""Exception hierarchy for the attack-resilient sensor fusion library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch every library failure with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class IntervalError(ReproError):
    """Raised for malformed intervals (e.g. lower bound above upper bound)."""


class EmptyIntersectionError(IntervalError):
    """Raised when an intersection that is required to exist is empty."""


class FusionError(ReproError):
    """Raised when sensor fusion cannot be performed.

    Typical causes are an empty input set, a fault bound ``f`` that violates
    the ``f < ceil(n / 2)`` safety requirement, or a configuration in which no
    point is covered by at least ``n - f`` intervals.
    """


class FaultBoundError(FusionError):
    """Raised when the assumed fault bound ``f`` is invalid for ``n`` sensors."""


class EmptyFusionError(FusionError):
    """Raised when no point of the real line is covered by ``n - f`` intervals."""


class AttackError(ReproError):
    """Raised when an attack policy is asked to do something impossible."""


class StealthViolationError(AttackError):
    """Raised when a forged interval would be detected by the controller."""


class ScheduleError(ReproError):
    """Raised for malformed communication schedules."""


class SensorError(ReproError):
    """Raised for invalid sensor specifications or measurements."""


class BusError(ReproError):
    """Raised for shared-bus protocol violations (wrong slot, double send...)."""


class VehicleError(ReproError):
    """Raised for invalid vehicle, controller or platoon configurations."""


class ExperimentError(ReproError):
    """Raised when an experiment or benchmark is configured inconsistently."""


class EngineUnavailableError(ExperimentError):
    """Raised when a known engine cannot run because its optional dependency
    (e.g. ``numba``) is not installed in this environment."""
