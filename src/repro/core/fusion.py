"""The controller-side fusion engine.

:class:`FusionEngine` bundles the pieces the paper's controller runs every
round once all ``n`` intervals have been received:

1. Marzullo fusion with a predefined fault bound ``f`` (``f < ceil(n/2)``),
2. the overlap-based detection procedure that discards any interval not
   intersecting the fusion interval.

The engine is deliberately stateless across rounds — the paper's analysis is
per-round — but it validates its configuration eagerly so that experiments
fail fast on inconsistent ``(n, f)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core import marzullo
from repro.core.detection import DetectionResult, detect
from repro.core.exceptions import FusionError
from repro.core.interval import Interval, IntervalSet

__all__ = ["FusionEngine", "FusionOutcome"]


@dataclass(frozen=True)
class FusionOutcome:
    """Everything the controller derives from one round of measurements.

    Attributes
    ----------
    intervals:
        The intervals that were fused, in transmission order.
    f:
        The fault bound used.
    fusion:
        The fusion interval ``S_{N,f}``.
    detection:
        Result of the overlap-based detection pass.
    """

    intervals: IntervalSet
    f: int
    fusion: Interval
    detection: DetectionResult

    @property
    def width(self) -> float:
        """Width of the fusion interval — the attacker's objective function."""
        return self.fusion.width

    @property
    def estimate(self) -> float:
        """Point estimate handed to the low-level controller (the midpoint)."""
        return self.fusion.center

    def contains_true_value(self, true_value: float) -> bool:
        """Return ``True`` if the fusion interval contains ``true_value``."""
        return self.fusion.contains(true_value)


class FusionEngine:
    """Controller-side Marzullo fusion with a fixed number of sensors.

    Parameters
    ----------
    n_sensors:
        Number of sensors expected every round.
    f:
        Assumed number of faulty/compromised sensors.  Defaults to the paper's
        conservative choice ``ceil(n/2) - 1`` when ``None``.
    """

    def __init__(self, n_sensors: int, f: int | None = None) -> None:
        if f is None:
            f = marzullo.max_safe_fault_bound(n_sensors)
        marzullo.validate_fault_bound(n_sensors, f)
        self._n = n_sensors
        self._f = f

    @property
    def n_sensors(self) -> int:
        """Number of sensors the engine expects per round."""
        return self._n

    @property
    def f(self) -> int:
        """Configured fault bound."""
        return self._f

    def fuse(self, intervals: Sequence[Interval]) -> Interval:
        """Fuse one round of intervals without running detection."""
        self._check_count(intervals)
        return marzullo.fuse(list(intervals), self._f)

    def process_round(self, intervals: Sequence[Interval]) -> FusionOutcome:
        """Fuse one round of intervals and run the detection procedure."""
        self._check_count(intervals)
        interval_set = IntervalSet(intervals)
        fusion = marzullo.fuse(list(interval_set), self._f)
        detection = detect(list(interval_set), fusion)
        return FusionOutcome(intervals=interval_set, f=self._f, fusion=fusion, detection=detection)

    def _check_count(self, intervals: Sequence[Interval]) -> None:
        if len(intervals) != self._n:
            raise FusionError(
                f"engine configured for {self._n} sensors but received {len(intervals)} intervals"
            )

    def __repr__(self) -> str:
        return f"FusionEngine(n_sensors={self._n}, f={self._f})"
