"""Theoretical guarantees on the size of the fusion interval.

This module encodes, as checkable predicates and bounds, the results the paper
relies on:

* Marzullo's original guarantees —

  - if ``f < ceil(n/3)`` the fusion width is bounded by the width of some
    *correct* interval,
  - if ``f < ceil(n/2)`` the fusion width is bounded by the width of some
    interval (not necessarily correct),
  - if ``f >= ceil(n/2)`` the fusion interval may be arbitrarily large and can
    miss the true value;

* **Theorem 2** — with ``f < ceil(n/2)`` and at most ``f`` actually faulty
  sensors, ``|S_{N,f}| <= |s_c1| + |s_c2|`` where ``s_c1`` and ``s_c2`` are the
  two widest *correct* intervals.

Theorems 3 and 4 (attacking the largest vs the smallest intervals) are about
worst cases over interval *placements*; the search machinery for those lives
in :mod:`repro.core.worst_case` and is exercised by the Figure 4 benchmark.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.core.exceptions import FusionError
from repro.core.interval import Interval

__all__ = [
    "marzullo_regime",
    "theorem2_bound",
    "satisfies_marzullo_n3_bound",
    "satisfies_marzullo_n2_bound",
    "satisfies_theorem2",
    "two_largest_widths",
]


def marzullo_regime(n: int, f: int) -> str:
    """Classify the ``(n, f)`` pair into one of Marzullo's three regimes.

    Returns one of ``"n3"`` (``f < ceil(n/3)``), ``"n2"``
    (``ceil(n/3) <= f < ceil(n/2)``) or ``"unbounded"`` (``f >= ceil(n/2)``).
    """
    if n <= 0:
        raise FusionError(f"need at least one sensor, got n={n}")
    if f < 0:
        raise FusionError(f"fault bound must be non-negative, got f={f}")
    if f < math.ceil(n / 3):
        return "n3"
    if f < math.ceil(n / 2):
        return "n2"
    return "unbounded"


def two_largest_widths(correct_intervals: Iterable[Interval]) -> tuple[float, float]:
    """Return the widths of the two widest correct intervals.

    If there is a single correct interval its width is returned twice, which
    keeps :func:`theorem2_bound` well defined for degenerate configurations.
    """
    widths = sorted((s.width for s in correct_intervals), reverse=True)
    if not widths:
        raise FusionError("theorem 2 needs at least one correct interval")
    if len(widths) == 1:
        return widths[0], widths[0]
    return widths[0], widths[1]


def theorem2_bound(correct_intervals: Iterable[Interval]) -> float:
    """Theorem 2 upper bound on the fusion width: ``|s_c1| + |s_c2|``."""
    w1, w2 = two_largest_widths(correct_intervals)
    return w1 + w2


def satisfies_theorem2(fusion: Interval, correct_intervals: Sequence[Interval], tol: float = 1e-9) -> bool:
    """Check Theorem 2: the fusion width does not exceed ``|s_c1| + |s_c2|``."""
    return fusion.width <= theorem2_bound(correct_intervals) + tol


def satisfies_marzullo_n3_bound(
    fusion: Interval, correct_intervals: Sequence[Interval], tol: float = 1e-9
) -> bool:
    """Check the ``f < ceil(n/3)`` guarantee.

    The fusion width must be bounded above by the width of *some correct*
    interval, i.e. by the maximum correct width.
    """
    if not correct_intervals:
        raise FusionError("the n/3 bound needs at least one correct interval")
    return fusion.width <= max(s.width for s in correct_intervals) + tol


def satisfies_marzullo_n2_bound(
    fusion: Interval, all_intervals: Sequence[Interval], tol: float = 1e-9
) -> bool:
    """Check the ``f < ceil(n/2)`` guarantee.

    The fusion width must be bounded above by the width of *some* interval
    (correct or not), i.e. by the maximum width over all inputs.
    """
    if not all_intervals:
        raise FusionError("the n/2 bound needs at least one interval")
    return fusion.width <= max(s.width for s in all_intervals) + tol
