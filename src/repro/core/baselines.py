"""Baseline fusion schemes used for comparison with Marzullo's algorithm.

The paper motivates interval-based, attack-resilient fusion by contrast with
conventional approaches that average sensor values and with earlier
fault-tolerant interval fusers.  To make that comparison measurable, this
module implements the relevant baselines:

* :func:`mean_fusion` — the naive scheme: average the interval bounds (and
  therefore the measurements); a single compromised sensor can drag the
  estimate arbitrarily within its stealth budget.
* :func:`median_fusion` — coordinate-wise median of the interval bounds; the
  classic robust point-estimator baseline.
* :func:`brooks_iyengar` — the Brooks–Iyengar hybrid algorithm (reference [6]
  of the paper), which runs the same ``n - f`` coverage analysis as Marzullo
  but additionally returns a weighted point estimate computed from the
  mid-points of the maximally-overlapping regions.

All baselines consume the same abstract-sensor intervals as the rest of the
library, so they can be dropped into the round simulator's outputs directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.exceptions import FusionError
from repro.core.interval import Interval
from repro.core.marzullo import coverage_profile, validate_fault_bound

__all__ = ["BrooksIyengarResult", "mean_fusion", "median_fusion", "brooks_iyengar"]


def mean_fusion(intervals: Sequence[Interval]) -> Interval:
    """Average the lower and upper bounds of all intervals.

    Equivalent to averaging the measurements and the precisions; it has no
    fault tolerance whatsoever and serves as the naive baseline.
    """
    items = list(intervals)
    if not items:
        raise FusionError("cannot fuse an empty collection of intervals")
    lo = float(np.mean([s.lo for s in items]))
    hi = float(np.mean([s.hi for s in items]))
    return Interval(lo, hi)


def median_fusion(intervals: Sequence[Interval]) -> Interval:
    """Coordinate-wise median of the interval bounds.

    Robust to a minority of outliers but unaware of the fault bound ``f`` and
    of interval widths; included as the classic robust-statistics baseline.
    """
    items = list(intervals)
    if not items:
        raise FusionError("cannot fuse an empty collection of intervals")
    lo = float(np.median([s.lo for s in items]))
    hi = float(np.median([s.hi for s in items]))
    if hi < lo:
        # Can only happen with pathological (crossing) medians; collapse to a point.
        midpoint = (lo + hi) / 2.0
        return Interval(midpoint, midpoint)
    return Interval(lo, hi)


@dataclass(frozen=True)
class BrooksIyengarResult:
    """Output of the Brooks–Iyengar hybrid algorithm.

    Attributes
    ----------
    interval:
        The fused interval (hull of the regions covered by at least ``n - f``
        intervals — identical to Marzullo's fusion interval).
    estimate:
        The weighted point estimate: the average of the mid-points of the
        maximally-overlapping regions, weighted by how many intervals cover
        each region.
    regions:
        The regions (with their coverage) that contributed to the estimate.
    """

    interval: Interval
    estimate: float
    regions: tuple[tuple[Interval, int], ...]


def brooks_iyengar(intervals: Sequence[Interval], f: int) -> BrooksIyengarResult:
    """Run the Brooks–Iyengar hybrid algorithm.

    Parameters
    ----------
    intervals:
        The abstract-sensor intervals.
    f:
        Assumed number of faulty sensors; must satisfy ``f < ceil(n/2)``.

    Raises
    ------
    FusionError
        If no region is covered by at least ``n - f`` intervals.
    """
    items = list(intervals)
    validate_fault_bound(len(items), f)
    required = len(items) - f
    qualifying: list[tuple[Interval, int]] = []
    for segment in coverage_profile(items):
        if segment.coverage >= required:
            qualifying.append((Interval(segment.lo, segment.hi), segment.coverage))
    if not qualifying:
        raise FusionError(
            f"no region is covered by at least n - f = {required} intervals; "
            "more sensors are faulty than the assumed bound"
        )
    fused = Interval(
        min(region.lo for region, _coverage in qualifying),
        max(region.hi for region, _coverage in qualifying),
    )
    weights = np.array([coverage for _region, coverage in qualifying], dtype=float)
    midpoints = np.array([region.center for region, _coverage in qualifying], dtype=float)
    estimate = float(np.average(midpoints, weights=weights))
    return BrooksIyengarResult(interval=fused, estimate=estimate, regions=tuple(qualifying))
