"""Core of the reproduction: intervals, Marzullo fusion, detection, bounds.

The public names re-exported here form the stable core API:

* :class:`~repro.core.interval.Interval` / :class:`~repro.core.interval.IntervalSet`
* :func:`~repro.core.marzullo.fuse` and friends
* :class:`~repro.core.fusion.FusionEngine` / :class:`~repro.core.fusion.FusionOutcome`
* :func:`~repro.core.detection.detect`
* the theoretical bounds of :mod:`repro.core.bounds`
* the worst-case search of :mod:`repro.core.worst_case`
"""

from repro.core.baselines import BrooksIyengarResult, brooks_iyengar, mean_fusion, median_fusion
from repro.core.bounds import (
    marzullo_regime,
    satisfies_marzullo_n2_bound,
    satisfies_marzullo_n3_bound,
    satisfies_theorem2,
    theorem2_bound,
    two_largest_widths,
)
from repro.core.detection import DetectionResult, detect, is_stealthy_against
from repro.core.exceptions import (
    AttackError,
    BusError,
    EmptyFusionError,
    EmptyIntersectionError,
    ExperimentError,
    FaultBoundError,
    FusionError,
    IntervalError,
    ReproError,
    ScheduleError,
    SensorError,
    StealthViolationError,
    VehicleError,
)
from repro.core.fusion import FusionEngine, FusionOutcome
from repro.core.interval import Interval, IntervalSet, convex_hull, intersect_all
from repro.core.marzullo import (
    CoverageSegment,
    coverage_profile,
    fuse,
    fuse_or_none,
    kth_largest_upper_bound,
    kth_smallest_lower_bound,
    max_coverage,
    max_safe_fault_bound,
    validate_fault_bound,
)
from repro.core.windowed import WindowedDetector, WindowedFusionPipeline, WindowedRoundOutcome
from repro.core.worst_case import (
    WorstCaseResult,
    worst_case_no_attack,
    worst_case_over_attacked_sets,
    worst_case_with_attack,
)

__all__ = [
    # interval
    "Interval",
    "IntervalSet",
    "convex_hull",
    "intersect_all",
    # marzullo
    "fuse",
    "fuse_or_none",
    "coverage_profile",
    "max_coverage",
    "max_safe_fault_bound",
    "validate_fault_bound",
    "kth_smallest_lower_bound",
    "kth_largest_upper_bound",
    "CoverageSegment",
    # fusion engine
    "FusionEngine",
    "FusionOutcome",
    # detection
    "DetectionResult",
    "detect",
    "is_stealthy_against",
    # bounds
    "marzullo_regime",
    "theorem2_bound",
    "two_largest_widths",
    "satisfies_theorem2",
    "satisfies_marzullo_n3_bound",
    "satisfies_marzullo_n2_bound",
    # baseline fusion schemes
    "BrooksIyengarResult",
    "brooks_iyengar",
    "mean_fusion",
    "median_fusion",
    # windowed detection (paper's footnote-1 extension)
    "WindowedDetector",
    "WindowedFusionPipeline",
    "WindowedRoundOutcome",
    # worst case
    "WorstCaseResult",
    "worst_case_no_attack",
    "worst_case_with_attack",
    "worst_case_over_attacked_sets",
    # exceptions
    "ReproError",
    "IntervalError",
    "EmptyIntersectionError",
    "FusionError",
    "FaultBoundError",
    "EmptyFusionError",
    "AttackError",
    "StealthViolationError",
    "ScheduleError",
    "SensorError",
    "BusError",
    "VehicleError",
    "ExperimentError",
]
