"""Attack/fault detection used by the controller after fusion.

The detection mechanism of the paper (inherited from Marzullo's original
work) is simple: after computing the fusion interval, every sensor interval
that does **not** intersect the fusion interval cannot contain the true value
and is therefore flagged as compromised (or faulty) and discarded.

The module keeps the detection step separate from fusion so that attack
policies can reason about it directly (an attack is *stealthy* exactly when it
survives :func:`detect`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.interval import Interval

__all__ = ["DetectionResult", "detect", "is_stealthy_against"]


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of the controller's detection pass.

    Attributes
    ----------
    fusion:
        The fusion interval the detection was run against.
    flagged_indices:
        Indices (into the original transmission order) of intervals that do
        not intersect the fusion interval and are therefore discarded.
    cleared_indices:
        Indices of intervals that intersect the fusion interval.
    """

    fusion: Interval
    flagged_indices: tuple[int, ...]
    cleared_indices: tuple[int, ...]

    @property
    def any_flagged(self) -> bool:
        """``True`` if at least one interval was flagged as compromised."""
        return bool(self.flagged_indices)

    def is_flagged(self, index: int) -> bool:
        """Return ``True`` if the interval at ``index`` was flagged."""
        return index in self.flagged_indices


def detect(intervals: Sequence[Interval], fusion: Interval) -> DetectionResult:
    """Run the overlap-based detection procedure.

    Parameters
    ----------
    intervals:
        All received sensor intervals, in transmission order.
    fusion:
        The fusion interval ``S_{N,f}`` computed from the same intervals.
    """
    flagged: list[int] = []
    cleared: list[int] = []
    for index, interval in enumerate(intervals):
        if interval.intersects(fusion):
            cleared.append(index)
        else:
            flagged.append(index)
    return DetectionResult(fusion=fusion, flagged_indices=tuple(flagged), cleared_indices=tuple(cleared))


def is_stealthy_against(interval: Interval, fusion: Interval) -> bool:
    """Return ``True`` if ``interval`` would survive detection against ``fusion``."""
    return interval.intersects(fusion)
