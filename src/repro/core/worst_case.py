"""Worst-case fusion-interval search over interval placements.

Theorems 3 and 4 of the paper compare worst-case (largest-width) fusion
intervals for different choices of which sensors are attacked:

* ``S_na``     — worst case when no sensor is attacked (all intervals correct,
  i.e. all contain the true value);
* ``S_F``      — worst case when the fixed set ``F`` of sensors is attacked;
* ``S_wc_fa``  — worst case over *all* choices of ``fa`` attacked sensors.

The worst case is taken over all placements of the intervals on the real line
(correct intervals must contain the true value; attacked intervals may go
anywhere but must intersect the fusion interval to stay undetected).  Interval
*widths* are fixed and given, exactly as in the paper's "configuration"
notion.

The search discretises the placements: a correct interval of width ``w`` can
slide over the true value in steps of ``resolution``; an attacked interval can
slide over a window extending ``max(widths)`` beyond the correct hull on each
side, which is sufficient because any stealthy attacked interval must
intersect at least one correct interval (the fusion interval is contained in
the hull of the correct intervals when ``f < ceil(n/2)``).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core import marzullo
from repro.core.exceptions import FusionError
from repro.core.interval import Interval

__all__ = [
    "WorstCaseResult",
    "placement_grid",
    "correct_placements",
    "attacked_placements",
    "worst_case_no_attack",
    "worst_case_with_attack",
    "worst_case_over_attacked_sets",
]


@dataclass(frozen=True)
class WorstCaseResult:
    """A worst-case configuration found by the exhaustive search.

    Attributes
    ----------
    width:
        Width of the worst-case fusion interval.
    fusion:
        The fusion interval itself.
    intervals:
        The interval placements (in sensor order) achieving it.
    attacked_indices:
        Indices of the intervals that were treated as attacked.
    """

    width: float
    fusion: Interval
    intervals: tuple[Interval, ...]
    attacked_indices: tuple[int, ...]


def placement_grid(lo: float, hi: float, resolution: float) -> list[float]:
    """Return a uniform grid of candidate positions covering ``[lo, hi]``.

    The grid always includes both endpoints so that extreme placements (which
    typically realise the worst case) are never missed by rounding.
    """
    if resolution <= 0:
        raise FusionError(f"grid resolution must be positive, got {resolution}")
    if hi < lo:
        raise FusionError(f"empty placement range [{lo}, {hi}]")
    steps = int(math.floor((hi - lo) / resolution + 1e-12))
    grid = [lo + i * resolution for i in range(steps + 1)]
    if grid[-1] < hi - 1e-12:
        grid.append(hi)
    return grid


def correct_placements(width: float, true_value: float, resolution: float) -> list[Interval]:
    """All discretised placements of a correct interval of ``width``.

    A correct interval must contain the true value, so its lower bound ranges
    over ``[true_value - width, true_value]``.
    """
    return [
        Interval(lo, lo + width)
        for lo in placement_grid(true_value - width, true_value, resolution)
    ]


def attacked_placements(
    width: float, true_value: float, max_correct_width: float, resolution: float
) -> list[Interval]:
    """All discretised placements of an attacked interval of ``width``.

    The attacked interval must intersect the fusion interval to stay stealthy,
    and the fusion interval is contained in the hull of the correct intervals,
    which itself lies within ``max_correct_width`` of the true value on each
    side.  Sliding the attacked interval over
    ``[true_value - max_correct_width - width, true_value + max_correct_width]``
    therefore covers every placement that can possibly matter.
    """
    lo_min = true_value - max_correct_width - width
    lo_max = true_value + max_correct_width
    return [Interval(lo, lo + width) for lo in placement_grid(lo_min, lo_max, resolution)]


def _search(
    widths: Sequence[float],
    attacked: frozenset[int],
    f: int,
    true_value: float,
    resolution: float,
) -> WorstCaseResult:
    """Exhaustive worst-case search for a fixed attacked set."""
    n = len(widths)
    marzullo.validate_fault_bound(n, f)
    correct_widths = [w for i, w in enumerate(widths) if i not in attacked]
    if not correct_widths:
        raise FusionError("worst-case search needs at least one correct interval")
    max_correct = max(correct_widths)

    candidates: list[list[Interval]] = []
    for index, width in enumerate(widths):
        if index in attacked:
            candidates.append(attacked_placements(width, true_value, max_correct, resolution))
        else:
            candidates.append(correct_placements(width, true_value, resolution))

    best: WorstCaseResult | None = None
    for combo in itertools.product(*candidates):
        fusion = marzullo.fuse_or_none(list(combo), f)
        if fusion is None:
            continue
        # Stealth: every attacked interval must intersect the fusion interval.
        if any(not combo[i].intersects(fusion) for i in attacked):
            continue
        if best is None or fusion.width > best.width + 1e-12:
            best = WorstCaseResult(
                width=fusion.width,
                fusion=fusion,
                intervals=tuple(combo),
                attacked_indices=tuple(sorted(attacked)),
            )
    if best is None:
        raise FusionError("no feasible configuration found in worst-case search")
    return best


def worst_case_no_attack(
    widths: Sequence[float], f: int, true_value: float = 0.0, resolution: float = 1.0
) -> WorstCaseResult:
    """Worst-case fusion interval ``S_na`` when every sensor is correct."""
    return _search(widths, frozenset(), f, true_value, resolution)


def worst_case_with_attack(
    widths: Sequence[float],
    attacked_indices: Iterable[int],
    f: int,
    true_value: float = 0.0,
    resolution: float = 1.0,
) -> WorstCaseResult:
    """Worst-case fusion interval ``S_F`` for a fixed attacked set ``F``."""
    attacked = frozenset(attacked_indices)
    n = len(widths)
    for index in attacked:
        if not 0 <= index < n:
            raise FusionError(f"attacked index {index} out of range for {n} sensors")
    return _search(widths, attacked, f, true_value, resolution)


def worst_case_over_attacked_sets(
    widths: Sequence[float],
    fa: int,
    f: int,
    true_value: float = 0.0,
    resolution: float = 1.0,
) -> dict[tuple[int, ...], WorstCaseResult]:
    """Worst case ``S_F`` for every attacked set of size ``fa``.

    The maximum over the returned dictionary is the paper's ``S_wc_fa``.
    Theorem 4 states that this maximum is attained (among others) by the set
    of the ``fa`` smallest intervals; Theorem 3 states that attacking the
    ``fa`` largest intervals yields the same worst case as no attack at all.
    """
    n = len(widths)
    if not 0 <= fa <= f:
        raise FusionError(f"number of attacked sensors fa={fa} must satisfy 0 <= fa <= f={f}")
    results: dict[tuple[int, ...], WorstCaseResult] = {}
    for attacked in itertools.combinations(range(n), fa):
        results[attacked] = _search(widths, frozenset(attacked), f, true_value, resolution)
    return results
