"""Closed real intervals — the *abstract sensor* representation of the paper.

Every sensor measurement is converted by the controller into a closed real
interval ``[lo, hi]`` that is guaranteed (for a correct sensor) to contain the
true value of the measured physical variable.  The width of the interval
encodes the sensor's precision: wide interval, imprecise sensor.

The :class:`Interval` type in this module is deliberately small and immutable;
it is the currency in which every other subsystem (fusion, attack policies,
schedules, the bus, the vehicle case study) trades.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.exceptions import EmptyIntersectionError, IntervalError

__all__ = ["Interval", "IntervalSet", "convex_hull", "intersect_all"]


@dataclass(frozen=True, order=True)
class Interval:
    """A closed, bounded, non-empty real interval ``[lo, hi]``.

    Instances are immutable and ordered lexicographically by ``(lo, hi)``,
    which makes lists of intervals sortable in a deterministic way.

    Parameters
    ----------
    lo:
        Lower bound (inclusive).
    hi:
        Upper bound (inclusive).  Must satisfy ``hi >= lo`` and both bounds
        must be finite.
    """

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.lo) and math.isfinite(self.hi)):
            raise IntervalError(f"interval bounds must be finite, got [{self.lo}, {self.hi}]")
        if self.hi < self.lo:
            raise IntervalError(f"interval upper bound {self.hi} is below lower bound {self.lo}")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_center(cls, center: float, width: float) -> "Interval":
        """Build the interval of a given ``width`` centred at ``center``.

        This mirrors how the controller constructs an abstract-sensor interval
        from a point measurement and the sensor's precision guarantee: a
        precision of ``delta`` yields an interval of width ``2 * delta``
        centred at the measurement.
        """
        if width < 0:
            raise IntervalError(f"interval width must be non-negative, got {width}")
        half = width / 2.0
        return cls(center - half, center + half)

    @classmethod
    def point(cls, value: float) -> "Interval":
        """Build the degenerate interval ``[value, value]``."""
        return cls(value, value)

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        """Length ``hi - lo`` of the interval (the paper's ``|s|``)."""
        return self.hi - self.lo

    @property
    def center(self) -> float:
        """Midpoint of the interval."""
        return (self.lo + self.hi) / 2.0

    def contains(self, value: float) -> bool:
        """Return ``True`` if ``value`` lies inside the closed interval."""
        return self.lo <= value <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """Return ``True`` if ``other`` is entirely inside this interval."""
        return self.lo <= other.lo and other.hi <= self.hi

    def intersects(self, other: "Interval") -> bool:
        """Return ``True`` if the two closed intervals share at least a point."""
        return self.lo <= other.hi and other.lo <= self.hi

    def intersection(self, other: "Interval") -> "Interval | None":
        """Return the intersection with ``other`` or ``None`` if disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if hi < lo:
            return None
        return Interval(lo, hi)

    def hull(self, other: "Interval") -> "Interval":
        """Return the convex hull (smallest interval containing both)."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def shift(self, offset: float) -> "Interval":
        """Return a copy of the interval translated by ``offset``."""
        return Interval(self.lo + offset, self.hi + offset)

    def expand(self, margin: float) -> "Interval":
        """Return a copy grown by ``margin`` on each side (``margin >= 0``)."""
        if margin < 0:
            raise IntervalError(f"expansion margin must be non-negative, got {margin}")
        return Interval(self.lo - margin, self.hi + margin)

    def clamp(self, value: float) -> float:
        """Return ``value`` clipped to the interval."""
        return min(max(value, self.lo), self.hi)

    def distance_to(self, value: float) -> float:
        """Return the distance from ``value`` to the interval (0 if inside)."""
        if value < self.lo:
            return self.lo - value
        if value > self.hi:
            return value - self.hi
        return 0.0

    def almost_equal(self, other: "Interval", tol: float = 1e-9) -> bool:
        """Return ``True`` if both endpoints match up to ``tol``."""
        return abs(self.lo - other.lo) <= tol and abs(self.hi - other.hi) <= tol

    def __contains__(self, value: object) -> bool:
        if isinstance(value, Interval):
            return self.contains_interval(value)
        if isinstance(value, (int, float)):
            return self.contains(float(value))
        return False

    def __str__(self) -> str:
        return f"[{self.lo:g}, {self.hi:g}]"


def convex_hull(intervals: Iterable[Interval]) -> Interval:
    """Return the smallest interval containing every input interval.

    Raises
    ------
    IntervalError
        If the iterable is empty.
    """
    items = list(intervals)
    if not items:
        raise IntervalError("convex hull of an empty interval collection is undefined")
    return Interval(min(s.lo for s in items), max(s.hi for s in items))


def intersect_all(intervals: Iterable[Interval]) -> Interval:
    """Return the intersection of all intervals.

    This is the paper's ``S_{C,0}`` (fusion with ``f = 0``) and the attacker's
    ``Δ`` when applied to the correct readings of the compromised sensors.

    Raises
    ------
    EmptyIntersectionError
        If the intervals have no common point.
    IntervalError
        If the iterable is empty.
    """
    items = list(intervals)
    if not items:
        raise IntervalError("intersection of an empty interval collection is undefined")
    lo = max(s.lo for s in items)
    hi = min(s.hi for s in items)
    if hi < lo:
        raise EmptyIntersectionError(f"intervals have empty intersection (lo={lo} > hi={hi})")
    return Interval(lo, hi)


class IntervalSet(Sequence[Interval]):
    """An ordered, immutable collection of intervals with set-level queries.

    The class is a thin convenience wrapper used by the fusion engine and the
    schedule simulator; it preserves insertion order (which matters because
    transmission order is meaningful in this paper) while providing the
    aggregate geometry queries the algorithms need.
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._intervals: tuple[Interval, ...] = tuple(intervals)
        for item in self._intervals:
            if not isinstance(item, Interval):
                raise IntervalError(f"IntervalSet elements must be Interval, got {type(item)!r}")

    # -- Sequence protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __getitem__(self, index):  # type: ignore[override]
        result = self._intervals[index]
        if isinstance(index, slice):
            return IntervalSet(result)
        return result

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IntervalSet):
            return self._intervals == other._intervals
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:
        body = ", ".join(str(s) for s in self._intervals)
        return f"IntervalSet([{body}])"

    # -- construction ------------------------------------------------------
    def add(self, interval: Interval) -> "IntervalSet":
        """Return a new set with ``interval`` appended."""
        return IntervalSet(self._intervals + (interval,))

    def extend(self, intervals: Iterable[Interval]) -> "IntervalSet":
        """Return a new set with all ``intervals`` appended."""
        return IntervalSet(self._intervals + tuple(intervals))

    def remove_at(self, index: int) -> "IntervalSet":
        """Return a new set with the interval at ``index`` removed."""
        items = list(self._intervals)
        del items[index]
        return IntervalSet(items)

    # -- aggregate geometry -------------------------------------------------
    @property
    def widths(self) -> tuple[float, ...]:
        """Tuple of interval widths (the paper's set ``L`` for this set)."""
        return tuple(s.width for s in self._intervals)

    def sorted_by_width(self, descending: bool = False) -> "IntervalSet":
        """Return a copy ordered by width (most precise first by default)."""
        return IntervalSet(sorted(self._intervals, key=lambda s: s.width, reverse=descending))

    def hull(self) -> Interval:
        """Convex hull of the whole set."""
        return convex_hull(self._intervals)

    def intersection(self) -> Interval:
        """Common intersection of the whole set (raises if empty)."""
        return intersect_all(self._intervals)

    def coverage(self, value: float) -> int:
        """Number of intervals in the set containing ``value``."""
        return sum(1 for s in self._intervals if s.contains(value))

    def containing(self, value: float) -> "IntervalSet":
        """Subset of intervals that contain ``value``."""
        return IntervalSet(s for s in self._intervals if s.contains(value))

    def count_containing_true_value(self, true_value: float) -> int:
        """Number of *correct* intervals with respect to ``true_value``."""
        return self.coverage(true_value)
