"""Marzullo's fault-tolerant sensor-fusion algorithm.

Given ``n`` closed intervals and an assumed number of faulty sensors ``f``,
the fusion interval ``S_{N,f}`` is

* lower bound: the smallest point contained in at least ``n - f`` intervals,
* upper bound: the largest point contained in at least ``n - f`` intervals.

Intuitively, since at least ``n - f`` intervals are correct, any point covered
by ``n - f`` intervals might be the true value and must be kept.

The implementation is the classic endpoint sweep: sort the ``2n`` endpoints,
walk the line keeping a running coverage count, and record the first and last
points at which the coverage reaches ``n - f``.  Complexity ``O(n log n)``.

The module also exposes the coverage profile itself (used by attack policies
that reason about "the (n - f - fa)-th smallest lower bound") and Marzullo's
original guarantees as predicates so that they can be property-tested.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.exceptions import EmptyFusionError, FaultBoundError, FusionError
from repro.core.interval import Interval

__all__ = [
    "fuse",
    "fuse_or_none",
    "coverage_profile",
    "max_coverage",
    "kth_smallest_lower_bound",
    "kth_largest_upper_bound",
    "validate_fault_bound",
    "max_safe_fault_bound",
    "CoverageSegment",
]


@dataclass(frozen=True)
class CoverageSegment:
    """A maximal segment of the real line with constant interval coverage.

    ``coverage`` intervals of the input contain every point of
    ``[lo, hi]`` (endpoints included; adjacent segments share endpoints).
    """

    lo: float
    hi: float
    coverage: int


def validate_fault_bound(n: int, f: int) -> None:
    """Validate Marzullo's safety requirement ``0 <= f < ceil(n / 2)``.

    The paper only uses the algorithm in this regime: for ``f >= ceil(n/2)``
    the fusion interval can be arbitrarily large and may miss the true value,
    so such configurations are rejected outright.

    Raises
    ------
    FaultBoundError
        If the pair ``(n, f)`` violates the requirement.
    """
    if n <= 0:
        raise FaultBoundError(f"sensor fusion needs at least one interval, got n={n}")
    if f < 0:
        raise FaultBoundError(f"fault bound must be non-negative, got f={f}")
    if f >= math.ceil(n / 2):
        raise FaultBoundError(
            f"fault bound f={f} violates f < ceil(n/2) = {math.ceil(n / 2)} for n={n}; "
            "the fusion interval would be unbounded"
        )


def max_safe_fault_bound(n: int) -> int:
    """Return the largest ``f`` satisfying ``f < ceil(n / 2)``.

    This is the conservative upper bound ``f = ceil(n/2) - 1`` that the
    paper's simulations use throughout (Section IV-A).
    """
    if n <= 0:
        raise FaultBoundError(f"sensor fusion needs at least one interval, got n={n}")
    return math.ceil(n / 2) - 1


def _sorted_events(intervals: Sequence[Interval]) -> list[tuple[float, int]]:
    """Return the sweep events as ``(position, delta)`` sorted for the sweep.

    Opening events (``+1``) at position ``lo`` are processed before closing
    events (``-1``) at the same position so that closed-interval touching
    counts as overlap, matching the closed-interval semantics of the paper.
    """
    events: list[tuple[float, int]] = []
    for s in intervals:
        events.append((s.lo, +1))
        events.append((s.hi, -1))
    # +1 events first at equal positions: sort by (position, -delta).
    events.sort(key=lambda e: (e[0], -e[1]))
    return events


def coverage_profile(intervals: Iterable[Interval]) -> list[CoverageSegment]:
    """Return the piecewise-constant coverage function of the interval set.

    The result is a list of :class:`CoverageSegment` covering exactly the
    convex hull of the inputs.  Degenerate (single-point) segments are emitted
    where coverage changes at a point, so the maximum coverage reported over
    the segments equals the true pointwise maximum for closed intervals.
    """
    items = list(intervals)
    if not items:
        return []
    events = _sorted_events(items)
    segments: list[CoverageSegment] = []
    coverage = 0
    prev_pos = events[0][0]
    index = 0
    n_events = len(events)
    while index < n_events:
        pos = events[index][0]
        if pos > prev_pos and coverage > 0:
            segments.append(CoverageSegment(prev_pos, pos, coverage))
        elif pos > prev_pos and coverage == 0:
            # A gap between disjoint clusters: record it with zero coverage so
            # the profile tiles the hull completely.
            segments.append(CoverageSegment(prev_pos, pos, 0))
        # Apply all opening events at this position, then note the coverage at
        # the point itself (closed intervals: the point belongs to everything
        # opening or closing here).
        opens = 0
        closes = 0
        while index < n_events and events[index][0] == pos:
            if events[index][1] > 0:
                opens += 1
            else:
                closes += 1
            index += 1
        point_coverage = coverage + opens
        segments.append(CoverageSegment(pos, pos, point_coverage))
        coverage = coverage + opens - closes
        prev_pos = pos
    return segments


def max_coverage(intervals: Iterable[Interval]) -> int:
    """Return the maximum number of intervals sharing a common point."""
    return max((seg.coverage for seg in coverage_profile(intervals)), default=0)


def fuse_or_none(intervals: Sequence[Interval], f: int) -> Interval | None:
    """Marzullo fusion returning ``None`` when no point reaches ``n - f`` coverage.

    Unlike :func:`fuse`, the fault bound is *not* checked against
    ``f < ceil(n/2)``; this variant exists for analysis code that wants to
    inspect the raw algorithm (e.g. to demonstrate why the bound is needed).
    """
    items = list(intervals)
    n = len(items)
    if n == 0:
        raise FusionError("cannot fuse an empty collection of intervals")
    if f < 0:
        raise FaultBoundError(f"fault bound must be non-negative, got f={f}")
    required = n - f
    if required <= 0:
        # Every point of the hull is trivially covered by >= 0 intervals; the
        # natural reading is the convex hull of the inputs.
        return Interval(min(s.lo for s in items), max(s.hi for s in items))

    events = _sorted_events(items)
    coverage = 0
    lower: float | None = None
    upper: float | None = None
    for position, delta in events:
        if delta > 0:
            coverage += 1
            if coverage >= required and lower is None:
                lower = position
        else:
            if coverage >= required:
                # The closing endpoint itself is still covered by `coverage`
                # intervals (closed semantics), so it is the best upper bound
                # seen so far.
                upper = position
            coverage -= 1
    if lower is None or upper is None or upper < lower:
        return None
    return Interval(lower, upper)


def fuse(intervals: Sequence[Interval], f: int) -> Interval:
    """Compute Marzullo's fusion interval ``S_{N,f}``.

    Parameters
    ----------
    intervals:
        The ``n`` abstract-sensor intervals.
    f:
        Assumed number of faulty sensors.  Must satisfy ``f < ceil(n / 2)``.

    Returns
    -------
    Interval
        The fusion interval.

    Raises
    ------
    FaultBoundError
        If ``f`` violates the safety requirement.
    EmptyFusionError
        If no point is contained in at least ``n - f`` intervals.  (With a
        correct ``f`` this means more than ``f`` sensors are actually faulty.)
    """
    items = list(intervals)
    validate_fault_bound(len(items), f)
    fused = fuse_or_none(items, f)
    if fused is None:
        raise EmptyFusionError(
            f"no point is covered by at least n - f = {len(items) - f} intervals; "
            "more sensors are faulty than the assumed bound"
        )
    return fused


def kth_smallest_lower_bound(intervals: Iterable[Interval], k: int) -> float:
    """Return the ``k``-th smallest lower bound (1-indexed).

    Used by Theorem 1: ``l_{n-f-fa}`` is the ``(n - f - fa)``-th smallest
    *seen* lower bound.
    """
    lows = sorted(s.lo for s in intervals)
    if not 1 <= k <= len(lows):
        raise FusionError(f"k={k} out of range for {len(lows)} intervals")
    return lows[k - 1]


def kth_largest_upper_bound(intervals: Iterable[Interval], k: int) -> float:
    """Return the ``k``-th largest upper bound (1-indexed)."""
    highs = sorted((s.hi for s in intervals), reverse=True)
    if not 1 <= k <= len(highs):
        raise FusionError(f"k={k} out of range for {len(highs)} intervals")
    return highs[k - 1]
