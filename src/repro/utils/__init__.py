"""Small shared utilities (deterministic RNG construction)."""

from repro.utils.rng import make_rng, spawn_rngs

__all__ = ["make_rng", "spawn_rngs"]
