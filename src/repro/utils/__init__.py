"""Small shared utilities (deterministic RNG construction and derivation)."""

from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.seeding import (
    child_seed_sequence,
    derive_rng,
    ensure_rng,
    shard_rngs,
    shard_seed_sequences,
)

__all__ = [
    "make_rng",
    "spawn_rngs",
    "child_seed_sequence",
    "derive_rng",
    "ensure_rng",
    "shard_rngs",
    "shard_seed_sequences",
]
