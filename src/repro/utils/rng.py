"""Deterministic random-number helpers.

Every stochastic component of the library takes an explicit
``numpy.random.Generator``; these helpers build them from integer seeds and
derive independent child streams, so experiments are reproducible end to end
and schedules/attackers never share (and therefore never perturb) each
other's streams.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs"]


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Build a :class:`numpy.random.Generator` from an integer seed."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one base seed."""
    seed_sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seed_sequence.spawn(count)]
