"""Deterministic random-number helpers.

Every stochastic component of the library takes an explicit
``numpy.random.Generator``; these helpers build them from integer seeds and
derive independent child streams, so experiments are reproducible end to end
and schedules/attackers never share (and therefore never perturb) each
other's streams.
"""

from __future__ import annotations

import numpy as np

from repro.utils.seeding import shard_rngs

__all__ = ["make_rng", "spawn_rngs"]


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Build a :class:`numpy.random.Generator` from an integer seed."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one base seed.

    Alias of :func:`repro.utils.seeding.shard_rngs` — the derivation lives in
    :mod:`repro.utils.seeding` so every child stream in the repository is
    spelled the same way (``SeedSequence(seed).spawn(count)[i]`` and
    ``SeedSequence(entropy=seed, spawn_key=(i,))`` are the same sequence).
    """
    return shard_rngs(seed, count)
