"""Centralised deterministic seed derivation, built on ``SeedSequence.spawn``.

Every stochastic component of the library takes an explicit
:class:`numpy.random.Generator`; this module is the single place those
generators are *derived* from integer seeds.  Two rules:

1. **Never derive child streams by integer arithmetic.**  The historical
   ``default_rng(config.seed + index)`` pattern is collision-prone — the
   stream of schedule ``index + 1`` under seed ``s`` *is* the stream of
   schedule ``index`` under seed ``s + 1``, so sweeps over nearby seeds
   silently share randomness.  :func:`derive_rng` keys children with
   ``SeedSequence`` spawn keys instead, which are hashed into the entropy
   pool and collision-resistant by construction.
2. **Shard keys are part of the experiment definition, not the executor.**
   :func:`shard_seed_sequences` gives shard ``i`` of an experiment the
   stream ``SeedSequence(entropy=seed, spawn_key=(i,))`` — a pure function
   of ``(seed, i)`` — so a sharded run is bit-reproducible no matter how
   many workers execute the shards or in which order they finish.  The
   scenario runner (:mod:`repro.runner`) relies on exactly this property.

``SeedSequence(entropy=seed, spawn_key=(i,))`` is the same sequence as
``SeedSequence(seed).spawn(n)[i]`` — the stateless spelling used here makes
the derivation order-free, so workers can rebuild their own streams without
coordinating.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "child_seed_sequence",
    "derive_rng",
    "ensure_rng",
    "jumped_rngs",
    "shard_seed_sequences",
    "shard_rngs",
    "spawn_rng",
]


def child_seed_sequence(seed: int, *key: int) -> np.random.SeedSequence:
    """The :class:`~numpy.random.SeedSequence` for child ``key`` of ``seed``.

    ``key`` may be any tuple of non-negative integers — e.g. ``(case, shard)``
    for a sharded grid.  An empty key returns the root sequence, whose
    generator is identical to ``np.random.default_rng(seed)``.
    """
    return np.random.SeedSequence(entropy=seed, spawn_key=tuple(int(k) for k in key))


def derive_rng(seed: int, *key: int) -> np.random.Generator:
    """A :class:`~numpy.random.Generator` on the child stream ``key`` of ``seed``.

    The collision-free replacement for ``default_rng(seed + index)``:
    ``derive_rng(seed, index)`` streams are independent across *both* indices
    and nearby base seeds.
    """
    return np.random.default_rng(child_seed_sequence(seed, *key))


def ensure_rng(rng: np.random.Generator | None, seed: int = 0) -> np.random.Generator:
    """Pass ``rng`` through, or build the default generator for ``seed``.

    The shared spelling of the ``rng if rng is not None else default_rng(0)``
    fallback; keeping it in one place makes the default stream greppable and
    bit-identical across call sites.
    """
    return rng if rng is not None else np.random.default_rng(seed)


def jumped_rngs(seed: int, count: int, *key: int) -> list[np.random.Generator]:
    """``count`` independent generators on child ``key``, via ``PCG64.jumped``.

    Stream ``i`` is ``Generator(PCG64(child_seed_sequence(seed, *key)).jumped(i))``
    — a pure function of ``(seed, key, i)``, independent of ``count``, so a
    prefix of the streams is always the same streams (callers can shard a
    budget from the front and re-use earlier draws at smaller budgets).
    Each jump advances PCG64 by :math:`2^{127}` states, so the streams
    cannot overlap in practice.

    Compared to one :func:`derive_rng` per stream this hashes the entropy
    pool *once* per key instead of once per stream — the spelling for hot
    loops that need many short-lived shard streams per key (the schedule
    evaluator in :mod:`repro.optimize` derives one family per candidate).
    """
    bit_generator = np.random.PCG64(child_seed_sequence(seed, *key))
    return [np.random.Generator(bit_generator.jumped(index)) for index in range(count)]


def shard_seed_sequences(seed: int, count: int) -> list[np.random.SeedSequence]:
    """Independent per-shard seed sequences — a pure function of ``(seed, i)``."""
    return [child_seed_sequence(seed, index) for index in range(count)]


def spawn_rng(rng: np.random.Generator) -> np.random.Generator:
    """One child generator spawned off ``rng``'s seed sequence.

    ``Generator.spawn`` derives the child through ``SeedSequence`` spawn
    keys **without consuming the parent's bitstream**: the parent produces
    exactly the same draws after the spawn as it would have without it.
    This is the hook for *optional* randomness — the lossy-channel model
    (:mod:`repro.channel`) draws from a spawned child at a fixed point of
    the engine prologue, so channel-free payloads stay bit-identical while
    every engine backend sees the same channel stream.
    """
    return rng.spawn(1)[0]


def shard_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Independent per-shard generators (see :func:`shard_seed_sequences`)."""
    return [np.random.default_rng(sequence) for sequence in shard_seed_sequences(seed, count)]
