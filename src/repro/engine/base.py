"""The pluggable simulation-engine layer: protocol, result type, registry.

Before this layer existed the repository exposed two parallel APIs for the
same experiments — the scalar reference loop (:mod:`repro.scheduling.round`,
:mod:`repro.vehicle.platoon`) and the vectorized batch path
(:mod:`repro.batch`) — and every call site hard-coded which one it used.
``repro.engine`` turns the choice into data:

* :class:`Engine` is the backend protocol.  An engine can simulate a batch
  of fusion rounds for one schedule (:meth:`Engine.run_rounds`), sweep a
  whole schedule comparison (:meth:`Engine.compare`), and run the Table II
  platoon case study (:meth:`Engine.run_case_study`).
* :class:`RoundsResult` is the backend-agnostic result of ``run_rounds``:
  plain per-round arrays, so two engines can be compared bit-for-bit (the
  parity test-suite does exactly that for the deterministic stretch
  attacker).
* :func:`register_engine` / :func:`get_engine` form the registry every call
  site goes through.  ``get_engine(None)`` resolves the default backend,
  which is ``"scalar"`` unless overridden by the ``REPRO_ENGINE``
  environment variable — the deployment-side knob for flipping experiments
  onto the batch engine (or a future numba/jax backend) without touching
  code.

Attack models are requested by *specification* (:class:`StretchAttack`,
:class:`ExpectationAttack`, :class:`TruthfulAttack`, or their string
spellings) rather than by policy object, because each backend owns its
implementation of the same decision rule (e.g.
:class:`repro.attack.stretch.ActiveStretchPolicy` versus
:class:`repro.batch.rounds.ActiveStretchBatchAttacker`, or
:class:`repro.attack.expectation.ExpectationPolicy` versus
:class:`repro.batch.expectation.ExactExpectationBatchAttacker`).

The layer map and the registry contract for third-party backends are
documented in ``docs/ARCHITECTURE.md``; the attacker catalogue in
``docs/ATTACKERS.md``.
"""

from __future__ import annotations

import abc
import os
from dataclasses import dataclass
from typing import Callable, ClassVar, Sequence, Union

import numpy as np

from repro.core.exceptions import EngineUnavailableError, ExperimentError
from repro.scheduling.comparison import (
    ScheduleComparison,
    ScheduleComparisonConfig,
    ScheduleRow,
)
from repro.scheduling.schedule import Schedule
from repro.utils.seeding import ensure_rng
from repro.vehicle.case_study import CaseStudyConfig, CaseStudyResult

__all__ = [
    "ENGINE_ENV_VAR",
    "DEFAULT_ENGINE",
    "TruthfulAttack",
    "StretchAttack",
    "ExpectationAttack",
    "AttackSpec",
    "resolve_attack",
    "check_channel_support",
    "RoundsResult",
    "Engine",
    "OPTIONAL_ENGINE_REQUIREMENTS",
    "register_engine",
    "available_engines",
    "list_engines",
    "default_engine_name",
    "get_engine",
]

#: Environment variable overriding the default backend name.
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: Backend used when neither the caller nor the environment picks one.
DEFAULT_ENGINE = "scalar"


@dataclass(frozen=True)
class TruthfulAttack:
    """Compromised sensors forward their correct readings (baseline)."""


@dataclass(frozen=True)
class StretchAttack:
    """The deterministic greedy stretch attacker.

    Attributes
    ----------
    side:
        ``+1`` stretches the fusion interval to the right, ``-1`` to the
        left.  Both backends implement the identical decision rule, which is
        what makes engine results bit-comparable under this spec.
    """

    side: int = 1

    def __post_init__(self) -> None:
        if self.side not in (1, -1):
            raise ExperimentError(f"stretch side must be +1 or -1, got {self.side}")


@dataclass(frozen=True)
class ExpectationAttack:
    """The exact expectation-maximising attacker of problem (2).

    Both backends implement the identical decision rule — the scalar engine
    through :class:`repro.attack.expectation.ExpectationPolicy`, the batch
    engine through the vectorized
    :class:`repro.batch.expectation.ExactExpectationBatchAttacker` — with
    deterministic (first-candidate) tie-breaking, so engine results are
    bit-comparable under this spec like they are under :class:`StretchAttack`.

    Attributes mirror the grid resolution of the scalar policy; the defaults
    are the Table I settings.  ``conservative`` selects the weaker
    active-mode rule (support from already-transmitted intervals only).
    """

    true_value_positions: int = 3
    placement_positions: int = 3
    grid_positions: int = 9
    conservative: bool = False

    def __post_init__(self) -> None:
        for name in ("true_value_positions", "placement_positions", "grid_positions"):
            if getattr(self, name) < 1:
                raise ExperimentError(f"{name} must be positive, got {getattr(self, name)}")


AttackSpec = Union[str, TruthfulAttack, StretchAttack, ExpectationAttack]

_ATTACK_NAMES = {
    "truthful": TruthfulAttack(),
    "stretch": StretchAttack(side=1),
    "stretch-left": StretchAttack(side=-1),
    "expectation": ExpectationAttack(),
    "expectation-conservative": ExpectationAttack(conservative=True),
}


def resolve_attack(attack: AttackSpec) -> TruthfulAttack | StretchAttack | ExpectationAttack:
    """Normalise an attack specification (string spellings included)."""
    if isinstance(attack, (TruthfulAttack, StretchAttack, ExpectationAttack)):
        return attack
    resolved = _ATTACK_NAMES.get(attack)
    if resolved is None:
        raise ExperimentError(
            f"unknown attack specification {attack!r}; expected one of "
            f"{sorted(_ATTACK_NAMES)} or a TruthfulAttack/StretchAttack/"
            "ExpectationAttack instance"
        )
    return resolved


def check_channel_support(attack, channel) -> None:
    """Reject attack specs that are not channel-aware.

    The expectation-maximising attacker enumerates measurement grids under
    the perfect-bus assumption; pairing it with a lossy channel would
    silently optimise the wrong objective, so every engine rejects the
    combination up front through this shared check.
    """
    if channel is not None and isinstance(attack, ExpectationAttack):
        raise ExperimentError(
            "the expectation attacker does not support a lossy channel; "
            "use the truthful or stretch attack specs with ChannelSpec"
        )


@dataclass(frozen=True)
class RoundsResult:
    """Backend-agnostic outcome of a batch of simulated fusion rounds.

    All arrays have length ``B`` (one entry per round).  Rounds whose fusion
    is empty — possible only with fault injection — carry ``valid=False``
    and ``NaN`` bounds; they count towards ``samples`` but not towards
    :attr:`mean_width`.

    The optional per-sensor arrays (``(B, n)``, sensor-indexed like the
    scalar :attr:`repro.scheduling.round.RoundResult.broadcast`) expose what
    every sensor actually broadcast and which sensors the controller's
    detection procedure flagged — the inputs detection ablations need, on
    either backend.  Both engines fill them; they are ``None`` only for
    results built by older third-party backends.  Their entries are
    meaningful where :attr:`valid` is ``True`` — the scalar engine aborts an
    empty-fusion round before detection, so invalid rows carry ``NaN``
    broadcasts and all-``False`` flags on every backend.

    ``channel_dropped`` / ``channel_retransmits`` are filled only when a
    :class:`repro.channel.ChannelSpec` was configured: per-round counts of
    transmissions that never reached fusion and of retransmission tail slots
    consumed.  They are *physical* counters — valid and invalid rounds
    alike — and part of the cross-engine bit-identity contract.
    """

    schedule_name: str
    fusion_lo: np.ndarray
    fusion_hi: np.ndarray
    valid: np.ndarray
    attacker_detected: np.ndarray
    broadcast_lo: np.ndarray | None = None
    broadcast_hi: np.ndarray | None = None
    flagged: np.ndarray | None = None
    channel_dropped: np.ndarray | None = None
    channel_retransmits: np.ndarray | None = None

    @property
    def samples(self) -> int:
        """Number of simulated rounds."""
        return int(self.fusion_lo.shape[0])

    @property
    def widths(self) -> np.ndarray:
        """Per-round fusion widths (``NaN`` for empty-fusion rounds)."""
        return self.fusion_hi - self.fusion_lo

    @property
    def mean_width(self) -> float:
        """Mean fusion width over the valid rounds (``NaN`` if none are)."""
        widths = self.widths[self.valid]
        return float(widths.mean()) if widths.size else float("nan")

    @property
    def detected_fraction(self) -> float:
        """Fraction of all rounds in which the attacker was flagged."""
        return float(np.asarray(self.attacker_detected, dtype=np.float64).mean())

    @property
    def flagged_fraction_per_sensor(self) -> np.ndarray:
        """Per-sensor flag rates over the valid rounds (``(n,)`` floats).

        Requires the per-sensor arrays; raises for results from backends that
        do not fill them.
        """
        if self.flagged is None:
            raise ExperimentError(
                "this RoundsResult carries no per-sensor flag array; the producing "
                "engine predates the per-sensor extension"
            )
        valid = np.asarray(self.valid, dtype=bool)
        if not bool(valid.any()):
            return np.full(self.flagged.shape[1], np.nan)
        return np.asarray(self.flagged, dtype=np.float64)[valid].mean(axis=0)

    def to_row(self) -> ScheduleRow:
        """Render as a Table I style :class:`~repro.scheduling.comparison.ScheduleRow`."""
        if not bool(self.valid.any()):
            raise ExperimentError("every sampled round produced an empty fusion")
        return ScheduleRow(
            schedule_name=self.schedule_name,
            expected_width=self.mean_width,
            combinations=self.samples,
            detected_fraction=self.detected_fraction,
        )


def check_samples(samples: int) -> None:
    """Shared validation for the per-engine ``samples`` argument."""
    if samples <= 0:
        raise ExperimentError(f"need a positive number of samples, got {samples}")


def check_run_many_args(
    budgets: Sequence[int], rngs: Sequence[np.random.Generator] | None
) -> tuple[list[int], list[np.random.Generator]]:
    """Shared validation for the :meth:`Engine.run_many` arguments."""
    budgets = list(budgets)
    streams = list(rngs) if rngs is not None else None
    if streams is None or len(streams) != len(budgets):
        raise ExperimentError(
            "run_many needs one RNG stream per budget (got "
            f"{len(budgets)} budgets and "
            f"{'no' if streams is None else len(streams)} rngs)"
        )
    if not budgets:
        raise ExperimentError("run_many needs at least one budget")
    for samples in budgets:
        check_samples(samples)
    return budgets, streams


class Engine(abc.ABC):
    """One simulation backend (scalar reference loop, vectorized batch, ...)."""

    #: Registry name of the backend (also its ``engine="..."`` spelling).
    name: ClassVar[str] = ""

    @abc.abstractmethod
    def run_rounds(
        self,
        config: ScheduleComparisonConfig,
        schedule: Schedule,
        attack: AttackSpec = "stretch",
        faults=None,
        samples: int = 10_000,
        rng: np.random.Generator | None = None,
        channel=None,
    ) -> RoundsResult:
        """Simulate ``samples`` Monte-Carlo fusion rounds for one schedule.

        Every engine draws the correct intervals with
        :func:`repro.batch.rounds.sample_correct_bounds` and the
        transmission orders with :func:`repro.batch.rounds.batch_orders`
        before simulating, so under the deterministic attack specs two
        engines given equal ``rng`` states return identical
        :class:`RoundsResult` arrays (the parity tests rely on this).
        ``faults`` takes a :class:`repro.batch.rounds.BatchTransientFaults`;
        ``channel`` an optional :class:`repro.channel.ChannelSpec`, realized
        from a generator spawned off ``rng`` so the main stream — and every
        channel-free payload — is untouched.
        """

    def run_many(
        self,
        config: ScheduleComparisonConfig,
        schedule: Schedule,
        attack: AttackSpec = "stretch",
        faults=None,
        budgets: Sequence[int] = (),
        rngs: Sequence[np.random.Generator] | None = None,
        channel=None,
    ) -> list[RoundsResult]:
        """Run several independent sample budgets of one plan in one call.

        The micro-batching seam behind the serving layer
        (:mod:`repro.serve`): ``budgets[i]`` rounds are simulated with the
        stream ``rngs[i]``, and the contract is that the returned results
        are **bit-identical** to calling :meth:`run_rounds` once per
        ``(budget, rng)`` pair — a request coalesced into a shared engine
        pass must receive exactly the payload it would have computed alone.

        This default implementation *is* that reference loop; vectorized
        backends override it to pack every budget into a single simulation
        pass (see :meth:`repro.engine.batch.BatchEngine.run_many`) so the
        per-invocation overhead is paid once for the whole batch.
        """
        budgets, streams = check_run_many_args(budgets, rngs)
        return [
            self.run_rounds(config, schedule, attack, faults, samples, rng, channel)
            for samples, rng in zip(budgets, streams)
        ]

    def compare(
        self,
        config: ScheduleComparisonConfig,
        schedules: Sequence[Schedule],
        samples: int = 10_000,
        rng: np.random.Generator | None = None,
        attack: AttackSpec = "stretch",
        faults=None,
        channel=None,
    ) -> ScheduleComparison:
        """Run every schedule on one configuration (Table I style).

        The schedules share one RNG stream, consumed in order — matching the
        behaviour of the legacy ``compare_schedules_batch`` so the engine
        route reproduces its numbers exactly.
        """
        rng = ensure_rng(rng)
        rows = tuple(
            self.run_rounds(config, schedule, attack, faults, samples, rng, channel).to_row()
            for schedule in schedules
        )
        return ScheduleComparison(config=config, rows=rows)

    @abc.abstractmethod
    def run_case_study(
        self,
        config: CaseStudyConfig | None = None,
        schedules: Sequence[Schedule] | None = None,
        **options,
    ) -> CaseStudyResult:
        """Run the Table II platoon case study on this backend.

        Backend-specific options (``policy_factory`` for the scalar engine,
        ``attacker_factory`` / ``n_replicas`` for the batch engine) are
        keyword-only; engines must reject options they cannot honour instead
        of silently ignoring them.
        """


_REGISTRY: dict[str, Callable[[], Engine]] = {}

#: Engines the codebase knows about but whose registration is conditional on
#: an optional dependency.  Requesting one that is not registered raises
#: :class:`~repro.core.exceptions.EngineUnavailableError` with an install
#: hint instead of the generic unknown-engine error, so ``--engine numba``
#: without numba installed fails with a diagnosis, not a typo suggestion.
OPTIONAL_ENGINE_REQUIREMENTS: dict[str, str] = {"numba": "numba"}


def _unknown_engine_error(name: str, env: bool = False) -> ExperimentError:
    """One consistent error for an engine name the registry cannot resolve.

    Shared by :func:`get_engine` and :func:`default_engine_name` (and thereby
    the CLI, ``repro.api`` and the scenario runner), so every entry point
    reports a missing backend the same way: known-but-unavailable optional
    engines get an install hint, anything else an *unknown engine* message
    with the registered names and a did-you-mean suggestion.
    """
    import difflib

    available = ", ".join(available_engines())
    prefix = f"{ENGINE_ENV_VAR}={name!r} does not name a registered engine" if env else ""
    requirement = OPTIONAL_ENGINE_REQUIREMENTS.get(name)
    if requirement is not None:
        message = prefix or f"engine {name!r} is not available in this environment"
        return EngineUnavailableError(
            f"{message}: it requires the optional dependency {requirement!r} "
            f"(pip install {requirement}); available engines: {available}"
        )
    candidates = set(available_engines()) | set(OPTIONAL_ENGINE_REQUIREMENTS)
    matches = difflib.get_close_matches(name, sorted(candidates), n=3, cutoff=0.5)
    hint = f" — did you mean {', '.join(repr(match) for match in matches)}?" if matches else ""
    message = prefix or f"unknown engine {name!r}"
    return ExperimentError(f"{message}; available engines: {available}{hint}")


def register_engine(name: str, factory: Callable[[], Engine], replace: bool = False) -> None:
    """Register an engine factory under ``name`` (e.g. at import time).

    Third-party backends (numba, jax, ...) plug in here; after registration
    every ``engine="name"`` call site can reach them.
    """
    if not name:
        raise ExperimentError("an engine needs a non-empty registry name")
    if name in _REGISTRY and not replace:
        raise ExperimentError(f"engine {name!r} is already registered (pass replace=True)")
    _REGISTRY[name] = factory


def available_engines() -> tuple[str, ...]:
    """Names of all registered backends, sorted."""
    return tuple(sorted(_REGISTRY))


#: Alias used by the registry-driven engine conformance suite
#: (``tests/engine/conformance.py``): parametrising over ``list_engines()``
#: covers every backend the moment it registers.
list_engines = available_engines


def default_engine_name() -> str:
    """The backend used when no explicit choice is made.

    Resolution order: the ``REPRO_ENGINE`` environment variable if set (and
    validated against the registry), else ``"scalar"``.
    """
    name = os.environ.get(ENGINE_ENV_VAR, "").strip().lower()
    if not name:
        return DEFAULT_ENGINE
    if name not in _REGISTRY:
        raise _unknown_engine_error(name, env=True)
    return name


def get_engine(engine: str | Engine | None = None) -> Engine:
    """Resolve an engine selection to a backend instance.

    ``None`` resolves the default (env-overridable) backend, a string looks
    up the registry, and an :class:`Engine` instance passes through — so
    call sites accept all three forms with one line.
    """
    if engine is None:
        engine = default_engine_name()
    if isinstance(engine, Engine):
        return engine
    factory = _REGISTRY.get(engine)
    if factory is None:
        raise _unknown_engine_error(engine)
    return factory()
