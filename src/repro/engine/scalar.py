"""The scalar reference engine: one Python call per simulated round.

:class:`ScalarEngine` wraps the repository's original simulators —
:func:`repro.scheduling.round.run_round` for fusion rounds and the
:class:`repro.vehicle.platoon.Platoon` loop for the Table II case study —
behind the :class:`repro.engine.base.Engine` protocol.  It is the oracle the
vectorized :class:`repro.engine.batch.BatchEngine` is tested against: both
engines draw correct intervals through the same
:func:`repro.batch.rounds.sample_correct_bounds` call, compute transmission
orders through the same :func:`repro.batch.rounds.batch_orders` call, and
apply transient faults through the same
:class:`repro.batch.rounds.BatchTransientFaults` model — so their RNG
streams coincide and their :class:`~repro.engine.base.RoundsResult` arrays
match bit-for-bit under the deterministic attack specs (randomized
schedules included).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.attack.expectation import ExpectationPolicy
from repro.attack.policy import AttackPolicy, TruthfulPolicy
from repro.attack.stretch import ActiveStretchPolicy
from repro.batch.rounds import BatchTransientFaults, batch_orders, sample_correct_bounds
from repro.channel import ChannelSpec, realize_channel
from repro.core.exceptions import EmptyFusionError, ExperimentError
from repro.core.interval import Interval
from repro import obs
from repro.engine.base import (
    AttackSpec,
    Engine,
    ExpectationAttack,
    RoundsResult,
    StretchAttack,
    TruthfulAttack,
    check_channel_support,
    check_samples,
    resolve_attack,
)
from repro.scheduling.comparison import ScheduleComparisonConfig
from repro.scheduling.round import RoundConfig, run_round
from repro.scheduling.schedule import FixedSchedule, Schedule
from repro.utils.seeding import derive_rng, ensure_rng, spawn_rng
from repro.vehicle.case_study import CaseStudyConfig, CaseStudyResult

__all__ = ["ScalarEngine"]


class ScalarEngine(Engine):
    """Reference backend built on the per-round Python simulator."""

    name = "scalar"

    @staticmethod
    def _policy(attack: TruthfulAttack | StretchAttack | ExpectationAttack) -> AttackPolicy:
        if isinstance(attack, TruthfulAttack):
            return TruthfulPolicy()
        if isinstance(attack, ExpectationAttack):
            # Deterministic tie-breaking keeps the policy RNG-free, so the
            # engine streams stay aligned and the batch backend's vectorized
            # expectation attacker can be compared bit-for-bit.
            return ExpectationPolicy(
                true_value_positions=attack.true_value_positions,
                placement_positions=attack.placement_positions,
                grid_positions=attack.grid_positions,
                conservative=attack.conservative,
                tie_break="first",
            )
        return ActiveStretchPolicy(side=attack.side)

    def run_rounds(
        self,
        config: ScheduleComparisonConfig,
        schedule: Schedule,
        attack: AttackSpec = "stretch",
        faults: BatchTransientFaults | None = None,
        samples: int = 10_000,
        rng: np.random.Generator | None = None,
        channel: ChannelSpec | None = None,
    ) -> RoundsResult:
        with obs.span("engine.run", engine=self.name, schedule=schedule.name, samples=samples):
            return self._run_rounds(config, schedule, attack, faults, samples, rng, channel)

    def _run_rounds(
        self,
        config: ScheduleComparisonConfig,
        schedule: Schedule,
        attack: AttackSpec,
        faults: BatchTransientFaults | None,
        samples: int,
        rng: np.random.Generator | None,
        channel: ChannelSpec | None = None,
    ) -> RoundsResult:
        check_samples(samples)
        spec = resolve_attack(attack)
        check_channel_support(spec, channel)
        rng = ensure_rng(rng)
        n = config.n
        attacked = config.resolved_attacked

        with obs.span("engine.prepare", engine=self.name):
            lowers, uppers = sample_correct_bounds(config.lengths, config.true_value, samples, rng)
            # Schedules order sensors by their *correct* widths (widths are the
            # public a-priori information, and transient faults only displace an
            # interval).  Precomputing the orders with the same vectorized call
            # as the batch engine keeps the two RNG streams — and, down to
            # floating-point tie-breaking on faulted rounds, the simulated
            # rounds — bit-identical across engines.
            orders = batch_orders(schedule, uppers - lowers, rng)
            if faults is not None:
                # Same fault model, mask semantics and RNG consumption as the
                # batch engine: honest sensors only, drawn for the whole batch.
                eligible = np.ones((samples, n), dtype=bool)
                if attacked:
                    eligible[:, list(attacked)] = False
                lowers, uppers, _fault_mask = faults.apply(lowers, uppers, eligible, rng)
            # The channel draws from its own spawned child stream so that the
            # main stream — and therefore every channel-free payload — is
            # untouched, and every engine backend realizes the identical
            # channel for identical (spec, samples, rng) triples.
            realization = (
                realize_channel(channel, samples, n, spawn_rng(rng))
                if channel is not None
                else None
            )

        policy = self._policy(spec)
        fusion_lo = np.full(samples, np.nan)
        fusion_hi = np.full(samples, np.nan)
        valid = np.zeros(samples, dtype=bool)
        detected = np.zeros(samples, dtype=bool)
        broadcast_lo = np.full((samples, n), np.nan)
        broadcast_hi = np.full((samples, n), np.nan)
        flagged = np.zeros((samples, n), dtype=bool)
        with obs.span("engine.rounds", engine=self.name, samples=samples):
            for index in range(samples):
                intervals = [Interval(lowers[index, i], uppers[index, i]) for i in range(n)]
                round_config = RoundConfig(
                    schedule=FixedSchedule(tuple(int(i) for i in orders[index])),
                    attacked_indices=attacked,
                    policy=policy,
                    f=config.resolved_f,
                )
                try:
                    result = run_round(
                        intervals,
                        round_config,
                        rng,
                        channel=None if realization is None else realization.row(index),
                    )
                except EmptyFusionError:
                    # The batch engine reports these rounds through its `valid`
                    # mask; mirror that instead of aborting the sweep.  The
                    # per-sensor arrays keep their NaN / all-False convention for
                    # these rows on both backends.
                    continue
                fusion_lo[index] = result.fusion.lo
                fusion_hi[index] = result.fusion.hi
                valid[index] = True
                detected[index] = result.attacker_detected
                for sensor, interval in enumerate(result.broadcast):
                    broadcast_lo[index, sensor] = interval.lo
                    broadcast_hi[index, sensor] = interval.hi
                # Detection reports flags in slot order; re-index by sensor like
                # the batch engine's flagged array.
                for slot, sensor in enumerate(result.order):
                    flagged[index, sensor] = result.detection.is_flagged(slot)
        obs.add("repro_engine_samples_total", samples, engine=self.name)
        if obs.enabled() and isinstance(policy, ExpectationPolicy):
            stats = policy.stats()
            if stats["hits"]:
                obs.add("repro_expectation_memo_total", stats["hits"], outcome="hit")
            if stats["misses"]:
                obs.add("repro_expectation_memo_total", stats["misses"], outcome="miss")
        if realization is not None:
            obs.add("repro_channel_dropped_total", int(realization.dropped.sum()), engine=self.name)
            obs.add(
                "repro_channel_retransmits_total",
                int(realization.retransmits.sum()),
                engine=self.name,
            )
        return RoundsResult(
            schedule_name=schedule.name,
            fusion_lo=fusion_lo,
            fusion_hi=fusion_hi,
            valid=valid,
            attacker_detected=detected,
            broadcast_lo=broadcast_lo,
            broadcast_hi=broadcast_hi,
            flagged=flagged,
            channel_dropped=None if realization is None else realization.dropped,
            channel_retransmits=None if realization is None else realization.retransmits,
        )

    def run_case_study(
        self,
        config: CaseStudyConfig | None = None,
        schedules: Sequence[Schedule] | None = None,
        **options,
    ) -> CaseStudyResult:
        """Table II on the original per-vehicle object stack.

        Accepts ``policy_factory`` (defaults to the paper's coarse-grid
        expectation attacker); any other option is rejected.
        """
        # Imported lazily: repro.vehicle.case_study dispatches through this
        # module via the registry.
        from repro.vehicle.case_study import (
            default_attack_policy,
            run_case_study_for_schedule,
        )
        from repro.scheduling.schedule import (
            AscendingSchedule,
            DescendingSchedule,
            RandomSchedule,
        )

        policy_factory = options.pop("policy_factory", None) or default_attack_policy
        if options:
            raise ExperimentError(
                f"scalar engine does not understand case-study options {sorted(options)}; "
                "n_replicas/attacker_factory belong to the batch engine"
            )
        config = config if config is not None else CaseStudyConfig()
        if schedules is None:
            schedules = (AscendingSchedule(), DescendingSchedule(), RandomSchedule())
        stats = []
        for index, schedule in enumerate(schedules):
            # Collision-free per-schedule stream: the old `seed + index`
            # arithmetic made schedule index+1 under seed s share the stream
            # of schedule index under seed s+1.
            rng = derive_rng(config.seed, index)
            stats.append(run_case_study_for_schedule(config, schedule, policy_factory, rng))
        return CaseStudyResult(config=config, stats=tuple(stats))
