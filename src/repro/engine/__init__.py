"""Pluggable simulation engines: one protocol, three registered backends.

``repro.engine`` is the single seam through which every experiment selects
its simulation backend:

>>> from repro.engine import get_engine
>>> engine = get_engine("fused")          # or "batch", "scalar", None for default
>>> result = engine.run_rounds(config, schedule, samples=100_000)

The default backend is ``"scalar"`` (the reference Python loop) unless the
``REPRO_ENGINE`` environment variable names another registered engine;
``"batch"`` is the vectorized NumPy engine and ``"fused"`` its fused
multi-slot sibling (same results bit-for-bit, precomputed schedule-static
structure, several times the throughput on the heavy rows).  The
high-level call sites — :func:`repro.scheduling.comparison.compare_schedules`
(``engine=...``), :func:`repro.vehicle.case_study.run_case_study`
(``engine=...``), the scenario specs' ``engine`` field and the Table I/II
benchmarks — all resolve their backend here, so a future numba or jax
engine only needs one :func:`register_engine` call to become reachable
everywhere; the conformance suite in ``tests/engine/`` covers it the
moment it registers (parametrised over :func:`list_engines`).
"""

from repro.batch.kernels import kernels_available
from repro.engine.base import (
    DEFAULT_ENGINE,
    ENGINE_ENV_VAR,
    AttackSpec,
    Engine,
    ExpectationAttack,
    RoundsResult,
    StretchAttack,
    TruthfulAttack,
    available_engines,
    default_engine_name,
    get_engine,
    register_engine,
    resolve_attack,
)
from repro.engine.base import list_engines
from repro.engine.batch import BatchEngine
from repro.engine.fused import FusedEngine
from repro.engine.scalar import ScalarEngine

register_engine(ScalarEngine.name, ScalarEngine, replace=True)
register_engine(BatchEngine.name, BatchEngine, replace=True)
register_engine(FusedEngine.name, FusedEngine, replace=True)


def _numba_engine_factory():
    # Deferred so that merely listing engines never imports numba (JIT
    # initialisation is expensive); the import happens on first
    # ``get_engine("numba")``.
    from repro.engine.numba_engine import NumbaEngine

    return NumbaEngine()


# The optional JIT backend registers only when its dependency is importable
# (or the pure-Python kernel fallback is forced), keeping the engine list
# honest on stdlib+numpy installs; requesting it anyway raises
# EngineUnavailableError with an install hint (see repro.engine.base).
if kernels_available():
    register_engine("numba", _numba_engine_factory, replace=True)

__all__ = [
    "ENGINE_ENV_VAR",
    "DEFAULT_ENGINE",
    "AttackSpec",
    "TruthfulAttack",
    "StretchAttack",
    "ExpectationAttack",
    "resolve_attack",
    "RoundsResult",
    "Engine",
    "ScalarEngine",
    "BatchEngine",
    "FusedEngine",
    "register_engine",
    "available_engines",
    "list_engines",
    "default_engine_name",
    "get_engine",
]
