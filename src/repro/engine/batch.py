"""The vectorized batch engine: NumPy array operations over whole batches.

:class:`BatchEngine` wraps and extends :mod:`repro.batch` behind the
:class:`repro.engine.base.Engine` protocol: fusion-round sweeps go through
:func:`repro.batch.rounds.monte_carlo_rounds` (one vectorized pass instead
of ``B`` Python calls) and the Table II case study goes through the batched
closed-loop stepper of :mod:`repro.batch.case_study`, which simulates every
platoon replica, vehicle and fusion round of a control period at once —
10⁴+ platoon rounds per schedule in seconds where the scalar engine manages
a few hundred.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.batch.case_study import DEFAULT_REPLICAS, batch_case_study
from repro.batch.expectation import ExactExpectationBatchAttacker
from repro.batch.rounds import (
    ActiveStretchBatchAttacker,
    BatchAttacker,
    BatchRoundConfig,
    BatchRoundResult,
    BatchTransientFaults,
    TruthfulBatchAttacker,
    batch_rounds_prepared,
    concat_prepared,
    monte_carlo_rounds,
    prepare_rounds,
    sample_correct_bounds,
)
from repro.channel import ChannelSpec
from repro.core.exceptions import ExperimentError
from repro import obs
from repro.engine.base import (
    AttackSpec,
    Engine,
    ExpectationAttack,
    RoundsResult,
    StretchAttack,
    TruthfulAttack,
    check_channel_support,
    check_run_many_args,
    check_samples,
    resolve_attack,
)
from repro.scheduling.comparison import ScheduleComparisonConfig
from repro.scheduling.schedule import Schedule
from repro.utils.seeding import ensure_rng
from repro.vehicle.case_study import CaseStudyConfig, CaseStudyResult

__all__ = ["BatchEngine"]


class BatchEngine(Engine):
    """Vectorized backend built on the :mod:`repro.batch` array kernels."""

    name = "batch"

    #: Monte-Carlo driver behind :meth:`run_rounds`; subclasses swap in a
    #: different kernel with the same contract (the fused engine does).
    _driver = staticmethod(monte_carlo_rounds)

    @staticmethod
    def _attacker(
        attack: TruthfulAttack | StretchAttack | ExpectationAttack,
    ) -> BatchAttacker:
        if isinstance(attack, TruthfulAttack):
            return TruthfulBatchAttacker()
        if isinstance(attack, ExpectationAttack):
            return ExactExpectationBatchAttacker(
                true_value_positions=attack.true_value_positions,
                placement_positions=attack.placement_positions,
                grid_positions=attack.grid_positions,
                conservative=attack.conservative,
            )
        return ActiveStretchBatchAttacker(side=attack.side)

    @staticmethod
    def _flush_attacker_stats(attacker: BatchAttacker) -> None:
        # Fold the expectation memo's per-run hit/miss tallies into the live
        # telemetry scope (no-op when tracing is off); the policy itself
        # keeps plain ints so the per-decision hot path stays lock-free.
        if not obs.enabled() or not isinstance(attacker, ExactExpectationBatchAttacker):
            return
        stats = attacker.policy.stats()
        if stats["hits"]:
            obs.add("repro_expectation_memo_total", stats["hits"], outcome="hit")
        if stats["misses"]:
            obs.add("repro_expectation_memo_total", stats["misses"], outcome="miss")

    def run_rounds(
        self,
        config: ScheduleComparisonConfig,
        schedule: Schedule,
        attack: AttackSpec = "stretch",
        faults: BatchTransientFaults | None = None,
        samples: int = 10_000,
        rng: np.random.Generator | None = None,
        channel: ChannelSpec | None = None,
    ) -> RoundsResult:
        check_samples(samples)
        spec = resolve_attack(attack)
        check_channel_support(spec, channel)
        rng = ensure_rng(rng)
        round_config = BatchRoundConfig(
            schedule=schedule,
            attacked_indices=config.resolved_attacked,
            attacker=self._attacker(spec),
            f=config.resolved_f,
            faults=faults,
            channel=channel,
        )
        with obs.span("engine.run", engine=self.name, schedule=schedule.name, samples=samples):
            result = self._driver(
                config.lengths, round_config, samples, true_value=config.true_value, rng=rng
            )
        obs.add("repro_engine_samples_total", samples, engine=self.name)
        self._flush_attacker_stats(round_config.attacker)
        self._flush_channel_stats(result)
        return self._rounds_result(schedule, result)

    def _flush_channel_stats(self, result: BatchRoundResult) -> None:
        realization = result.channel
        if realization is None:
            return
        obs.add("repro_channel_dropped_total", int(realization.dropped.sum()), engine=self.name)
        obs.add(
            "repro_channel_retransmits_total",
            int(realization.retransmits.sum()),
            engine=self.name,
        )

    @staticmethod
    def _rounds_result(schedule: Schedule, result: BatchRoundResult) -> RoundsResult:
        # The batch driver keeps broadcasts for empty-fusion rounds (they were
        # transmitted before fusion failed); the scalar engine aborts such
        # rounds before recording them, so the engines agree on NaN / no-flag
        # for invalid rows.  Without invalid rows (faults off, the common
        # case) the driver arrays pass through untouched.
        invalid = ~result.fusion.valid
        broadcast_lo = result.broadcast_lo
        broadcast_hi = result.broadcast_hi
        if bool(invalid.any()):
            broadcast_lo = broadcast_lo.copy()
            broadcast_hi = broadcast_hi.copy()
            broadcast_lo[invalid] = np.nan
            broadcast_hi[invalid] = np.nan
        realization = result.channel
        return RoundsResult(
            schedule_name=schedule.name,
            fusion_lo=result.fusion.lo,
            fusion_hi=result.fusion.hi,
            valid=result.fusion.valid,
            attacker_detected=result.attacker_detected,
            broadcast_lo=broadcast_lo,
            broadcast_hi=broadcast_hi,
            flagged=result.flagged,
            channel_dropped=None if realization is None else realization.dropped,
            channel_retransmits=None if realization is None else realization.retransmits,
        )

    #: Simulation body applied to an already-prepared (possibly packed)
    #: batch; the fused engine swaps in its fused counterpart.
    _prepared_driver = staticmethod(batch_rounds_prepared)

    def run_many(
        self,
        config: ScheduleComparisonConfig,
        schedule: Schedule,
        attack: AttackSpec = "stretch",
        faults: BatchTransientFaults | None = None,
        budgets: Sequence[int] = (),
        rngs: Sequence[np.random.Generator] | None = None,
        channel: ChannelSpec | None = None,
    ) -> list[RoundsResult]:
        """Pack every budget into one simulation pass (bit-identical split).

        Each budget samples its correct bounds, schedule orders and faults
        from its *own* RNG stream — exactly the draws a standalone
        :meth:`run_rounds` call would make — via the per-item
        :func:`repro.batch.rounds.prepare_rounds` prologue.  The prepared
        items are then concatenated and the RNG-free simulation body runs
        once over the packed batch, so ``len(budgets)`` requests pay one
        invocation's overhead.  Slicing the packed result row-wise returns
        exactly the per-request arrays of the reference loop (the
        ``run_many`` conformance tests pin this).
        """
        budgets, streams = check_run_many_args(budgets, rngs)
        spec = resolve_attack(attack)
        check_channel_support(spec, channel)
        round_config = BatchRoundConfig(
            schedule=schedule,
            attacked_indices=config.resolved_attacked,
            attacker=self._attacker(spec),
            f=config.resolved_f,
            faults=faults,
            channel=channel,
        )
        with obs.span(
            "engine.run", engine=self.name, schedule=schedule.name, samples=sum(budgets), items=len(budgets)
        ):
            items = [
                prepare_rounds(
                    *sample_correct_bounds(config.lengths, config.true_value, samples, rng),
                    round_config,
                    rng,
                )
                for samples, rng in zip(budgets, streams)
            ]
            packed = self._prepared_driver(concat_prepared(items), round_config, streams[0])
        obs.add("repro_engine_samples_total", sum(budgets), engine=self.name)
        self._flush_attacker_stats(round_config.attacker)
        self._flush_channel_stats(packed)
        full = self._rounds_result(schedule, packed)
        results = []
        start = 0
        for samples in budgets:
            stop = start + samples
            results.append(
                RoundsResult(
                    schedule_name=full.schedule_name,
                    fusion_lo=full.fusion_lo[start:stop],
                    fusion_hi=full.fusion_hi[start:stop],
                    valid=full.valid[start:stop],
                    attacker_detected=full.attacker_detected[start:stop],
                    broadcast_lo=full.broadcast_lo[start:stop],
                    broadcast_hi=full.broadcast_hi[start:stop],
                    flagged=full.flagged[start:stop],
                    channel_dropped=(
                        None if full.channel_dropped is None else full.channel_dropped[start:stop]
                    ),
                    channel_retransmits=(
                        None
                        if full.channel_retransmits is None
                        else full.channel_retransmits[start:stop]
                    ),
                )
            )
            start = stop
        return results

    def run_case_study(
        self,
        config: CaseStudyConfig | None = None,
        schedules: Sequence[Schedule] | None = None,
        **options,
    ) -> CaseStudyResult:
        """Table II on the batched closed-loop platoon stepper.

        Accepts ``n_replicas`` (parallel platoon replicas, default
        ``DEFAULT_REPLICAS``) and ``attacker_factory`` (defaults to the
        vectorized expectation-proxy attacker).  A scalar ``policy_factory``
        cannot be honoured here and is rejected loudly.
        """
        if options.pop("policy_factory", None) is not None:
            raise ExperimentError(
                "engine='batch' runs the vectorized expectation-proxy attacker and cannot "
                "honour a scalar policy_factory; pass attacker_factory (a BatchAttacker "
                "factory) instead"
            )
        n_replicas = options.pop("n_replicas", DEFAULT_REPLICAS)
        attacker_factory = options.pop("attacker_factory", None)
        if options:
            raise ExperimentError(
                f"batch engine does not understand case-study options {sorted(options)}"
            )
        return batch_case_study(
            config,
            schedules,
            n_replicas=n_replicas,
            attacker_factory=attacker_factory,
        )
