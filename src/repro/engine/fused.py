"""The fused engine: multi-slot array programs over whole rounds.

:class:`FusedEngine` is the third registered backend (``engine="fused"``,
``REPRO_ENGINE=fused``).  It shares everything with
:class:`repro.engine.batch.BatchEngine` — the attack-spec resolution, the
case-study stepper, the per-sensor result conventions — and swaps the
Monte-Carlo driver for :func:`repro.batch.fused.fused_monte_carlo_rounds`:
schedule-static structure (slot→sensor layout, admissibility tables,
scratch buffers) is precomputed once per ``(config, schedule)``, the
per-slot Python loop collapses into one pass per *compromised
transmission*, and the endpoint sweeps run on a complex-sorted event
matrix (see :mod:`repro.batch.fused` for the kernel design and the
bit-identity argument).

Contract: results are **bit-identical** to :class:`BatchEngine` (and hence
to the scalar oracle) under every attack spec — the fused kernels cover
the truthful and stretch attackers, and the exact expectation attacker
transparently runs the shared slot-loop driver — while the heavy Table I
style rows run ~2–4x the batch engine's throughput (the multi-slot
random-schedule rows gain the most; ``benchmarks/bench_fused_engine.py``
gates the floor).  The registry-driven conformance suite in
``tests/engine/`` covers this engine like any other registered backend.
"""

from __future__ import annotations

from repro.batch.fused import fused_monte_carlo_rounds, fused_rounds_prepared
from repro.engine.batch import BatchEngine

__all__ = ["FusedEngine"]


class FusedEngine(BatchEngine):
    """Fused multi-slot backend: batch semantics, fused kernels."""

    name = "fused"

    _driver = staticmethod(fused_monte_carlo_rounds)
    #: run_many packs prepared items and runs the fused body once; the
    #: non-fusable attackers delegate to the shared slot loop inside.
    _prepared_driver = staticmethod(fused_rounds_prepared)
