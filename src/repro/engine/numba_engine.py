"""The JIT-compiled ``"numba"`` engine: the fused program on numba kernels.

:class:`NumbaEngine` is the batch engine with both drivers swapped for the
JIT round body in :mod:`repro.batch.kernels` — the same
:func:`repro.batch.rounds.prepare_rounds` prologue and
:func:`repro.batch.fused.plan_for` plan resolution as the fused engine, so
RNG streams, artifact keys aside, and payloads stay bit-identical across
``"batch"``, ``"fused"`` and ``"numba"`` (the registry-driven conformance
suite asserts it).

This module imports (and with it, numba when present) only when the engine
is actually requested: :mod:`repro.engine` registers a factory that defers
the import, and registers it at all only when
:func:`repro.batch.kernels.kernels_available` is true.  Importing it by
hand on a machine without numba still works — the kernels fall back to
pure Python (bit-identical, just slow).
"""

from __future__ import annotations

from repro.batch.kernels.rounds import numba_monte_carlo_rounds, numba_rounds_prepared
from repro.engine.batch import BatchEngine

__all__ = ["NumbaEngine"]


class NumbaEngine(BatchEngine):
    """The vectorized engine driven by the JIT-compiled round kernels."""

    name = "numba"

    _driver = staticmethod(numba_monte_carlo_rounds)
    _prepared_driver = staticmethod(numba_rounds_prepared)
