"""Sensor suites: the set of sensors attached to one controller.

A :class:`SensorSuite` groups the sensors that measure the same physical
variable on one vehicle, produces one round of readings for a given true
value, and knows the widths that any communication schedule is allowed to use
(interval lengths are the only a-priori information in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.exceptions import SensorError
from repro.sensors.sensor import Reading, Sensor

__all__ = ["SensorSuite"]


@dataclass(frozen=True)
class SensorSuite:
    """An ordered collection of sensors measuring the same variable."""

    sensors: tuple[Sensor, ...]

    def __init__(self, sensors: Iterable[Sensor]) -> None:
        items = tuple(sensors)
        if not items:
            raise SensorError("a sensor suite needs at least one sensor")
        names = [s.name for s in items]
        if len(set(names)) != len(names):
            raise SensorError(f"sensor names must be unique, got {names}")
        object.__setattr__(self, "sensors", items)

    def __len__(self) -> int:
        return len(self.sensors)

    def __iter__(self) -> Iterator[Sensor]:
        return iter(self.sensors)

    def __getitem__(self, index: int) -> Sensor:
        return self.sensors[index]

    @property
    def names(self) -> tuple[str, ...]:
        """Sensor names in suite order."""
        return tuple(s.name for s in self.sensors)

    @property
    def widths(self) -> tuple[float, ...]:
        """Interval widths in suite order (the schedule's only a-priori input)."""
        return tuple(s.interval_width for s in self.sensors)

    def index_of(self, name: str) -> int:
        """Return the position of the sensor called ``name``."""
        for index, sensor in enumerate(self.sensors):
            if sensor.name == name:
                return index
        raise SensorError(f"no sensor named {name!r} in suite {self.names}")

    def most_precise_index(self) -> int:
        """Index of the sensor with the smallest interval width."""
        widths = self.widths
        return min(range(len(widths)), key=lambda i: (widths[i], i))

    def least_precise_index(self) -> int:
        """Index of the sensor with the largest interval width."""
        widths = self.widths
        return max(range(len(widths)), key=lambda i: (widths[i], -i))

    def measure_all(self, true_value: float, rng: np.random.Generator) -> list[Reading]:
        """Produce one correct reading from every sensor, in suite order."""
        return [sensor.measure(true_value, rng) for sensor in self.sensors]

    def subset(self, indices: Sequence[int]) -> "SensorSuite":
        """Return a new suite containing only the sensors at ``indices``."""
        return SensorSuite(self.sensors[i] for i in indices)
