"""Measurement-noise models for synthetic abstract sensors.

The paper makes no distributional assumptions — correctness only requires the
measurement to lie within the sensor's precision envelope, so the interval
constructed around it contains the true value.  The noise models here all
respect that envelope (they never emit an error larger than the sensor's
half-width), which is exactly what makes a *correct* sensor correct.

Three models are provided:

* :class:`UniformNoise` — error uniform on ``[-half_width, +half_width]``;
  this is the natural "no further knowledge" model and the default.
* :class:`TruncatedGaussianNoise` — Gaussian error truncated to the envelope,
  modelling sensors that are usually much better than their guarantee.
* :class:`WorstCaseNoise` — error pinned at ``±half_width`` (sign chosen by a
  Bernoulli draw); the hardest correct behaviour for the fusion algorithm.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import SensorError

__all__ = ["NoiseModel", "UniformNoise", "TruncatedGaussianNoise", "WorstCaseNoise", "ZeroNoise"]


class NoiseModel(abc.ABC):
    """Interface for bounded measurement-noise generators."""

    @abc.abstractmethod
    def sample(self, half_width: float, rng: np.random.Generator) -> float:
        """Draw one measurement error bounded by ``half_width`` in magnitude."""

    def sample_many(self, half_width: float, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` independent errors (default: loop over :meth:`sample`)."""
        return np.array([self.sample(half_width, rng) for _ in range(size)], dtype=float)


@dataclass(frozen=True)
class ZeroNoise(NoiseModel):
    """No measurement error at all: the sensor reports the true value."""

    def sample(self, half_width: float, rng: np.random.Generator) -> float:
        return 0.0

    def sample_many(self, half_width: float, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.zeros(size, dtype=float)


@dataclass(frozen=True)
class UniformNoise(NoiseModel):
    """Error uniform on ``[-fraction * half_width, +fraction * half_width]``."""

    fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise SensorError(f"UniformNoise fraction must be in [0, 1], got {self.fraction}")

    def sample(self, half_width: float, rng: np.random.Generator) -> float:
        bound = self.fraction * half_width
        return float(rng.uniform(-bound, bound))

    def sample_many(self, half_width: float, rng: np.random.Generator, size: int) -> np.ndarray:
        bound = self.fraction * half_width
        return rng.uniform(-bound, bound, size=size)


@dataclass(frozen=True)
class TruncatedGaussianNoise(NoiseModel):
    """Gaussian error with standard deviation ``sigma_fraction * half_width``.

    Samples falling outside the precision envelope are redrawn (rejection
    sampling), so correctness of the sensor is preserved by construction.
    """

    sigma_fraction: float = 0.33
    max_redraws: int = 64

    def __post_init__(self) -> None:
        if self.sigma_fraction <= 0:
            raise SensorError(f"sigma_fraction must be positive, got {self.sigma_fraction}")
        if self.max_redraws < 1:
            raise SensorError(f"max_redraws must be at least 1, got {self.max_redraws}")

    def sample(self, half_width: float, rng: np.random.Generator) -> float:
        sigma = self.sigma_fraction * half_width
        if sigma == 0.0:
            return 0.0
        for _ in range(self.max_redraws):
            draw = float(rng.normal(0.0, sigma))
            if abs(draw) <= half_width:
                return draw
        # Extremely unlikely with sigma_fraction <= 1; clip as a safe fallback.
        return float(np.clip(rng.normal(0.0, sigma), -half_width, half_width))


@dataclass(frozen=True)
class WorstCaseNoise(NoiseModel):
    """Error pinned at the edge of the precision envelope.

    Each sample is ``+half_width`` or ``-half_width`` with probability
    ``p_high`` / ``1 - p_high``; this is the adversarial-but-correct behaviour
    used to probe worst-case fusion widths without any attack.
    """

    p_high: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_high <= 1.0:
            raise SensorError(f"p_high must be in [0, 1], got {self.p_high}")

    def sample(self, half_width: float, rng: np.random.Generator) -> float:
        sign = 1.0 if rng.random() < self.p_high else -1.0
        return sign * half_width
