"""Preset sensor specifications used throughout the paper.

The LandShark case study (Section IV-B) uses four speed sensors:

* GPS — interval width 1 mph, determined empirically;
* camera — interval width 2 mph, determined empirically;
* two wheel encoders — interval width 0.2 mph each, derived from a 192
  cycles/revolution encoder with 0.5 % measuring error and 0.05 % sampling
  jitter at the 10 mph operating point.

This module also provides an IMU preset (the discussion section points out
that IMUs are much harder to spoof and should be scheduled last) and a helper
for building anonymous sensors directly from interval widths, which is what
the synthetic Table I experiments need.
"""

from __future__ import annotations

from typing import Sequence

from repro.sensors.noise import NoiseModel, UniformNoise
from repro.sensors.sensor import Sensor
from repro.sensors.spec import EncoderSpec, SensorSpec

__all__ = [
    "GPS_INTERVAL_WIDTH",
    "CAMERA_INTERVAL_WIDTH",
    "ENCODER_INTERVAL_WIDTH",
    "IMU_INTERVAL_WIDTH",
    "gps_spec",
    "camera_spec",
    "encoder_spec",
    "imu_spec",
    "landshark_specs",
    "make_sensor",
    "sensors_from_widths",
]

GPS_INTERVAL_WIDTH = 1.0
"""Empirically determined GPS speed-interval width (mph)."""

CAMERA_INTERVAL_WIDTH = 2.0
"""Empirically determined camera speed-interval width (mph)."""

ENCODER_INTERVAL_WIDTH = 0.2
"""Wheel-encoder speed-interval width (mph), derived from the datasheet."""

IMU_INTERVAL_WIDTH = 0.6
"""Representative IMU-derived speed-interval width (mph) for the discussion
section's "hard to spoof" sensor; not part of the paper's four-sensor suite."""


def gps_spec(name: str = "gps") -> SensorSpec:
    """GPS speed sensor spec (1 mph interval)."""
    return SensorSpec.from_interval_width(name, GPS_INTERVAL_WIDTH)


def camera_spec(name: str = "camera") -> SensorSpec:
    """Camera speed sensor spec (2 mph interval)."""
    return SensorSpec.from_interval_width(name, CAMERA_INTERVAL_WIDTH)


def encoder_spec(name: str = "encoder", nominal_speed: float = 10.0) -> SensorSpec:
    """Wheel-encoder spec derived from the LandShark datasheet quantities."""
    return EncoderSpec(name=name, nominal_speed=nominal_speed).to_sensor_spec()


def imu_spec(name: str = "imu") -> SensorSpec:
    """IMU speed sensor spec (hard-to-spoof sensor from the discussion)."""
    return SensorSpec.from_interval_width(name, IMU_INTERVAL_WIDTH)


def landshark_specs() -> list[SensorSpec]:
    """The four LandShark speed-sensor specs, in no particular order.

    The returned widths are {0.2, 0.2, 1.0, 2.0} mph, matching the case study.
    """
    return [
        encoder_spec("encoder-left"),
        encoder_spec("encoder-right"),
        gps_spec(),
        camera_spec(),
    ]


def make_sensor(spec: SensorSpec, noise: NoiseModel | None = None) -> Sensor:
    """Wrap a spec into a :class:`Sensor` with the given (or default) noise."""
    return Sensor(spec=spec, noise=noise if noise is not None else UniformNoise())


def sensors_from_widths(
    widths: Sequence[float], noise: NoiseModel | None = None, prefix: str = "sensor"
) -> list[Sensor]:
    """Build anonymous sensors from a list of interval widths.

    This is the entry point used by the synthetic Table I experiments, whose
    configurations are given purely as sets of interval lengths ``L``.
    """
    sensors = []
    for index, width in enumerate(widths):
        spec = SensorSpec.from_interval_width(f"{prefix}-{index}", width)
        sensors.append(make_sensor(spec, noise))
    return sensors
