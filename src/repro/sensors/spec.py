"""Sensor specifications: how a point measurement becomes an abstract interval.

The paper constructs each sensor's interval from manufacturer and
implementation guarantees: a precision guarantee of ``delta`` yields an
interval of size ``2 * delta`` centred at the measurement, further enlarged to
account for sampling jitter and implementation limitations.  The LandShark
case study does exactly this for the wheel encoders (192 cycles/revolution,
0.5 % measurement error, 0.05 % sampling-jitter error → 0.2 mph interval),
while the GPS and camera interval sizes were determined empirically.

:class:`SensorSpec` captures that construction so that both the synthetic
experiments (which specify interval lengths directly) and the case study
(which derives them) share one code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.exceptions import SensorError
from repro.core.interval import Interval

__all__ = ["SensorSpec", "EncoderSpec"]


@dataclass(frozen=True)
class SensorSpec:
    """Static description of one abstract sensor.

    Parameters
    ----------
    name:
        Human-readable identifier (e.g. ``"gps"``, ``"left-encoder"``).
    precision:
        Manufacturer precision guarantee ``delta``: the measurement is within
        ``delta`` of the true value, so the base interval has width
        ``2 * delta``.
    jitter:
        Additional symmetric error bound from sampling jitter, added to the
        half-width.
    implementation_error:
        Additional symmetric error bound from implementation limitations
        (quantisation, conversion), added to the half-width.
    """

    name: str
    precision: float
    jitter: float = 0.0
    implementation_error: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SensorError("sensor spec needs a non-empty name")
        for label, value in (
            ("precision", self.precision),
            ("jitter", self.jitter),
            ("implementation_error", self.implementation_error),
        ):
            if value < 0:
                raise SensorError(f"sensor {self.name!r}: {label} must be non-negative, got {value}")
        if self.half_width <= 0:
            raise SensorError(f"sensor {self.name!r}: total half-width must be positive")

    @property
    def half_width(self) -> float:
        """Half of the abstract interval's width."""
        return self.precision + self.jitter + self.implementation_error

    @property
    def interval_width(self) -> float:
        """Width of the abstract interval constructed around a measurement."""
        return 2.0 * self.half_width

    @classmethod
    def from_interval_width(cls, name: str, width: float) -> "SensorSpec":
        """Build a spec directly from an empirically determined interval width.

        This matches how the paper handles the GPS (1 mph) and camera (2 mph)
        sensors, whose interval sizes were measured rather than derived.
        """
        if width <= 0:
            raise SensorError(f"sensor {name!r}: interval width must be positive, got {width}")
        return cls(name=name, precision=width / 2.0)

    def interval_for(self, measurement: float) -> Interval:
        """Construct the abstract interval for a point ``measurement``."""
        return Interval.from_center(measurement, self.interval_width)


@dataclass(frozen=True)
class EncoderSpec:
    """Derivation of a wheel-encoder interval from datasheet quantities.

    The case study computes the encoder interval width from the encoder's
    cycles-per-revolution, a relative measuring error and a relative
    sampling-jitter error, evaluated at the platoon's nominal operating speed.

    Parameters
    ----------
    name:
        Identifier of the encoder.
    cycles_per_revolution:
        Encoder resolution (192 for the LandShark encoders).
    measuring_error:
        Relative measurement error (0.5 % → ``0.005``).
    jitter_error:
        Relative sampling-jitter error (0.05 % → ``0.0005``).
    nominal_speed:
        Operating speed at which the relative errors are converted into an
        absolute interval width (10 mph in the case study).
    """

    name: str
    cycles_per_revolution: int = 192
    measuring_error: float = 0.005
    jitter_error: float = 0.0005
    nominal_speed: float = 10.0
    quantisation_floor: float = field(default=0.045, repr=False)

    def __post_init__(self) -> None:
        if self.cycles_per_revolution <= 0:
            raise SensorError(f"encoder {self.name!r}: cycles_per_revolution must be positive")
        for label, value in (
            ("measuring_error", self.measuring_error),
            ("jitter_error", self.jitter_error),
        ):
            if value < 0:
                raise SensorError(f"encoder {self.name!r}: {label} must be non-negative")
        if self.nominal_speed <= 0:
            raise SensorError(f"encoder {self.name!r}: nominal_speed must be positive")

    def to_sensor_spec(self) -> SensorSpec:
        """Convert the datasheet quantities into a :class:`SensorSpec`.

        The relative errors are scaled by the nominal speed; a small
        quantisation floor models the finite 192-cycle resolution so that the
        resulting interval width comes out at the paper's 0.2 mph for the
        default LandShark parameters.
        """
        precision = self.measuring_error * self.nominal_speed
        jitter = self.jitter_error * self.nominal_speed
        quantisation = self.quantisation_floor
        return SensorSpec(
            name=self.name,
            precision=precision,
            jitter=jitter,
            implementation_error=quantisation,
        )
