"""Abstract-sensor substrate: specs, noise models, sensors, suites, presets."""

from repro.sensors.library import (
    CAMERA_INTERVAL_WIDTH,
    ENCODER_INTERVAL_WIDTH,
    GPS_INTERVAL_WIDTH,
    IMU_INTERVAL_WIDTH,
    camera_spec,
    encoder_spec,
    gps_spec,
    imu_spec,
    landshark_specs,
    make_sensor,
    sensors_from_widths,
)
from repro.sensors.faults import FaultModel, FaultySensor, StuckAtFaultModel, TransientFaultModel
from repro.sensors.noise import (
    NoiseModel,
    TruncatedGaussianNoise,
    UniformNoise,
    WorstCaseNoise,
    ZeroNoise,
)
from repro.sensors.sensor import Reading, Sensor
from repro.sensors.spec import EncoderSpec, SensorSpec
from repro.sensors.suite import SensorSuite

__all__ = [
    "SensorSpec",
    "EncoderSpec",
    "Sensor",
    "Reading",
    "SensorSuite",
    "FaultModel",
    "TransientFaultModel",
    "StuckAtFaultModel",
    "FaultySensor",
    "NoiseModel",
    "ZeroNoise",
    "UniformNoise",
    "TruncatedGaussianNoise",
    "WorstCaseNoise",
    "GPS_INTERVAL_WIDTH",
    "CAMERA_INTERVAL_WIDTH",
    "ENCODER_INTERVAL_WIDTH",
    "IMU_INTERVAL_WIDTH",
    "gps_spec",
    "camera_spec",
    "encoder_spec",
    "imu_spec",
    "landshark_specs",
    "make_sensor",
    "sensors_from_widths",
]
