"""Abstract sensors: noisy point measurements converted into intervals.

A :class:`Sensor` combines a :class:`~repro.sensors.spec.SensorSpec` (which
fixes the interval width) with a :class:`~repro.sensors.noise.NoiseModel`
(which decides where inside the precision envelope the measurement falls).
A correct sensor always produces an interval containing the true value; this
invariant is guaranteed by construction because the noise models are bounded
by the spec's half-width.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import SensorError
from repro.core.interval import Interval
from repro.sensors.noise import NoiseModel, UniformNoise
from repro.sensors.spec import SensorSpec

__all__ = ["Reading", "Sensor"]


@dataclass(frozen=True)
class Reading:
    """One sensor observation.

    Attributes
    ----------
    sensor_name:
        Name of the sensor that produced the reading.
    measurement:
        The noisy point measurement.
    interval:
        The abstract-sensor interval constructed around the measurement.
    true_value:
        The ground-truth value of the measured variable (kept for analysis;
        the controller never sees it).
    """

    sensor_name: str
    measurement: float
    interval: Interval
    true_value: float

    @property
    def is_correct(self) -> bool:
        """``True`` if the interval contains the true value."""
        return self.interval.contains(self.true_value)

    @property
    def error(self) -> float:
        """Signed measurement error ``measurement - true_value``."""
        return self.measurement - self.true_value


@dataclass
class Sensor:
    """A concrete abstract sensor.

    Parameters
    ----------
    spec:
        Static sensor specification (fixes the interval width).
    noise:
        Bounded noise model; defaults to uniform noise over the envelope.
    """

    spec: SensorSpec
    noise: NoiseModel = field(default_factory=UniformNoise)

    @property
    def name(self) -> str:
        """Sensor name, taken from the spec."""
        return self.spec.name

    @property
    def interval_width(self) -> float:
        """Width of the intervals this sensor produces."""
        return self.spec.interval_width

    def measure(self, true_value: float, rng: np.random.Generator) -> Reading:
        """Produce one (correct) reading of ``true_value``."""
        error = self.noise.sample(self.spec.half_width, rng)
        if abs(error) > self.spec.half_width + 1e-12:
            raise SensorError(
                f"noise model produced error {error} outside the precision envelope "
                f"±{self.spec.half_width} of sensor {self.name!r}"
            )
        measurement = true_value + error
        return Reading(
            sensor_name=self.name,
            measurement=measurement,
            interval=self.spec.interval_for(measurement),
            true_value=true_value,
        )

    def measure_many(self, true_values: np.ndarray, rng: np.random.Generator) -> list[Reading]:
        """Produce one reading per entry of ``true_values``."""
        return [self.measure(float(value), rng) for value in np.asarray(true_values, dtype=float)]
