"""Random sensor faults — the extension sketched in the paper's conclusion.

The base paper assumes uncompromised sensors are always correct and defers
"random faults in addition to attacks" to future work (its footnote 1 sketches
a per-sensor fault model over time).  This module provides that substrate:
fault models that occasionally corrupt an otherwise honest sensor's reading so
that its interval no longer contains the true value.

* :class:`TransientFaultModel` — with probability ``probability`` per round
  the reading is displaced by a random offset of at least one interval width,
  producing an obviously faulty (non-containing) interval for that round only.
* :class:`StuckAtFaultModel` — after a random onset round the sensor keeps
  reporting the last value it saw (a frozen sensor); the interval stops
  tracking the true value as soon as the true value moves away.
* :class:`FaultySensor` — wraps a :class:`~repro.sensors.sensor.Sensor` with a
  fault model, exposing the same ``measure`` interface so suites and vehicles
  can use faulty sensors transparently.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import SensorError
from repro.sensors.sensor import Reading, Sensor

__all__ = ["FaultModel", "TransientFaultModel", "StuckAtFaultModel", "FaultySensor"]


class FaultModel(abc.ABC):
    """Decides whether and how to corrupt one reading."""

    @abc.abstractmethod
    def apply(self, reading: Reading, sensor: Sensor, rng: np.random.Generator) -> Reading:
        """Return the (possibly corrupted) reading for this round."""

    def reset(self) -> None:
        """Clear any internal state (e.g. a stuck value) between runs."""


@dataclass
class TransientFaultModel(FaultModel):
    """Independent per-round faults displacing the measurement off the truth.

    Parameters
    ----------
    probability:
        Per-round probability of a fault.
    min_offset_widths / max_offset_widths:
        The faulty measurement is displaced by a uniform multiple of the
        sensor's interval width in this range (at least one width guarantees
        the faulty interval does not contain the true value).
    """

    probability: float
    min_offset_widths: float = 1.0
    max_offset_widths: float = 3.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise SensorError(f"fault probability must be in [0, 1], got {self.probability}")
        if self.min_offset_widths < 1.0:
            raise SensorError(
                "min_offset_widths must be at least 1 so a faulty interval cannot contain the truth"
            )
        if self.max_offset_widths < self.min_offset_widths:
            raise SensorError("max_offset_widths must be >= min_offset_widths")

    def apply(self, reading: Reading, sensor: Sensor, rng: np.random.Generator) -> Reading:
        if rng.random() >= self.probability:
            return reading
        offset_widths = float(rng.uniform(self.min_offset_widths, self.max_offset_widths))
        sign = 1.0 if rng.random() < 0.5 else -1.0
        measurement = reading.true_value + sign * offset_widths * sensor.interval_width
        return Reading(
            sensor_name=reading.sensor_name,
            measurement=measurement,
            interval=sensor.spec.interval_for(measurement),
            true_value=reading.true_value,
        )


@dataclass
class StuckAtFaultModel(FaultModel):
    """The sensor freezes at its last healthy measurement after a random onset.

    Parameters
    ----------
    onset_probability:
        Per-round probability that a healthy sensor becomes stuck.
    """

    onset_probability: float
    _stuck_value: float | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.onset_probability <= 1.0:
            raise SensorError(
                f"onset probability must be in [0, 1], got {self.onset_probability}"
            )

    def reset(self) -> None:
        self._stuck_value = None

    def apply(self, reading: Reading, sensor: Sensor, rng: np.random.Generator) -> Reading:
        if self._stuck_value is None:
            if rng.random() < self.onset_probability:
                self._stuck_value = reading.measurement
            return reading
        measurement = self._stuck_value
        return Reading(
            sensor_name=reading.sensor_name,
            measurement=measurement,
            interval=sensor.spec.interval_for(measurement),
            true_value=reading.true_value,
        )


@dataclass
class FaultySensor:
    """A sensor whose readings pass through a fault model.

    Exposes the same ``name`` / ``interval_width`` / ``measure`` interface as
    :class:`~repro.sensors.sensor.Sensor`, so it can be dropped into a
    :class:`~repro.sensors.suite.SensorSuite` unchanged.
    """

    sensor: Sensor
    fault_model: FaultModel

    @property
    def name(self) -> str:
        """Name of the wrapped sensor."""
        return self.sensor.name

    @property
    def spec(self):
        """Spec of the wrapped sensor."""
        return self.sensor.spec

    @property
    def noise(self):
        """Noise model of the wrapped sensor."""
        return self.sensor.noise

    @property
    def interval_width(self) -> float:
        """Interval width of the wrapped sensor."""
        return self.sensor.interval_width

    def reset(self) -> None:
        """Clear the fault model's state."""
        self.fault_model.reset()

    def measure(self, true_value: float, rng: np.random.Generator) -> Reading:
        """Measure through the wrapped sensor, then apply the fault model."""
        return self.fault_model.apply(self.sensor.measure(true_value, rng), self.sensor, rng)
