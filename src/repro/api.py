"""The public API facade: one module, four verbs, every execution path.

``repro.api`` is the supported programmatic surface of the repository.  The
layers underneath — engines, scenario registry, sharded runner, artifact
store, serving stack — stay importable for power users, but everything a
typical caller needs is one of four verbs, and the CLI (``python -m
repro``) and the HTTP server (``python -m repro serve``) are both thin
shells over exactly these functions, so library, command line and network
callers cannot drift apart:

* :func:`run` — execute a scenario (registry name or spec) through the
  sharded runner with content-addressed caching; the workhorse.
* :func:`compare` — a Table I style schedule comparison on one
  configuration, without declaring a scenario first; the quick look.
* :func:`optimize` — *search* the schedule space of a configuration
  (:mod:`repro.optimize`): resolve a scenario name to an
  :class:`~repro.scenarios.spec.OptimizationScenario`, optionally swap the
  strategy, and run it through the same cached runner.
* :func:`case_study` — the Table II closed-loop platoon case study.
* :func:`serve` — fusion-as-a-service: an asyncio HTTP server with dynamic
  request batching (:mod:`repro.serve`), plus :func:`create_service` /
  :func:`create_server` for embedding and tests.

Store arguments follow one convention everywhere: the string ``"default"``
(the default) resolves through :func:`repro.runner.default_store` —
``results/store`` or ``$REPRO_STORE_DIR`` — a path selects that directory,
an :class:`~repro.runner.ArtifactStore` is used as-is, and ``None`` disables
caching.
"""

from __future__ import annotations

import asyncio
import sys
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.exceptions import ExperimentError
from repro.engine import get_engine
from repro.engine.base import AttackSpec
from repro.runner import ArtifactStore, ScenarioRun, default_store, run_scenario
from repro.scenarios.registry import (
    available_scenarios,
    get_scenario,
    list_scenarios,
    near_misses,
)
from repro.scenarios.spec import (
    ComparisonScenario,
    OptimizationScenario,
    ScenarioSpec,
    schedule_from_spec,
)
from repro.scheduling.comparison import ScheduleComparison, ScheduleComparisonConfig
from repro.scheduling.schedule import Schedule
from repro.serve import FusionServer, FusionService
from repro.utils.seeding import ensure_rng
from repro.vehicle.case_study import CaseStudyConfig, CaseStudyResult

__all__ = [
    "run",
    "compare",
    "optimize",
    "resolve_optimization_scenario",
    "case_study",
    "serve",
    "create_service",
    "create_server",
    "resolve_store",
]


def resolve_store(store: ArtifactStore | str | Path | None) -> ArtifactStore | None:
    """Apply the facade-wide store convention (see the module docstring)."""
    if store is None or isinstance(store, ArtifactStore):
        return store
    if store == "default":
        return default_store()
    return default_store(store)


def run(
    scenario: str | ScenarioSpec,
    *,
    workers: int = 1,
    store: ArtifactStore | str | Path | None = "default",
    force: bool = False,
) -> ScenarioRun:
    """Run a scenario by registry name or spec; results are cached by content.

    A thin, documented alias for :func:`repro.runner.run_scenario` with the
    facade's store convention: unchanged specs are cache hits, ``workers``
    only changes wall-clock time (payloads are worker-count invariant), and
    ``force=True`` recomputes.  To run a registered scenario on a different
    backend, derive a new spec first (``dataclasses.replace(spec,
    engine="fused")``) — engine choice is part of a result's identity.
    """
    return run_scenario(scenario, workers=workers, store=resolve_store(store), force=force)


def _schedule_objects(
    schedules: Sequence[str | Schedule],
) -> tuple[Schedule, ...]:
    return tuple(
        schedule_from_spec(entry) if isinstance(entry, str) else entry
        for entry in schedules
    )


def compare(
    lengths: Sequence[float],
    fa: int,
    *,
    f: int | None = None,
    attacked_indices: Sequence[int] | None = None,
    schedules: Sequence[str | Schedule] = ("ascending", "descending"),
    attack: AttackSpec = "stretch",
    samples: int = 10_000,
    engine: str | None = None,
    faults=None,
    rng: np.random.Generator | int | None = None,
) -> ScheduleComparison:
    """Compare schedules on one sensor configuration (Table I style).

    The one-call spelling of the paper's central experiment: sensors of the
    given interval ``lengths``, ``fa`` attacked sensors, each schedule in
    ``schedules`` (spec strings like ``"ascending"`` / ``"fixed:2,0,1"`` /
    ``"trust-aware:0.5,1,2"``, or :class:`~repro.scheduling.schedule.Schedule`
    instances) simulated for ``samples`` Monte-Carlo rounds under the
    engine-route ``attack`` spec.  Schedules share one RNG stream consumed
    in order, so results are reproducible from ``rng`` (a generator or a
    seed) alone.  ``engine`` selects the backend by registry name (default:
    the ``REPRO_ENGINE``-overridable default).

    For repeated or published numbers, prefer declaring a
    :class:`~repro.scenarios.spec.ComparisonScenario` and calling
    :func:`run` — that path adds sharding, caching and provenance.
    """
    if not schedules:
        raise ExperimentError("compare needs at least one schedule")
    config = ScheduleComparisonConfig(
        lengths=tuple(float(length) for length in lengths),
        fa=fa,
        f=f,
        attacked_indices=tuple(attacked_indices) if attacked_indices is not None else None,
    )
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(rng)
    return get_engine(engine).compare(
        config,
        _schedule_objects(schedules),
        samples=samples,
        rng=ensure_rng(rng),
        attack=attack,
        faults=faults,
    )


def resolve_optimization_scenario(
    scenario: str | ScenarioSpec,
) -> OptimizationScenario:
    """Resolve what ``optimize`` was asked to search.

    Accepts, in order of preference:

    * an :class:`~repro.scenarios.spec.OptimizationScenario` (name or spec)
      — used as is;
    * a name whose ``optimize-`` twin is registered (``"table1-row4"`` →
      ``"optimize-table1-row4"``), so the paper rows optimize without extra
      spelling;
    * a registered *single-case* comparison scenario — an
      :class:`OptimizationScenario` is derived from its case at the search
      subsystem's default budgets (the derived spec has its own name and
      content hash; the comparison artifact is untouched).

    Anything else raises with did-you-mean hints over the names that would
    have worked.
    """
    if isinstance(scenario, OptimizationScenario):
        return scenario
    if isinstance(scenario, ScenarioSpec):
        raise ExperimentError(
            f"cannot optimize a {scenario.kind!r} spec directly; pass an "
            "OptimizationScenario (or a registered scenario name)"
        )
    name = scenario
    names = available_scenarios()
    if name in names and isinstance(get_scenario(name), OptimizationScenario):
        return get_scenario(name)
    twin = f"optimize-{name}"
    if twin in names and isinstance(get_scenario(twin), OptimizationScenario):
        return get_scenario(twin)
    if name in names:
        spec = get_scenario(name)
        if isinstance(spec, ComparisonScenario) and len(spec.cases) == 1:
            return OptimizationScenario(
                name=f"optimize-{spec.name}",
                description=f"Schedule search derived from scenario {spec.name!r}",
                engine=spec.engine or "batch",
                seed=spec.seed,
                tags=("optimize", "derived"),
                case=spec.cases[0],
            )
        raise ExperimentError(
            f"scenario {name!r} is kind {spec.kind!r}"
            + (
                f" with {len(spec.cases)} cases"
                if isinstance(spec, ComparisonScenario)
                else ""
            )
            + "; optimize needs an optimization scenario or a single-case "
            "comparison scenario to derive one from"
        )
    searchable = sorted(
        {spec.name for spec in list_scenarios(kind=OptimizationScenario.kind)}
        | {
            spec.name
            for spec in list_scenarios(kind=ComparisonScenario.kind)
            if len(spec.cases) == 1
        }
    )
    close = near_misses(name, searchable)
    hint = f"; did you mean: {', '.join(close)}?" if close else ""
    raise ExperimentError(
        f"unknown scenario {name!r}{hint} (searchable scenarios: "
        "`python -m repro list --kind optimization`, or any single-case "
        "comparison scenario)"
    )


def optimize(
    scenario: str | ScenarioSpec,
    *,
    strategy: str | None = None,
    workers: int = 1,
    store: ArtifactStore | str | Path | None = "default",
    force: bool = False,
) -> ScenarioRun:
    """Search a configuration's schedule space (``python -m repro optimize``).

    Resolves ``scenario`` via :func:`resolve_optimization_scenario`, swaps
    in ``strategy`` if given (a *new* spec and content hash — strategy is
    part of a result's identity, exactly like ``--engine`` on :func:`run`),
    and executes through the cached sharded runner.  The payload reports
    the best-found schedule against the case's baseline orderings; see
    ``docs/OPTIMIZATION.md`` for strategy and budget semantics.
    """
    import dataclasses

    spec = resolve_optimization_scenario(scenario)
    if strategy is not None and strategy != spec.strategy:
        # Validates the strategy name eagerly (did-you-mean on typos).
        spec = dataclasses.replace(spec, strategy=strategy)
    return run_scenario(spec, workers=workers, store=resolve_store(store), force=force)


def case_study(
    schedules: Sequence[str | Schedule] | None = None,
    *,
    config: CaseStudyConfig | None = None,
    engine: str | None = "batch",
    **options,
) -> CaseStudyResult:
    """Run the Table II platoon case study on the selected backend.

    ``options`` pass through to the engine (``n_replicas`` /
    ``attacker_factory`` on the batch family, ``policy_factory`` on the
    scalar oracle); engines reject options they cannot honour.  As with
    :func:`compare`, the scenario route (:func:`run` with a
    :class:`~repro.scenarios.spec.CaseStudyScenario`) is the cached,
    sharded spelling of the same computation.
    """
    resolved = _schedule_objects(schedules) if schedules is not None else None
    return get_engine(engine).run_case_study(config, resolved, **options)


def create_service(
    *,
    store: ArtifactStore | str | Path | None = "default",
    max_wait_ms: float = 2.0,
    max_batch: int = 64,
) -> FusionService:
    """Build the transport-independent serving core (see :mod:`repro.serve`)."""
    return FusionService(
        store=resolve_store(store), max_wait_ms=max_wait_ms, max_batch=max_batch
    )


def create_server(
    *,
    host: str = "127.0.0.1",
    port: int = 8014,
    store: ArtifactStore | str | Path | None = "default",
    max_wait_ms: float = 2.0,
    max_batch: int = 64,
    service: FusionService | None = None,
) -> FusionServer:
    """Build an (unstarted) HTTP server; ``port=0`` picks a free port.

    The embedding/test entry: ``async with create_server(port=0) as server``
    starts serving and exposes the bound ``server.port``.  Pass ``service``
    to share a pre-built :class:`~repro.serve.FusionService` (e.g. to
    inspect its collator counters from a test).
    """
    if service is None:
        service = create_service(store=store, max_wait_ms=max_wait_ms, max_batch=max_batch)
    return FusionServer(service, host=host, port=port)


async def _metrics_reporter(service: FusionService, interval: float) -> None:
    """Print a one-line counter summary to stderr every ``interval`` seconds."""
    while True:
        await asyncio.sleep(interval)
        metrics = service.metrics()
        latency = metrics.get("latency") or {}
        collator = metrics.get("collator") or {}
        line = (
            f"metrics: served={metrics['served']} cache_hits={metrics['cache_hits']} "
            f"deduplicated={metrics['deduplicated']} "
            f"batches={collator.get('batches', 0)}/{collator.get('requests', 0)}"
        )
        if latency.get("count"):
            line += f" p50={latency['p50_ms']:.1f}ms p95={latency['p95_ms']:.1f}ms"
        print(line, file=sys.stderr, flush=True)


def serve(
    *,
    host: str = "127.0.0.1",
    port: int = 8014,
    store: ArtifactStore | str | Path | None = "default",
    max_wait_ms: float = 2.0,
    max_batch: int = 64,
    metrics_interval: float | None = None,
) -> None:
    """Run fusion-as-a-service until interrupted (the ``repro serve`` CLI).

    ``max_wait_ms`` and ``max_batch`` tune the dynamic batching window:
    same-plan requests arriving within ``max_wait_ms`` of each other (up to
    ``max_batch`` of them) share a single packed engine pass — and, per the
    :meth:`~repro.engine.base.Engine.run_many` contract, still receive
    payloads bit-identical to solo runs.  See ``docs/SERVING.md``.

    ``metrics_interval`` (the ``--metrics`` flag) additionally prints a
    one-line counter summary to stderr at that cadence; the full exposition
    is always scrapeable at ``/v1/metrics`` regardless.
    """

    async def _serve() -> None:
        server = create_server(
            host=host, port=port, store=store, max_wait_ms=max_wait_ms, max_batch=max_batch
        )
        async with server:
            print(
                f"repro fusion service on http://{server.host}:{server.port} "
                f"(max_wait_ms={max_wait_ms:g}, max_batch={max_batch})",
                flush=True,
            )
            reporter = None
            if metrics_interval:
                print(
                    f"metrics: http://{server.host}:{server.port}/v1/metrics "
                    f"(summary to stderr every {metrics_interval:g}s)",
                    flush=True,
                )
                reporter = asyncio.create_task(
                    _metrics_reporter(server.service, metrics_interval)
                )
            try:
                await server.serve_forever()
            finally:
                if reporter is not None:
                    reporter.cancel()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
