"""Schedule comparison: the machinery behind Table I of the paper.

For a configuration (number of sensors, interval lengths ``L``, number of
attacked sensors ``fa``) and a communication schedule, the *expected fusion
width* is the average width of the fusion interval over every combination of
correct measurements (discretised as in :mod:`repro.scheduling.enumeration`),
with the attacker acting at her scheduled slots according to a given policy.

Two estimators are provided:

* :func:`expected_fusion_width_exhaustive` — the paper's method: enumerate
  every combination (deterministic, exponential in ``n``);
* :func:`expected_fusion_width_monte_carlo` — sample combinations uniformly;
  used for larger configurations and as a cross-check;
* the engine-layer Monte-Carlo sweep — samples combinations like the
  Monte-Carlo estimator but runs them on a registered simulation backend
  (:mod:`repro.engine`), reachable here via ``engine="batch"`` (vectorized,
  10⁵+ trials) or ``engine="scalar"``, with the attacker chosen by spec
  (``attack="stretch"`` or the exact ``attack="expectation"`` of problem
  (2), vectorized in :mod:`repro.batch.expectation`); the legacy
  ``method="batch"`` spelling still forwards but is deprecated and will be
  removed in repro 2.0.

:func:`compare_schedules` runs several schedules on the same configuration
and returns a :class:`ScheduleComparison` with one row per schedule, which the
Table I benchmark renders directly.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # repro.engine imports this module; annotation-only import
    from repro.engine.base import AttackSpec

from repro.attack.expectation import ExpectationPolicy
from repro.attack.policy import AttackPolicy
from repro.core.exceptions import ExperimentError
from repro.core.interval import Interval
from repro.core.marzullo import max_safe_fault_bound
from repro.scheduling.enumeration import count_combinations, enumerate_combinations
from repro.scheduling.round import RoundConfig, RoundResult, run_round
from repro.scheduling.schedule import Schedule
from repro.utils.seeding import ensure_rng

__all__ = [
    "ScheduleComparisonConfig",
    "ScheduleRow",
    "ScheduleComparison",
    "default_attacked_indices",
    "expected_fusion_width_exhaustive",
    "expected_fusion_width_monte_carlo",
    "compare_schedules",
]


@dataclass(frozen=True)
class ScheduleComparisonConfig:
    """One Table I style configuration.

    Attributes
    ----------
    lengths:
        Interval lengths ``L`` in sensor order.
    fa:
        Number of attacked sensors.
    f:
        Fusion fault bound; defaults to ``ceil(n/2) - 1`` as in the paper.
    attacked_indices:
        Which sensors are compromised.  Defaults to the ``fa`` most precise
        sensors (the strongest attacker by Theorem 4).
    true_value:
        Ground-truth value around which correct placements are enumerated.
        The expected width is translation invariant, so the default of 0 is
        only a convention.
    positions:
        Number of grid positions per sensor in the exhaustive enumeration.
    """

    lengths: tuple[float, ...]
    fa: int
    f: int | None = None
    attacked_indices: tuple[int, ...] | None = None
    true_value: float = 0.0
    positions: int = 3

    def __post_init__(self) -> None:
        n = len(self.lengths)
        if n == 0:
            raise ExperimentError("a schedule comparison needs at least one sensor")
        f = self.f if self.f is not None else max_safe_fault_bound(n)
        if not 0 <= self.fa <= f:
            raise ExperimentError(f"fa={self.fa} must satisfy 0 <= fa <= f={f}")
        if self.attacked_indices is not None and len(self.attacked_indices) != self.fa:
            raise ExperimentError(
                f"attacked_indices has {len(self.attacked_indices)} entries but fa={self.fa}"
            )

    @property
    def n(self) -> int:
        """Number of sensors."""
        return len(self.lengths)

    @property
    def resolved_f(self) -> int:
        """The fault bound actually used."""
        return self.f if self.f is not None else max_safe_fault_bound(self.n)

    @property
    def resolved_attacked(self) -> tuple[int, ...]:
        """The attacked sensor indices actually used."""
        if self.attacked_indices is not None:
            return tuple(self.attacked_indices)
        return default_attacked_indices(self.lengths, self.fa)


def default_attacked_indices(lengths: Sequence[float], fa: int) -> tuple[int, ...]:
    """The ``fa`` most precise sensors — the strongest attacked set (Theorem 4)."""
    order = sorted(range(len(lengths)), key=lambda i: (lengths[i], i))
    return tuple(sorted(order[:fa]))


@dataclass(frozen=True)
class ScheduleRow:
    """Expected fusion width of one schedule on one configuration."""

    schedule_name: str
    expected_width: float
    combinations: int
    detected_fraction: float


@dataclass(frozen=True)
class ScheduleComparison:
    """All schedule rows for one configuration, Table I style."""

    config: ScheduleComparisonConfig
    rows: tuple[ScheduleRow, ...] = field(default_factory=tuple)

    def row(self, schedule_name: str) -> ScheduleRow:
        """Return the row for ``schedule_name`` (raises if absent)."""
        for row in self.rows:
            if row.schedule_name == schedule_name:
                return row
        raise ExperimentError(f"no row for schedule {schedule_name!r}")

    def expected_width(self, schedule_name: str) -> float:
        """Shorthand for ``row(name).expected_width``."""
        return self.row(schedule_name).expected_width


def _average_rounds(results: Sequence[RoundResult]) -> tuple[float, float]:
    """Mean fusion width and fraction of rounds where the attacker was flagged."""
    if not results:
        raise ExperimentError("no rounds were simulated")
    widths = [r.fusion_width for r in results]
    detected = [1.0 if r.attacker_detected else 0.0 for r in results]
    return float(np.mean(widths)), float(np.mean(detected))


def expected_fusion_width_exhaustive(
    config: ScheduleComparisonConfig,
    schedule: Schedule,
    policy: AttackPolicy,
    rng: np.random.Generator | None = None,
    give_oracle: bool = False,
) -> ScheduleRow:
    """Expected fusion width by exhaustive enumeration (the paper's method)."""
    rng = ensure_rng(rng)
    round_config = RoundConfig(
        schedule=schedule,
        attacked_indices=config.resolved_attacked,
        policy=policy,
        f=config.resolved_f,
        give_oracle=give_oracle,
    )
    results = [
        run_round(list(combo), round_config, rng)
        for combo in enumerate_combinations(config.lengths, config.true_value, config.positions)
    ]
    mean_width, detected_fraction = _average_rounds(results)
    return ScheduleRow(
        schedule_name=schedule.name,
        expected_width=mean_width,
        combinations=count_combinations(config.lengths, config.positions),
        detected_fraction=detected_fraction,
    )


def expected_fusion_width_monte_carlo(
    config: ScheduleComparisonConfig,
    schedule: Schedule,
    policy: AttackPolicy,
    samples: int,
    rng: np.random.Generator | None = None,
    give_oracle: bool = False,
) -> ScheduleRow:
    """Expected fusion width by uniform sampling of correct placements."""
    if samples <= 0:
        raise ExperimentError(f"need a positive number of samples, got {samples}")
    rng = ensure_rng(rng)
    round_config = RoundConfig(
        schedule=schedule,
        attacked_indices=config.resolved_attacked,
        policy=policy,
        f=config.resolved_f,
        give_oracle=give_oracle,
    )
    results = []
    for _ in range(samples):
        combo = [
            Interval(lo, lo + width)
            for width, lo in (
                (w, config.true_value - rng.uniform(0.0, w)) for w in config.lengths
            )
        ]
        results.append(run_round(combo, round_config, rng))
    mean_width, detected_fraction = _average_rounds(results)
    return ScheduleRow(
        schedule_name=schedule.name,
        expected_width=mean_width,
        combinations=samples,
        detected_fraction=detected_fraction,
    )


def compare_schedules(
    config: ScheduleComparisonConfig,
    schedules: Sequence[Schedule],
    policy_factory=None,
    rng: np.random.Generator | None = None,
    method: str | None = None,
    samples: int = 500,
    engine: str | object | None = None,
    attack: "AttackSpec | None" = None,
) -> ScheduleComparison:
    """Run every schedule on one configuration and collect the rows.

    Parameters
    ----------
    policy_factory:
        Zero-argument callable building a fresh attack policy per schedule
        (so per-policy caches cannot leak decisions between schedules).
        Defaults to the expectation-maximising attacker of problem (2).
        Must be left ``None`` when an ``engine`` is selected (rejected
        otherwise): engine-route attackers are chosen with the ``attack``
        spec instead.
    method:
        ``"exhaustive"`` (paper's method, the default) or ``"monte_carlo"``
        — the scalar estimator variants.  The legacy spelling
        ``method="batch"`` forwards to ``engine="batch"`` with a
        ``DeprecationWarning`` and will be removed in repro 2.0.
    engine:
        Select a simulation backend by name (``"scalar"``/``"batch"``, or
        any :class:`~repro.engine.base.Engine` instance) and run the
        Monte-Carlo sweep through the :mod:`repro.engine` registry.  When
        neither ``engine`` nor ``method`` is given, the ``REPRO_ENGINE``
        environment variable may route the call onto a *non-default*
        backend (``REPRO_ENGINE=scalar`` is a no-op); otherwise the scalar
        exhaustive estimator runs.
    attack:
        Engine-route attack specification (see
        :func:`repro.engine.base.resolve_attack`): ``"stretch"`` (default),
        ``"truthful"``, ``"expectation"`` / ``"expectation-conservative"``
        (the exact problem (2) attacker, vectorized on the batch engine), or
        a spec instance.  Only valid together with ``engine``: the scalar
        ``method`` estimators take a ``policy_factory`` instead.
    """
    if method == "batch":
        warnings.warn(
            "compare_schedules(method='batch') is deprecated and will be removed in "
            "repro 2.0; use engine='batch' (the call is forwarded through the "
            "repro.engine registry)",
            DeprecationWarning,
            stacklevel=2,
        )
        if engine is not None:
            raise ExperimentError("pass either method='batch' or engine=..., not both")
        engine = "batch"
        method = None
    if engine is None and method is None:
        # Env-overridable default: an explicit method always wins, and a bare
        # call keeps the paper's exhaustive estimator unless REPRO_ENGINE
        # selects a non-default backend (REPRO_ENGINE=scalar is a no-op here:
        # "scalar" is already the default backend, so nothing is rerouted).
        from repro.engine.base import DEFAULT_ENGINE, ENGINE_ENV_VAR

        env_name = os.environ.get(ENGINE_ENV_VAR, "").strip().lower()
        if env_name and env_name != DEFAULT_ENGINE:
            engine = env_name
        else:
            method = "exhaustive"
    if method is None:
        # Engine route: all backend selection goes through the registry.
        if policy_factory is not None:
            raise ExperimentError(
                "engine selection uses the engines' own attack specs and cannot honour "
                "policy_factory; pass attack=... (e.g. attack='expectation'), or use "
                "repro.batch.comparison.compare_schedules_batch with an "
                "attacker_factory, instead"
            )
        from repro.engine import get_engine

        return get_engine(engine).compare(
            config,
            schedules,
            samples=samples,
            rng=rng,
            attack=attack if attack is not None else "stretch",
        )
    if engine is not None:
        raise ExperimentError("pass either method=... or engine=..., not both")
    if attack is not None:
        raise ExperimentError(
            "attack specs select an engine attacker; the scalar estimators take a "
            "policy_factory instead (or pass engine=... to use the spec)"
        )
    if policy_factory is None:
        policy_factory = ExpectationPolicy
    rng = ensure_rng(rng)
    rows = []
    for schedule in schedules:
        policy = policy_factory()
        if method == "exhaustive":
            row = expected_fusion_width_exhaustive(config, schedule, policy, rng)
        elif method == "monte_carlo":
            row = expected_fusion_width_monte_carlo(config, schedule, policy, samples, rng)
        else:
            raise ExperimentError(f"unknown comparison method {method!r}")
        rows.append(row)
    return ScheduleComparison(config=config, rows=tuple(rows))
