"""Simulation of one fusion round: schedule → broadcasts → fusion → detection.

A *round* is the paper's unit of analysis: every sensor transmits its interval
in its scheduled slot on the shared bus, compromised sensors instead broadcast
whatever their attack policy chooses (having seen every earlier message), and
once all ``n`` intervals are in, the controller fuses them with its fixed
``f`` and runs the detection procedure.

The round simulator is deliberately independent of the richer event-driven
bus model in :mod:`repro.bus` — it is the fast inner loop of the exhaustive
Table I style experiments — but both share the same attack-policy interface,
so an attacker behaves identically under either substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.attack.context import AttackContext
from repro.attack.policy import AttackPolicy, TruthfulPolicy
from repro.attack.stealth import AttackerMode, check_admissible
from repro.channel.model import ChannelRoundView
from repro.core.detection import DetectionResult, detect
from repro.core.exceptions import EmptyFusionError, ScheduleError
from repro.core.interval import Interval, intersect_all
from repro.core.marzullo import fuse, fuse_or_none, max_safe_fault_bound
from repro.scheduling.schedule import Schedule

__all__ = ["RoundConfig", "RoundResult", "run_round"]


@dataclass(frozen=True)
class RoundConfig:
    """Static configuration of a fusion round.

    Attributes
    ----------
    f:
        Fault bound used by the controller; defaults (``None``) to the
        conservative ``ceil(n/2) - 1``.
    schedule:
        Communication schedule ordering the sensors.
    attacked_indices:
        Indices (in sensor order) of the compromised sensors.
    policy:
        Attack policy invoked for every compromised slot.
    give_oracle:
        If ``True`` the attack context exposes every correct interval of the
        round (needed by :class:`~repro.attack.omniscient.OmniscientPolicy`);
        honest partial-information experiments leave it ``False``.
    """

    schedule: Schedule
    attacked_indices: tuple[int, ...] = ()
    policy: AttackPolicy = field(default_factory=TruthfulPolicy)
    f: int | None = None
    give_oracle: bool = False


@dataclass(frozen=True)
class RoundResult:
    """Everything observable after one fusion round.

    Attributes
    ----------
    order:
        Transmission order (sensor indices) used this round.
    broadcast:
        Intervals actually broadcast, indexed by sensor (not by slot).
    correct:
        The correct readings, indexed by sensor.
    fusion:
        The controller's fusion interval.
    detection:
        Detection result over the broadcast intervals in *slot* order.
    attacked_indices:
        The compromised sensors of this round.
    attacker_modes:
        For each compromised sensor, the stealth mode its broadcast interval
        was admissible under (``None`` when it was not admissible at all —
        such an interval risks detection).
    """

    order: tuple[int, ...]
    broadcast: tuple[Interval, ...]
    correct: tuple[Interval, ...]
    fusion: Interval
    detection: DetectionResult
    attacked_indices: tuple[int, ...]
    attacker_modes: Mapping[int, AttackerMode | None]

    @property
    def fusion_width(self) -> float:
        """Width of the fusion interval (the attacker's objective)."""
        return self.fusion.width

    @property
    def attacker_detected(self) -> bool:
        """``True`` if any compromised sensor was flagged by the controller."""
        slot_of_sensor = {sensor: slot for slot, sensor in enumerate(self.order)}
        return any(
            self.detection.is_flagged(slot_of_sensor[sensor]) for sensor in self.attacked_indices
        )

    def is_attacked(self, sensor_index: int) -> bool:
        """Return ``True`` if ``sensor_index`` was compromised this round."""
        return sensor_index in self.attacked_indices


def run_round(
    correct_intervals: Sequence[Interval],
    config: RoundConfig,
    rng: np.random.Generator,
    channel: ChannelRoundView | None = None,
) -> RoundResult:
    """Simulate one fusion round.

    Parameters
    ----------
    correct_intervals:
        The correct reading of every sensor, in sensor order.  Compromised
        sensors still *have* a correct reading — the attacker sees it and may
        or may not forward it.
    config:
        Round configuration (schedule, attacked set, policy, fault bound).
    rng:
        Random source, used by randomised schedules and randomised policies.
    channel:
        Optional lossy-channel fate of this round's transmissions
        (:mod:`repro.channel`).  Attackers then see only the earlier
        transmissions that already arrived, and fusion/detection run over
        the received subset; an unfusable subset raises
        :class:`~repro.core.exceptions.EmptyFusionError` like any other
        fault overflow.
    """
    n = len(correct_intervals)
    if n == 0:
        raise ScheduleError("a round needs at least one sensor")
    attacked = tuple(sorted(set(config.attacked_indices)))
    for index in attacked:
        if not 0 <= index < n:
            raise ScheduleError(f"attacked sensor index {index} out of range for n={n}")
    f = config.f if config.f is not None else max_safe_fault_bound(n)

    widths = [s.width for s in correct_intervals]
    order = config.schedule.order(widths, rng)
    if sorted(order) != list(range(n)):
        raise ScheduleError(f"schedule produced an invalid order {order}")

    delta = (
        intersect_all([correct_intervals[i] for i in attacked]) if attacked else None
    )
    oracle = (
        {i: correct_intervals[i] for i in range(n) if i not in attacked}
        if config.give_oracle
        else None
    )

    config.policy.reset()
    broadcast_by_sensor: dict[int, Interval] = {}
    transmitted: list[Interval] = []
    transmitted_compromised: list[bool] = []
    protected_points: tuple[float, ...] = ()
    attacker_modes: dict[int, AttackerMode | None] = {}

    for slot, sensor_index in enumerate(order):
        if sensor_index not in attacked:
            interval = correct_intervals[sensor_index]
            broadcast_by_sensor[sensor_index] = interval
            transmitted.append(interval)
            transmitted_compromised.append(False)
            continue

        remaining = order[slot + 1 :]
        assert delta is not None
        if channel is None:
            visible = tuple(transmitted)
            visible_compromised = tuple(transmitted_compromised)
        else:
            # The attacker only sees transmissions that were not lost and
            # have already arrived; the rest are hidden, not absent — the
            # context still accounts for all n sensors via n_hidden.
            mask = channel.visible_at(slot)
            visible = tuple(t for t, ok in zip(transmitted, mask) if ok)
            visible_compromised = tuple(
                c for c, ok in zip(transmitted_compromised, mask) if ok
            )
        context = AttackContext(
            n=n,
            f=f,
            slot_index=slot,
            sensor_index=sensor_index,
            width=widths[sensor_index],
            own_reading=correct_intervals[sensor_index],
            delta=delta,
            transmitted=visible,
            transmitted_compromised=visible_compromised,
            remaining_widths=tuple(widths[i] for i in remaining),
            remaining_compromised=tuple(i in attacked for i in remaining),
            protected_points=protected_points,
            n_hidden=slot - len(visible),
            oracle_correct_intervals=oracle,
        )
        forged = config.policy.choose_interval(context, rng)
        admissibility = check_admissible(forged, context)
        attacker_modes[sensor_index] = admissibility.mode if admissibility.admissible else None
        if admissibility.mode is AttackerMode.ACTIVE and admissibility.support is not None:
            protected_points = protected_points + (admissibility.support,)
        broadcast_by_sensor[sensor_index] = forged
        transmitted.append(forged)
        transmitted_compromised.append(True)

    broadcast_in_sensor_order = tuple(broadcast_by_sensor[i] for i in range(n))
    if channel is None:
        fusion = fuse(list(transmitted), f)
        detection = detect(transmitted, fusion)
    else:
        # Fusion and detection only see what the channel delivered.  The
        # fault bound stays the configured f (the controller does not know
        # how many losses occurred), so a thin received subset degrades to
        # the hull (required <= 0) exactly like the batch engines' masked
        # coverage sweep.
        received_slots = [slot for slot in range(n) if channel.received[slot]]
        if not received_slots:
            raise EmptyFusionError("the channel delivered no interval this round")
        received = [transmitted[slot] for slot in received_slots]
        maybe_fusion = fuse_or_none(received, f)
        if maybe_fusion is None:
            raise EmptyFusionError(
                f"no point is covered by at least {len(received) - f} received intervals"
            )
        fusion = maybe_fusion
        subset = detect(received, fusion)
        flagged = tuple(received_slots[i] for i in subset.flagged_indices)
        detection = DetectionResult(
            fusion=fusion,
            flagged_indices=flagged,
            cleared_indices=tuple(s for s in range(n) if s not in flagged),
        )
    return RoundResult(
        order=order,
        broadcast=broadcast_in_sensor_order,
        correct=tuple(correct_intervals),
        fusion=fusion,
        detection=detection,
        attacked_indices=attacked,
        attacker_modes=attacker_modes,
    )
