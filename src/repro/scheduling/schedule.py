"""Communication schedules: who transmits when on the shared bus.

The only information available a priori to the system is the set of interval
lengths, so every schedule is a rule that orders sensor indices using the
widths alone.  The paper studies three:

* :class:`AscendingSchedule` — most precise (smallest interval) first; the
  schedule the paper recommends;
* :class:`DescendingSchedule` — least precise first;
* :class:`RandomSchedule` — a fresh uniformly random order every round,
  discussed in the case study as an alternative to a fixed order.

:class:`FixedSchedule` (an explicit permutation) is provided for hand-built
examples such as Figure 5 and for unit tests.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.exceptions import ScheduleError

__all__ = [
    "Schedule",
    "AscendingSchedule",
    "DescendingSchedule",
    "RandomSchedule",
    "FixedSchedule",
    "TrustAwareSchedule",
    "schedule_by_name",
]


class Schedule(abc.ABC):
    """A rule ordering sensor indices given only their interval widths."""

    #: Human-readable name used in reports and benchmark tables.
    name: str = "schedule"

    @abc.abstractmethod
    def order(self, widths: Sequence[float], rng: np.random.Generator) -> tuple[int, ...]:
        """Return the transmission order as a permutation of ``range(len(widths))``."""

    def _validate(self, widths: Sequence[float]) -> None:
        if not widths:
            raise ScheduleError("cannot schedule an empty sensor set")
        if any(w <= 0 for w in widths):
            raise ScheduleError(f"interval widths must be positive, got {tuple(widths)}")


@dataclass(frozen=True)
class AscendingSchedule(Schedule):
    """Most precise sensors transmit first (ties broken by sensor index)."""

    name: str = "ascending"

    def order(self, widths: Sequence[float], rng: np.random.Generator) -> tuple[int, ...]:
        self._validate(widths)
        return tuple(sorted(range(len(widths)), key=lambda i: (widths[i], i)))


@dataclass(frozen=True)
class DescendingSchedule(Schedule):
    """Least precise sensors transmit first (ties broken by sensor index)."""

    name: str = "descending"

    def order(self, widths: Sequence[float], rng: np.random.Generator) -> tuple[int, ...]:
        self._validate(widths)
        return tuple(sorted(range(len(widths)), key=lambda i: (-widths[i], i)))


@dataclass(frozen=True)
class RandomSchedule(Schedule):
    """A fresh uniformly random transmission order every round."""

    name: str = "random"

    def order(self, widths: Sequence[float], rng: np.random.Generator) -> tuple[int, ...]:
        self._validate(widths)
        return tuple(int(i) for i in rng.permutation(len(widths)))


@dataclass(frozen=True)
class FixedSchedule(Schedule):
    """An explicit, fixed permutation of sensor indices."""

    permutation: tuple[int, ...]
    name: str = "fixed"

    def __post_init__(self) -> None:
        if sorted(self.permutation) != list(range(len(self.permutation))):
            raise ScheduleError(
                f"fixed schedule must be a permutation of 0..{len(self.permutation) - 1}, "
                f"got {self.permutation}"
            )

    def order(self, widths: Sequence[float], rng: np.random.Generator) -> tuple[int, ...]:
        self._validate(widths)
        if len(widths) != len(self.permutation):
            raise ScheduleError(
                f"fixed schedule covers {len(self.permutation)} sensors but {len(widths)} were given"
            )
        return self.permutation


@dataclass(frozen=True)
class TrustAwareSchedule(Schedule):
    """Order sensors by how likely they are to be attacked (most likely first).

    The paper's discussion section makes two points beyond pure precision
    ordering: if it is known which sensor is being attacked, "any schedule
    that places that sensor first would result in a smaller fusion interval";
    and sensors the system is confident cannot be spoofed (e.g. an IMU)
    "should always be placed last in the schedule, thus preventing the
    attacker from knowing their measurements".

    ``spoofability[i]`` is a relative score of how easily sensor ``i`` can be
    compromised (higher = easier).  The schedule transmits more spoofable
    sensors earlier; ties are broken by precision (most precise first, i.e.
    the Ascending rule) and then by index, so with uniform spoofability the
    schedule degenerates to :class:`AscendingSchedule`.
    """

    spoofability: tuple[float, ...]
    name: str = "trust-aware"

    def __post_init__(self) -> None:
        if not self.spoofability:
            raise ScheduleError("trust-aware schedule needs at least one spoofability score")
        if any(score < 0 for score in self.spoofability):
            raise ScheduleError("spoofability scores must be non-negative")

    def order(self, widths: Sequence[float], rng: np.random.Generator) -> tuple[int, ...]:
        self._validate(widths)
        if len(widths) != len(self.spoofability):
            raise ScheduleError(
                f"trust-aware schedule has {len(self.spoofability)} spoofability scores "
                f"but {len(widths)} sensors were given"
            )
        return tuple(
            sorted(range(len(widths)), key=lambda i: (-self.spoofability[i], widths[i], i))
        )


def schedule_by_name(name: str, permutation: Sequence[int] | None = None) -> Schedule:
    """Factory used by benchmarks and examples (``ascending`` / ``descending`` / ``random`` / ``fixed``)."""
    lowered = name.lower()
    if lowered == "ascending":
        return AscendingSchedule()
    if lowered == "descending":
        return DescendingSchedule()
    if lowered == "random":
        return RandomSchedule()
    if lowered == "fixed":
        if permutation is None:
            raise ScheduleError("a fixed schedule needs an explicit permutation")
        return FixedSchedule(tuple(int(i) for i in permutation))
    raise ScheduleError(f"unknown schedule {name!r}")
