"""Exhaustive enumeration of measurement combinations.

The paper's Table I methodology: "we generate all possible combinations of
measurements for all sensors and take the average length of the fusion
interval"; the real line is discretised "with a sufficiently high precision".
This module implements that enumeration.

A *combination* assigns to every sensor a correct interval of that sensor's
width that contains the true value.  For a sensor of width ``w`` and a grid
of ``k`` positions, the interval's lower bound ranges over ``k`` evenly
spaced values in ``[t - w, t]`` where ``t`` is the true value.  Compromised
sensors are enumerated too — the attacker observes her sensors' correct
readings, so they are part of the probability space even though what she
broadcasts may differ.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

from repro.core.exceptions import ExperimentError
from repro.core.interval import Interval

__all__ = ["correct_placement_grid", "enumerate_combinations", "count_combinations"]


def correct_placement_grid(width: float, true_value: float, positions: int) -> list[Interval]:
    """All discretised placements of a correct interval of ``width``.

    The returned intervals all contain ``true_value``; the first has its upper
    bound at the true value (maximal left shift) and the last has its lower
    bound there (maximal right shift).
    """
    if width <= 0:
        raise ExperimentError(f"interval width must be positive, got {width}")
    if positions < 1:
        raise ExperimentError(f"need at least one grid position, got {positions}")
    if positions == 1:
        return [Interval.from_center(true_value, width)]
    step = width / (positions - 1)
    return [
        Interval(true_value - width + i * step, true_value + i * step)
        for i in range(positions)
    ]


def enumerate_combinations(
    widths: Sequence[float], true_value: float, positions: int
) -> Iterator[tuple[Interval, ...]]:
    """Yield every combination of correct placements for ``widths``.

    The number of combinations is ``positions ** len(widths)``; callers are
    expected to keep ``positions`` modest (the benchmarks default to 3-5).
    """
    grids = [correct_placement_grid(width, true_value, positions) for width in widths]
    for combo in itertools.product(*grids):
        yield tuple(combo)


def count_combinations(widths: Sequence[float], positions: int) -> int:
    """Number of combinations :func:`enumerate_combinations` will yield."""
    if positions < 1:
        raise ExperimentError(f"need at least one grid position, got {positions}")
    return positions ** len(widths)
