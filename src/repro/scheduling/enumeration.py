"""Exhaustive enumeration of measurement combinations.

The paper's Table I methodology: "we generate all possible combinations of
measurements for all sensors and take the average length of the fusion
interval"; the real line is discretised "with a sufficiently high precision".
This module implements that enumeration.

A *combination* assigns to every sensor a correct interval of that sensor's
width that contains the true value.  For a sensor of width ``w`` and a grid
of ``k`` positions, the interval's lower bound ranges over ``k`` evenly
spaced values in ``[t - w, t]`` where ``t`` is the true value.  Compromised
sensors are enumerated too — the attacker observes her sensors' correct
readings, so they are part of the probability space even though what she
broadcasts may differ.

The second half of the module enumerates the *schedule* space for the
search subsystem (:mod:`repro.optimize`).  A transmission schedule is a
permutation of sensor indices, but many permutations are statistically
indistinguishable: the expected fusion width only depends on which
interval *width* and which *attacked status* occupies each slot, so two
sensors with equal width and equal attacked status can swap positions
without changing the experiment.  :func:`canonical_schedule` maps every
permutation to the unique representative of its equivalence class,
:func:`enumerate_schedules` yields exactly one representative per class
(feasible up to ``n = 8``: at most ``8! = 40320`` candidates, fewer with
repeated widths), and :func:`count_distinct_schedules` gives the class
count without enumerating.
"""

from __future__ import annotations

import itertools
import math
from collections import Counter
from typing import Iterator, Sequence

from repro.core.exceptions import ExperimentError
from repro.core.interval import Interval

__all__ = [
    "correct_placement_grid",
    "enumerate_combinations",
    "count_combinations",
    "schedule_equivalence_classes",
    "canonical_schedule",
    "enumerate_schedules",
    "count_distinct_schedules",
]


def correct_placement_grid(width: float, true_value: float, positions: int) -> list[Interval]:
    """All discretised placements of a correct interval of ``width``.

    The returned intervals all contain ``true_value``; the first has its upper
    bound at the true value (maximal left shift) and the last has its lower
    bound there (maximal right shift).
    """
    if width <= 0:
        raise ExperimentError(f"interval width must be positive, got {width}")
    if positions < 1:
        raise ExperimentError(f"need at least one grid position, got {positions}")
    if positions == 1:
        return [Interval.from_center(true_value, width)]
    step = width / (positions - 1)
    return [
        Interval(true_value - width + i * step, true_value + i * step)
        for i in range(positions)
    ]


def enumerate_combinations(
    widths: Sequence[float], true_value: float, positions: int
) -> Iterator[tuple[Interval, ...]]:
    """Yield every combination of correct placements for ``widths``.

    The number of combinations is ``positions ** len(widths)``; callers are
    expected to keep ``positions`` modest (the benchmarks default to 3-5).
    """
    grids = [correct_placement_grid(width, true_value, positions) for width in widths]
    for combo in itertools.product(*grids):
        yield tuple(combo)


def count_combinations(widths: Sequence[float], positions: int) -> int:
    """Number of combinations :func:`enumerate_combinations` will yield."""
    if positions < 1:
        raise ExperimentError(f"need at least one grid position, got {positions}")
    return positions ** len(widths)


# --------------------------------------------------------------------------
# schedule-space enumeration (the search half of the module)


def _check_schedule_inputs(
    widths: Sequence[float], attacked_indices: Sequence[int]
) -> tuple[tuple[float, ...], frozenset[int]]:
    widths = tuple(float(width) for width in widths)
    if not widths:
        raise ExperimentError("cannot enumerate schedules for an empty sensor set")
    if any(width <= 0 for width in widths):
        raise ExperimentError(f"interval widths must be positive, got {widths}")
    attacked = frozenset(int(index) for index in attacked_indices)
    if attacked and not attacked <= set(range(len(widths))):
        raise ExperimentError(
            f"attacked indices {tuple(sorted(attacked))} out of range for {len(widths)} sensors"
        )
    return widths, attacked


def schedule_equivalence_classes(
    widths: Sequence[float], attacked_indices: Sequence[int] = ()
) -> tuple[int, ...]:
    """Per-sensor equivalence-class ids for schedule canonicalization.

    Two sensors are interchangeable in a schedule exactly when they have
    the same interval width *and* the same attacked status — every engine
    draws correct intervals i.i.d. per sensor given the width, and the
    attacker's policy sees widths and attacked slots, never raw indices.
    Class ids are assigned by ``(width, attacked)`` rank, so they are a
    pure function of the configuration (stable across calls and processes).
    """
    widths, attacked = _check_schedule_inputs(widths, attacked_indices)
    keys = [(width, index in attacked) for index, width in enumerate(widths)]
    ranked = {key: rank for rank, key in enumerate(sorted(set(keys)))}
    return tuple(ranked[key] for key in keys)


def canonical_schedule(
    permutation: Sequence[int],
    widths: Sequence[float],
    attacked_indices: Sequence[int] = (),
) -> tuple[int, ...]:
    """The canonical representative of ``permutation``'s equivalence class.

    Within each equivalence class (equal width, equal attacked status) the
    sensor indices are reassigned in ascending order along the slots, so a
    permutation is canonical iff every class's indices appear in increasing
    slot order.  Two permutations share a canonical form exactly when one
    can be obtained from the other by swapping interchangeable sensors —
    the symmetry :func:`enumerate_schedules` dedupes.
    """
    classes = schedule_equivalence_classes(widths, attacked_indices)
    permutation = tuple(int(index) for index in permutation)
    if sorted(permutation) != list(range(len(widths))):
        raise ExperimentError(
            f"schedule must be a permutation of 0..{len(widths) - 1}, got {permutation}"
        )
    members: dict[int, list[int]] = {}
    for index, class_id in enumerate(classes):
        members.setdefault(class_id, []).append(index)
    # Ascending member lists consumed in slot order: the unique member of
    # the class orbit whose indices are increasing along the schedule.
    cursors = {class_id: iter(indices) for class_id, indices in members.items()}
    return tuple(next(cursors[classes[index]]) for index in permutation)


def count_distinct_schedules(
    widths: Sequence[float], attacked_indices: Sequence[int] = ()
) -> int:
    """Number of schedules :func:`enumerate_schedules` will yield.

    The multinomial ``n! / prod(m_c!)`` over the class sizes ``m_c`` — the
    number of distinct class sequences a permutation can induce.
    """
    classes = schedule_equivalence_classes(widths, attacked_indices)
    count = math.factorial(len(classes))
    for size in Counter(classes).values():
        count //= math.factorial(size)
    return count


def enumerate_schedules(
    widths: Sequence[float], attacked_indices: Sequence[int] = ()
) -> Iterator[tuple[int, ...]]:
    """Yield one canonical representative per schedule equivalence class.

    Candidates appear in lexicographic order of their class sequence and
    are pairwise distinct; the total equals
    :func:`count_distinct_schedules`.  The walk recurses over class
    multisets rather than filtering all ``n!`` permutations, so heavily
    tied width grids (the common case in the paper's Table I) enumerate in
    time proportional to the *distinct* count.
    """
    classes = schedule_equivalence_classes(widths, attacked_indices)
    members: dict[int, list[int]] = {}
    for index, class_id in enumerate(classes):
        members.setdefault(class_id, []).append(index)
    remaining = Counter(classes)
    cursors = {class_id: 0 for class_id in members}
    slots: list[int] = []

    def walk() -> Iterator[tuple[int, ...]]:
        if len(slots) == len(classes):
            yield tuple(slots)
            return
        for class_id in sorted(remaining):
            if remaining[class_id] == 0:
                continue
            slots.append(members[class_id][cursors[class_id]])
            remaining[class_id] -= 1
            cursors[class_id] += 1
            yield from walk()
            cursors[class_id] -= 1
            remaining[class_id] += 1
            slots.pop()

    return walk()
