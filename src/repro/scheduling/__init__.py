"""Communication schedules and the per-round / expected-width simulators."""

from repro.scheduling.comparison import (
    ScheduleComparison,
    ScheduleComparisonConfig,
    ScheduleRow,
    compare_schedules,
    default_attacked_indices,
    expected_fusion_width_exhaustive,
    expected_fusion_width_monte_carlo,
)
from repro.scheduling.enumeration import (
    canonical_schedule,
    correct_placement_grid,
    count_combinations,
    count_distinct_schedules,
    enumerate_combinations,
    enumerate_schedules,
    schedule_equivalence_classes,
)
from repro.scheduling.round import RoundConfig, RoundResult, run_round
from repro.scheduling.schedule import (
    AscendingSchedule,
    DescendingSchedule,
    FixedSchedule,
    RandomSchedule,
    Schedule,
    TrustAwareSchedule,
    schedule_by_name,
)

__all__ = [
    "Schedule",
    "AscendingSchedule",
    "DescendingSchedule",
    "RandomSchedule",
    "FixedSchedule",
    "TrustAwareSchedule",
    "schedule_by_name",
    "RoundConfig",
    "RoundResult",
    "run_round",
    "correct_placement_grid",
    "enumerate_combinations",
    "count_combinations",
    "schedule_equivalence_classes",
    "canonical_schedule",
    "enumerate_schedules",
    "count_distinct_schedules",
    "ScheduleComparisonConfig",
    "ScheduleRow",
    "ScheduleComparison",
    "compare_schedules",
    "default_attacked_indices",
    "expected_fusion_width_exhaustive",
    "expected_fusion_width_monte_carlo",
]
