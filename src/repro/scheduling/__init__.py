"""Communication schedules and the per-round / expected-width simulators."""

from repro.scheduling.comparison import (
    ScheduleComparison,
    ScheduleComparisonConfig,
    ScheduleRow,
    compare_schedules,
    default_attacked_indices,
    expected_fusion_width_exhaustive,
    expected_fusion_width_monte_carlo,
)
from repro.scheduling.enumeration import (
    correct_placement_grid,
    count_combinations,
    enumerate_combinations,
)
from repro.scheduling.round import RoundConfig, RoundResult, run_round
from repro.scheduling.schedule import (
    AscendingSchedule,
    DescendingSchedule,
    FixedSchedule,
    RandomSchedule,
    Schedule,
    TrustAwareSchedule,
    schedule_by_name,
)

__all__ = [
    "Schedule",
    "AscendingSchedule",
    "DescendingSchedule",
    "RandomSchedule",
    "FixedSchedule",
    "TrustAwareSchedule",
    "schedule_by_name",
    "RoundConfig",
    "RoundResult",
    "run_round",
    "correct_placement_grid",
    "enumerate_combinations",
    "count_combinations",
    "ScheduleComparisonConfig",
    "ScheduleRow",
    "ScheduleComparison",
    "compare_schedules",
    "default_attacked_indices",
    "expected_fusion_width_exhaustive",
    "expected_fusion_width_monte_carlo",
]
