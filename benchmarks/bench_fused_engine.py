"""Fused engine throughput vs the batch engine on the n=9 multi-slot row.

The fused engine's design target is the workload that collapses the batch
engine's per-slot loop: many sensors, several compromised transmissions,
and a random schedule, so the attacker forges at nearly every slot across
the batch and the slot loop runs an active-mode support sweep per slot.
The benchmark row is the nine-sensor extension of the paper's Table I
grid (the paper tops out at n=5) with ``fa=3`` simultaneously compromised
sensors, run under Ascending, Descending and Random.

Two assertions gate every run:

* **bit identity** — the fused engine's :class:`~repro.engine.base.RoundsResult`
  must equal the batch engine's array for array on every schedule (the
  conformance suite pins this at small scale; the benchmark re-checks it
  at Monte-Carlo scale);
* **throughput floor** — on the multi-slot random-schedule leg the fused
  engine must deliver at least ``REPRO_BENCH_FUSED_FLOOR`` (default 3x)
  the batch engine's rounds/sec; the deterministic legs are reported but
  not gated (they gain ~1.2–1.9x — the slot loop hurts them less).

Besides the human-readable table, the run writes
``benchmarks/results/bench_fused_engine.json`` (rates, speedups, samples
per leg) which CI uploads as a workflow artifact.
"""

import time

import numpy as np
import pytest

from repro.analysis import format_table
from repro.engine import BatchEngine, FusedEngine
from repro.scheduling import (
    AscendingSchedule,
    DescendingSchedule,
    RandomSchedule,
    ScheduleComparisonConfig,
)

#: The n=9 multi-slot row: the Table I length grid extended to nine
#: sensors, three sensors across the precision range compromised together
#: (the ``sweep-multi-fault`` scenario family's territory).
MULTI_SLOT_LENGTHS = (5.0, 5.0, 5.0, 8.0, 8.0, 11.0, 14.0, 17.0, 20.0)
MULTI_SLOT_FA = 3
MULTI_SLOT_ATTACKED = (0, 4, 8)

SCHEDULES = (AscendingSchedule(), DescendingSchedule(), RandomSchedule())
#: The gated leg: under a random schedule the compromised transmissions
#: land in different slots every round — the multi-slot stress case.
GATED_SCHEDULE = "random"


def _config() -> ScheduleComparisonConfig:
    return ScheduleComparisonConfig(
        lengths=MULTI_SLOT_LENGTHS,
        fa=MULTI_SLOT_FA,
        attacked_indices=MULTI_SLOT_ATTACKED,
    )


def _best_rate(engine, schedule, samples: int, repeats: int = 3) -> tuple[float, object]:
    """Best-of-N rounds/sec for one engine on one schedule (plus a result)."""
    config = _config()
    best = float("inf")
    result = None
    for _ in range(repeats):
        rng = np.random.default_rng(0)
        start = time.perf_counter()
        result = engine.run_rounds(config, schedule, "stretch", None, samples, rng)
        best = min(best, time.perf_counter() - start)
    return samples / best, result


def _assert_bit_identical(batch_result, fused_result, schedule_name: str) -> None:
    for field in (
        "fusion_lo",
        "fusion_hi",
        "valid",
        "attacker_detected",
        "broadcast_lo",
        "broadcast_hi",
        "flagged",
    ):
        np.testing.assert_array_equal(
            getattr(batch_result, field),
            getattr(fused_result, field),
            err_msg=f"fused != batch on {schedule_name}/{field}",
        )


def test_fused_engine_speedup(report_writer, json_report_writer, batch_samples, fused_speedup_floor):
    """Fused vs batch on the n=9 multi-slot row: parity plus the 3x floor."""
    batch_engine = BatchEngine()
    fused_engine = FusedEngine()
    rows = []
    legs = {}
    parity = []
    for schedule in SCHEDULES:
        batch_rate, batch_result = _best_rate(batch_engine, schedule, batch_samples)
        fused_rate, fused_result = _best_rate(fused_engine, schedule, batch_samples)
        parity.append((batch_result, fused_result, schedule.name))
        speedup = fused_rate / batch_rate
        legs[schedule.name] = {
            "batch_rounds_per_second": batch_rate,
            "fused_rounds_per_second": fused_rate,
            "speedup": speedup,
            "samples": batch_samples,
        }
        rows.append(
            [
                schedule.name,
                f"{batch_rate:,.0f}",
                f"{fused_rate:,.0f}",
                f"{speedup:.2f}x",
                "yes" if schedule.name == GATED_SCHEDULE else "",
            ]
        )
    report_writer(
        "bench_fused_engine",
        format_table(
            ["schedule", "batch rounds/s", "fused rounds/s", "speedup", "gated"],
            rows,
            title=(
                "Fused vs batch engine — n=9 multi-slot row "
                f"(fa={MULTI_SLOT_FA}, attacked={MULTI_SLOT_ATTACKED}, "
                f"{batch_samples:,} rounds per leg, bit-identical results)"
            ),
        ),
    )
    json_report_writer(
        "bench_fused_engine",
        {
            "row": {
                "lengths": list(MULTI_SLOT_LENGTHS),
                "fa": MULTI_SLOT_FA,
                "attacked_indices": list(MULTI_SLOT_ATTACKED),
            },
            "gated_schedule": GATED_SCHEDULE,
            "floor": fused_speedup_floor,
            "legs": legs,
        },
    )
    # Assertions come *after* the reports, so a failing run still leaves
    # the table and the JSON behind for CI to upload and diagnose.
    for batch_result, fused_result, name in parity:
        _assert_bit_identical(batch_result, fused_result, name)
    gated = legs[GATED_SCHEDULE]["speedup"]
    assert gated >= fused_speedup_floor, (
        f"fused engine is only {gated:.2f}x the batch engine on the n=9 multi-slot "
        f"{GATED_SCHEDULE} row (floor: {fused_speedup_floor}x)"
    )


@pytest.mark.parametrize("schedule", SCHEDULES, ids=lambda s: s.name)
def test_fused_engine_benchmark(benchmark, schedule, batch_samples):
    """pytest-benchmark timing of the fused engine per schedule leg."""
    engine = FusedEngine()
    config = _config()

    def run():
        return engine.run_rounds(
            config, schedule, "stretch", None, batch_samples, np.random.default_rng(0)
        )

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    assert result.valid.all()
