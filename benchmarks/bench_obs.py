"""Telemetry overhead on the fused engine's n=9 multi-slot stress leg.

The ``repro.obs`` layer promises two things the benchmark pins at
Monte-Carlo scale:

* **bit identity** — running the same rounds inside an ``obs.collect()``
  scope changes wall-clock only, never a result byte (telemetry uses
  monotonic clocks, never the RNG);
* **overhead floor** — a fully *traced* run (spans, counters, snapshot)
  costs at most ``REPRO_BENCH_OBS_OVERHEAD`` (default 5%) over the
  untraced run, best-of-3 each, on the fused engine's hardest leg — the
  n=9 multi-slot row under a random schedule from
  :mod:`bench_fused_engine`.  Untraced instrumentation is a thread-local
  read and a ``None`` check per site, so the untraced leg *is* the
  baseline: the production hot path with telemetry compiled in but off.

Besides the human-readable table, the run writes
``benchmarks/results/bench_obs.json`` (timings, overhead fraction, gate)
which CI uploads as a workflow artifact.
"""

import time

import numpy as np

from bench_fused_engine import (
    MULTI_SLOT_ATTACKED,
    MULTI_SLOT_FA,
    MULTI_SLOT_LENGTHS,
    _assert_bit_identical,
    _config,
)
from repro import obs
from repro.analysis import format_table
from repro.engine import FusedEngine
from repro.scheduling import RandomSchedule


def _best_time(engine, samples: int, traced: bool, repeats: int = 3):
    """Best-of-N wall-clock for one leg (plus the last result for parity)."""
    config = _config()
    best = float("inf")
    result = None
    for _ in range(repeats):
        schedule = RandomSchedule()
        rng = np.random.default_rng(0)
        if traced:
            start = time.perf_counter()
            with obs.collect() as session:
                result = engine.run_rounds(config, schedule, "stretch", None, samples, rng)
                session.snapshot()  # include the export cost in the traced leg
            best = min(best, time.perf_counter() - start)
        else:
            start = time.perf_counter()
            result = engine.run_rounds(config, schedule, "stretch", None, samples, rng)
            best = min(best, time.perf_counter() - start)
    return best, result


def test_telemetry_overhead(report_writer, json_report_writer, batch_samples, obs_overhead_floor):
    """Traced vs untraced fused runs: bit identity plus the ≤5% overhead gate."""
    engine = FusedEngine()
    untraced_s, untraced_result = _best_time(engine, batch_samples, traced=False)
    traced_s, traced_result = _best_time(engine, batch_samples, traced=True)
    overhead = traced_s / untraced_s - 1.0
    rows = [
        ["untraced", f"{untraced_s * 1e3:,.1f}", f"{batch_samples / untraced_s:,.0f}", ""],
        [
            "traced",
            f"{traced_s * 1e3:,.1f}",
            f"{batch_samples / traced_s:,.0f}",
            f"{overhead * 100:+.2f}%",
        ],
    ]
    report_writer(
        "bench_obs",
        format_table(
            ["leg", "best ms", "rounds/s", "overhead"],
            rows,
            title=(
                "Telemetry overhead — fused engine, n=9 multi-slot random row "
                f"(fa={MULTI_SLOT_FA}, attacked={MULTI_SLOT_ATTACKED}, "
                f"{batch_samples:,} rounds per leg, gate ≤{obs_overhead_floor * 100:g}%)"
            ),
        ),
    )
    json_report_writer(
        "bench_obs",
        {
            "row": {
                "lengths": list(MULTI_SLOT_LENGTHS),
                "fa": MULTI_SLOT_FA,
                "attacked_indices": list(MULTI_SLOT_ATTACKED),
            },
            "samples": batch_samples,
            "untraced_seconds": untraced_s,
            "traced_seconds": traced_s,
            "overhead_fraction": overhead,
            "floor": obs_overhead_floor,
        },
    )
    # Assertions come *after* the reports, so a failing run still leaves
    # the table and the JSON behind for CI to upload and diagnose.
    _assert_bit_identical(untraced_result, traced_result, "random(traced)")
    assert traced_s <= untraced_s * (1.0 + obs_overhead_floor), (
        f"tracing costs {overhead * 100:.2f}% over the untraced fused run "
        f"on the n=9 multi-slot random row (gate: {obs_overhead_floor * 100:g}%)"
    )
