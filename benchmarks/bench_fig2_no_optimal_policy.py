"""Figure 2 — with partial knowledge the attacker has no optimal policy.

The paper's Figure 2 argument: the attacker has seen only ``s1`` when she
must place ``a1``.  Whatever she commits to (attack left, right, or both
sides), there is a realisation of the unseen ``s2`` that makes her placement
sub-optimal compared to the full-knowledge optimum for that realisation.

The benchmark quantifies that regret: for each one-sided/two-sided commitment
it evaluates the resulting fusion width under both realisations of ``s2`` and
compares with the per-realisation optimum of problem (1); no commitment
achieves zero regret on both realisations simultaneously.
"""


from repro.analysis import figure2_configuration, format_table
from repro.attack import optimal_fusion_width
from repro.core import Interval, fuse


def _commitments(config) -> dict[str, Interval]:
    s1 = config["s1"]
    width = config["attacked_width"]
    return {
        "attack right": Interval(s1.hi, s1.hi + width),
        "attack left": Interval(s1.lo - width, s1.lo),
        "attack both sides": Interval.from_center(s1.center, width),
    }


def _regret_table(config) -> tuple[str, dict[str, dict[str, float]]]:
    s1 = config["s1"]
    f = config["f"]
    realisations = {"s2 appears left": config["s2_left"], "s2 appears right": config["s2_right"]}
    rows = []
    regrets: dict[str, dict[str, float]] = {}
    for label, forged in _commitments(config).items():
        regrets[label] = {}
        cells = [label]
        for name, s2 in realisations.items():
            achieved = fuse([s1, s2, forged], f).width
            optimum = optimal_fusion_width([s1, s2], [config["attacked_width"]], f)
            regret = optimum - achieved
            regrets[label][name] = regret
            cells.append(f"{achieved:.2f} (opt {optimum:.2f}, regret {regret:.2f})")
        rows.append(cells)
    table = format_table(
        ["commitment of a1", *realisations.keys()],
        rows,
        title="Figure 2 — regret of committing before seeing s2",
    )
    return table, regrets


def test_fig2_no_single_commitment_is_optimal(benchmark, report_writer):
    config = figure2_configuration()
    table, regrets = benchmark(lambda: _regret_table(config))
    report_writer("fig2_no_optimal_policy", table)
    # The paper's point: every commitment suffers positive regret on at least
    # one realisation of the unseen interval.
    for commitment, per_realisation in regrets.items():
        assert max(per_realisation.values()) > 1e-9, (
            f"commitment {commitment!r} should not be optimal for every realisation"
        )
    # But for each realisation there IS a commitment with zero regret, which is
    # why full knowledge (Descending for this attacker) is strictly better.
    for realisation in next(iter(regrets.values())):
        assert min(per[realisation] for per in regrets.values()) < 1e-9
