"""Serving throughput: dynamic request batching vs a no-coalescing baseline.

The serving stack's promise is that coalescing is pure profit: when many
clients ask for the same *plan* (same physics, same schedule — different
seeds), the :class:`~repro.serve.BatchCollator` fuses their shards into
packed :meth:`~repro.engine.base.Engine.run_many` passes, and the
``run_many`` bit-identity contract means nobody can tell from the payloads.
This benchmark measures the profit and gates it:

* **workload** — ``REPRO_BENCH_SERVE_CLIENTS`` (default 64) concurrent
  clients POST inline specs to a live :class:`~repro.serve.FusionServer`
  over real HTTP connections.  Every client's spec shares one plan — the
  n=9 multi-slot random-schedule row on the fused engine, split into many
  small shards, the regime where per-pass overhead dominates per-round
  work and coalescing has real fixed cost to amortize — but carries a
  distinct seed, so the serving cache layers that *shortcut* work — store
  hits, in-flight dedup — never fire: every speedup below is coalescing
  alone;
* **baseline** — the identical workload against a ``max_batch=1`` server
  (coalescing disabled, one engine pass per shard-schedule);
* **gate** — coalesced throughput must be at least
  ``REPRO_BENCH_SERVE_FLOOR`` (default 3x) the baseline's, and every
  coalesced payload must be byte-identical to its baseline twin.

Besides the human-readable table, the run writes
``benchmarks/results/bench_serve.json`` (qps, p50/p99 latency, collator
counters per configuration) which CI uploads as a workflow artifact.
"""

import asyncio
import json
import time

from repro.analysis import format_table
from repro.scenarios.spec import ComparisonCase, ComparisonScenario, spec_dict
from repro.serve import FusionServer, FusionService

#: Every client shares this plan; only the seed differs per client.  The
#: n=9 multi-slot random row (the fused engine's design target, cf.
#: ``bench_fused_engine.py``): high per-pass cost, so small shards leave
#: plenty of fixed overhead for coalescing to amortize.
PLAN_CASE = ComparisonCase(
    label="bench",
    lengths=(5.0, 5.0, 5.0, 8.0, 8.0, 11.0, 14.0, 17.0, 20.0),
    fa=3,
    attacked_indices=(0, 4, 8),
    schedules=("random",),
)

#: Shards per request: each request's sample budget splits into this many
#: small engine passes, all sharing the plan key across clients.
SHARDS_PER_REQUEST = 16


def client_spec(seed: int, samples: int) -> ComparisonScenario:
    return ComparisonScenario(
        name=f"bench-serve-{seed}",
        cases=(PLAN_CASE,),
        samples=samples,
        shard_samples=max(10, samples // SHARDS_PER_REQUEST),
        engine="fused",
        seed=seed,
    )


async def _post_run(port: int, payload: dict) -> tuple[float, dict]:
    """One HTTP client: POST /v1/run, return (latency_seconds, response)."""
    body = json.dumps(payload).encode("utf-8")
    head = (
        "POST /v1/run HTTP/1.1\r\n"
        "Host: bench\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    ).encode("latin-1")
    start = time.perf_counter()
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(head + body)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        await writer.wait_closed()
    latency = time.perf_counter() - start
    header, _, response_body = raw.partition(b"\r\n\r\n")
    status = int(header.split(b" ", 2)[1])
    if status != 200:
        raise AssertionError(f"serve benchmark request failed: {raw[:200]!r}")
    return latency, json.loads(response_body)


async def _drive(max_batch: int, max_wait_ms: float, clients: int, samples: int) -> dict:
    """Run the full client burst against one server configuration."""
    service = FusionService(store=None, max_wait_ms=max_wait_ms, max_batch=max_batch)
    try:
        async with FusionServer(service, port=0) as server:
            payloads = [
                {"spec": spec_dict(client_spec(1_000 + index, samples))}
                for index in range(clients)
            ]
            start = time.perf_counter()
            outcomes = await asyncio.gather(
                *(_post_run(server.port, payload) for payload in payloads)
            )
            elapsed = time.perf_counter() - start
    finally:
        service.close()
    latencies = sorted(latency for latency, _ in outcomes)
    responses = [response for _, response in outcomes]
    assert len({response["key"] for response in responses}) == clients, (
        "distinct seeds must produce distinct result keys (no dedup/cache shortcuts)"
    )
    assert not any(response["cached"] or response["deduplicated"] for response in responses)
    return {
        "max_batch": max_batch,
        "max_wait_ms": max_wait_ms,
        "elapsed_seconds": elapsed,
        "requests_per_second": clients / elapsed,
        "latency_p50_seconds": latencies[len(latencies) // 2],
        "latency_p99_seconds": latencies[min(len(latencies) - 1, int(0.99 * (len(latencies) - 1)) + 1)],
        "collator": service.collator.stats(),
        "payloads": {response["name"]: response["payload"] for response in responses},
    }


def test_serving_coalescing_speedup(
    report_writer, json_report_writer, serve_clients, serve_samples, serve_coalescing_floor
):
    """64 identical-plan clients: coalescing must deliver the 3x floor."""

    async def bench() -> tuple[dict, dict]:
        baseline = await _drive(
            max_batch=1, max_wait_ms=0.0, clients=serve_clients, samples=serve_samples
        )
        coalesced = await _drive(
            max_batch=serve_clients, max_wait_ms=10.0, clients=serve_clients, samples=serve_samples
        )
        return baseline, coalesced

    baseline, coalesced = asyncio.run(bench())
    speedup = coalesced["requests_per_second"] / baseline["requests_per_second"]

    rows = [
        [
            label,
            f"{run['requests_per_second']:,.1f}",
            f"{run['latency_p50_seconds'] * 1e3:.1f}ms",
            f"{run['latency_p99_seconds'] * 1e3:.1f}ms",
            str(run["collator"]["batches"]),
            f"{run['collator']['max_batch_observed']}",
        ]
        for label, run in (("baseline (max_batch=1)", baseline), ("coalescing", coalesced))
    ]
    report_writer(
        "bench_serve",
        format_table(
            ["configuration", "req/s", "p50", "p99", "engine passes", "largest batch"],
            rows,
            title=(
                f"Fusion-as-a-service — {serve_clients} concurrent identical-plan "
                f"clients, {serve_samples:,} rounds each, speedup {speedup:.2f}x "
                f"(floor {serve_coalescing_floor:g}x)"
            ),
        ),
    )
    json_report_writer(
        "bench_serve",
        {
            "clients": serve_clients,
            "samples_per_request": serve_samples,
            "floor": serve_coalescing_floor,
            "speedup": speedup,
            "baseline": {key: value for key, value in baseline.items() if key != "payloads"},
            "coalesced": {key: value for key, value in coalesced.items() if key != "payloads"},
        },
    )

    # Assertions come *after* the reports, so a failing run still leaves
    # the table and the JSON behind for CI to upload and diagnose.
    assert coalesced["payloads"] == baseline["payloads"], (
        "coalescing changed served payload bytes — the run_many contract is broken"
    )
    assert coalesced["collator"]["batches"] < baseline["collator"]["batches"]
    assert speedup >= serve_coalescing_floor, (
        f"coalescing delivers only {speedup:.2f}x the no-batching baseline at "
        f"{serve_clients} identical-plan clients (floor: {serve_coalescing_floor}x)"
    )
