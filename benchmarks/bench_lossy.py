"""Fused vs batch engine throughput under a lossy channel.

Same shape as ``bench_fused_engine.py`` — the n=9 multi-slot row that
collapses the batch engine's per-slot loop — but with the channel on:
i.i.d. loss with delay and a retransmission budget, so every leg exercises
the masked fused kernels (per-slot visibility, received-subset fusion,
channel counters) rather than the dense complex-sorted sweeps.

Two assertions gate every run:

* **bit identity** — the fused engine's results (channel counters
  included) must equal the batch engine's array for array on every
  schedule and channel;
* **throughput floor** — on the lossy multi-slot random-schedule leg the
  fused engine must deliver at least ``REPRO_BENCH_LOSSY_FLOOR`` (default
  2x) the batch engine's rounds/sec.

Besides the human-readable table, the run writes
``benchmarks/results/bench_lossy.json`` (rates, speedups, loss counters
per leg) which CI uploads as a workflow artifact.
"""

import time

import numpy as np
import pytest

from repro.analysis import format_table
from repro.channel import ChannelSpec
from repro.engine import BatchEngine, FusedEngine
from repro.scheduling import (
    AscendingSchedule,
    DescendingSchedule,
    RandomSchedule,
    ScheduleComparisonConfig,
)

#: The same n=9 multi-slot row as ``bench_fused_engine.py``.
MULTI_SLOT_LENGTHS = (5.0, 5.0, 5.0, 8.0, 8.0, 11.0, 14.0, 17.0, 20.0)
MULTI_SLOT_FA = 3
MULTI_SLOT_ATTACKED = (0, 4, 8)

SCHEDULES = (AscendingSchedule(), DescendingSchedule(), RandomSchedule())
GATED_SCHEDULE = "random"

CHANNELS = {
    "iid-retx": ChannelSpec(model="iid", loss=0.2, retransmit_budget=2),
    "iid-delay": ChannelSpec(
        model="iid", loss=0.15, delay=0.3, max_delay=2, retransmit_budget=1
    ),
}
#: The gated leg's channel: loss + delay + retransmission together drive
#: every masked code path at once.
GATED_CHANNEL = "iid-delay"


def _config() -> ScheduleComparisonConfig:
    return ScheduleComparisonConfig(
        lengths=MULTI_SLOT_LENGTHS,
        fa=MULTI_SLOT_FA,
        attacked_indices=MULTI_SLOT_ATTACKED,
    )


def _best_rate(engine, schedule, channel, samples: int, repeats: int = 3):
    """Best-of-N rounds/sec for one engine on one lossy leg (plus a result)."""
    config = _config()
    best = float("inf")
    result = None
    for _ in range(repeats):
        rng = np.random.default_rng(0)
        start = time.perf_counter()
        result = engine.run_rounds(config, schedule, "stretch", None, samples, rng, channel)
        best = min(best, time.perf_counter() - start)
    return samples / best, result


def _assert_bit_identical(batch_result, fused_result, leg: str) -> None:
    for field in (
        "fusion_lo",
        "fusion_hi",
        "valid",
        "attacker_detected",
        "broadcast_lo",
        "broadcast_hi",
        "flagged",
        "channel_dropped",
        "channel_retransmits",
    ):
        np.testing.assert_array_equal(
            getattr(batch_result, field),
            getattr(fused_result, field),
            err_msg=f"fused != batch on {leg}/{field}",
        )


def test_lossy_fused_speedup(report_writer, json_report_writer, batch_samples, lossy_speedup_floor):
    """Fused vs batch on the lossy n=9 multi-slot row: parity plus the 2x floor."""
    batch_engine = BatchEngine()
    fused_engine = FusedEngine()
    rows = []
    legs = {}
    parity = []
    for channel_name, channel in CHANNELS.items():
        for schedule in SCHEDULES:
            leg = f"{channel_name}/{schedule.name}"
            batch_rate, batch_result = _best_rate(batch_engine, schedule, channel, batch_samples)
            fused_rate, fused_result = _best_rate(fused_engine, schedule, channel, batch_samples)
            parity.append((batch_result, fused_result, leg))
            speedup = fused_rate / batch_rate
            gated = channel_name == GATED_CHANNEL and schedule.name == GATED_SCHEDULE
            legs[leg] = {
                "channel": channel.to_dict(),
                "batch_rounds_per_second": batch_rate,
                "fused_rounds_per_second": fused_rate,
                "speedup": speedup,
                "samples": batch_samples,
                "dropped_total": int(fused_result.channel_dropped.sum()),
                "retransmits_total": int(fused_result.channel_retransmits.sum()),
            }
            rows.append(
                [
                    leg,
                    f"{batch_rate:,.0f}",
                    f"{fused_rate:,.0f}",
                    f"{speedup:.2f}x",
                    f"{legs[leg]['dropped_total']:,}",
                    "yes" if gated else "",
                ]
            )
    report_writer(
        "bench_lossy",
        format_table(
            ["channel/schedule", "batch rounds/s", "fused rounds/s", "speedup", "dropped", "gated"],
            rows,
            title=(
                "Fused vs batch engine under a lossy channel — n=9 multi-slot row "
                f"(fa={MULTI_SLOT_FA}, attacked={MULTI_SLOT_ATTACKED}, "
                f"{batch_samples:,} rounds per leg, bit-identical results)"
            ),
        ),
    )
    json_report_writer(
        "bench_lossy",
        {
            "row": {
                "lengths": list(MULTI_SLOT_LENGTHS),
                "fa": MULTI_SLOT_FA,
                "attacked_indices": list(MULTI_SLOT_ATTACKED),
            },
            "gated_leg": f"{GATED_CHANNEL}/{GATED_SCHEDULE}",
            "floor": lossy_speedup_floor,
            "legs": legs,
        },
    )
    # Assertions come *after* the reports, so a failing run still leaves
    # the table and the JSON behind for CI to upload and diagnose.
    for batch_result, fused_result, leg in parity:
        _assert_bit_identical(batch_result, fused_result, leg)
    gated_speedup = legs[f"{GATED_CHANNEL}/{GATED_SCHEDULE}"]["speedup"]
    assert gated_speedup >= lossy_speedup_floor, (
        f"fused engine is only {gated_speedup:.2f}x the batch engine on the lossy "
        f"n=9 multi-slot {GATED_SCHEDULE} row (floor: {lossy_speedup_floor}x)"
    )


@pytest.mark.parametrize("schedule", SCHEDULES, ids=lambda s: s.name)
def test_lossy_fused_benchmark(benchmark, schedule, batch_samples):
    """pytest-benchmark timing of the fused engine per lossy schedule leg."""
    engine = FusedEngine()
    config = _config()
    channel = CHANNELS[GATED_CHANNEL]

    def run():
        return engine.run_rounds(
            config, schedule, "stretch", None, batch_samples, np.random.default_rng(0), channel
        )

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    assert result.channel_dropped.sum() > 0
