"""Ablation — sensitivity of the fusion interval to the fault bound ``f``.

The paper fixes ``f = ceil(n/2) - 1`` (the most conservative safe choice).
This ablation quantifies the trade-off that choice makes: a larger ``f``
inflates the fusion interval (less precision) but tolerates more compromised
sensors; an under-provisioned ``f`` (smaller than the number of actually
attacked sensors) can exclude the true value from the fusion interval.
"""

import numpy as np

from repro.analysis import format_table
from repro.attack import ExpectationPolicy
from repro.core import Interval, fuse
from repro.scheduling import DescendingSchedule, RoundConfig, run_round
from repro.sensors import SensorSuite, UniformNoise, sensors_from_widths

WIDTHS = [0.5, 1.0, 2.0, 4.0, 8.0]
ROUNDS = 300


def _sweep_f():
    suite = SensorSuite(sensors_from_widths(WIDTHS, noise=UniformNoise()))
    rows = []
    stats = {}
    for f in (0, 1, 2):
        rng = np.random.default_rng(f)
        attack_rng = np.random.default_rng(100 + f)
        widths = []
        containment = 0
        for _ in range(ROUNDS):
            readings = suite.measure_all(0.0, rng)
            correct = [r.interval for r in readings]
            if f == 0:
                # No tolerance for compromised sensors: fuse the raw readings.
                fusion = fuse(correct, 0)
            else:
                result = run_round(
                    correct,
                    RoundConfig(
                        schedule=DescendingSchedule(),
                        attacked_indices=(0,),
                        policy=ExpectationPolicy(true_value_positions=2, placement_positions=2),
                        f=f,
                    ),
                    attack_rng,
                )
                fusion = result.fusion
            widths.append(fusion.width)
            containment += fusion.contains(0.0)
        stats[f] = (float(np.mean(widths)), containment / ROUNDS)
        rows.append([f"f = {f}", f"{stats[f][0]:.3f}", f"{stats[f][1]:.2%}"])
    return rows, stats


def test_ablation_fault_bound(benchmark, report_writer):
    rows, stats = benchmark.pedantic(_sweep_f, iterations=1, rounds=1)
    report_writer(
        "ablation_fault_bound",
        format_table(
            ["fault bound", "mean fusion width", "true value contained"],
            rows,
            title=f"Fault-bound ablation — widths {WIDTHS}, one attacked sensor, {ROUNDS} rounds",
        ),
    )
    # Larger f → wider fusion interval (the price of resilience).
    assert stats[0][0] <= stats[1][0] <= stats[2][0] + 1e-9
    # With f >= fa the fusion interval always contains the true value.
    assert stats[1][1] == 1.0
    assert stats[2][1] == 1.0


def test_ablation_under_provisioned_f_loses_guarantee(benchmark, report_writer):
    """With fa > f the fusion interval can exclude the true value entirely."""
    correct = [Interval(-0.25, 0.25), Interval(-0.5, 0.5), Interval(-1.0, 1.0)]
    # Two forged intervals far away from the truth against f = 1: the forged
    # cluster outvotes the correct sensors' region.
    forged = [Interval(4.0, 5.0), Interval(4.2, 5.2)]
    fusion = benchmark(fuse, correct[:1] + forged, 1)
    assert not fusion.contains(0.0)
    report_writer(
        "ablation_under_provisioned_f",
        "Under-provisioned fault bound: with fa=2 > f=1 the fusion interval "
        f"{fusion} excludes the true value 0.0 — the f < ceil(n/2) guarantee only "
        "holds when at most f sensors are compromised.",
    )
