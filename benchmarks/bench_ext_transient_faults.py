"""Extension — transient faults and windowed detection (paper's future work).

The paper's footnote 1 and conclusion sketch an extension in which honest
sensors may suffer random transient faults and a sensor is only treated as
compromised if it is flagged more than ``f_w`` times within a window of ``w``
rounds.  This benchmark quantifies the benefit of that windowed rule over the
memoryless one:

* honest sensors glitch transiently with a small per-round probability;
* one sensor is a persistent (naive, detectable) spoofer;
* the *memoryless* policy (window 1, zero budget) discards a sensor on its
  first flag — it catches the spoofer instantly but also permanently discards
  honest sensors after their first glitch;
* the *windowed* policy (window 10, budget 3) still discards the spoofer
  within a handful of rounds while honest sensors survive their glitches.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import WindowedFusionPipeline
from repro.sensors import FaultySensor, SensorSuite, TransientFaultModel, sensors_from_widths

N_ROUNDS = 400
FAULT_PROBABILITY = 0.02
WIDTHS = [0.5, 1.0, 1.5, 2.0, 4.0]
SPOOFER_INDEX = 0
SPOOF_OFFSET = 10.0
TRUE_VALUE = 10.0


def _build_suite() -> SensorSuite:
    sensors = sensors_from_widths(WIDTHS)
    faulty = [
        FaultySensor(sensor, TransientFaultModel(probability=FAULT_PROBABILITY))
        for sensor in sensors
    ]
    return SensorSuite(faulty)


def _simulate(window: int, max_flags: int, seed: int = 0):
    """Return (honest sensors discarded, rounds until the spoofer is discarded)."""
    suite = _build_suite()
    pipeline = WindowedFusionPipeline(len(suite), window=window, max_flags=max_flags)
    rng = np.random.default_rng(seed)
    spoofer_discarded_at = None
    for round_index in range(N_ROUNDS):
        readings = suite.measure_all(TRUE_VALUE, rng)
        intervals = [reading.interval for reading in readings]
        # The spoofer ignores its reading and reports a far-away interval
        # (until it has been discarded, after which its slot is ignored anyway).
        intervals[SPOOFER_INDEX] = intervals[SPOOFER_INDEX].shift(SPOOF_OFFSET)
        outcome = pipeline.process_round(intervals)
        if spoofer_discarded_at is None and outcome.is_discarded(SPOOFER_INDEX):
            spoofer_discarded_at = round_index + 1
    discarded_honest = sorted(set(pipeline.detector.discarded) - {SPOOFER_INDEX})
    return discarded_honest, spoofer_discarded_at


def test_ext_transient_faults_windowed_detection(benchmark, report_writer):
    policies = [
        ("memoryless (w=1, budget 0)", 1, 0),
        ("windowed (w=10, budget 3)", 10, 3),
    ]

    def sweep():
        return {name: _simulate(window, budget) for name, window, budget in policies}

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)

    rows = []
    for name, _window, _budget in policies:
        discarded_honest, spoofer_at = results[name]
        rows.append(
            [
                name,
                str(len(discarded_honest)),
                "never" if spoofer_at is None else f"round {spoofer_at}",
            ]
        )
    report_writer(
        "ext_transient_faults",
        format_table(
            ["detection policy", "honest sensors discarded", "spoofer discarded"],
            rows,
            title=(
                f"Windowed detection extension — {N_ROUNDS} rounds, "
                f"{FAULT_PROBABILITY:.0%} transient fault rate per honest sensor"
            ),
        ),
    )

    memoryless_honest, memoryless_spoofer = results["memoryless (w=1, budget 0)"]
    windowed_honest, windowed_spoofer = results["windowed (w=10, budget 3)"]
    # Both policies catch the persistent spoofer quickly...
    assert memoryless_spoofer is not None and memoryless_spoofer <= 2
    assert windowed_spoofer is not None and windowed_spoofer <= 20
    # ...but only the windowed policy keeps the transiently-glitching honest
    # sensors in service.
    assert len(memoryless_honest) > 0
    assert len(windowed_honest) == 0
