"""Ablation — how much does attacker sophistication matter?

DESIGN.md calls out the attacker policy as the main modelling degree of
freedom of the reproduction.  This benchmark fixes one Table I configuration
and one schedule (Descending, the attacker-friendly one) and sweeps the
attacker from harmless to omniscient:

truthful < random admissible < greedy < expectation (conservative)
        <= expectation (faithful) <= omniscient (problem (1) upper bound)

The expected fusion width must be monotone along that ordering (up to small
estimation noise), which both validates the policy implementations and shows
where the paper's "reasonable" attacker sits between the extremes.
"""

import numpy as np

from repro.analysis import format_table
from repro.attack import (
    ExpectationPolicy,
    GreedyExtendPolicy,
    OmniscientPolicy,
    RandomAdmissiblePolicy,
    TruthfulPolicy,
)
from repro.scheduling import (
    DescendingSchedule,
    ScheduleComparisonConfig,
    expected_fusion_width_exhaustive,
)

CONFIG = ScheduleComparisonConfig(lengths=(5.0, 11.0, 17.0), fa=1, positions=4)

POLICIES = (
    ("truthful", lambda: TruthfulPolicy(), False),
    ("random admissible", lambda: RandomAdmissiblePolicy(), False),
    ("greedy", lambda: GreedyExtendPolicy(), False),
    ("expectation (conservative)", lambda: ExpectationPolicy(conservative=True), False),
    ("expectation (faithful)", lambda: ExpectationPolicy(), False),
    ("omniscient (problem 1)", lambda: OmniscientPolicy(), True),
)


def _sweep():
    rows = []
    widths = {}
    for name, factory, needs_oracle in POLICIES:
        row = expected_fusion_width_exhaustive(
            CONFIG,
            DescendingSchedule(),
            factory(),
            rng=np.random.default_rng(0),
            give_oracle=needs_oracle,
        )
        widths[name] = row.expected_width
        rows.append([name, f"{row.expected_width:.2f}", f"{row.detected_fraction:.2%}"])
    return rows, widths


def test_ablation_attacker_strength(benchmark, report_writer):
    rows, widths = benchmark.pedantic(_sweep, iterations=1, rounds=1)
    report_writer(
        "ablation_attacker_strength",
        format_table(
            ["attacker policy", "E|S| (descending)", "detected"],
            rows,
            title=f"Attacker-strength ablation — L={CONFIG.lengths}, fa={CONFIG.fa}, f={CONFIG.resolved_f}",
        ),
    )
    assert widths["truthful"] <= widths["greedy"] + 1e-9
    assert widths["greedy"] <= widths["expectation (faithful)"] + 1e-9
    assert widths["expectation (conservative)"] <= widths["expectation (faithful)"] + 1e-9
    assert widths["expectation (faithful)"] <= widths["omniscient (problem 1)"] + 1e-6
    # The truthful attacker defines the no-attack baseline; every stealthy
    # attacker must sit between it and the omniscient upper bound.
    for name in ("random admissible", "greedy", "expectation (faithful)"):
        assert widths["truthful"] - 1e-9 <= widths[name] <= widths["omniscient (problem 1)"] + 1e-6
