"""Figure 4 — Theorems 3 and 4: which attacked set achieves the worst case.

The benchmark runs the exhaustive worst-case placement search for a
three-sensor configuration and reports, for every possible attacked set of
size ``fa = 1``, the largest achievable fusion width.  The paper's claims:

* attacking the largest interval does not change the worst case (Theorem 3);
* the global worst case is achieved by attacking the smallest interval
  (Theorem 4).
"""

import pytest

from repro.analysis import format_table
from repro.core.worst_case import worst_case_no_attack, worst_case_over_attacked_sets

WIDTHS = [2.0, 4.0, 8.0]
F = 1
RESOLUTION = 0.5


def _worst_case_table():
    baseline = worst_case_no_attack(WIDTHS, F, resolution=RESOLUTION)
    per_set = worst_case_over_attacked_sets(WIDTHS, fa=1, f=F, resolution=RESOLUTION)
    rows = [["no attack", f"{baseline.width:.2f}"]]
    for attacked, result in sorted(per_set.items()):
        label = ", ".join(f"width {WIDTHS[i]:g}" for i in attacked)
        rows.append([f"attack {label}", f"{result.width:.2f}"])
    return baseline, per_set, rows


def test_fig4_worst_case_by_attacked_set(benchmark, report_writer):
    baseline, per_set, rows = benchmark(_worst_case_table)
    report_writer(
        "fig4_worst_case",
        format_table(
            ["configuration", "worst-case fusion width"],
            rows,
            title=f"Figure 4 / Theorems 3 & 4 — widths {WIDTHS}, f = {F}",
        ),
    )
    largest_attack = per_set[(2,)]
    smallest_attack = per_set[(0,)]
    global_worst = max(result.width for result in per_set.values())
    # Theorem 3: attacking the largest interval does not beat the no-attack worst case.
    assert largest_attack.width == pytest.approx(baseline.width, abs=1e-9)
    # Theorem 4: attacking the smallest interval achieves the global worst case.
    assert smallest_attack.width == pytest.approx(global_worst, abs=1e-9)
    # Attacking a precise sensor strictly increases the worst case here.
    assert smallest_attack.width > baseline.width + 1e-9
