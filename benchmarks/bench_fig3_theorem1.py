"""Figure 3 — the two cases of Theorem 1 (optimal attacks with partial knowledge).

For each case the benchmark builds a configuration satisfying the theorem's
sufficient condition, constructs the prescribed placements, and verifies that
for *every* discretised realisation of the unseen correct interval the
achieved fusion width equals the full-knowledge optimum of problem (1) —
which is exactly what "an optimal attack policy exists" means.
"""


from repro.analysis import format_table
from repro.attack import (
    Theorem1Inputs,
    case1_applies,
    case1_placements,
    case2_applies,
    case2_placements,
    optimal_fusion_width,
)
from repro.core import Interval, fuse
from repro.scheduling import correct_placement_grid


def _case1_inputs() -> Theorem1Inputs:
    return Theorem1Inputs(
        n=4,
        f=1,
        seen_correct=(Interval(4.0, 6.0), Interval(4.0, 6.0)),
        delta=Interval(4.5, 5.5),
        attacked_widths=(8.0,),
        unseen_correct_widths=(1.0,),
    )


def _case2_inputs() -> Theorem1Inputs:
    return Theorem1Inputs(
        n=4,
        f=1,
        seen_correct=(Interval(2.0, 6.0), Interval(5.0, 9.0)),
        delta=Interval(5.2, 5.8),
        attacked_widths=(8.0,),
        unseen_correct_widths=(0.1,),
    )


def _verify_case(inputs: Theorem1Inputs, placements, true_value: float, positions: int = 9):
    """Return (rows, all_optimal) comparing achieved vs optimal per realisation."""
    rows = []
    all_optimal = True
    unseen_width = inputs.unseen_correct_widths[0]
    for unseen in correct_placement_grid(unseen_width, true_value, positions):
        correct = list(inputs.seen_correct) + [unseen]
        achieved = fuse(correct + list(placements), inputs.f).width
        optimum = optimal_fusion_width(correct, list(inputs.attacked_widths), inputs.f)
        all_optimal &= abs(achieved - optimum) < 1e-9
        rows.append([f"unseen at [{unseen.lo:.2f}, {unseen.hi:.2f}]", achieved, optimum])
    return rows, all_optimal


def test_fig3_case1_partial_knowledge_attack_is_optimal(benchmark, report_writer):
    inputs = _case1_inputs()
    assert case1_applies(inputs)
    placements = case1_placements(inputs)
    rows, all_optimal = benchmark(lambda: _verify_case(inputs, placements, true_value=5.0))
    report_writer(
        "fig3_theorem1_case1",
        format_table(
            ["realisation of unseen s3", "achieved width", "optimal width"],
            rows,
            title="Figure 3(a) / Theorem 1 case 1 — attack on both sides of the seen intervals",
        ),
    )
    assert all_optimal


def test_fig3_case2_partial_knowledge_attack_is_optimal(benchmark, report_writer):
    inputs = _case2_inputs()
    assert case2_applies(inputs)
    placements = case2_placements(inputs)
    rows, all_optimal = benchmark(lambda: _verify_case(inputs, placements, true_value=5.5))
    report_writer(
        "fig3_theorem1_case2",
        format_table(
            ["realisation of unseen s3", "achieved width", "optimal width"],
            rows,
            title="Figure 3(b) / Theorem 1 case 2 — cover [l_{n-f-fa}, u_{n-f-fa}]",
        ),
    )
    assert all_optimal
