"""Micro-benchmarks of the core primitives, scalar and batched.

Not a paper table — these benchmarks document the cost of the building blocks
(fusion sweep, coverage profile, detection, one simulated round) so that
regressions in the inner loops of the experiment harnesses are caught.  The
batched counterparts from :mod:`repro.batch` run the same workloads over all
rounds at once; ``test_batch_fuse_speedup_report`` records the headline
scalar-versus-batch throughput ratio and fails if vectorization ever degrades
below 10x at the reference point (n=9, B=10 000).
"""

import time

import numpy as np
import pytest

from repro.analysis import format_table
from repro.attack import ExpectationPolicy
from repro.batch import (
    ActiveStretchBatchAttacker,
    BatchRoundConfig,
    batch_detect,
    batch_fuse,
    monte_carlo_rounds,
)
from repro.core import Interval, coverage_profile, detect, fuse
from repro.scheduling import DescendingSchedule, RoundConfig, run_round

SPEEDUP_N = 9
SPEEDUP_BATCH = 10_000


def _random_intervals(n: int, seed: int = 0) -> list[Interval]:
    rng = np.random.default_rng(seed)
    intervals = []
    for _ in range(n):
        width = float(rng.uniform(0.5, 5.0))
        lo = -width * float(rng.uniform(0.0, 1.0))
        intervals.append(Interval(lo, lo + width))
    return intervals


def _random_bounds(batch: int, n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    widths = rng.uniform(0.5, 5.0, (batch, n))
    lowers = -widths * rng.uniform(0.0, 1.0, (batch, n))
    return lowers, lowers + widths


@pytest.mark.parametrize("n", [8, 64, 512])
def test_scaling_fuse(benchmark, n):
    intervals = _random_intervals(n)
    fusion = benchmark(fuse, intervals, (n + 1) // 2 - 1)
    assert fusion.contains(0.0)


@pytest.mark.parametrize("n", [8, 64, 512])
def test_scaling_coverage_profile(benchmark, n):
    intervals = _random_intervals(n)
    profile = benchmark(coverage_profile, intervals)
    assert max(segment.coverage for segment in profile) <= n


def test_scaling_detection(benchmark):
    intervals = _random_intervals(256)
    fusion = fuse(intervals, 127)
    result = benchmark(detect, intervals, fusion)
    assert not result.any_flagged


@pytest.mark.parametrize("batch", [1_000, 10_000, 100_000])
def test_scaling_batch_fuse(benchmark, batch):
    lowers, uppers = _random_bounds(batch, SPEEDUP_N)
    result = benchmark(batch_fuse, lowers, uppers, (SPEEDUP_N + 1) // 2 - 1)
    assert result.valid.all()
    assert (result.lo <= 0.0).all() and (result.hi >= 0.0).all()


def test_scaling_batch_detect(benchmark):
    lowers, uppers = _random_bounds(10_000, SPEEDUP_N)
    fusion = batch_fuse(lowers, uppers, (SPEEDUP_N + 1) // 2 - 1)
    flagged = benchmark(batch_detect, lowers, uppers, fusion)
    assert not flagged.any()


def test_scaling_batch_attacked_rounds(benchmark):
    config = BatchRoundConfig(
        schedule=DescendingSchedule(),
        attacked_indices=(0,),
        attacker=ActiveStretchBatchAttacker(),
        f=2,
    )

    def run():
        return monte_carlo_rounds(
            (1.0, 2.0, 3.0, 4.0, 5.0), config, samples=10_000, rng=np.random.default_rng(0)
        )

    result = benchmark(run)
    assert result.fusion.valid.all()
    assert not result.attacker_detected.any()


def test_batch_fuse_speedup_report(report_writer, speedup_floor):
    """Scalar-vs-batch fusion throughput at the reference point (n=9, B=10k)."""
    f = (SPEEDUP_N + 1) // 2 - 1
    lowers, uppers = _random_bounds(SPEEDUP_BATCH, SPEEDUP_N)
    rows = [
        [Interval(lowers[b, i], uppers[b, i]) for i in range(SPEEDUP_N)]
        for b in range(SPEEDUP_BATCH)
    ]

    start = time.perf_counter()
    for row in rows:
        fuse(row, f)
    scalar_seconds = time.perf_counter() - start

    batch_seconds = min(
        _timed(lambda: batch_fuse(lowers, uppers, f)) for _ in range(7)
    )
    speedup = scalar_seconds / batch_seconds
    report_writer(
        "core_batch_speedup",
        format_table(
            ["path", "seconds", "rounds/s"],
            [
                ["scalar fuse loop", f"{scalar_seconds:.4f}", f"{SPEEDUP_BATCH / scalar_seconds:,.0f}"],
                ["batch_fuse", f"{batch_seconds:.4f}", f"{SPEEDUP_BATCH / batch_seconds:,.0f}"],
                ["speedup", f"{speedup:.1f}x", ""],
            ],
            title=f"Marzullo fusion throughput — n={SPEEDUP_N}, B={SPEEDUP_BATCH:,}",
        ),
    )
    assert speedup >= speedup_floor, (
        f"batch fusion is only {speedup:.1f}x faster than the scalar loop "
        f"(floor: {speedup_floor}x at n={SPEEDUP_N}, B={SPEEDUP_BATCH})"
    )


def _timed(thunk) -> float:
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


def test_scaling_attacked_round(benchmark):
    correct = _random_intervals(5, seed=3)
    config = RoundConfig(
        schedule=DescendingSchedule(),
        attacked_indices=(0,),
        policy=ExpectationPolicy(true_value_positions=2, placement_positions=2),
        f=2,
    )

    def run():
        return run_round(correct, config, np.random.default_rng(0))

    result = benchmark(run)
    assert result.fusion.contains(0.0)
