"""Micro-benchmarks of the core primitives.

Not a paper table — these benchmarks document the cost of the building blocks
(fusion sweep, coverage profile, detection, one simulated round) so that
regressions in the inner loops of the experiment harnesses are caught.
"""

import numpy as np
import pytest

from repro.attack import ExpectationPolicy
from repro.core import Interval, coverage_profile, detect, fuse
from repro.scheduling import DescendingSchedule, RoundConfig, run_round


def _random_intervals(n: int, seed: int = 0) -> list[Interval]:
    rng = np.random.default_rng(seed)
    intervals = []
    for _ in range(n):
        width = float(rng.uniform(0.5, 5.0))
        lo = -width * float(rng.uniform(0.0, 1.0))
        intervals.append(Interval(lo, lo + width))
    return intervals


@pytest.mark.parametrize("n", [8, 64, 512])
def test_scaling_fuse(benchmark, n):
    intervals = _random_intervals(n)
    fusion = benchmark(fuse, intervals, (n + 1) // 2 - 1)
    assert fusion.contains(0.0)


@pytest.mark.parametrize("n", [8, 64, 512])
def test_scaling_coverage_profile(benchmark, n):
    intervals = _random_intervals(n)
    profile = benchmark(coverage_profile, intervals)
    assert max(segment.coverage for segment in profile) <= n


def test_scaling_detection(benchmark):
    intervals = _random_intervals(256)
    fusion = fuse(intervals, 127)
    result = benchmark(detect, intervals, fusion)
    assert not result.any_flagged


def test_scaling_attacked_round(benchmark):
    correct = _random_intervals(5, seed=3)
    config = RoundConfig(
        schedule=DescendingSchedule(),
        attacked_indices=(0,),
        policy=ExpectationPolicy(true_value_positions=2, placement_positions=2),
        f=2,
    )

    def run():
        return run_round(correct, config, np.random.default_rng(0))

    result = benchmark(run)
    assert result.fusion.contains(0.0)
