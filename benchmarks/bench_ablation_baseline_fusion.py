"""Ablation — Marzullo-based fusion vs conventional baselines under spoofing.

The paper's motivation for interval fusion is resilience: a compromised
sensor must not be able to drag the controller's estimate arbitrarily.  This
ablation injects a spoofed encoder reading displaced by an increasing bias
into the LandShark sensor suite and compares the point-estimate error of

* the midpoint of Marzullo's fusion interval (what the paper's controller uses),
* the Brooks–Iyengar weighted estimate (the paper's reference [6]),
* the coordinate-wise median of the interval bounds,
* the naive mean of the interval bounds.

The Marzullo and Brooks–Iyengar errors are bounded by the fusion-width
guarantee no matter how large the bias is (with ``f = 1 < ceil(n/3)`` the
fusion width never exceeds the width of some correct interval, 2 mph here);
the naive mean degrades linearly with the bias.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import brooks_iyengar, mean_fusion, median_fusion
from repro.sensors import SensorSuite, UniformNoise, sensors_from_widths

WIDTHS = [0.2, 0.2, 1.0, 2.0]  # encoder, encoder, GPS, camera
SPOOFED_INDEX = 0
TRUE_VALUE = 10.0
ROUNDS = 300
BIASES = (0.5, 2.0, 10.0)


def _simulate():
    suite = SensorSuite(sensors_from_widths(WIDTHS, noise=UniformNoise()))
    rng = np.random.default_rng(0)
    stats: dict[float, dict[str, float]] = {}
    for bias in BIASES:
        errors: dict[str, list[float]] = {
            "marzullo midpoint": [],
            "brooks-iyengar": [],
            "median": [],
            "mean": [],
        }
        for _ in range(ROUNDS):
            readings = suite.measure_all(TRUE_VALUE, rng)
            intervals = [reading.interval for reading in readings]
            intervals[SPOOFED_INDEX] = intervals[SPOOFED_INDEX].shift(bias)
            marzullo_result = brooks_iyengar(intervals, 1)
            errors["marzullo midpoint"].append(abs(marzullo_result.interval.center - TRUE_VALUE))
            errors["brooks-iyengar"].append(abs(marzullo_result.estimate - TRUE_VALUE))
            errors["median"].append(abs(median_fusion(intervals).center - TRUE_VALUE))
            errors["mean"].append(abs(mean_fusion(intervals).center - TRUE_VALUE))
        stats[bias] = {name: float(np.mean(values)) for name, values in errors.items()}
    return stats


def test_ablation_baseline_fusion_resilience(benchmark, report_writer):
    stats = benchmark.pedantic(_simulate, iterations=1, rounds=1)
    estimators = ("marzullo midpoint", "brooks-iyengar", "median", "mean")
    rows = [
        [f"bias = {bias:g} mph", *(f"{stats[bias][name]:.3f}" for name in estimators)]
        for bias in BIASES
    ]
    report_writer(
        "ablation_baseline_fusion",
        format_table(
            ["spoofed encoder bias", *estimators],
            rows,
            title=(
                f"Mean |estimate - truth| (mph) over {ROUNDS} rounds — LandShark widths, "
                "one encoder spoofed by a constant bias, f = 1"
            ),
        ),
    )
    largest = BIASES[-1]
    # The interval-fusion estimators are bounded by Marzullo's width guarantee
    # (fusion width <= some correct width = 2 mph, so midpoint error <= 1 mph)...
    assert stats[largest]["marzullo midpoint"] <= 1.0 + 1e-9
    assert stats[largest]["brooks-iyengar"] <= 1.0 + 1e-9
    # ...while the naive mean degrades with the bias and is far worse for a
    # large spoof.
    assert stats[BIASES[0]]["mean"] < stats[largest]["mean"]
    assert stats[largest]["mean"] > 2.0 * stats[largest]["marzullo midpoint"]
