"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Besides the
timing collected by ``pytest-benchmark``, each benchmark writes the
reproduced table to ``benchmarks/results/<name>.txt`` (and echoes it to
stdout) so the paper-versus-measured comparison in ``EXPERIMENTS.md`` can be
refreshed from the files in that directory.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def _positions_from_env(default: int) -> int:
    """Resolution knob shared by the exhaustive benchmarks.

    ``REPRO_BENCH_POSITIONS`` trades fidelity for runtime: the paper uses a
    fine discretisation of the real line; the default here keeps the full
    Table I under a minute.
    """
    value = os.environ.get("REPRO_BENCH_POSITIONS", "")
    try:
        return max(2, int(value)) if value else default
    except ValueError:
        return default


@pytest.fixture(scope="session")
def bench_positions() -> int:
    """Grid positions per sensor for exhaustive enumerations (default 4)."""
    return _positions_from_env(4)


@pytest.fixture(scope="session")
def batch_samples() -> int:
    """Monte-Carlo trials per schedule for the batched sweeps (default 100 000)."""
    value = os.environ.get("REPRO_BENCH_BATCH_SAMPLES", "")
    try:
        return max(1_000, int(value)) if value else 100_000
    except ValueError:
        return 100_000


@pytest.fixture(scope="session")
def expectation_samples() -> int:
    """Monte-Carlo trials per schedule for the batched *exact* expectation
    attacker (default 1 000, floor 1 000 — the acceptance scale for the
    vectorized problem (2) sweeps).  ``REPRO_BENCH_EXPECTATION_SAMPLES``
    raises it for publication-grade statistics; the exact attacker costs far
    more per round than the greedy stretch attacker, so the default is three
    orders of magnitude below ``REPRO_BENCH_BATCH_SAMPLES``.
    """
    value = os.environ.get("REPRO_BENCH_EXPECTATION_SAMPLES", "")
    try:
        return max(1_000, int(value)) if value else 1_000
    except ValueError:
        return 1_000


@pytest.fixture(scope="session")
def case_study_steps() -> int:
    """Control periods per schedule for the Table II benchmark (default 300)."""
    value = os.environ.get("REPRO_BENCH_STEPS", "")
    try:
        return max(10, int(value)) if value else 300
    except ValueError:
        return 300


@pytest.fixture(scope="session")
def case_study_replicas() -> int:
    """Parallel platoon replicas for the batched Table II benchmark (default 32).

    ``REPRO_BENCH_REPLICAS`` scales the batched case study's round count
    (``replicas × vehicles × steps``); the CI smoke job uses a tiny value.
    """
    value = os.environ.get("REPRO_BENCH_REPLICAS", "")
    try:
        return max(1, int(value)) if value else 32
    except ValueError:
        return 32


@pytest.fixture(scope="session")
def speedup_floor() -> float:
    """Required batch-vs-scalar throughput ratio for regression gates (default 10x).

    ``REPRO_BENCH_SPEEDUP_FLOOR`` loosens the gates on noisy shared runners
    (CI smoke uses 5) without giving up the regression guard entirely.
    Shared by the fusion-kernel and case-study speedup benchmarks.
    """
    value = os.environ.get("REPRO_BENCH_SPEEDUP_FLOOR", "")
    try:
        return float(value) if value else 10.0
    except ValueError:
        return 10.0


@pytest.fixture(scope="session")
def fused_speedup_floor() -> float:
    """Required fused-vs-batch throughput ratio on the multi-slot row (default 3x).

    ``REPRO_BENCH_FUSED_FLOOR`` loosens the gate on noisy shared runners;
    the reference machine shows ~3.5x on the n=9 multi-slot random row.
    """
    value = os.environ.get("REPRO_BENCH_FUSED_FLOOR", "")
    try:
        return float(value) if value else 3.0
    except ValueError:
        return 3.0


@pytest.fixture(scope="session")
def lossy_speedup_floor() -> float:
    """Required fused-vs-batch ratio on the lossy multi-slot row (default 2x).

    ``REPRO_BENCH_LOSSY_FLOOR`` loosens the gate on noisy shared runners.
    The floor is below the channel-free fused gate (3x): under a channel
    the fused driver swaps its complex-sorted sweeps for masked extremes,
    which gives some of the edge back.
    """
    value = os.environ.get("REPRO_BENCH_LOSSY_FLOOR", "")
    try:
        return float(value) if value else 2.0
    except ValueError:
        return 2.0


@pytest.fixture(scope="session")
def numba_speedup_floor() -> float:
    """Required numba-vs-fused throughput ratio on the multi-slot row (default 5x).

    ``REPRO_BENCH_NUMBA_FLOOR`` loosens the gate on noisy shared runners
    (the CI numba job uses a smoke-scale floor); the reference machine
    clears 5x comfortably on the n=9 multi-slot random row at 10⁷ samples.
    """
    value = os.environ.get("REPRO_BENCH_NUMBA_FLOOR", "")
    try:
        return float(value) if value else 5.0
    except ValueError:
        return 5.0


@pytest.fixture(scope="session")
def numba_samples() -> int:
    """Monte-Carlo rounds per leg for the numba benchmark (default 10 000 000).

    The acceptance scale is 10⁷ rounds per row — far beyond what a single
    resident ``(B, n)`` batch should hold, so the benchmark streams chunks
    and sums the in-kernel time.  ``REPRO_BENCH_NUMBA_SAMPLES`` scales it
    down for CI smoke runs (floor 10 000).
    """
    value = os.environ.get("REPRO_BENCH_NUMBA_SAMPLES", "")
    try:
        return max(10_000, int(value)) if value else 10_000_000
    except ValueError:
        return 10_000_000


@pytest.fixture(scope="session")
def serve_coalescing_floor() -> float:
    """Required coalescing-vs-baseline serving throughput ratio (default 3x).

    ``REPRO_BENCH_SERVE_FLOOR`` loosens the gate on noisy shared runners;
    the reference machine shows well above 3x at 64 identical-plan clients.
    """
    value = os.environ.get("REPRO_BENCH_SERVE_FLOOR", "")
    try:
        return float(value) if value else 3.0
    except ValueError:
        return 3.0


@pytest.fixture(scope="session")
def serve_clients() -> int:
    """Concurrent identical-plan clients for the serving benchmark (default 64)."""
    value = os.environ.get("REPRO_BENCH_SERVE_CLIENTS", "")
    try:
        return max(8, int(value)) if value else 64
    except ValueError:
        return 64


@pytest.fixture(scope="session")
def serve_samples() -> int:
    """Monte-Carlo rounds per served request (default 400, floor 100).

    Split into 16 small shards per request — the many-small-passes regime
    dynamic batching exists for.  Raising this towards ~10⁴ shifts requests
    into per-round-dominated territory where coalescing (by design) matters
    less.
    """
    value = os.environ.get("REPRO_BENCH_SERVE_SAMPLES", "")
    try:
        return max(100, int(value)) if value else 400
    except ValueError:
        return 400


@pytest.fixture(scope="session")
def optimize_packing_floor() -> float:
    """Required packed-vs-loop candidate-evaluation throughput ratio (default 5x).

    ``REPRO_BENCH_OPTIMIZE_FLOOR`` loosens the gate on noisy shared runners
    (the CI optimize job does); the reference machine clears 5x on the
    n=16 tied-width configuration at 80 small shards per candidate.
    """
    value = os.environ.get("REPRO_BENCH_OPTIMIZE_FLOOR", "")
    try:
        return float(value) if value else 5.0
    except ValueError:
        return 5.0


@pytest.fixture(scope="session")
def optimize_candidates() -> int:
    """Distinct candidate schedules per benchmark leg (default 12, floor 4).

    ``REPRO_BENCH_OPTIMIZE_CANDIDATES`` scales the workload; more candidates
    stabilise the throughput estimate at the cost of runtime.
    """
    value = os.environ.get("REPRO_BENCH_OPTIMIZE_CANDIDATES", "")
    try:
        return max(4, int(value)) if value else 12
    except ValueError:
        return 12


@pytest.fixture(scope="session")
def obs_overhead_floor() -> float:
    """Maximum tolerated traced-vs-untraced slowdown fraction (default 0.05).

    ``REPRO_BENCH_OBS_OVERHEAD`` loosens the telemetry overhead gate on
    noisy shared runners (CI uses a looser value); 0.05 means a traced run
    may cost at most 5% more wall-clock than an untraced one.
    """
    value = os.environ.get("REPRO_BENCH_OBS_OVERHEAD", "")
    try:
        return float(value) if value else 0.05
    except ValueError:
        return 0.05


@pytest.fixture(scope="session")
def report_writer():
    """Write a named report to ``benchmarks/results`` and echo it to stdout."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def _write(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[written to {path}]")
        return path

    return _write


@pytest.fixture(scope="session")
def json_report_writer():
    """Write a named machine-readable report to ``benchmarks/results/<name>.json``.

    CI uploads these as workflow artifacts, so benchmark numbers are
    archived per run next to the human-readable tables.
    """
    import json

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def _write(name: str, payload: dict) -> Path:
        path = RESULTS_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
        print(f"\n[benchmark JSON written to {path}]")
        return path

    return _write
