"""Ablation — trust-aware scheduling (the paper's discussion section).

The discussion section makes two scheduling recommendations beyond the
Ascending rule: place a sensor that is known (or strongly suspected) to be
under attack *first*, and place hard-to-spoof sensors *last*.  This ablation
evaluates them on the LandShark configuration when the attacker always
controls the GPS (the easiest sensor to spoof in practice):

* Descending — the precision-only order that happens to place the GPS early;
* Ascending — the paper's default recommendation (orders by precision only);
* Trust-aware — GPS (most spoofable) first, camera next, encoders last.

Because the GPS is neither the most nor the least precise sensor, Ascending
makes it transmit *after* both encoders, handing the attacker enough
information to switch to active mode — so for this attacked sensor Ascending
is actually the worst of the three, a concrete instance of the discussion
section's point that precision-only ordering is not the whole story.  The
trust-aware schedule (attacked/spoofable sensor first) is never worse than
either precision-only order.
"""

import numpy as np

from repro.analysis import format_table
from repro.attack import ExpectationPolicy
from repro.scheduling import (
    AscendingSchedule,
    DescendingSchedule,
    ScheduleComparisonConfig,
    TrustAwareSchedule,
    expected_fusion_width_exhaustive,
)

# Sensor order: encoder, encoder, GPS, camera (LandShark widths).
WIDTHS = (0.2, 0.2, 1.0, 2.0)
GPS_INDEX = 2
#: GPS and camera are easy to spoof; wheel encoders are hard.
SPOOFABILITY = (0.1, 0.1, 1.0, 0.8)


def _sweep(positions: int):
    config = ScheduleComparisonConfig(
        lengths=WIDTHS, fa=1, attacked_indices=(GPS_INDEX,), positions=positions
    )
    schedules = (
        DescendingSchedule(),
        AscendingSchedule(),
        TrustAwareSchedule(spoofability=SPOOFABILITY),
    )
    results = {}
    for schedule in schedules:
        row = expected_fusion_width_exhaustive(
            config, schedule, ExpectationPolicy(), rng=np.random.default_rng(0)
        )
        results[schedule.name] = row.expected_width
    return results


def test_ablation_trust_aware_schedule(benchmark, report_writer, bench_positions):
    results = benchmark.pedantic(_sweep, args=(bench_positions,), iterations=1, rounds=1)
    report_writer(
        "ablation_trust_schedule",
        format_table(
            ["schedule", "expected fusion width"],
            [[name, f"{width:.3f}"] for name, width in results.items()],
            title="Trust-aware scheduling — GPS under attack, LandShark widths",
        ),
    )
    # Placing the attacked sensor first is at least as good as either
    # precision-only order.
    assert results["trust-aware"] <= results["ascending"] + 1e-9
    assert results["trust-aware"] <= results["descending"] + 1e-9
