"""Table I — expected fusion-interval length, Ascending vs Descending.

For each of the paper's eight ``(n, fa, L)`` configurations the benchmark
enumerates every discretised combination of correct measurements (the paper's
own methodology), lets the expectation-maximising attacker of problem (2) act
at her scheduled slots, and averages the resulting fusion widths.

Two attacker variants are reported:

* *faithful* — the attacker may count her own not-yet-sent compromised
  intervals as guaranteed support when switching to active mode (the literal
  reading of the paper's ``n - f - far`` rule);
* *conservative* — active-mode support must come from already-transmitted
  intervals only; this weaker attacker matches the magnitudes of the paper's
  Table I much more closely for the ``fa = 2`` rows.

The reproduction target is the *shape*: the Descending expectation is never
smaller than the Ascending one, and the gap widens when the interval lengths
are very different.

``test_table1_batch_monte_carlo`` re-runs the whole table on the vectorized
batch engine (greedy stretch attacker, 10⁵ Monte-Carlo trials per schedule by
default — tune with ``REPRO_BENCH_BATCH_SAMPLES``), confirming the shape at
a sample count the scalar path cannot reach.
"""

import math

import numpy as np
import pytest

from repro.analysis import TABLE1_CONFIGURATIONS, format_table, format_table1_row, table1_batch_sweep
from repro.attack import ExpectationPolicy
from repro.scheduling import AscendingSchedule, DescendingSchedule, compare_schedules


def _run_entry(entry, positions: int, conservative: bool):
    config = entry.comparison_config(positions=positions)
    comparison = compare_schedules(
        config,
        [AscendingSchedule(), DescendingSchedule()],
        policy_factory=lambda: ExpectationPolicy(conservative=conservative),
    )
    return comparison.expected_width("ascending"), comparison.expected_width("descending")


@pytest.mark.parametrize(
    "entry", TABLE1_CONFIGURATIONS, ids=lambda e: f"n{e.n}-fa{e.fa}-L{'-'.join(f'{length:g}' for length in e.lengths)}"
)
def test_table1_row(benchmark, entry, bench_positions):
    """One row of Table I with the faithful attacker (shape assertion only)."""
    ascending, descending = benchmark(lambda: _run_entry(entry, bench_positions, conservative=False))
    assert descending >= ascending - 1e-9, (
        "the expected length under Descending must not be smaller than under Ascending"
    )


def test_table1_batch_monte_carlo(benchmark, report_writer, batch_samples):
    """The full Table I on the batch engine at Monte-Carlo scale."""

    def run_sweep():
        return table1_batch_sweep(samples=batch_samples, rng=np.random.default_rng(0))

    sweep = benchmark.pedantic(run_sweep, iterations=1, rounds=1)
    # Two independent sample means of similar-magnitude widths: allow a few
    # standard errors of Monte-Carlo noise before calling the shape violated.
    tolerance = max(0.05, 10.0 / math.sqrt(batch_samples))
    rows = []
    for entry, comparison in sweep:
        ascending = comparison.expected_width("ascending")
        descending = comparison.expected_width("descending")
        rows.append(
            [
                format_table1_row(entry.n, entry.fa, entry.lengths),
                f"{ascending:.2f}",
                f"{descending:.2f}",
                f"{entry.paper_ascending:.2f}",
                f"{entry.paper_descending:.2f}",
            ]
        )
        assert descending >= ascending - tolerance
        assert comparison.row("descending").detected_fraction == 0.0
    report_writer(
        "table1_batch_monte_carlo",
        format_table(
            [
                "configuration",
                "E|S| asc (stretch MC)",
                "E|S| desc (stretch MC)",
                "paper asc",
                "paper desc",
            ],
            rows,
            title=(
                "Table I — batched Monte-Carlo, greedy stretch attacker, "
                f"{batch_samples:,} trials per schedule"
            ),
        ),
    )


def test_table1_full_report(benchmark, report_writer, bench_positions):
    """Regenerate the full Table I (both attacker variants) next to the paper's numbers."""

    def run_all():
        return [
            (_run_entry(entry, bench_positions, conservative=False),
             _run_entry(entry, bench_positions, conservative=True))
            for entry in TABLE1_CONFIGURATIONS
        ]

    results = benchmark.pedantic(run_all, iterations=1, rounds=1)
    rows = []
    for entry, ((asc_f, desc_f), (asc_c, desc_c)) in zip(TABLE1_CONFIGURATIONS, results):
        rows.append(
            [
                format_table1_row(entry.n, entry.fa, entry.lengths),
                f"{asc_f:.2f}",
                f"{desc_f:.2f}",
                f"{asc_c:.2f}",
                f"{desc_c:.2f}",
                f"{entry.paper_ascending:.2f}",
                f"{entry.paper_descending:.2f}",
            ]
        )
        assert desc_f >= asc_f - 1e-9
        assert desc_c >= asc_c - 1e-9
    report_writer(
        "table1_schedules",
        format_table(
            [
                "configuration",
                "E|S| asc (faithful)",
                "E|S| desc (faithful)",
                "E|S| asc (conservative)",
                "E|S| desc (conservative)",
                "paper asc",
                "paper desc",
            ],
            rows,
            title="Table I — expected fusion-interval length per schedule",
        ),
    )
