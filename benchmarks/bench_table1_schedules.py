"""Table I — expected fusion-interval length, Ascending vs Descending.

For each of the paper's eight ``(n, fa, L)`` configurations the benchmark
enumerates every discretised combination of correct measurements (the paper's
own methodology), lets the expectation-maximising attacker of problem (2) act
at her scheduled slots, and averages the resulting fusion widths.

Two attacker variants are reported:

* *faithful* — the attacker may count her own not-yet-sent compromised
  intervals as guaranteed support when switching to active mode (the literal
  reading of the paper's ``n - f - far`` rule);
* *conservative* — active-mode support must come from already-transmitted
  intervals only; this weaker attacker matches the magnitudes of the paper's
  Table I much more closely for the ``fa = 2`` rows.

The reproduction target is the *shape*: the Descending expectation is never
smaller than the Ascending one, and the gap widens when the interval lengths
are very different.

``test_table1_batch_monte_carlo`` re-runs the whole table on the vectorized
batch engine (greedy stretch attacker, 10⁵ Monte-Carlo trials per schedule by
default — tune with ``REPRO_BENCH_BATCH_SAMPLES``), confirming the shape at
a sample count the scalar path cannot reach.

``test_table1_expectation_engine`` re-runs the table with the **exact**
expectation attacker of problem (2) on both engines: the batch engine's
vectorized grid evaluation (:mod:`repro.batch.expectation`) against the
scalar grid search, round-for-round identical, at 10³+ Monte-Carlo trials
per schedule (``REPRO_BENCH_EXPECTATION_SAMPLES``).
``test_table1_expectation_speedup`` gates the throughput on the heaviest
Table I row (n=5, fa=2 — full lookahead recursion) at the paper's finer
discretisation: the batch engine must beat the scalar grid search by at
least ``REPRO_BENCH_SPEEDUP_FLOOR`` (default 10x) in rounds per second.
"""

import math
import time

import numpy as np
import pytest

from repro.analysis import TABLE1_CONFIGURATIONS, format_table, format_table1_row, table1_batch_sweep
from repro.attack import ExpectationPolicy
from repro.engine import BatchEngine, ExpectationAttack, ScalarEngine
from repro.scheduling import AscendingSchedule, DescendingSchedule, compare_schedules


def _run_entry(entry, positions: int, conservative: bool):
    config = entry.comparison_config(positions=positions)
    comparison = compare_schedules(
        config,
        [AscendingSchedule(), DescendingSchedule()],
        policy_factory=lambda: ExpectationPolicy(conservative=conservative),
    )
    return comparison.expected_width("ascending"), comparison.expected_width("descending")


@pytest.mark.parametrize(
    "entry", TABLE1_CONFIGURATIONS, ids=lambda e: f"n{e.n}-fa{e.fa}-L{'-'.join(f'{length:g}' for length in e.lengths)}"
)
def test_table1_row(benchmark, entry, bench_positions):
    """One row of Table I with the faithful attacker (shape assertion only)."""
    ascending, descending = benchmark(lambda: _run_entry(entry, bench_positions, conservative=False))
    assert descending >= ascending - 1e-9, (
        "the expected length under Descending must not be smaller than under Ascending"
    )


def test_table1_batch_monte_carlo(benchmark, report_writer, batch_samples):
    """The full Table I on the batch engine at Monte-Carlo scale."""

    def run_sweep():
        return table1_batch_sweep(samples=batch_samples, rng=np.random.default_rng(0))

    sweep = benchmark.pedantic(run_sweep, iterations=1, rounds=1)
    # Two independent sample means of similar-magnitude widths: allow a few
    # standard errors of Monte-Carlo noise before calling the shape violated.
    tolerance = max(0.05, 10.0 / math.sqrt(batch_samples))
    rows = []
    for entry, comparison in sweep:
        ascending = comparison.expected_width("ascending")
        descending = comparison.expected_width("descending")
        rows.append(
            [
                format_table1_row(entry.n, entry.fa, entry.lengths),
                f"{ascending:.2f}",
                f"{descending:.2f}",
                f"{entry.paper_ascending:.2f}",
                f"{entry.paper_descending:.2f}",
            ]
        )
        assert descending >= ascending - tolerance
        assert comparison.row("descending").detected_fraction == 0.0
    report_writer(
        "table1_batch_monte_carlo",
        format_table(
            [
                "configuration",
                "E|S| asc (stretch MC)",
                "E|S| desc (stretch MC)",
                "paper asc",
                "paper desc",
            ],
            rows,
            title=(
                "Table I — batched Monte-Carlo, greedy stretch attacker, "
                f"{batch_samples:,} trials per schedule"
            ),
        ),
    )


def test_table1_expectation_engine(benchmark, report_writer, expectation_samples):
    """The full Table I with the exact expectation attacker, batched.

    The vectorized :class:`~repro.batch.expectation.ExactExpectationBatchAttacker`
    runs every row at Monte-Carlo scale; the shape assertions of the scalar
    Table I benchmarks must keep holding and the stealthy attacker must never
    be detected.
    """

    def run_sweep():
        return table1_batch_sweep(
            samples=expectation_samples, rng=np.random.default_rng(0), attack="expectation"
        )

    sweep = benchmark.pedantic(run_sweep, iterations=1, rounds=1)
    tolerance = max(0.05, 10.0 / math.sqrt(expectation_samples))
    rows = []
    for entry, comparison in sweep:
        ascending = comparison.expected_width("ascending")
        descending = comparison.expected_width("descending")
        rows.append(
            [
                format_table1_row(entry.n, entry.fa, entry.lengths),
                f"{ascending:.2f}",
                f"{descending:.2f}",
                f"{entry.paper_ascending:.2f}",
                f"{entry.paper_descending:.2f}",
            ]
        )
        assert descending >= ascending - tolerance
        assert comparison.row("ascending").detected_fraction == 0.0
        assert comparison.row("descending").detected_fraction == 0.0
    report_writer(
        "table1_expectation_engine",
        format_table(
            [
                "configuration",
                "E|S| asc (exact MC)",
                "E|S| desc (exact MC)",
                "paper asc",
                "paper desc",
            ],
            rows,
            title=(
                "Table I — batched exact expectation attacker (problem (2)), "
                f"{expectation_samples:,} Monte-Carlo trials per schedule"
            ),
        ),
    )


def test_table1_expectation_speedup(report_writer, expectation_samples, speedup_floor):
    """Batched exact attacker vs the scalar grid search: rounds/sec floor.

    Benchmarked on the heaviest Table I configuration (n=5, fa=2: two
    compromised sensors, so every decision recurses over the later
    compromised slot) at the paper's finer discretisation, Ascending
    schedule, B >= 1000 — the workload the ROADMAP flagged as "the exact
    grid search is still scalar".
    """
    entry = TABLE1_CONFIGURATIONS[-1]  # n=5, fa=2, L=(5, 5, 5, 14, 17)
    config = entry.comparison_config()
    schedule = AscendingSchedule()
    spec = ExpectationAttack(true_value_positions=4, placement_positions=4, grid_positions=12)

    scalar_samples = 4
    scalar_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        ScalarEngine().run_rounds(
            config, schedule, spec, None, scalar_samples, np.random.default_rng(0)
        )
        scalar_seconds = min(scalar_seconds, time.perf_counter() - start)
    scalar_rate = scalar_samples / scalar_seconds

    start = time.perf_counter()
    result = BatchEngine().run_rounds(
        config, schedule, spec, None, expectation_samples, np.random.default_rng(0)
    )
    batch_seconds = time.perf_counter() - start
    batch_rate = expectation_samples / batch_seconds
    speedup = batch_rate / scalar_rate
    assert result.valid.all()

    report_writer(
        "table1_expectation_speedup",
        format_table(
            ["engine", "rounds", "seconds", "rounds/s"],
            [
                ["scalar", f"{scalar_samples:,}", f"{scalar_seconds:.3f}", f"{scalar_rate:,.1f}"],
                ["batch", f"{expectation_samples:,}", f"{batch_seconds:.3f}", f"{batch_rate:,.0f}"],
                ["speedup", "", "", f"{speedup:.1f}x"],
            ],
            title=(
                "Exact expectation attacker throughput — scalar grid search vs "
                f"batch engine (n={entry.n}, fa={entry.fa}, ascending)"
            ),
        ),
    )
    assert speedup >= speedup_floor, (
        f"batched exact expectation attacker is only {speedup:.1f}x faster than the "
        f"scalar grid search (floor: {speedup_floor}x)"
    )


def test_table1_full_report(benchmark, report_writer, bench_positions):
    """Regenerate the full Table I (both attacker variants) next to the paper's numbers."""

    def run_all():
        return [
            (_run_entry(entry, bench_positions, conservative=False),
             _run_entry(entry, bench_positions, conservative=True))
            for entry in TABLE1_CONFIGURATIONS
        ]

    results = benchmark.pedantic(run_all, iterations=1, rounds=1)
    rows = []
    for entry, ((asc_f, desc_f), (asc_c, desc_c)) in zip(TABLE1_CONFIGURATIONS, results):
        rows.append(
            [
                format_table1_row(entry.n, entry.fa, entry.lengths),
                f"{asc_f:.2f}",
                f"{desc_f:.2f}",
                f"{asc_c:.2f}",
                f"{desc_c:.2f}",
                f"{entry.paper_ascending:.2f}",
                f"{entry.paper_descending:.2f}",
            ]
        )
        assert desc_f >= asc_f - 1e-9
        assert desc_c >= asc_c - 1e-9
    report_writer(
        "table1_schedules",
        format_table(
            [
                "configuration",
                "E|S| asc (faithful)",
                "E|S| desc (faithful)",
                "E|S| asc (conservative)",
                "E|S| desc (conservative)",
                "paper asc",
                "paper desc",
            ],
            rows,
            title="Table I — expected fusion-interval length per schedule",
        ),
    )
