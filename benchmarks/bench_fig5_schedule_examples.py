"""Figure 5 — hand-built examples where each schedule beats the other.

Figure 5(a): the attacked sensor is the most precise one; under Descending she
sees both wide intervals before placing hers and stretches the fusion interval
much further than under Ascending, where she must commit first.

Figure 5(b): the two precise intervals nearly coincide and the wide interval
hangs to one side; the information in the wide interval is useless, so seeing
it first (Descending) does not help the attacker.  The paper's hand-drawn
example has the Descending attacker *lured* into a placement that is strictly
worse than the Ascending one; a rational expectation-maximising attacker is
not lured (she knows the unseen precise intervals must contain the true
value), so in our reproduction the Descending attack is merely *no better*
than the Ascending one — the inequality is reproduced as ``<=`` rather than
``<`` and the deviation is recorded in ``EXPERIMENTS.md``.

Together the two examples reproduce the paper's point that neither schedule
dominates for every configuration — which is why the comparison must be made
in expectation (Table I).
"""

import numpy as np

from repro.analysis import figure5a_configuration, figure5b_configuration, format_table
from repro.attack import ExpectationPolicy
from repro.scheduling import AscendingSchedule, DescendingSchedule, RoundConfig, run_round


def _run_example(correct, attacked_index, schedules, f):
    widths = {}
    for schedule in schedules:
        result = run_round(
            list(correct),
            RoundConfig(
                schedule=schedule,
                attacked_indices=(attacked_index,),
                policy=ExpectationPolicy(),
                f=f,
            ),
            np.random.default_rng(0),
        )
        widths[schedule.name] = result.fusion_width
    return widths


def test_fig5a_ascending_better_for_the_system(benchmark, report_writer):
    config = figure5a_configuration()
    # Sensor order: attacked precise sensor first, then the two wide ones.
    correct = [config["attacked_reading"], *config["correct"]]
    widths = benchmark(
        lambda: _run_example(correct, 0, (AscendingSchedule(), DescendingSchedule()), config["f"])
    )
    report_writer(
        "fig5a_schedule_example",
        format_table(
            ["schedule", "fusion width"],
            [[name, f"{width:.2f}"] for name, width in widths.items()],
            title="Figure 5(a) — Ascending is better for the system here",
        ),
    )
    assert widths["ascending"] < widths["descending"]


def test_fig5b_descending_better_for_the_system(benchmark, report_writer):
    config = figure5b_configuration()
    correct = [config["attacked_reading"], *config["correct_small"], config["correct_large"]]
    widths = benchmark(
        lambda: _run_example(correct, 0, (AscendingSchedule(), DescendingSchedule()), config["f"])
    )
    report_writer(
        "fig5b_schedule_example",
        format_table(
            ["schedule", "fusion width"],
            [[name, f"{width:.2f}"] for name, width in widths.items()],
            title="Figure 5(b) — seeing the wide interval first does not help the attacker",
        ),
    )
    assert widths["descending"] <= widths["ascending"]
