"""Figure 1 — Marzullo's fusion interval for three values of ``f``.

The paper's Figure 1 shows one five-sensor configuration and the fusion
interval it produces for ``f = 0, 1, 2``: the interval grows with ``f``.
This benchmark regenerates the figure (as ASCII art) and times the fusion
primitive itself, both on the figure's configuration and on larger random
configurations to document its scaling.
"""

import numpy as np
import pytest

from repro.analysis import figure1_intervals
from repro.core import Interval, fuse
from repro.viz import LabeledInterval, render_fusion_figure


def _figure_text() -> str:
    intervals = figure1_intervals()
    sensors = [LabeledInterval(f"s{i + 1}", s) for i, s in enumerate(intervals)]
    fusions = [LabeledInterval(f"S(f={f})", fuse(intervals, f)) for f in (0, 1, 2)]
    header = "Figure 1 — fusion interval for f = 0, 1, 2 (width grows with f)"
    return header + "\n" + render_fusion_figure(sensors, fusions)


def test_fig1_fusion_small_configuration(benchmark, report_writer):
    """Time the fusion of the Figure 1 configuration and render the figure."""
    intervals = figure1_intervals()
    result = benchmark(lambda: [fuse(intervals, f) for f in (0, 1, 2)])
    widths = [fusion.width for fusion in result]
    assert widths == sorted(widths), "fusion width must grow with f"
    report_writer("fig1_marzullo", _figure_text())


@pytest.mark.parametrize("n_sensors", [10, 100, 1000])
def test_fig1_fusion_scaling(benchmark, n_sensors):
    """Fusion cost scaling in the number of sensors (O(n log n) sweep)."""
    rng = np.random.default_rng(0)
    intervals = []
    for _ in range(n_sensors):
        width = float(rng.uniform(0.5, 5.0))
        lo = -width * float(rng.uniform(0, 1))
        intervals.append(Interval(lo, lo + width))
    f = (n_sensors + 1) // 2 - 1
    fusion = benchmark(fuse, intervals, f)
    assert fusion.contains(0.0)
