"""Numba engine throughput vs the fused engine on the n=9 multi-slot row.

The numba engine's design target is paper-precision statistics: 10⁷-sample
Monte-Carlo sweeps of the heavy Table I style rows, where even the fused
engine's event matrices and per-slot buffers dominate the runtime.  The
benchmark row matches ``bench_fused_engine``: the nine-sensor extension of
the Table I grid with ``fa=3`` compromised sensors, under Ascending,
Descending and Random schedules.

Rounds are streamed in 10⁶-row chunks (a resident 10⁷ × 9 float64 batch
would be ~720 MB *per array*), each chunk re-seeded identically for both
engines; per-leg rates sum the chunk times.  Two assertions gate every run:

* **bit identity** — on a full chunk per schedule, the numba engine's
  :class:`~repro.engine.base.RoundsResult` must equal the fused engine's
  array for array (the conformance suite pins this at small scale; the
  benchmark re-checks it at chunk scale);
* **throughput floor** — on the random-schedule leg the numba engine must
  deliver at least ``REPRO_BENCH_NUMBA_FLOOR`` (default 5x) the fused
  engine's rounds/sec.  The deterministic legs are reported but not gated.

The whole module skips unless numba is actually installed and compiling
(``REPRO_NUMBA_PUREPY=1`` forces the pure-Python kernels, which are for
conformance, not speed).  Besides the human-readable table, the run writes
``benchmarks/results/bench_numba_engine.json`` (rates, speedups, samples
per leg) which CI uploads as a workflow artifact.
"""

import time

import numpy as np
import pytest

from repro.analysis import format_table
from repro.batch.kernels._compat import NUMBA_COMPILED
from repro.engine import get_engine
from repro.scheduling import (
    AscendingSchedule,
    DescendingSchedule,
    RandomSchedule,
    ScheduleComparisonConfig,
)

pytestmark = pytest.mark.skipif(
    not NUMBA_COMPILED, reason="numba is not installed (or pure-Python kernels forced)"
)

#: The n=9 multi-slot row shared with ``bench_fused_engine``.
MULTI_SLOT_LENGTHS = (5.0, 5.0, 5.0, 8.0, 8.0, 11.0, 14.0, 17.0, 20.0)
MULTI_SLOT_FA = 3
MULTI_SLOT_ATTACKED = (0, 4, 8)

SCHEDULES = (AscendingSchedule(), DescendingSchedule(), RandomSchedule())
#: The gated leg: under a random schedule the compromised transmissions
#: land in different slots every round — the multi-slot stress case.
GATED_SCHEDULE = "random"

#: Rows per streamed chunk; bounds resident memory at roughly chunk × n × 8
#: bytes per array regardless of the total sample count.
CHUNK_SAMPLES = 1_000_000


def _config() -> ScheduleComparisonConfig:
    return ScheduleComparisonConfig(
        lengths=MULTI_SLOT_LENGTHS,
        fa=MULTI_SLOT_FA,
        attacked_indices=MULTI_SLOT_ATTACKED,
    )


def _chunked_rate(engine, schedule, samples: int, repeats: int = 2) -> float:
    """Best-of-N rounds/sec, streaming ``samples`` rounds in seeded chunks.

    Chunk ``i`` always runs on ``default_rng(i)``, so both engines consume
    identical random streams and the measured work is identical.
    """
    config = _config()
    best = float("inf")
    for _ in range(repeats):
        elapsed = 0.0
        done = 0
        index = 0
        while done < samples:
            step = min(CHUNK_SAMPLES, samples - done)
            rng = np.random.default_rng(index)
            start = time.perf_counter()
            engine.run_rounds(config, schedule, "stretch", None, step, rng)
            elapsed += time.perf_counter() - start
            done += step
            index += 1
        best = min(best, elapsed)
    return samples / best


def _assert_bit_identical(fused_result, numba_result, schedule_name: str) -> None:
    for field in (
        "fusion_lo",
        "fusion_hi",
        "valid",
        "attacker_detected",
        "broadcast_lo",
        "broadcast_hi",
        "flagged",
    ):
        np.testing.assert_array_equal(
            getattr(fused_result, field),
            getattr(numba_result, field),
            err_msg=f"numba != fused on {schedule_name}/{field}",
        )


def test_numba_engine_speedup(
    report_writer, json_report_writer, numba_samples, numba_speedup_floor
):
    """Numba vs fused on the n=9 multi-slot row: chunk parity plus the 5x floor."""
    fused_engine = get_engine("fused")
    numba_engine = get_engine("numba")
    config = _config()
    parity_samples = min(numba_samples, CHUNK_SAMPLES)
    # Warm the JIT cache outside the timed region (first call compiles).
    numba_engine.run_rounds(
        config, RandomSchedule(), "stretch", None, 1_000, np.random.default_rng(0)
    )
    rows = []
    legs = {}
    parity = []
    for schedule in SCHEDULES:
        parity.append(
            (
                fused_engine.run_rounds(
                    config, schedule, "stretch", None, parity_samples, np.random.default_rng(0)
                ),
                numba_engine.run_rounds(
                    config, schedule, "stretch", None, parity_samples, np.random.default_rng(0)
                ),
                schedule.name,
            )
        )
        fused_rate = _chunked_rate(fused_engine, schedule, numba_samples)
        numba_rate = _chunked_rate(numba_engine, schedule, numba_samples)
        speedup = numba_rate / fused_rate
        legs[schedule.name] = {
            "fused_rounds_per_second": fused_rate,
            "numba_rounds_per_second": numba_rate,
            "speedup": speedup,
            "samples": numba_samples,
        }
        rows.append(
            [
                schedule.name,
                f"{fused_rate:,.0f}",
                f"{numba_rate:,.0f}",
                f"{speedup:.2f}x",
                "yes" if schedule.name == GATED_SCHEDULE else "",
            ]
        )
    report_writer(
        "bench_numba_engine",
        format_table(
            ["schedule", "fused rounds/s", "numba rounds/s", "speedup", "gated"],
            rows,
            title=(
                "Numba vs fused engine — n=9 multi-slot row "
                f"(fa={MULTI_SLOT_FA}, attacked={MULTI_SLOT_ATTACKED}, "
                f"{numba_samples:,} rounds per leg in {CHUNK_SAMPLES:,}-row chunks, "
                "bit-identical results)"
            ),
        ),
    )
    json_report_writer(
        "bench_numba_engine",
        {
            "row": {
                "lengths": list(MULTI_SLOT_LENGTHS),
                "fa": MULTI_SLOT_FA,
                "attacked_indices": list(MULTI_SLOT_ATTACKED),
            },
            "gated_schedule": GATED_SCHEDULE,
            "floor": numba_speedup_floor,
            "chunk_samples": CHUNK_SAMPLES,
            "legs": legs,
        },
    )
    # Assertions come *after* the reports, so a failing run still leaves
    # the table and the JSON behind for CI to upload and diagnose.
    for fused_result, numba_result, name in parity:
        _assert_bit_identical(fused_result, numba_result, name)
    gated = legs[GATED_SCHEDULE]["speedup"]
    assert gated >= numba_speedup_floor, (
        f"numba engine is only {gated:.2f}x the fused engine on the n=9 multi-slot "
        f"{GATED_SCHEDULE} row (floor: {numba_speedup_floor}x)"
    )


@pytest.mark.parametrize("schedule", SCHEDULES, ids=lambda s: s.name)
def test_numba_engine_benchmark(benchmark, schedule, numba_samples):
    """pytest-benchmark timing of the numba engine per schedule leg."""
    engine = get_engine("numba")
    config = _config()
    samples = min(numba_samples, CHUNK_SAMPLES)
    engine.run_rounds(config, schedule, "stretch", None, 1_000, np.random.default_rng(0))

    def run():
        return engine.run_rounds(
            config, schedule, "stretch", None, samples, np.random.default_rng(0)
        )

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    assert result.valid.all()
