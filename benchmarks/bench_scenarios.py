"""Scenario runner benchmarks — sharded speedup and artifact-store hits.

Not a paper table: this harness gates the operational properties of the
scenario subsystem (``docs/SCENARIOS.md``) the way the other benchmarks
gate reproduction fidelity — the sharded runner must actually parallelise,
and a store hit must be orders of magnitude cheaper than a recompute while
returning the identical payload.
"""

import dataclasses
import json
import time

from repro.analysis import format_table
from repro.runner import ArtifactStore, run_scenario
from repro.scenarios import get_scenario


def _smoke_spec(samples: int):
    spec = get_scenario("table1-smoke")
    return dataclasses.replace(spec, samples=samples, shard_samples=max(1, samples // 4))


def test_scenario_workers_invariance_and_speed(benchmark, report_writer, batch_samples):
    samples = min(batch_samples, 100_000)
    spec = _smoke_spec(samples)
    serial = run_scenario(spec, workers=1)
    parallel = benchmark.pedantic(
        lambda: run_scenario(spec, workers=4), iterations=1, rounds=1
    )
    assert json.dumps(serial.payload, sort_keys=True) == json.dumps(
        parallel.payload, sort_keys=True
    )
    rows = [
        [row["schedule"], f"{row['expected_width']:.4f}", str(row["samples"])]
        for row in parallel.payload["cases"][0]["rows"]
    ]
    report_writer(
        "scenario_runner_smoke",
        format_table(
            ["schedule", "expected width", "samples"],
            rows,
            title=(
                f"Scenario runner — table1-smoke at {samples} samples, "
                "4 shards, workers=1 == workers=4 bit-identical"
            ),
        ),
    )


def test_artifact_store_hit_is_instant(benchmark, tmp_path):
    spec = _smoke_spec(20_000)
    store = ArtifactStore(tmp_path / "store")
    started = time.perf_counter()
    first = run_scenario(spec, workers=1, store=store)
    compute_seconds = time.perf_counter() - started
    assert not first.cached

    cached = benchmark(lambda: run_scenario(spec, workers=1, store=store))
    assert cached.cached
    assert json.dumps(cached.payload, sort_keys=True) == json.dumps(
        first.payload, sort_keys=True
    )
    started = time.perf_counter()
    run_scenario(spec, workers=1, store=store)
    hit_seconds = time.perf_counter() - started
    # A hit only reads one JSON file; require it to be clearly cheaper than
    # the simulation it replaces (very loose bound for noisy CI runners).
    assert hit_seconds < max(0.5 * compute_seconds, 0.05)
