"""Ablation — which sensor the attacker grabs in the case study.

Theorems 3 and 4 predict that compromising precise sensors is much more
damaging than compromising imprecise ones.  This ablation re-runs the Table II
case study under the Descending schedule (the attacker-friendly one) with
different attacked-sensor choices:

* no attack at all,
* always the camera (the least precise sensor),
* a uniformly random sensor each round (the Table II default),
* always an encoder (the most precise sensor — Theorem 4's worst case).

Violation counts must increase along that ordering, and the discussion
section's advice — schedule hard-to-spoof (or un-attacked) sensors last —
follows directly from the "camera only" row being (near) harmless.
"""

import numpy as np

from repro.analysis import format_percentage, format_table
from repro.scheduling import DescendingSchedule
from repro.vehicle import CaseStudyConfig, landshark_suite, run_case_study_for_schedule

STEPS = 150


def _violations(attacked_sensor) -> tuple[float, float]:
    config = CaseStudyConfig(n_steps=STEPS, n_vehicles=2, seed=99, attacked_sensor=attacked_sensor)
    stats = run_case_study_for_schedule(config, DescendingSchedule(), rng=np.random.default_rng(1))
    return stats.upper_percentage, stats.lower_percentage


def _sweep():
    suite = landshark_suite()
    camera_index = suite.index_of("camera")
    scenarios = [
        ("no attack", "none"),
        ("camera (least precise)", camera_index),
        ("random sensor per round", "random"),
        ("encoder (most precise)", "most_precise"),
    ]
    rows = []
    totals = {}
    for label, selection in scenarios:
        upper, lower = _violations(selection)
        totals[label] = upper + lower
        rows.append([label, format_percentage(upper), format_percentage(lower)])
    return rows, totals


def test_ablation_attacked_sensor_choice(benchmark, report_writer):
    rows, totals = benchmark.pedantic(_sweep, iterations=1, rounds=1)
    report_writer(
        "ablation_attacked_sensor",
        format_table(
            ["attacked sensor", "> 10.5 mph", "< 9.5 mph"],
            rows,
            title=f"Attacked-sensor ablation — Descending schedule, {STEPS} steps x 2 vehicles",
        ),
    )
    assert totals["no attack"] == 0.0
    assert totals["camera (least precise)"] <= totals["random sensor per round"] + 1e-9
    assert totals["random sensor per round"] <= totals["encoder (most precise)"] + 1e-9
    assert totals["encoder (most precise)"] > 0.0
