"""Table II — LandShark platoon case study: critical speed violations.

Three LandSharks drive at a 10 mph target with a ±0.5 mph safety envelope;
one (uniformly random) sensor is under attack each fusion round.  For the
Ascending, Descending and Random schedules the benchmark reports the
percentage of fusion rounds whose upper bound exceeds 10.5 mph and whose
lower bound falls below 9.5 mph — the two rows of the paper's Table II.

Expected shape (and, with the random attacked-sensor assumption, magnitude):
Ascending ≈ 0 %, Descending the largest, Random roughly a third of
Descending.
"""


from repro.analysis import TABLE2_PAPER_RESULTS, format_percentage, format_table
from repro.vehicle import CaseStudyConfig, run_case_study


def _run(config: CaseStudyConfig):
    return run_case_study(config)


def test_table2_case_study(benchmark, report_writer, case_study_steps):
    config = CaseStudyConfig(n_steps=case_study_steps, n_vehicles=3, seed=2014)
    result = benchmark.pedantic(_run, args=(config,), iterations=1, rounds=1)

    rows = []
    for name in ("ascending", "descending", "random"):
        stats = result.for_schedule(name)
        paper_upper, paper_lower = TABLE2_PAPER_RESULTS[name]
        rows.append(
            [
                name,
                format_percentage(stats.upper_percentage),
                format_percentage(stats.lower_percentage),
                format_percentage(paper_upper),
                format_percentage(paper_lower),
            ]
        )
    report_writer(
        "table2_case_study",
        format_table(
            [
                "schedule",
                "> 10.5 mph (measured)",
                "< 9.5 mph (measured)",
                "> 10.5 mph (paper)",
                "< 9.5 mph (paper)",
            ],
            rows,
            title=f"Table II — case study over {config.n_steps} steps x {config.n_vehicles} vehicles",
        ),
    )

    ascending = result.for_schedule("ascending")
    descending = result.for_schedule("descending")
    random_row = result.for_schedule("random")
    total = lambda row: row.upper_violations + row.lower_violations  # noqa: E731
    # Shape of Table II: Ascending eliminates violations entirely, Descending
    # is the worst, Random sits in between.
    assert total(ascending) == 0
    assert total(descending) > total(random_row) > total(ascending)
