"""Table II — LandShark platoon case study: critical speed violations.

Three LandSharks drive at a 10 mph target with a ±0.5 mph safety envelope;
one (uniformly random) sensor is under attack each fusion round.  For the
Ascending, Descending and Random schedules the benchmark reports the
percentage of fusion rounds whose upper bound exceeds 10.5 mph and whose
lower bound falls below 9.5 mph — the two rows of the paper's Table II.

Two engines regenerate the table through the :mod:`repro.engine` registry:

* ``test_table2_case_study`` — the scalar reference stack (one Python call
  per control period and vehicle);
* ``test_table2_case_study_batch`` — the vectorized closed-loop stepper,
  which runs ``replicas × vehicles × steps`` fusion rounds per schedule and
  must beat the scalar engine by at least ``REPRO_BENCH_SPEEDUP_FLOOR``
  (default 10x) in rounds per second.

Expected shape (and, with the random attacked-sensor assumption,
magnitude): Ascending ≈ 0 %, Descending the largest, Random roughly a third
of Descending.
"""

import time

from repro.analysis import TABLE2_PAPER_RESULTS, format_percentage, format_table
from repro.vehicle import CaseStudyConfig, run_case_study


def _best_seconds(thunk, repeats: int = 3):
    """Best-of-N wall time plus the first run's result.

    Taking the minimum strips downward scheduling noise from the throughput
    ratio; returning the result lets the timed runs double as the
    statistics-producing runs.
    """
    best = float("inf")
    result = None
    for repeat in range(repeats):
        start = time.perf_counter()
        value = thunk()
        best = min(best, time.perf_counter() - start)
        if repeat == 0:
            result = value
    return best, result


def _total_rounds(result) -> int:
    return sum(stats.rounds for stats in result.stats)


def _assert_table2_shape(result) -> None:
    ascending = result.for_schedule("ascending")
    descending = result.for_schedule("descending")
    random_row = result.for_schedule("random")
    total = lambda row: row.upper_violations + row.lower_violations  # noqa: E731
    # Shape of Table II: Ascending eliminates violations entirely, Descending
    # is the worst, Random sits in between.
    assert total(ascending) == 0
    assert total(descending) > total(random_row) > total(ascending)


def _report_rows(result):
    rows = []
    for name in ("ascending", "descending", "random"):
        stats = result.for_schedule(name)
        paper_upper, paper_lower = TABLE2_PAPER_RESULTS[name]
        rows.append(
            [
                name,
                format_percentage(stats.upper_percentage),
                format_percentage(stats.lower_percentage),
                format_percentage(paper_upper),
                format_percentage(paper_lower),
            ]
        )
    return rows


_REPORT_HEADER = [
    "schedule",
    "> 10.5 mph (measured)",
    "< 9.5 mph (measured)",
    "> 10.5 mph (paper)",
    "< 9.5 mph (paper)",
]


def test_table2_case_study(benchmark, report_writer, case_study_steps):
    config = CaseStudyConfig(n_steps=case_study_steps, n_vehicles=3, seed=2014)
    result = benchmark.pedantic(
        run_case_study, args=(config,), kwargs={"engine": "scalar"}, iterations=1, rounds=1
    )

    report_writer(
        "table2_case_study",
        format_table(
            _REPORT_HEADER,
            _report_rows(result),
            title=f"Table II — case study over {config.n_steps} steps x {config.n_vehicles} vehicles",
        ),
    )
    _assert_table2_shape(result)


def test_table2_case_study_batch(
    benchmark, report_writer, case_study_steps, case_study_replicas, speedup_floor
):
    """Batched Table II: same statistics regime, ≥10x the scalar throughput."""
    config = CaseStudyConfig(n_steps=case_study_steps, n_vehicles=3, seed=2014)

    # Scalar reference throughput, measured over a bounded number of steps so
    # the comparison stays cheap at publication-scale settings.
    scalar_config = CaseStudyConfig(
        n_steps=min(case_study_steps, 100), n_vehicles=3, seed=2014
    )
    scalar_seconds, scalar_result = _best_seconds(
        lambda: run_case_study(scalar_config, engine="scalar"), 2
    )
    scalar_rate = _total_rounds(scalar_result) / scalar_seconds

    result = benchmark.pedantic(
        run_case_study,
        args=(config,),
        kwargs={"engine": "batch", "n_replicas": case_study_replicas},
        iterations=1,
        rounds=1,
    )
    batch_seconds, _ = _best_seconds(
        lambda: run_case_study(config, engine="batch", n_replicas=case_study_replicas)
    )
    batch_rate = _total_rounds(result) / batch_seconds
    speedup = batch_rate / scalar_rate

    table = format_table(
        _REPORT_HEADER,
        _report_rows(result),
        title=(
            f"Table II (batch engine) — {case_study_replicas} replicas x "
            f"{config.n_vehicles} vehicles x {config.n_steps} steps per schedule"
        ),
    )
    throughput = format_table(
        ["engine", "rounds", "seconds", "rounds/s"],
        [
            [
                "scalar",
                f"{_total_rounds(scalar_result):,}",
                f"{scalar_seconds:.3f}",
                f"{scalar_rate:,.0f}",
            ],
            ["batch", f"{_total_rounds(result):,}", f"{batch_seconds:.3f}", f"{batch_rate:,.0f}"],
            ["speedup", "", "", f"{speedup:.1f}x"],
        ],
        title="Case-study throughput — scalar vs batch engine",
    )
    report_writer("table2_case_study_batch", f"{table}\n\n{throughput}")

    _assert_table2_shape(result)
    assert speedup >= speedup_floor, (
        f"batched case study is only {speedup:.1f}x faster than the scalar engine "
        f"(floor: {speedup_floor}x)"
    )
