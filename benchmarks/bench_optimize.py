"""Schedule-search throughput: packed `run_many` evaluation vs the reference loop.

The optimization subsystem's performance claim is that
:class:`~repro.optimize.ScheduleEvaluator` measures candidates through
**one** :meth:`~repro.engine.base.Engine.run_many` call per candidate —
all shards packed into a single engine pass — instead of one
:meth:`~repro.engine.base.Engine.run_rounds` call per shard.  This
benchmark measures the profit and gates it:

* **workload** — a 16-sensor configuration with heavy width ties, each
  candidate measured at 400 rounds split into 80 five-round shards: the
  many-small-passes regime the anneal/bandit rungs live in, where
  per-invocation overhead dominates per-round work;
* **baseline** — the identical measurement (same candidates, same derived
  streams, bit-identical rows) through the per-shard ``run_rounds``
  reference loop every backend's ``run_many`` must match;
* **gate** — packed candidate-evaluations/sec must be at least
  ``REPRO_BENCH_OPTIMIZE_FLOOR`` (default 5x) the loop's.  Both legs take
  the best of three repetitions, so a single scheduler hiccup cannot fail
  the gate on its own.

Besides the human-readable table, the run writes
``benchmarks/results/bench_optimize.json`` (throughput, speedup, evaluator
counters per leg) which CI uploads as a workflow artifact.
"""

import itertools
import time

import numpy as np

from repro.analysis import format_table
from repro.engine import get_engine
from repro.optimize import EVAL_STREAM, ScheduleEvaluator
from repro.scenarios.spec import ComparisonCase, OptimizationScenario
from repro.scheduling import enumerate_schedules
from repro.scheduling.schedule import FixedSchedule
from repro.utils.seeding import jumped_rngs

#: Six width-5 and four width-8 sensors collapse most of 16! — the tied
#: widths are what makes a space this size searchable at all, and the wide
#: rows make each engine pass expensive relative to its per-shard prologue.
BENCH_CASE = ComparisonCase(
    label="bench-n16",
    lengths=(5.0,) * 6 + (8.0,) * 4 + (11.0, 11.0, 14.0, 17.0, 20.0, 23.0),
    fa=5,
    attacked_indices=(0, 6, 10, 12, 15),
)

SAMPLES = 400
SHARD_SAMPLES = 5
REPETITIONS = 3


def bench_spec() -> OptimizationScenario:
    # strategy="anneal" because the space is far above the exhaustive cap;
    # the strategies share the evaluator, so the choice is cosmetic here.
    return OptimizationScenario(
        name="bench-optimize",
        case=BENCH_CASE,
        strategy="anneal",
        engine="batch",
        samples=SAMPLES,
        shard_samples=SHARD_SAMPLES,
    )


def candidate_pool(spec: OptimizationScenario, count: int) -> list[tuple[int, ...]]:
    return list(
        itertools.islice(
            enumerate_schedules(spec.case.lengths, spec.case.comparison_config().resolved_attacked),
            count,
        )
    )


def run_packed(spec, candidates) -> tuple[float, list[dict], dict]:
    """One packed leg: a fresh evaluator, one run_many call per candidate."""
    evaluator = ScheduleEvaluator(spec)
    start = time.perf_counter()
    rows = [dict(evaluator.evaluate(candidate, SAMPLES)) for candidate in candidates]
    return time.perf_counter() - start, rows, evaluator.counters()


def run_reference_loop(spec, candidates) -> tuple[float, list[dict]]:
    """The per-shard run_rounds loop the run_many contract is defined against."""
    engine = get_engine(spec.engine)
    config = spec.case.comparison_config()
    shards = SAMPLES // SHARD_SAMPLES
    rows = []
    start = time.perf_counter()
    for candidate in candidates:
        schedule = FixedSchedule(candidate)
        streams = jumped_rngs(spec.seed, shards, EVAL_STREAM, *candidate)
        width_sum = 0.0
        valid = 0
        detected = 0
        for shard in range(shards):
            result = engine.run_rounds(
                config,
                schedule,
                spec.case.attack,
                None,
                SHARD_SAMPLES,
                streams[shard],
            )
            width_sum += float(result.widths[result.valid].sum())
            valid += int(np.count_nonzero(result.valid))
            detected += int(np.count_nonzero(result.attacker_detected))
        rows.append(
            {
                "permutation": list(candidate),
                "valid": valid,
                "expected_width": width_sum / valid if valid else float("nan"),
                "detected_fraction": detected / SAMPLES,
            }
        )
    return time.perf_counter() - start, rows


def test_packed_evaluation_speedup(
    report_writer, json_report_writer, optimize_candidates, optimize_packing_floor
):
    """Packed run_many evaluation must clear the candidate-throughput floor."""
    spec = bench_spec()
    candidates = candidate_pool(spec, optimize_candidates)
    shards = SAMPLES // SHARD_SAMPLES

    # Warm both paths once (imports, attack resolution), then race them.
    run_packed(spec, candidates[:2])
    run_reference_loop(spec, candidates[:2])

    packed_rows = None
    counters = None
    packed_elapsed = float("inf")
    loop_elapsed = float("inf")
    for _ in range(REPETITIONS):
        elapsed, rows, run_counters = run_packed(spec, candidates)
        if elapsed < packed_elapsed:
            packed_elapsed, packed_rows, counters = elapsed, rows, run_counters
        elapsed, loop_rows = run_reference_loop(spec, candidates)
        loop_elapsed = min(loop_elapsed, elapsed)

    packed_rate = len(candidates) / packed_elapsed
    loop_rate = len(candidates) / loop_elapsed
    speedup = packed_rate / loop_rate

    rows = [
        ["packed run_many", f"{packed_rate:,.1f}", str(len(candidates)), f"{packed_elapsed:.3f}s"],
        ["per-shard run_rounds", f"{loop_rate:,.1f}", str(len(candidates) * shards), f"{loop_elapsed:.3f}s"],
    ]
    report_writer(
        "bench_optimize",
        format_table(
            ["evaluation path", "candidates/s", "engine calls", "best-of-3"],
            rows,
            title=(
                f"Schedule-search evaluation — n=16, {len(candidates)} candidates x "
                f"{shards} shards of {SHARD_SAMPLES} rounds, speedup {speedup:.2f}x "
                f"(floor {optimize_packing_floor:g}x)"
            ),
        ),
    )
    json_report_writer(
        "bench_optimize",
        {
            "case": {"lengths": list(BENCH_CASE.lengths), "fa": BENCH_CASE.fa},
            "candidates": len(candidates),
            "samples_per_candidate": SAMPLES,
            "shard_samples": SHARD_SAMPLES,
            "floor": optimize_packing_floor,
            "speedup": speedup,
            "packed": {
                "seconds": packed_elapsed,
                "candidates_per_second": packed_rate,
                "counters": counters,
            },
            "reference_loop": {
                "seconds": loop_elapsed,
                "candidates_per_second": loop_rate,
                "engine_calls": len(candidates) * shards,
            },
        },
    )

    # Assertions come *after* the reports, so a failing run still leaves
    # the table and the JSON behind for CI to upload and diagnose.
    for packed_row, loop_row in zip(packed_rows, loop_rows):
        for field in ("permutation", "valid", "expected_width", "detected_fraction"):
            assert packed_row[field] == loop_row[field], (
                "packed evaluation diverged from the per-shard reference loop"
            )
    assert counters["engine_passes"] == len(candidates)
    assert speedup >= optimize_packing_floor, (
        f"packed evaluation delivers only {speedup:.2f}x the per-shard loop "
        f"(floor: {optimize_packing_floor}x)"
    )
