"""Lightweight docs checker: keep README/docs snippets and references honest.

Three checks over ``README.md`` and ``docs/*.md``:

1. every fenced ``python`` code block must *compile* (syntax-checked with
   the file and line of the block on failure — snippets are not executed,
   so they may elide expensive parts with ``...``);
2. every dotted ``repro.*`` reference must *resolve* — the module part must
   import and any attribute tail must exist, so renames cannot silently rot
   the prose;
3. every relative markdown link must point at an existing file.

Run from the repository root (CI's docs job does)::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``repro.foo.bar`` style dotted references (identifiers only, so prose
#: punctuation ends a match naturally).
DOTTED_REF = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")

#: Relative markdown links: ``[text](target)`` with no scheme or anchor-only
#: target.
MARKDOWN_LINK = re.compile(r"\[[^\]]+\]\(([^)#\s]+)(?:#[^)\s]*)?\)")

FENCE = re.compile(r"^```(\w*)\s*$")


def docs_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def python_blocks(text: str) -> list[tuple[int, str]]:
    """Return ``(first_line_number, source)`` for every fenced python block."""
    blocks: list[tuple[int, str]] = []
    language = None
    start = 0
    buffer: list[str] = []
    for number, line in enumerate(text.splitlines(), start=1):
        fence = FENCE.match(line)
        if fence is None:
            if language is not None:
                buffer.append(line)
            continue
        if language is None:
            language = fence.group(1).lower()
            start = number + 1
            buffer = []
        else:
            if language in ("python", "py"):
                blocks.append((start, "\n".join(buffer)))
            language = None
    return blocks


def check_python_blocks(path: Path, text: str) -> list[str]:
    errors = []
    for line, source in python_blocks(text):
        try:
            compile(source, f"{path.name}:{line}", "exec")
        except SyntaxError as exc:
            errors.append(f"{path.name}:{line}: python block does not compile: {exc}")
    return errors


def resolve_dotted(name: str) -> bool:
    """Import the longest module prefix of ``name`` and getattr the rest."""
    parts = name.split(".")
    module = None
    index = len(parts)
    while index > 0:
        try:
            module = importlib.import_module(".".join(parts[:index]))
            break
        except ModuleNotFoundError:
            index -= 1
    if module is None:
        return False
    target = module
    for attribute in parts[index:]:
        try:
            target = getattr(target, attribute)
        except AttributeError:
            return False
    return True


def check_references(path: Path, text: str) -> list[str]:
    errors = []
    for name in sorted(set(DOTTED_REF.findall(text))):
        if not resolve_dotted(name):
            errors.append(f"{path.name}: reference {name!r} does not resolve")
    return errors


def check_links(path: Path, text: str) -> list[str]:
    errors = []
    for target in MARKDOWN_LINK.findall(text):
        if "://" in target or target.startswith("mailto:"):
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            errors.append(f"{path.name}: link target {target!r} does not exist")
    return errors


def main() -> int:
    errors: list[str] = []
    checked_blocks = 0
    for path in docs_files():
        text = path.read_text(encoding="utf-8")
        checked_blocks += len(python_blocks(text))
        errors.extend(check_python_blocks(path, text))
        errors.extend(check_references(path, text))
        errors.extend(check_links(path, text))
    for error in errors:
        print(f"ERROR: {error}", file=sys.stderr)
    files = len(docs_files())
    print(f"checked {files} files, {checked_blocks} python blocks: {len(errors)} error(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
