"""Schedule comparison on a custom sensor configuration (Table I workflow).

Run with::

    python examples/schedule_comparison.py

The script mirrors the paper's Table I methodology on a configuration you can
edit freely: it enumerates every discretised combination of correct
measurements, lets the expectation-maximising attacker act at her scheduled
slots, and reports the expected fusion-interval length for the Ascending,
Descending and Random schedules, plus the no-attack baseline.

It then re-runs the same configuration on the **batch engine** with the
exact ``attack="expectation"`` spec — the vectorized problem (2) attacker of
:mod:`repro.batch.expectation` — at a Monte-Carlo sample count the scalar
grid search cannot reach (mirroring the README's "Table I, batched"
quickstart).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.attack import ExpectationPolicy, TruthfulPolicy
from repro.scheduling import (
    AscendingSchedule,
    DescendingSchedule,
    RandomSchedule,
    ScheduleComparisonConfig,
    compare_schedules,
    expected_fusion_width_exhaustive,
)

# Edit these four lines to explore other configurations ------------------
INTERVAL_LENGTHS = (0.2, 0.2, 1.0, 2.0)  # the LandShark speed-sensor widths
ATTACKED_SENSORS = 1                     # how many sensors the attacker controls
GRID_POSITIONS = 5                       # discretisation of each correct placement
BATCH_SAMPLES = 2_000                    # Monte-Carlo trials for the batched sweep
# ------------------------------------------------------------------------


def main() -> None:
    config = ScheduleComparisonConfig(
        lengths=INTERVAL_LENGTHS, fa=ATTACKED_SENSORS, positions=GRID_POSITIONS
    )
    schedules = [AscendingSchedule(), DescendingSchedule(), RandomSchedule()]

    print(
        f"Configuration: n={config.n}, f={config.resolved_f}, fa={config.fa}, "
        f"attacked sensors (by index) = {config.resolved_attacked}, "
        f"{GRID_POSITIONS ** config.n} combinations per schedule"
    )

    baseline = expected_fusion_width_exhaustive(
        config, AscendingSchedule(), TruthfulPolicy(), rng=np.random.default_rng(0)
    )
    comparison = compare_schedules(
        config, schedules, policy_factory=ExpectationPolicy, rng=np.random.default_rng(0)
    )

    rows = [["(no attack)", f"{baseline.expected_width:.3f}", "-"]]
    for row in comparison.rows:
        overhead = row.expected_width / baseline.expected_width - 1.0
        rows.append([row.schedule_name, f"{row.expected_width:.3f}", f"+{overhead:.1%}"])
    print()
    print(
        format_table(
            ["schedule", "expected fusion width", "attack overhead vs no attack"],
            rows,
            title="Expected fusion-interval length per communication schedule",
        )
    )
    print(
        "\nThe Ascending schedule (most precise sensors first) minimises the attacker's"
        "\nexpected impact, which is the paper's recommendation."
    )

    # The same configuration on the batch engine: the exact expectation
    # attacker (problem (2)) vectorized over BATCH_SAMPLES Monte-Carlo
    # rounds per schedule — the README's "Table I, batched" quickstart.
    batched = compare_schedules(
        config,
        schedules,
        engine="batch",
        attack="expectation",
        samples=BATCH_SAMPLES,
        rng=np.random.default_rng(0),
    )
    rows = [
        [row.schedule_name, f"{row.expected_width:.3f}", f"{row.detected_fraction:.1%}"]
        for row in batched.rows
    ]
    print()
    print(
        format_table(
            ["schedule", "expected fusion width", "attacker detected"],
            rows,
            title=(
                "Same attacker, batch engine — "
                f"{BATCH_SAMPLES:,} Monte-Carlo rounds per schedule"
            ),
        )
    )


if __name__ == "__main__":
    main()
