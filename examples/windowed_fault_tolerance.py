"""Windowed detection with randomly faulty sensors (the paper's future work).

Run with::

    python examples/windowed_fault_tolerance.py

The base detection rule of the paper is memoryless: any interval that misses
the fusion interval is discarded.  Real sensors also glitch occasionally, so
the paper's footnote 1 proposes discarding a sensor only if it is flagged more
than ``f_w`` times within a window of ``w`` rounds.  This example runs the
LandShark sensor widths with

* a 3 % per-round transient fault probability on every honest sensor, and
* one persistently spoofing sensor,

and shows how the two detection policies treat them.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core import WindowedFusionPipeline
from repro.sensors import FaultySensor, SensorSuite, TransientFaultModel, sensors_from_widths

WIDTHS = [0.2, 0.2, 1.0, 2.0, 4.0]
SPOOFER_INDEX = 4
TRUE_VALUE = 10.0
N_ROUNDS = 250
FAULT_PROBABILITY = 0.03


def run_policy(window: int, max_flags: int, seed: int = 0) -> dict[str, object]:
    suite = SensorSuite(
        FaultySensor(sensor, TransientFaultModel(probability=FAULT_PROBABILITY))
        for sensor in sensors_from_widths(WIDTHS)
    )
    pipeline = WindowedFusionPipeline(len(suite), window=window, max_flags=max_flags)
    rng = np.random.default_rng(seed)
    spoofer_discarded_at: int | None = None
    containment = 0
    for round_index in range(N_ROUNDS):
        readings = suite.measure_all(TRUE_VALUE, rng)
        intervals = [reading.interval for reading in readings]
        intervals[SPOOFER_INDEX] = intervals[SPOOFER_INDEX].shift(8.0)
        outcome = pipeline.process_round(intervals)
        containment += outcome.fusion.contains(TRUE_VALUE)
        if spoofer_discarded_at is None and outcome.is_discarded(SPOOFER_INDEX):
            spoofer_discarded_at = round_index + 1
    honest_discarded = sorted(set(pipeline.detector.discarded) - {SPOOFER_INDEX})
    return {
        "honest discarded": len(honest_discarded),
        "spoofer discarded": "never" if spoofer_discarded_at is None else f"round {spoofer_discarded_at}",
        "truth contained": f"{containment / N_ROUNDS:.1%}",
    }


def main() -> None:
    policies = [
        ("memoryless (w=1, budget 0)", 1, 0),
        ("windowed (w=10, budget 3)", 10, 3),
        ("windowed (w=20, budget 6)", 20, 6),
    ]
    rows = []
    for label, window, budget in policies:
        stats = run_policy(window, budget)
        rows.append([label, stats["honest discarded"], stats["spoofer discarded"], stats["truth contained"]])
    print(
        format_table(
            ["detection policy", "honest sensors discarded", "spoofer discarded", "truth contained"],
            rows,
            title=(
                f"Windowed detection with {FAULT_PROBABILITY:.0%} transient faults "
                f"and one persistent spoofer ({N_ROUNDS} rounds)"
            ),
        )
    )
    print(
        "\nThe windowed rule keeps transiently-glitching honest sensors in service while"
        "\nstill discarding the persistent spoofer within a few rounds."
    )


if __name__ == "__main__":
    main()
