"""Attack detection demo: a naive spoofer is caught, a stealthy attacker is not.

Run with::

    python examples/attack_detection_demo.py

The controller's detection procedure discards every interval that does not
intersect the fusion interval.  The script contrasts three attackers, each
compromising one wheel encoder of the LandShark sensor suite (the most
precise sensor — the strongest choice per Theorem 4):

* a naive spoofer that shifts the encoder reading by a large constant — the
  forged interval drifts away from the fusion interval and is flagged;
* the stealth-aware :class:`FixedShiftPolicy`, which degrades its shift until
  the forged interval stays consistent;
* the expectation-maximising attacker of the paper, which widens the fusion
  interval as far as possible while remaining undetected by construction.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.attack import AttackPolicy, ExpectationPolicy, FixedShiftPolicy
from repro.attack.context import AttackContext
from repro.core import Interval
from repro.scheduling import DescendingSchedule, RoundConfig, run_round
from repro.vehicle import landshark_suite


class NaiveSpooferPolicy(AttackPolicy):
    """Always shifts the compromised reading by a fixed bias, stealth be damned."""

    def __init__(self, shift: float) -> None:
        self._shift = shift

    def choose_interval(self, context: AttackContext, rng: np.random.Generator) -> Interval:
        return context.own_reading.shift(self._shift)


def main() -> None:
    rng = np.random.default_rng(3)
    suite = landshark_suite()
    true_speed = 10.0
    readings = suite.measure_all(true_speed, rng)
    intervals = [reading.interval for reading in readings]
    attacked_index = suite.index_of("encoder-left")

    attackers = [
        ("naive +3 mph spoofer", NaiveSpooferPolicy(shift=3.0)),
        ("stealth-aware fixed shift", FixedShiftPolicy(shift=3.0)),
        ("expectation-maximising", ExpectationPolicy()),
    ]

    rows = []
    for label, policy in attackers:
        result = run_round(
            intervals,
            RoundConfig(schedule=DescendingSchedule(), attacked_indices=(attacked_index,), policy=policy),
            rng,
        )
        forged = result.broadcast[attacked_index]
        rows.append(
            [
                label,
                str(forged),
                str(result.fusion),
                f"{result.fusion_width:.2f}",
                "yes" if result.attacker_detected else "no",
            ]
        )

    print(
        f"True speed: {true_speed} mph, "
        f"correct encoder interval: {intervals[attacked_index]}\n"
    )
    print(
        format_table(
            ["attacker", "forged interval", "fusion interval", "fusion width", "detected"],
            rows,
            title="Detection outcome per attacker (encoder compromised, Descending schedule)",
        )
    )
    print(
        "\nOnly attackers that keep their forged interval consistent with the fusion"
        "\ninterval stay hidden; the detection procedure flags the naive spoofer."
    )


if __name__ == "__main__":
    main()
