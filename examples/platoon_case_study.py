"""LandShark platoon case study (the paper's Table II scenario).

Run with::

    python examples/platoon_case_study.py

Three LandShark UGVs drive in a platoon at a 10 mph target speed with a
±0.5 mph safety envelope.  Each vehicle fuses four speed sensors (two wheel
encoders, GPS, camera) over its shared bus; one uniformly random sensor per
round is under stealthy attack.  The script reports, for each communication
schedule, how often the fusion interval crosses the critical speeds that
force the safety supervisor to preempt the low-level controller.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import TABLE2_PAPER_RESULTS, format_percentage, format_table
from repro.scheduling import DescendingSchedule
from repro.vehicle import CaseStudyConfig, Platoon, run_case_study

N_STEPS = 150


def violation_table(config: CaseStudyConfig) -> str:
    result = run_case_study(config)
    rows = []
    for name in ("ascending", "descending", "random"):
        stats = result.for_schedule(name)
        paper_upper, paper_lower = TABLE2_PAPER_RESULTS[name]
        rows.append(
            [
                name,
                format_percentage(stats.upper_percentage),
                format_percentage(stats.lower_percentage),
                f"{format_percentage(paper_upper)} / {format_percentage(paper_lower)}",
            ]
        )
    return format_table(
        ["schedule", "> 10.5 mph", "< 9.5 mph", "paper (upper / lower)"],
        rows,
        title=(
            f"Critical speed violations over {config.n_steps} control periods x "
            f"{config.n_vehicles} vehicles (one random sensor attacked per round)"
        ),
    )


def platoon_trace(n_steps: int = 50) -> str:
    """A short single-platoon trace under the Descending schedule."""
    config = CaseStudyConfig(n_steps=n_steps, n_vehicles=3, seed=1)
    platoon = Platoon(
        config.platoon_config(),
        DescendingSchedule(),
        attacked_selector=config.attacked_selector(),
    )
    rng = np.random.default_rng(1)
    lines = ["step | leader speed | fusion interval (leader) | preempted | min gap"]
    for step_index in range(n_steps):
        step = platoon.step(rng)
        leader = step.records[0]
        if step_index % 10 == 0:
            lines.append(
                f"{step_index:4d} | {leader.true_speed:12.2f} | "
                f"[{leader.fusion.lo:6.2f}, {leader.fusion.hi:6.2f}]        | "
                f"{'yes' if leader.decision.preempted else 'no ':3} | {step.min_gap:7.2f}"
            )
    return "\n".join(lines)


def main() -> None:
    config = CaseStudyConfig(n_steps=N_STEPS, n_vehicles=3, seed=2014)
    print(violation_table(config))
    print(
        "\nThe Ascending schedule forces the attacker to transmit before seeing any other"
        "\nmeasurement, so she cannot push the fusion interval over the critical speeds."
    )
    print("\nShort platoon trace (Descending schedule, leader vehicle):\n")
    print(platoon_trace())


if __name__ == "__main__":
    main()
