"""Quickstart: abstract sensors, Marzullo fusion, detection and a first attack.

Run with::

    python examples/quickstart.py

The script walks through the library's core loop:

1. build a small sensor suite and take one round of measurements,
2. fuse the intervals with Marzullo's algorithm for several fault bounds,
3. run the controller's detection procedure,
4. let a stealthy attacker forge one interval and observe the effect,
5. render the round the way the paper draws its figures,
6. scale the experiment up through the pluggable engine layer
   (``engine="batch"`` runs thousands of Monte-Carlo rounds at once).
"""

from __future__ import annotations

import numpy as np

from repro import (
    AscendingSchedule,
    DescendingSchedule,
    FusionEngine,
    RoundConfig,
    ScheduleComparisonConfig,
    fuse,
    get_engine,
    run_round,
    sensors_from_widths,
)
from repro.attack import ExpectationPolicy
from repro.sensors import SensorSuite
from repro.viz import LabeledInterval, render_fusion_figure


def section(title: str) -> None:
    print(f"\n=== {title} ===")


def main() -> None:
    rng = np.random.default_rng(7)
    true_speed = 10.0

    # ------------------------------------------------------------------
    # 1. Abstract sensors: each measurement becomes an interval whose width
    #    encodes the sensor's precision.
    # ------------------------------------------------------------------
    section("One round of measurements")
    suite = SensorSuite(sensors_from_widths([0.2, 1.0, 2.0, 4.0]))
    readings = suite.measure_all(true_speed, rng)
    for reading in readings:
        print(f"{reading.sensor_name}: measured {reading.measurement:.3f} -> interval {reading.interval}")

    # ------------------------------------------------------------------
    # 2. Marzullo fusion for increasing fault bounds.
    # ------------------------------------------------------------------
    section("Marzullo fusion for f = 0, 1 (uncertainty grows with f)")
    intervals = [reading.interval for reading in readings]
    for f in (0, 1):
        fusion = fuse(intervals, f)
        print(f"f = {f}: fusion = {fusion} (width {fusion.width:.3f})")

    # ------------------------------------------------------------------
    # 3. Controller-side engine: fusion + detection in one call.
    # ------------------------------------------------------------------
    section("Fusion engine with detection")
    engine = FusionEngine(n_sensors=len(suite))
    outcome = engine.process_round(intervals)
    print(f"fusion interval : {outcome.fusion}")
    print(f"point estimate  : {outcome.estimate:.3f} (true value {true_speed})")
    print(f"flagged sensors : {list(outcome.detection.flagged_indices) or 'none'}")

    # ------------------------------------------------------------------
    # 4. A stealthy attacker compromises the most precise sensor.  Under the
    #    Descending schedule she transmits last and can stretch the fusion
    #    interval; under Ascending she transmits first and gains nothing.
    # ------------------------------------------------------------------
    section("Stealthy attack on the most precise sensor")
    for schedule in (DescendingSchedule(), AscendingSchedule()):
        result = run_round(
            intervals,
            RoundConfig(schedule=schedule, attacked_indices=(0,), policy=ExpectationPolicy()),
            rng,
        )
        print(
            f"{schedule.name:>10}: fusion {result.fusion} "
            f"(width {result.fusion_width:.3f}, attacker detected: {result.attacker_detected})"
        )

    # ------------------------------------------------------------------
    # 5. Render the attacked round the way the paper draws its figures.
    # ------------------------------------------------------------------
    section("Figure-style rendering of the attacked (Descending) round")
    result = run_round(
        intervals,
        RoundConfig(schedule=DescendingSchedule(), attacked_indices=(0,), policy=ExpectationPolicy()),
        rng,
    )
    sensors = [
        LabeledInterval(f"s{i + 1}" + (" (attacked)" if result.is_attacked(i) else ""), interval, result.is_attacked(i))
        for i, interval in enumerate(result.broadcast)
    ]
    fusions = [LabeledInterval("fusion", result.fusion)]
    print(render_fusion_figure(sensors, fusions))

    # ------------------------------------------------------------------
    # 6. Scale up through the engine layer: the same Monte-Carlo sweep on
    #    the scalar reference loop and on the vectorized batch engine.
    #    (`engine="batch"` is 1-2 orders of magnitude faster at large
    #    sample counts; the default engine is env-overridable via
    #    REPRO_ENGINE.)
    # ------------------------------------------------------------------
    section("Same sweep on both simulation engines (greedy stretch attacker)")
    config = ScheduleComparisonConfig(lengths=(0.2, 1.0, 2.0, 4.0), fa=1)
    for name in ("scalar", "batch"):
        engine = get_engine(name)
        rounds = engine.run_rounds(
            config, DescendingSchedule(), samples=2_000, rng=np.random.default_rng(0)
        )
        print(
            f"{name:>7} engine: {rounds.samples} rounds, "
            f"mean fusion width {rounds.mean_width:.3f}, "
            f"attacker detected in {rounds.detected_fraction:.0%} of rounds"
        )


if __name__ == "__main__":
    main()
