"""Unit tests for the communication schedules."""

import numpy as np
import pytest

from repro.core import ScheduleError
from repro.scheduling import (
    AscendingSchedule,
    DescendingSchedule,
    FixedSchedule,
    RandomSchedule,
    schedule_by_name,
)

WIDTHS = [2.0, 0.2, 1.0, 0.2]


class TestAscendingDescending:
    def test_ascending_orders_most_precise_first(self):
        rng = np.random.default_rng(0)
        assert AscendingSchedule().order(WIDTHS, rng) == (1, 3, 2, 0)

    def test_descending_orders_least_precise_first(self):
        rng = np.random.default_rng(0)
        assert DescendingSchedule().order(WIDTHS, rng) == (0, 2, 1, 3)

    def test_orders_are_permutations(self):
        rng = np.random.default_rng(0)
        for schedule in (AscendingSchedule(), DescendingSchedule()):
            order = schedule.order(WIDTHS, rng)
            assert sorted(order) == list(range(len(WIDTHS)))

    def test_ascending_is_reverse_of_descending_without_ties(self):
        rng = np.random.default_rng(0)
        widths = [3.0, 1.0, 2.0]
        asc = AscendingSchedule().order(widths, rng)
        desc = DescendingSchedule().order(widths, rng)
        assert asc == tuple(reversed(desc))

    def test_deterministic(self):
        asc = AscendingSchedule()
        orders = {asc.order(WIDTHS, np.random.default_rng(seed)) for seed in range(5)}
        assert len(orders) == 1

    def test_empty_widths_rejected(self):
        with pytest.raises(ScheduleError):
            AscendingSchedule().order([], np.random.default_rng(0))

    def test_non_positive_widths_rejected(self):
        with pytest.raises(ScheduleError):
            DescendingSchedule().order([1.0, 0.0], np.random.default_rng(0))

    def test_names(self):
        assert AscendingSchedule().name == "ascending"
        assert DescendingSchedule().name == "descending"


class TestRandomSchedule:
    def test_is_a_permutation(self):
        rng = np.random.default_rng(0)
        order = RandomSchedule().order(WIDTHS, rng)
        assert sorted(order) == list(range(len(WIDTHS)))

    def test_changes_between_calls(self):
        rng = np.random.default_rng(0)
        schedule = RandomSchedule()
        orders = {schedule.order(list(range(1, 9)), rng) for _ in range(10)}
        assert len(orders) > 1

    def test_reproducible_with_seed(self):
        a = RandomSchedule().order(WIDTHS, np.random.default_rng(42))
        b = RandomSchedule().order(WIDTHS, np.random.default_rng(42))
        assert a == b


class TestFixedSchedule:
    def test_returns_given_permutation(self):
        schedule = FixedSchedule((2, 0, 1, 3))
        assert schedule.order(WIDTHS, np.random.default_rng(0)) == (2, 0, 1, 3)

    def test_invalid_permutation_rejected(self):
        with pytest.raises(ScheduleError):
            FixedSchedule((0, 0, 1))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ScheduleError):
            FixedSchedule((0, 1)).order(WIDTHS, np.random.default_rng(0))


class TestScheduleByName:
    def test_known_names(self):
        assert isinstance(schedule_by_name("ascending"), AscendingSchedule)
        assert isinstance(schedule_by_name("Descending"), DescendingSchedule)
        assert isinstance(schedule_by_name("RANDOM"), RandomSchedule)

    def test_fixed_needs_permutation(self):
        with pytest.raises(ScheduleError):
            schedule_by_name("fixed")
        assert isinstance(schedule_by_name("fixed", (1, 0)), FixedSchedule)

    def test_unknown_rejected(self):
        with pytest.raises(ScheduleError):
            schedule_by_name("clockwise")
