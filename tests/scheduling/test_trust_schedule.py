"""Unit tests for the trust-aware schedule (the paper's discussion section)."""

import numpy as np
import pytest

from repro.core import ScheduleError
from repro.scheduling import AscendingSchedule, TrustAwareSchedule

WIDTHS = [0.2, 0.2, 1.0, 2.0]  # encoder, encoder, GPS, camera


class TestTrustAwareSchedule:
    def test_most_spoofable_sensor_goes_first(self):
        # GPS and camera are easy to spoof, encoders are hard, and an IMU-like
        # hard-to-spoof sensor would be last.
        schedule = TrustAwareSchedule(spoofability=(0.1, 0.1, 1.0, 0.8))
        order = schedule.order(WIDTHS, np.random.default_rng(0))
        assert order[0] == 2  # GPS first (most spoofable)
        assert order[1] == 3  # camera next
        assert set(order[2:]) == {0, 1}  # trusted encoders last

    def test_uniform_spoofability_degenerates_to_ascending(self):
        schedule = TrustAwareSchedule(spoofability=(1.0, 1.0, 1.0, 1.0))
        rng = np.random.default_rng(0)
        assert schedule.order(WIDTHS, rng) == AscendingSchedule().order(WIDTHS, rng)

    def test_known_attacked_sensor_first(self):
        # "If it is known which sensor is being attacked then any schedule
        # that places that sensor first would result in a smaller fusion
        # interval" — give the suspected sensor the highest score.
        schedule = TrustAwareSchedule(spoofability=(5.0, 0.0, 0.0, 0.0))
        order = schedule.order(WIDTHS, np.random.default_rng(0))
        assert order[0] == 0

    def test_is_a_permutation(self):
        schedule = TrustAwareSchedule(spoofability=(0.3, 0.9, 0.1, 0.5))
        order = schedule.order(WIDTHS, np.random.default_rng(0))
        assert sorted(order) == list(range(len(WIDTHS)))

    def test_length_mismatch_rejected(self):
        schedule = TrustAwareSchedule(spoofability=(1.0, 1.0))
        with pytest.raises(ScheduleError):
            schedule.order(WIDTHS, np.random.default_rng(0))

    def test_negative_scores_rejected(self):
        with pytest.raises(ScheduleError):
            TrustAwareSchedule(spoofability=(1.0, -0.1))

    def test_empty_scores_rejected(self):
        with pytest.raises(ScheduleError):
            TrustAwareSchedule(spoofability=())

    def test_name(self):
        assert TrustAwareSchedule(spoofability=(1.0,)).name == "trust-aware"
