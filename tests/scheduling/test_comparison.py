"""Unit tests for the Table I schedule-comparison machinery."""

import numpy as np
import pytest

from repro.attack import GreedyExtendPolicy, TruthfulPolicy
from repro.core import ExperimentError
from repro.scheduling import (
    AscendingSchedule,
    DescendingSchedule,
    ScheduleComparisonConfig,
    compare_schedules,
    default_attacked_indices,
    expected_fusion_width_exhaustive,
    expected_fusion_width_monte_carlo,
)


class TestConfig:
    def test_defaults(self):
        config = ScheduleComparisonConfig(lengths=(5.0, 11.0, 17.0), fa=1)
        assert config.n == 3
        assert config.resolved_f == 1
        assert config.resolved_attacked == (0,)

    def test_attacked_defaults_to_most_precise(self):
        config = ScheduleComparisonConfig(lengths=(17.0, 5.0, 11.0, 5.0, 8.0), fa=2)
        assert config.resolved_attacked == (1, 3)

    def test_explicit_attacked_indices(self):
        config = ScheduleComparisonConfig(lengths=(5.0, 11.0, 17.0), fa=1, attacked_indices=(2,))
        assert config.resolved_attacked == (2,)

    def test_fa_bounds_validated(self):
        with pytest.raises(ExperimentError):
            ScheduleComparisonConfig(lengths=(5.0, 11.0, 17.0), fa=2)

    def test_attacked_count_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            ScheduleComparisonConfig(lengths=(5.0, 11.0, 17.0), fa=1, attacked_indices=(0, 1))

    def test_empty_lengths_rejected(self):
        with pytest.raises(ExperimentError):
            ScheduleComparisonConfig(lengths=(), fa=0)

    def test_default_attacked_indices_helper(self):
        assert default_attacked_indices([3.0, 1.0, 2.0], 2) == (1, 2)


class TestEstimators:
    def setup_method(self):
        self.config = ScheduleComparisonConfig(lengths=(5.0, 11.0, 17.0), fa=1, positions=3)

    def test_exhaustive_combination_count(self):
        row = expected_fusion_width_exhaustive(self.config, AscendingSchedule(), TruthfulPolicy())
        assert row.combinations == 27

    def test_truthful_attacker_schedule_invariant(self):
        asc = expected_fusion_width_exhaustive(self.config, AscendingSchedule(), TruthfulPolicy())
        desc = expected_fusion_width_exhaustive(self.config, DescendingSchedule(), TruthfulPolicy())
        assert asc.expected_width == pytest.approx(desc.expected_width)

    def test_attacker_never_detected(self):
        row = expected_fusion_width_exhaustive(self.config, DescendingSchedule(), GreedyExtendPolicy())
        assert row.detected_fraction == 0.0

    def test_monte_carlo_close_to_exhaustive_for_truthful(self):
        exhaustive = expected_fusion_width_exhaustive(self.config, AscendingSchedule(), TruthfulPolicy())
        monte_carlo = expected_fusion_width_monte_carlo(
            self.config, AscendingSchedule(), TruthfulPolicy(), samples=800, rng=np.random.default_rng(0)
        )
        assert monte_carlo.expected_width == pytest.approx(exhaustive.expected_width, rel=0.15)

    def test_monte_carlo_needs_positive_samples(self):
        with pytest.raises(ExperimentError):
            expected_fusion_width_monte_carlo(self.config, AscendingSchedule(), TruthfulPolicy(), samples=0)


class TestCompareSchedules:
    def test_rows_and_lookup(self):
        config = ScheduleComparisonConfig(lengths=(5.0, 11.0, 17.0), fa=1, positions=3)
        comparison = compare_schedules(config, [AscendingSchedule(), DescendingSchedule()])
        assert len(comparison.rows) == 2
        assert comparison.row("ascending").schedule_name == "ascending"
        with pytest.raises(ExperimentError):
            comparison.row("random")

    def test_descending_not_better_for_the_system(self):
        # The paper's Table I observation: the expected length under the
        # Descending schedule is never smaller than under Ascending.
        config = ScheduleComparisonConfig(lengths=(5.0, 11.0, 17.0), fa=1, positions=3)
        comparison = compare_schedules(config, [AscendingSchedule(), DescendingSchedule()])
        assert comparison.expected_width("descending") >= comparison.expected_width("ascending") - 1e-9

    def test_unknown_method_rejected(self):
        config = ScheduleComparisonConfig(lengths=(5.0, 11.0), fa=0, positions=2)
        with pytest.raises(ExperimentError):
            compare_schedules(config, [AscendingSchedule()], method="magic")
