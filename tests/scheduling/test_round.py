"""Unit tests for the single-round simulator."""

import numpy as np
import pytest

from repro.attack import ExpectationPolicy, GreedyExtendPolicy, TruthfulPolicy
from repro.core import Interval, ScheduleError, fuse
from repro.scheduling import (
    AscendingSchedule,
    DescendingSchedule,
    FixedSchedule,
    RoundConfig,
    run_round,
)

CORRECT = [Interval(9.9, 10.1), Interval(9.7, 10.3), Interval(9.6, 10.6), Interval(9.2, 11.2)]


class TestRoundWithoutAttack:
    def test_fusion_matches_direct_marzullo(self):
        rng = np.random.default_rng(0)
        config = RoundConfig(schedule=AscendingSchedule(), f=1)
        result = run_round(CORRECT, config, rng)
        assert result.fusion == fuse(CORRECT, 1)

    def test_broadcast_equals_correct_without_attack(self):
        rng = np.random.default_rng(0)
        result = run_round(CORRECT, RoundConfig(schedule=DescendingSchedule(), f=1), rng)
        assert result.broadcast == tuple(CORRECT)
        assert result.attacked_indices == ()
        assert not result.attacker_detected

    def test_default_f_is_conservative(self):
        rng = np.random.default_rng(0)
        result = run_round(CORRECT, RoundConfig(schedule=AscendingSchedule()), rng)
        assert result.fusion == fuse(CORRECT, 1)

    def test_schedule_order_recorded(self):
        rng = np.random.default_rng(0)
        result = run_round(CORRECT, RoundConfig(schedule=AscendingSchedule(), f=1), rng)
        assert result.order == (0, 1, 2, 3)
        result = run_round(CORRECT, RoundConfig(schedule=DescendingSchedule(), f=1), rng)
        assert result.order == (3, 2, 1, 0)

    def test_empty_input_rejected(self):
        with pytest.raises(ScheduleError):
            run_round([], RoundConfig(schedule=AscendingSchedule()), np.random.default_rng(0))

    def test_invalid_attacked_index_rejected(self):
        config = RoundConfig(schedule=AscendingSchedule(), attacked_indices=(9,), f=1)
        with pytest.raises(ScheduleError):
            run_round(CORRECT, config, np.random.default_rng(0))


class TestRoundWithAttack:
    def test_truthful_attacker_equals_no_attack(self):
        rng = np.random.default_rng(0)
        attacked = run_round(
            CORRECT,
            RoundConfig(schedule=DescendingSchedule(), attacked_indices=(0,), policy=TruthfulPolicy(), f=1),
            rng,
        )
        clean = run_round(CORRECT, RoundConfig(schedule=DescendingSchedule(), f=1), rng)
        assert attacked.fusion == clean.fusion

    def test_attacker_modes_recorded(self):
        rng = np.random.default_rng(0)
        result = run_round(
            CORRECT,
            RoundConfig(
                schedule=DescendingSchedule(), attacked_indices=(0,), policy=GreedyExtendPolicy(), f=1
            ),
            rng,
        )
        assert set(result.attacker_modes.keys()) == {0}
        assert result.attacker_modes[0] is not None

    def test_attack_widens_or_preserves_fusion(self):
        rng = np.random.default_rng(0)
        clean = run_round(CORRECT, RoundConfig(schedule=DescendingSchedule(), f=1), rng)
        attacked = run_round(
            CORRECT,
            RoundConfig(
                schedule=DescendingSchedule(), attacked_indices=(0,), policy=ExpectationPolicy(), f=1
            ),
            rng,
        )
        assert attacked.fusion_width >= clean.fusion_width - 1e-9

    def test_is_attacked_helper(self):
        rng = np.random.default_rng(0)
        result = run_round(
            CORRECT,
            RoundConfig(schedule=AscendingSchedule(), attacked_indices=(1,), policy=TruthfulPolicy(), f=1),
            rng,
        )
        assert result.is_attacked(1)
        assert not result.is_attacked(0)

    def test_broadcast_keeps_sensor_order_under_any_schedule(self):
        rng = np.random.default_rng(0)
        for permutation in [(0, 1, 2, 3), (3, 1, 0, 2), (2, 3, 0, 1)]:
            result = run_round(
                CORRECT,
                RoundConfig(schedule=FixedSchedule(permutation), attacked_indices=(), f=1),
                rng,
            )
            assert result.broadcast == tuple(CORRECT)

    def test_fusion_contains_true_value_under_stealthy_attack(self):
        rng = np.random.default_rng(1)
        for attacked in ((0,), (1,), (3,)):
            result = run_round(
                CORRECT,
                RoundConfig(
                    schedule=DescendingSchedule(),
                    attacked_indices=attacked,
                    policy=ExpectationPolicy(),
                    f=1,
                ),
                rng,
            )
            assert result.fusion.contains(10.0)
            assert not result.attacker_detected
