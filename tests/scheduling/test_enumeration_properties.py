"""Property-based tests for schedule-space canonicalization (hypothesis).

The search subsystem (:mod:`repro.optimize`) rests on three properties of
the enumeration half of :mod:`repro.scheduling.enumeration`:

* canonical forms are *permutation invariant within a class orbit*:
  swapping interchangeable sensors (equal width, equal attacked status)
  never changes the canonical form, and swapping non-interchangeable ones
  always does;
* :func:`enumerate_schedules` yields pairwise-distinct canonical fixed
  points whose count matches :func:`count_distinct_schedules` exactly;
* the combination-space counter :func:`count_combinations` matches its
  enumerator (the original Table I half of the module).
"""

import math
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling import (
    canonical_schedule,
    count_combinations,
    count_distinct_schedules,
    enumerate_combinations,
    enumerate_schedules,
    schedule_equivalence_classes,
)

#: Width grids drawn from a small pool so repeated widths (the interesting
#: case — non-trivial equivalence classes) occur constantly.
width_pool = st.sampled_from([1.0, 2.0, 2.0, 5.0, 5.0, 8.0])


@st.composite
def configuration(draw, max_sensors=6):
    """A width grid plus a (possibly empty) attacked subset."""
    n = draw(st.integers(min_value=1, max_value=max_sensors))
    widths = tuple(draw(width_pool) for _ in range(n))
    attacked = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), unique=True, max_size=min(2, n))
    )
    return widths, tuple(attacked)


@st.composite
def configuration_with_permutation(draw):
    widths, attacked = draw(configuration())
    permutation = draw(st.permutations(range(len(widths))))
    return widths, attacked, tuple(permutation)


class TestCanonicalInvariance:
    @given(configuration_with_permutation())
    @settings(max_examples=200, deadline=None)
    def test_canonical_is_idempotent(self, config):
        widths, attacked, permutation = config
        once = canonical_schedule(permutation, widths, attacked)
        assert canonical_schedule(once, widths, attacked) == once

    @given(configuration_with_permutation())
    @settings(max_examples=200, deadline=None)
    def test_canonical_preserves_class_sequence(self, config):
        # The canonical form is in the same orbit as the input: slot by
        # slot, the equivalence class occupying the slot is unchanged.
        widths, attacked, permutation = config
        classes = schedule_equivalence_classes(widths, attacked)
        canonical = canonical_schedule(permutation, widths, attacked)
        assert [classes[i] for i in canonical] == [classes[i] for i in permutation]

    @given(configuration_with_permutation(), st.randoms(use_true_random=False))
    @settings(max_examples=200, deadline=None)
    def test_swapping_interchangeable_sensors_is_invisible(self, config, random):
        widths, attacked, permutation = config
        classes = schedule_equivalence_classes(widths, attacked)
        members: dict[int, list[int]] = {}
        for index, class_id in enumerate(classes):
            members.setdefault(class_id, []).append(index)
        pools = [indices for indices in members.values() if len(indices) >= 2]
        if not pools:
            return
        first, second = random.sample(random.choice(pools), 2)
        swapped = [
            first if index == second else second if index == first else index
            for index in permutation
        ]
        assert canonical_schedule(swapped, widths, attacked) == canonical_schedule(
            permutation, widths, attacked
        )

    @given(configuration_with_permutation())
    @settings(max_examples=200, deadline=None)
    def test_different_class_sequences_never_collide(self, config):
        widths, attacked, permutation = config
        classes = schedule_equivalence_classes(widths, attacked)
        canonical = canonical_schedule(permutation, widths, attacked)
        # Injectivity on class sequences: the canonical form determines the
        # class sequence, so equal canonicals imply equal sequences.
        assert tuple(classes[i] for i in canonical) == tuple(classes[i] for i in permutation)


class TestEnumerateSchedules:
    @given(configuration())
    @settings(max_examples=100, deadline=None)
    def test_count_matches_enumeration(self, config):
        widths, attacked = config
        schedules = list(enumerate_schedules(widths, attacked))
        assert len(schedules) == count_distinct_schedules(widths, attacked)

    @given(configuration())
    @settings(max_examples=100, deadline=None)
    def test_no_duplicate_canonical_schedules(self, config):
        widths, attacked = config
        schedules = list(enumerate_schedules(widths, attacked))
        assert len(set(schedules)) == len(schedules)

    @given(configuration())
    @settings(max_examples=100, deadline=None)
    def test_every_yield_is_a_canonical_fixed_point(self, config):
        widths, attacked = config
        for schedule in enumerate_schedules(widths, attacked):
            assert canonical_schedule(schedule, widths, attacked) == schedule
            assert sorted(schedule) == list(range(len(widths)))

    @given(configuration())
    @settings(max_examples=100, deadline=None)
    def test_count_is_the_multinomial(self, config):
        widths, attacked = config
        classes = schedule_equivalence_classes(widths, attacked)
        expected = math.factorial(len(classes))
        for size in Counter(classes).values():
            expected //= math.factorial(size)
        assert count_distinct_schedules(widths, attacked) == expected

    def test_exhaustive_cross_check_small_space(self):
        # Brute force for n=4 with ties: canonicalising all 4! permutations
        # yields exactly the enumerated set.
        import itertools

        widths = (5.0, 8.0, 8.0, 11.0)
        enumerated = set(enumerate_schedules(widths))
        brute = {
            canonical_schedule(permutation, widths)
            for permutation in itertools.permutations(range(4))
        }
        assert enumerated == brute
        assert len(enumerated) == 12  # 4! / 2!


class TestCombinationCount:
    @given(
        st.lists(st.floats(min_value=0.5, max_value=8.0), min_size=1, max_size=4),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_enumeration_count_matches_count_combinations(self, widths, positions):
        combos = list(enumerate_combinations(widths, true_value=0.0, positions=positions))
        assert len(combos) == count_combinations(widths, positions)
