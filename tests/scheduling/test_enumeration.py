"""Unit tests for the exhaustive measurement-combination enumerator."""

import pytest

from repro.core import ExperimentError
from repro.scheduling import correct_placement_grid, count_combinations, enumerate_combinations


class TestCorrectPlacementGrid:
    def test_all_placements_contain_true_value(self):
        for interval in correct_placement_grid(4.0, true_value=2.0, positions=5):
            assert interval.contains(2.0)
            assert interval.width == pytest.approx(4.0)

    def test_extremes_touch_true_value(self):
        grid = correct_placement_grid(4.0, true_value=0.0, positions=3)
        assert grid[0].hi == pytest.approx(0.0)
        assert grid[-1].lo == pytest.approx(0.0)

    def test_single_position_is_centred(self):
        (only,) = correct_placement_grid(2.0, true_value=1.0, positions=1)
        assert only.center == pytest.approx(1.0)

    def test_invalid_width_rejected(self):
        with pytest.raises(ExperimentError):
            correct_placement_grid(0.0, 0.0, 3)

    def test_invalid_positions_rejected(self):
        with pytest.raises(ExperimentError):
            correct_placement_grid(1.0, 0.0, 0)


class TestEnumerateCombinations:
    def test_count_matches(self):
        widths = [5.0, 11.0, 17.0]
        combos = list(enumerate_combinations(widths, true_value=0.0, positions=3))
        assert len(combos) == count_combinations(widths, 3) == 27

    def test_each_combination_is_fully_correct(self):
        for combo in enumerate_combinations([2.0, 3.0], true_value=1.0, positions=4):
            assert len(combo) == 2
            assert all(interval.contains(1.0) for interval in combo)

    def test_widths_preserved_per_sensor(self):
        for combo in enumerate_combinations([2.0, 3.0], true_value=0.0, positions=2):
            assert combo[0].width == pytest.approx(2.0)
            assert combo[1].width == pytest.approx(3.0)

    def test_combinations_are_unique(self):
        combos = list(enumerate_combinations([1.0, 2.0], true_value=0.0, positions=3))
        assert len({tuple((s.lo, s.hi) for s in combo) for combo in combos}) == len(combos)

    def test_count_invalid_positions(self):
        with pytest.raises(ExperimentError):
            count_combinations([1.0], 0)
