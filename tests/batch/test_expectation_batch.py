"""Round-for-round equivalence of the vectorized exact expectation attacker.

The scalar oracle is :class:`repro.attack.expectation.ExpectationPolicy`
driven by the scalar engine (deterministic ``tie_break="first"``, the
``attack="expectation"`` spec); the batch engine drives
:class:`repro.batch.expectation.ExactExpectationBatchAttacker`.  Both draw
samples and transmission orders through the same vectorized primitives, so
their :class:`repro.engine.base.RoundsResult` arrays must match **bit for
bit** — seeded sweeps and hypothesis-randomized configurations, ``fa = 1``
and ``fa = 2``, both ``conservative`` modes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attack.candidates import candidate_intervals
from repro.attack.context import AttackContext
from repro.attack.expectation import ExpectationPolicy
from repro.batch import (
    BatchRoundConfig,
    ExactExpectationBatchAttacker,
    VectorizedExpectationPolicy,
    monte_carlo_rounds,
)
from repro.batch.expectation import _candidate_parity_check
from repro.core.exceptions import ScheduleError
from repro.core.interval import Interval
from repro.engine import BatchEngine, ExpectationAttack, ScalarEngine
from repro.scheduling import (
    AscendingSchedule,
    DescendingSchedule,
    RandomSchedule,
    ScheduleComparisonConfig,
)

#: Coarse grid keeping the scalar oracle affordable in the loops below.
COARSE = dict(true_value_positions=2, placement_positions=2, grid_positions=5)


def _assert_rounds_equal(a, b):
    assert a.schedule_name == b.schedule_name
    np.testing.assert_array_equal(a.fusion_lo, b.fusion_lo)
    np.testing.assert_array_equal(a.fusion_hi, b.fusion_hi)
    np.testing.assert_array_equal(a.valid, b.valid)
    np.testing.assert_array_equal(a.attacker_detected, b.attacker_detected)


def _run_both(config, schedule, seed, spec, samples=24):
    scalar = ScalarEngine().run_rounds(
        config, schedule, spec, None, samples, np.random.default_rng(seed)
    )
    batch = BatchEngine().run_rounds(
        config, schedule, spec, None, samples, np.random.default_rng(seed)
    )
    return scalar, batch


@pytest.mark.parametrize(
    "lengths, fa",
    [
        ((5.0, 11.0, 17.0), 1),
        ((5.0, 8.0, 17.0, 20.0), 1),
        ((5.0, 5.0, 5.0, 14.0, 17.0), 2),
        ((5.0, 5.0, 5.0, 5.0, 20.0), 2),
    ],
    ids=lambda v: str(v),
)
@pytest.mark.parametrize(
    "schedule",
    [AscendingSchedule(), DescendingSchedule(), RandomSchedule()],
    ids=lambda s: s.name,
)
@pytest.mark.parametrize("conservative", [False, True], ids=["faithful", "conservative"])
def test_engines_bitmatch_expectation_seeded(lengths, fa, schedule, conservative):
    """Seeded Table I style sweeps: per-round arrays identical across engines."""
    config = ScheduleComparisonConfig(lengths=lengths, fa=fa)
    spec = ExpectationAttack(conservative=conservative, **COARSE)
    scalar, batch = _run_both(config, schedule, seed=3, spec=spec)
    _assert_rounds_equal(scalar, batch)
    assert scalar.valid.all()


@given(
    st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=3, max_size=6),
    st.integers(min_value=0, max_value=5),
    st.booleans(),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=20, deadline=None)
def test_engines_bitmatch_expectation_random_configs(lengths, attacked_index, conservative, seed):
    lengths = tuple(lengths)
    config = ScheduleComparisonConfig(
        lengths=lengths, fa=1, attacked_indices=(attacked_index % len(lengths),)
    )
    schedule = AscendingSchedule() if seed % 2 else DescendingSchedule()
    spec = ExpectationAttack(conservative=conservative, **COARSE)
    scalar, batch = _run_both(config, schedule, seed, spec, samples=6)
    _assert_rounds_equal(scalar, batch)


def test_engine_compare_rows_match_expectation():
    """The high-level compare() route returns identical ScheduleRows."""
    config = ScheduleComparisonConfig(lengths=(5.0, 11.0, 17.0), fa=1)
    schedules = [AscendingSchedule(), DescendingSchedule()]
    spec = ExpectationAttack(**COARSE)
    scalar = ScalarEngine().compare(
        config, schedules, samples=16, rng=np.random.default_rng(9), attack=spec
    )
    batch = BatchEngine().compare(
        config, schedules, samples=16, rng=np.random.default_rng(9), attack=spec
    )
    assert scalar.rows == batch.rows


def test_compare_schedules_engine_attack_route():
    """compare_schedules(engine=..., attack='expectation') goes through the registry."""
    from repro.scheduling import compare_schedules

    config = ScheduleComparisonConfig(lengths=(5.0, 11.0, 17.0), fa=1)
    schedules = [AscendingSchedule(), DescendingSchedule()]
    spec = ExpectationAttack(**COARSE)
    via_engine = compare_schedules(
        config, schedules, engine="batch", attack=spec, samples=16, rng=np.random.default_rng(1)
    )
    direct = BatchEngine().compare(
        config, schedules, samples=16, rng=np.random.default_rng(1), attack=spec
    )
    assert via_engine.rows == direct.rows
    assert all(row.detected_fraction == 0.0 for row in via_engine.rows)


def test_attacker_selectable_in_batch_rounds():
    """The exact attacker plugs into batch_rounds like any BatchAttacker."""
    attacker = ExactExpectationBatchAttacker(**COARSE)
    config = BatchRoundConfig(
        schedule=DescendingSchedule(), attacked_indices=(0,), attacker=attacker, f=1
    )
    result = monte_carlo_rounds((5.0, 11.0, 17.0), config, samples=32)
    assert result.fusion.valid.all()
    # Stealthy by construction: the expectation attacker is never flagged.
    assert not result.attacker_detected.any()
    # The shared memo saw every decision (miss or hit) of the batch.
    assert attacker.policy.stats()["misses"] > 0


def test_forge_requires_lookahead_fields():
    """A driver that omits the lookahead arrays gets a loud error."""
    from repro.batch.rounds import BatchSlotContext

    attacker = ExactExpectationBatchAttacker(**COARSE)
    ones = np.ones(2)
    context = BatchSlotContext(
        n=3,
        f=1,
        slot=0,
        rows=np.array([True, False]),
        sensor=np.zeros(2, dtype=np.int64),
        width=ones,
        own_lo=-ones,
        own_hi=ones,
        delta_lo=-ones,
        delta_hi=ones,
        transmitted_lo=np.empty((2, 0)),
        transmitted_hi=np.empty((2, 0)),
        far=np.ones(2, dtype=np.int64),
    )
    with pytest.raises(ScheduleError, match="lookahead"):
        attacker.forge(context, np.random.default_rng(0))


# ----------------------------------------------------------------------
# Decision-level parity of the vectorized policy against the scalar one
# ----------------------------------------------------------------------

def _context_from(lengths, transmitted_count, fa_remaining, seed):
    """A plausible mid-round context built from hypothesis-ish inputs."""
    rng = np.random.default_rng(seed)
    n = len(lengths)
    transmitted = tuple(
        Interval(float(lo), float(lo + w))
        for w, lo in ((lengths[i], -rng.uniform(0, lengths[i])) for i in range(transmitted_count))
    )
    width = lengths[transmitted_count]
    own_lo = -float(rng.uniform(0, width))
    own = Interval(own_lo, own_lo + width)
    remaining = lengths[transmitted_count + 1 :]
    remaining_compromised = tuple(
        index < fa_remaining for index in range(len(remaining))
    )
    return AttackContext(
        n=n,
        f=max(1, (n - 1) // 2),
        slot_index=transmitted_count,
        sensor_index=0,
        width=width,
        own_reading=own,
        delta=own,
        transmitted=transmitted,
        transmitted_compromised=(False,) * transmitted_count,
        remaining_widths=remaining,
        remaining_compromised=remaining_compromised,
    )


@given(
    st.lists(st.floats(min_value=0.2, max_value=9.0), min_size=3, max_size=5),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_candidate_enumeration_matches_scalar(lengths, transmitted_count, fa_remaining, seed):
    """The array candidate generator equals candidate_intervals value for value."""
    lengths = tuple(lengths)
    transmitted_count = min(transmitted_count, len(lengths) - 1)
    context = _context_from(lengths, transmitted_count, fa_remaining, seed)
    assert _candidate_parity_check(context, grid_positions=7)


@given(
    st.lists(st.floats(min_value=0.2, max_value=9.0), min_size=3, max_size=4),
    st.integers(min_value=0, max_value=2),
    st.booleans(),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_vectorized_policy_decides_like_scalar(lengths, transmitted_count, conservative, seed):
    """Same context, same decision — scalar scoring versus tensor scoring."""
    lengths = tuple(lengths)
    transmitted_count = min(transmitted_count, len(lengths) - 1)
    context = _context_from(lengths, transmitted_count, fa_remaining=0, seed=seed)
    scalar = ExpectationPolicy(conservative=conservative, tie_break="first", **COARSE)
    vectorized = VectorizedExpectationPolicy(
        conservative=conservative, tie_break="first", **COARSE
    )
    rng = np.random.default_rng(0)
    assert scalar.choose_interval(context, rng) == vectorized.choose_interval(context, rng)


def test_vectorized_policy_runs_in_scalar_round():
    """The vectorized policy is a drop-in AttackPolicy for run_round."""
    from repro.scheduling import RoundConfig, run_round

    correct = [Interval(-2.5, 2.5), Interval(-5.5, 5.5), Interval(-8.5, 8.5)]
    results = []
    for policy in (
        ExpectationPolicy(tie_break="first"),
        VectorizedExpectationPolicy(tie_break="first"),
    ):
        rng = np.random.default_rng(0)
        results.append(
            run_round(
                correct,
                RoundConfig(
                    schedule=DescendingSchedule(),
                    attacked_indices=(0,),
                    policy=policy,
                    f=1,
                ),
                rng,
            )
        )
    assert results[0].broadcast == results[1].broadcast
    assert results[0].fusion == results[1].fusion


@given(
    st.lists(st.floats(min_value=0.2, max_value=9.0), min_size=3, max_size=5),
    st.booleans(),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_prepare_candidates_many_matches_single(lengths, conservative, seed):
    """The batched admissibility sweep equals per-context preparation bit for bit."""
    lengths = tuple(lengths)
    contexts = [
        _context_from(lengths, transmitted_count, fa_remaining, seed + offset)
        for offset, (transmitted_count, fa_remaining) in enumerate(
            [(0, 0), (1, 1), (2, 0), (1, 0), (2, 1), (0, 1)]
        )
        if transmitted_count < len(lengths)
    ]
    policy = VectorizedExpectationPolicy(
        conservative=conservative, tie_break="first", **COARSE
    )
    batched = policy._prepare_candidates_many(contexts)
    for ctx, many in zip(contexts, batched):
        single = policy._prepare_candidates(ctx)
        np.testing.assert_array_equal(single.lo, many.lo)
        np.testing.assert_array_equal(single.hi, many.hi)
        np.testing.assert_array_equal(single.passive, many.passive)
        np.testing.assert_array_equal(single.blocked, many.blocked)


def test_candidate_parity_check_rejects_mismatch():
    """The parity hook itself notices a divergent enumeration."""
    context = _context_from((5.0, 11.0, 17.0), 1, 0, seed=1)
    policy = VectorizedExpectationPolicy(grid_positions=7, tie_break="first")
    prepared = policy._prepare_candidates(context)
    scalar = candidate_intervals(context, 7)
    assert len(prepared) == len(scalar)
