"""Fused kernels vs the slot-loop batch driver: bit-for-bit equivalence.

The engine-level conformance suite pins ``FusedEngine`` against the scalar
oracle; this module pins the *kernels* underneath — ``fused_fusion``
against ``batch_fuse`` (exact ties included: the complex event encoding
must reproduce the opening-before-closing rule) and ``fused_rounds``
against ``batch_rounds`` across schedules, attacked sets, fault models and
per-round attacked masks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.fuse import batch_fuse
from repro.batch.fused import (
    clear_plan_cache,
    fusable_attacker,
    fused_fusion,
    fused_monte_carlo_rounds,
    fused_rounds,
    plan_for,
)
from repro.batch.rounds import (
    ActiveStretchBatchAttacker,
    BatchRoundConfig,
    BatchTransientFaults,
    ExpectationProxyBatchAttacker,
    TruthfulBatchAttacker,
    batch_rounds,
    monte_carlo_rounds,
)
from repro.core.exceptions import FaultBoundError, FusionError
from repro.scheduling.schedule import (
    AscendingSchedule,
    DescendingSchedule,
    FixedSchedule,
    RandomSchedule,
)

SCHEDULES = [
    AscendingSchedule(),
    DescendingSchedule(),
    RandomSchedule(),
    FixedSchedule((2, 0, 3, 1, 4)),
]


def assert_results_equal(a, b):
    np.testing.assert_array_equal(a.orders, b.orders)
    np.testing.assert_array_equal(a.broadcast_lo, b.broadcast_lo)
    np.testing.assert_array_equal(a.broadcast_hi, b.broadcast_hi)
    np.testing.assert_array_equal(a.fusion.lo, b.fusion.lo)
    np.testing.assert_array_equal(a.fusion.hi, b.fusion.hi)
    np.testing.assert_array_equal(a.fusion.valid, b.fusion.valid)
    np.testing.assert_array_equal(a.flagged, b.flagged)
    np.testing.assert_array_equal(a.fault_mask, b.fault_mask)
    np.testing.assert_array_equal(a.attacked_mask, b.attacked_mask)


class TestFusedFusion:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1), f=st.integers(0, 2))
    @settings(max_examples=40, deadline=None)
    def test_matches_batch_fuse_random_batches(self, seed, f):
        rng = np.random.default_rng(seed)
        lowers = rng.normal(size=(64, 6))
        uppers = lowers + rng.random((64, 6)) * 3
        a = batch_fuse(lowers, uppers, f)
        b = fused_fusion(lowers, uppers, f)
        np.testing.assert_array_equal(a.lo, b.lo)
        np.testing.assert_array_equal(a.hi, b.hi)
        np.testing.assert_array_equal(a.valid, b.valid)

    def test_matches_batch_fuse_with_exact_ties(self):
        # Opening-before-closing at equal positions is the tie rule the
        # complex event encoding must reproduce: [0,1] and [1,2] intersect
        # at exactly the point 1 for f=0.
        lowers = np.array([[0.0, 1.0], [0.0, 2.0], [0.0, 0.0]])
        uppers = np.array([[1.0, 2.0], [1.0, 3.0], [2.0, 2.0]])
        a = batch_fuse(lowers, uppers, 0)
        b = fused_fusion(lowers, uppers, 0)
        np.testing.assert_array_equal(a.lo, b.lo)
        np.testing.assert_array_equal(a.hi, b.hi)
        np.testing.assert_array_equal(a.valid, b.valid)
        assert b.valid[0] and b.lo[0] == b.hi[0] == 1.0

    def test_reports_empty_fusions_via_valid_mask(self):
        lowers = np.array([[0.0, 5.0]])
        uppers = np.array([[1.0, 6.0]])
        result = fused_fusion(lowers, uppers, 0)
        assert not result.valid[0]
        assert np.isnan(result.lo[0]) and np.isnan(result.hi[0])

    def test_validates_fault_bound(self):
        with pytest.raises(FaultBoundError):
            fused_fusion(np.zeros((2, 3)), np.ones((2, 3)), 2)

    @pytest.mark.parametrize(
        "lowers, uppers",
        [
            ([[0.0, np.nan, 1.0]], [[1.0, np.nan, 4.0]]),   # non-finite bounds
            ([[0.0, 2.0, 1.0]], [[1.0, 1.0, 4.0]]),         # upper < lower
            ([[0.0, np.inf, 1.0]], [[1.0, np.inf, 4.0]]),   # infinite bounds
        ],
    )
    def test_rejects_malformed_bounds_like_batch_fuse(self, lowers, uppers):
        # The drop-in contract covers errors too: inputs batch_fuse rejects
        # must raise here, never come back as valid-looking fusions.
        lowers, uppers = np.asarray(lowers), np.asarray(uppers)
        with pytest.raises(FusionError):
            batch_fuse(lowers, uppers, 1)
        with pytest.raises(FusionError):
            fused_fusion(lowers, uppers, 1)


class TestFusedRounds:
    @pytest.mark.parametrize("schedule", SCHEDULES, ids=lambda s: s.name)
    @pytest.mark.parametrize("attacked", [(), (0,), (2,), (0, 3), (1, 2, 4)])
    @pytest.mark.parametrize("side", [1, -1])
    def test_stretch_parity(self, schedule, attacked, side):
        config = BatchRoundConfig(
            schedule=schedule,
            attacked_indices=attacked,
            attacker=ActiveStretchBatchAttacker(side=side),
        )
        a = monte_carlo_rounds((2.0, 3.0, 3.0, 6.0, 8.0), config, 160, rng=np.random.default_rng(3))
        b = fused_monte_carlo_rounds(
            (2.0, 3.0, 3.0, 6.0, 8.0), config, 160, rng=np.random.default_rng(3)
        )
        assert_results_equal(a, b)

    @pytest.mark.parametrize("schedule", SCHEDULES[:2], ids=lambda s: s.name)
    def test_parity_with_transient_faults_and_empty_fusions(self, schedule):
        config = BatchRoundConfig(
            schedule=schedule,
            attacked_indices=(0,),
            f=2,
            faults=BatchTransientFaults(probability=0.35),
            attacker=ActiveStretchBatchAttacker(side=1),
        )
        a = monte_carlo_rounds((1.0,) * 5, config, 256, rng=np.random.default_rng(7))
        b = fused_monte_carlo_rounds((1.0,) * 5, config, 256, rng=np.random.default_rng(7))
        assert_results_equal(a, b)
        assert not a.fusion.valid.all(), "expected some empty fusions under heavy faults"

    def test_parity_with_per_round_attacked_mask(self):
        rng = np.random.default_rng(4)
        mask = np.zeros((200, 5), dtype=bool)
        mask[np.arange(200), rng.integers(0, 5, 200)] = True
        mask[np.arange(200), rng.integers(0, 5, 200)] = True  # 1-2 attacked per row
        lowers = -np.random.default_rng(2).random((200, 5))
        uppers = lowers + 2.0
        config = BatchRoundConfig(
            schedule=RandomSchedule(),
            attacker=ActiveStretchBatchAttacker(side=1),
            attacked_mask=mask,
        )
        a = batch_rounds(lowers, uppers, config, np.random.default_rng(9))
        b = fused_rounds(lowers, uppers, config, np.random.default_rng(9))
        assert_results_equal(a, b)

    def test_truthful_parity(self):
        config = BatchRoundConfig(
            schedule=AscendingSchedule(), attacked_indices=(1,), attacker=TruthfulBatchAttacker()
        )
        a = monte_carlo_rounds((1.0, 2.0, 3.0), config, 120, rng=np.random.default_rng(5))
        b = fused_monte_carlo_rounds((1.0, 2.0, 3.0), config, 120, rng=np.random.default_rng(5))
        assert_results_equal(a, b)

    @given(
        lengths=st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=3, max_size=8),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        fa=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_hypothesis_parity(self, lengths, seed, fa):
        n = len(lengths)
        attacked = tuple(range(min(fa, n - 1)))
        schedule = SCHEDULES[seed % len(SCHEDULES)]
        if isinstance(schedule, FixedSchedule) and len(schedule.permutation) != n:
            schedule = AscendingSchedule()
        config = BatchRoundConfig(
            schedule=schedule,
            attacked_indices=attacked,
            attacker=ActiveStretchBatchAttacker(side=1 if seed % 3 else -1),
        )
        a = monte_carlo_rounds(tuple(lengths), config, 32, rng=np.random.default_rng(seed))
        b = fused_monte_carlo_rounds(tuple(lengths), config, 32, rng=np.random.default_rng(seed))
        assert_results_equal(a, b)


class TestDelegationAndPlans:
    def test_non_fusable_attackers_delegate_to_slot_loop(self):
        # The proxy subclasses the stretch attacker but draws randomness;
        # the fused driver must hand it to batch_rounds verbatim.
        proxy = BatchRoundConfig(
            schedule=AscendingSchedule(),
            attacked_indices=(0,),
            attacker=ExpectationProxyBatchAttacker(),
        )
        assert not fusable_attacker(proxy)
        a = monte_carlo_rounds((1.0, 2.0, 3.0), proxy, 64, rng=np.random.default_rng(11))
        b = fused_monte_carlo_rounds((1.0, 2.0, 3.0), proxy, 64, rng=np.random.default_rng(11))
        assert_results_equal(a, b)

    def test_plan_is_cached_per_config_schedule(self):
        clear_plan_cache()
        config = BatchRoundConfig(
            schedule=FixedSchedule((2, 0, 3, 1, 4)),
            attacked_indices=(0, 3),
            attacker=ActiveStretchBatchAttacker(),
        )
        plan = plan_for(config, 5, 2)
        assert plan_for(config, 5, 2) is plan
        # FixedSchedule with a static attacked set: fully static layout.
        np.testing.assert_array_equal(plan.static_comp_slots, [1, 2])
        np.testing.assert_array_equal(plan.static_comp_sensors, [0, 3])
        np.testing.assert_array_equal(plan.required, [5 - 2 - 2, 5 - 2 - 1])

    def test_thread_safety_of_the_scratch_pool(self):
        # The slot-loop driver has no shared mutable state; the fused
        # driver must keep that property — concurrent same-shape calls get
        # thread-local scratch, never each other's half-written buffers.
        from concurrent.futures import ThreadPoolExecutor

        config = BatchRoundConfig(
            schedule=RandomSchedule(),
            attacked_indices=(0, 2),
            attacker=ActiveStretchBatchAttacker(side=1),
        )

        def run(seed: int):
            return fused_monte_carlo_rounds(
                (2.0, 3.0, 3.0, 6.0, 8.0), config, 2_000, rng=np.random.default_rng(seed)
            )

        reference = {seed: run(seed) for seed in range(8)}
        with ThreadPoolExecutor(max_workers=8) as pool:
            for _ in range(3):
                for seed, result in zip(range(8), pool.map(run, range(8))):
                    np.testing.assert_array_equal(result.fusion.lo, reference[seed].fusion.lo)
                    np.testing.assert_array_equal(result.flagged, reference[seed].flagged)

    def test_scratch_buffers_do_not_leak_into_results(self):
        # Two consecutive calls share scratch; the first result must not be
        # overwritten by the second (escaping arrays are freshly allocated).
        config = BatchRoundConfig(
            schedule=AscendingSchedule(),
            attacked_indices=(0,),
            attacker=ActiveStretchBatchAttacker(),
        )
        first = fused_monte_carlo_rounds((1.0, 2.0, 3.0), config, 64, rng=np.random.default_rng(1))
        snapshot = (first.broadcast_lo.copy(), first.fusion.lo.copy(), first.flagged.copy())
        fused_monte_carlo_rounds((1.0, 2.0, 3.0), config, 64, rng=np.random.default_rng(2))
        np.testing.assert_array_equal(first.broadcast_lo, snapshot[0])
        np.testing.assert_array_equal(first.fusion.lo, snapshot[1])
        np.testing.assert_array_equal(first.flagged, snapshot[2])
