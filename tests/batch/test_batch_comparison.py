"""Tests for the batched schedule-comparison path (Table I/II style sweeps)."""

import numpy as np
import pytest

from repro.analysis import TABLE1_CONFIGURATIONS, table1_batch_sweep
from repro.attack import ActiveStretchPolicy
from repro.batch import (
    ActiveStretchBatchAttacker,
    TruthfulBatchAttacker,
    compare_schedules_batch,
    expected_fusion_width_batch,
)
from repro.core import ExperimentError
from repro.scheduling import (
    AscendingSchedule,
    DescendingSchedule,
    ScheduleComparisonConfig,
    compare_schedules,
)
from repro.scheduling.comparison import expected_fusion_width_monte_carlo


CONFIG = ScheduleComparisonConfig(lengths=(5.0, 11.0, 17.0), fa=1)


def test_rows_are_schedule_comparison_compatible():
    comparison = compare_schedules_batch(
        CONFIG, [AscendingSchedule(), DescendingSchedule()], samples=5_000
    )
    ascending = comparison.row("ascending")
    descending = comparison.row("descending")
    assert ascending.combinations == 5_000
    assert 0.0 <= ascending.detected_fraction <= 1.0
    assert comparison.expected_width("descending") == descending.expected_width
    # The paper's headline shape: Descending is never better for the attacker.
    assert descending.expected_width >= ascending.expected_width - 1e-9


def test_compare_schedules_method_batch_dispatches_with_deprecation():
    # The warning must name both the replacement and the removal version.
    with pytest.warns(DeprecationWarning, match=r"removed in repro 2\.0.*engine='batch'"):
        comparison = compare_schedules(
            CONFIG, [AscendingSchedule(), DescendingSchedule()], method="batch", samples=2_000
        )
    assert {row.schedule_name for row in comparison.rows} == {"ascending", "descending"}
    assert all(row.combinations == 2_000 for row in comparison.rows)


def test_batch_mean_agrees_with_scalar_monte_carlo_same_attacker():
    """Same attacker model scalar vs batched: means agree within MC noise."""
    samples = 4_000
    batch_row = expected_fusion_width_batch(
        CONFIG,
        DescendingSchedule(),
        samples,
        rng=np.random.default_rng(0),
        attacker=ActiveStretchBatchAttacker(),
    )
    scalar_row = expected_fusion_width_monte_carlo(
        CONFIG,
        DescendingSchedule(),
        ActiveStretchPolicy(),
        samples=800,
        rng=np.random.default_rng(1),
    )
    assert batch_row.expected_width == pytest.approx(scalar_row.expected_width, rel=0.1)
    assert batch_row.detected_fraction == 0.0
    assert scalar_row.detected_fraction == 0.0


def test_truthful_attacker_factory_is_respected():
    comparison = compare_schedules_batch(
        CONFIG,
        [AscendingSchedule(), DescendingSchedule()],
        samples=4_000,
        attacker_factory=TruthfulBatchAttacker,
    )
    # With a truthful "attacker" both schedules see identically-distributed
    # rounds, so the means are statistically indistinguishable.
    asc = comparison.expected_width("ascending")
    desc = comparison.expected_width("descending")
    assert desc == pytest.approx(asc, rel=0.05)


def test_table1_batch_sweep_shape():
    sweep = table1_batch_sweep(samples=2_000, configurations=TABLE1_CONFIGURATIONS[:3])
    assert len(sweep) == 3
    for entry, comparison in sweep:
        ascending = comparison.expected_width("ascending")
        descending = comparison.expected_width("descending")
        assert descending >= ascending - 0.1
        # The batched attacker is stealthy: it is never flagged.
        assert comparison.row("descending").detected_fraction == 0.0
        # Magnitudes land in the same regime as the paper's numbers.
        assert 0.5 * entry.paper_ascending < ascending < 3.0 * entry.paper_descending


def test_invalid_samples_rejected():
    with pytest.raises(ExperimentError):
        expected_fusion_width_batch(CONFIG, AscendingSchedule(), 0)


def test_policy_factory_rejected_with_batch_method():
    # The batched path cannot honour scalar policy factories; passing one
    # must fail loudly instead of silently switching attacker models.
    with pytest.warns(DeprecationWarning), pytest.raises(ExperimentError):
        compare_schedules(
            CONFIG,
            [AscendingSchedule()],
            policy_factory=ActiveStretchPolicy,
            method="batch",
        )


def test_method_batch_matches_engine_batch_exactly():
    # The deprecation shim must be a pure forwarding layer: same registry
    # engine, same RNG stream, identical rows.
    with pytest.warns(DeprecationWarning):
        legacy = compare_schedules(
            CONFIG, [AscendingSchedule(), DescendingSchedule()], method="batch", samples=3_000
        )
    engine = compare_schedules(
        CONFIG, [AscendingSchedule(), DescendingSchedule()], engine="batch", samples=3_000
    )
    assert legacy.rows == engine.rows
