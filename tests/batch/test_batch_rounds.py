"""The batched round driver bit-matches the scalar round simulator.

The oracle is :func:`repro.scheduling.round.run_round` driving the scalar
:class:`repro.attack.stretch.ActiveStretchPolicy`; the batched path replays
identical correct readings through
:class:`repro.batch.rounds.ActiveStretchBatchAttacker` and must produce the
same broadcasts, fusion bounds, and detection flags for every round.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attack import ActiveStretchPolicy
from repro.batch import (
    ActiveStretchBatchAttacker,
    BatchRoundConfig,
    BatchTransientFaults,
    TruthfulBatchAttacker,
    batch_orders,
    batch_rounds,
    monte_carlo_rounds,
    sample_correct_bounds,
)
from repro.core import EmptyIntersectionError, Interval, ScheduleError, SensorError
from repro.scheduling import (
    AscendingSchedule,
    DescendingSchedule,
    FixedSchedule,
    RandomSchedule,
    RoundConfig,
    run_round,
)


def _sample_batch(lengths, batch, seed):
    rng = np.random.default_rng(seed)
    return sample_correct_bounds(lengths, 0.0, batch, rng)


def _assert_equivalent(lengths, schedule, attacked, f, side, batch=64, seed=11):
    lowers, uppers = _sample_batch(lengths, batch, seed)
    config = BatchRoundConfig(
        schedule=schedule,
        attacked_indices=attacked,
        attacker=ActiveStretchBatchAttacker(side=side),
        f=f,
    )
    result = batch_rounds(lowers, uppers, config, np.random.default_rng(0))
    n = len(lengths)
    for row in range(batch):
        intervals = [Interval(lowers[row, i], uppers[row, i]) for i in range(n)]
        scalar = run_round(
            intervals,
            RoundConfig(
                schedule=schedule,
                attacked_indices=attacked,
                policy=ActiveStretchPolicy(side=side),
                f=f,
            ),
            np.random.default_rng(0),
        )
        assert tuple(result.orders[row]) == scalar.order
        for i in range(n):
            assert result.broadcast_lo[row, i] == scalar.broadcast[i].lo
            assert result.broadcast_hi[row, i] == scalar.broadcast[i].hi
        assert result.fusion.valid[row]
        assert result.fusion.lo[row] == scalar.fusion.lo
        assert result.fusion.hi[row] == scalar.fusion.hi
        flagged_sensors = {scalar.order[slot] for slot in scalar.detection.flagged_indices}
        assert set(np.nonzero(result.flagged[row])[0]) == flagged_sensors
        assert bool(result.attacker_detected[row]) == scalar.attacker_detected


@pytest.mark.parametrize("side", [1, -1])
@pytest.mark.parametrize(
    "schedule",
    [AscendingSchedule(), DescendingSchedule(), FixedSchedule((2, 0, 3, 1, 4))],
    ids=lambda s: s.name,
)
def test_batch_rounds_bitmatch_scalar_fa1(schedule, side):
    _assert_equivalent((1.0, 2.0, 3.0, 4.0, 5.0), schedule, (0,), 2, side)


@pytest.mark.parametrize("side", [1, -1])
@pytest.mark.parametrize(
    "schedule",
    [AscendingSchedule(), DescendingSchedule(), FixedSchedule((2, 0, 3, 1, 4))],
    ids=lambda s: s.name,
)
def test_batch_rounds_bitmatch_scalar_fa2(schedule, side):
    _assert_equivalent((2.0, 3.0, 3.0, 6.0, 8.0), schedule, (0, 1), 2, side)


@given(
    st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=3, max_size=7),
    st.integers(min_value=0, max_value=6),
    st.sampled_from([1, -1]),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_batch_rounds_bitmatch_scalar_random_configs(lengths, attacked_index, side, seed):
    lengths = tuple(lengths)
    n = len(lengths)
    attacked = (attacked_index % n,)
    schedule = AscendingSchedule() if seed % 2 else DescendingSchedule()
    _assert_equivalent(lengths, schedule, attacked, None, side, batch=8, seed=seed)


def test_truthful_attacker_and_no_attack_agree():
    lengths = (1.0, 2.0, 3.0)
    lowers, uppers = _sample_batch(lengths, 32, 5)
    rng = np.random.default_rng(0)
    truthful = batch_rounds(
        lowers,
        uppers,
        BatchRoundConfig(
            schedule=AscendingSchedule(), attacked_indices=(1,), attacker=TruthfulBatchAttacker()
        ),
        rng,
    )
    clean = batch_rounds(
        lowers, uppers, BatchRoundConfig(schedule=AscendingSchedule()), rng
    )
    np.testing.assert_array_equal(truthful.fusion.lo, clean.fusion.lo)
    np.testing.assert_array_equal(truthful.fusion.hi, clean.fusion.hi)
    assert not truthful.attacker_detected.any()
    assert not truthful.flagged.any()


def test_stretch_attacker_stays_undetected_under_random_schedule():
    lengths = (1.0, 2.0, 3.0, 4.0, 5.0)
    lowers, uppers = _sample_batch(lengths, 256, 9)
    config = BatchRoundConfig(
        schedule=RandomSchedule(),
        attacked_indices=(0, 1),
        attacker=ActiveStretchBatchAttacker(),
        f=2,
    )
    result = batch_rounds(lowers, uppers, config, np.random.default_rng(1))
    # Every order is a permutation and differs across rows with high probability.
    assert (np.sort(result.orders, axis=1) == np.arange(5)).all()
    assert len({tuple(row) for row in result.orders}) > 1
    assert result.fusion.valid.all()
    assert not result.attacker_detected.any()
    # The fusion still contains the true value: at most f sensors lie.
    assert (result.fusion.lo <= 0.0).all() and (result.fusion.hi >= 0.0).all()


def test_transient_faults_displace_and_get_flagged():
    lengths = (1.0, 1.0, 1.0, 1.0, 1.0)
    lowers, uppers = _sample_batch(lengths, 4000, 17)
    config = BatchRoundConfig(
        schedule=AscendingSchedule(),
        attacked_indices=(0,),
        attacker=TruthfulBatchAttacker(),
        f=2,
        faults=BatchTransientFaults(probability=0.1),
    )
    result = batch_rounds(lowers, uppers, config, np.random.default_rng(2))
    # Faults hit only honest sensors, at roughly the configured rate.
    assert not result.fault_mask[:, 0].any()
    rate = result.fault_mask[:, 1:].mean()
    assert 0.05 < rate < 0.15
    # A faulty interval never contains the truth; most get flagged.
    faulty_rows, faulty_cols = np.nonzero(result.fault_mask)
    assert (
        (result.broadcast_lo[faulty_rows, faulty_cols] > 0.0)
        | (result.broadcast_hi[faulty_rows, faulty_cols] < 0.0)
    ).all()
    assert result.fault_detected.any()
    # Rounds with at most f faults and a valid fusion still contain the truth.
    few_faults = result.fault_mask.sum(axis=1) <= 2
    ok = few_faults & result.fusion.valid
    assert (result.fusion.lo[ok] <= 0.0).all() and (result.fusion.hi[ok] >= 0.0).all()
    assert np.isfinite(result.estimates[result.fusion.valid]).all()


def test_monte_carlo_rounds_samples_contain_truth():
    config = BatchRoundConfig(schedule=DescendingSchedule())
    result = monte_carlo_rounds((2.0, 3.0, 5.0), config, samples=500, true_value=7.5)
    assert result.batch == 500
    assert (result.correct_lo <= 7.5).all() and (result.correct_hi >= 7.5).all()
    assert result.fusion.valid.all()
    assert (result.fusion.lo <= 7.5).all() and (result.fusion.hi >= 7.5).all()
    assert not result.attacker_detected.any()


def test_batch_orders_fallback_for_custom_schedules():
    # A subclass overriding `order` must not be captured by the vectorized
    # ascending shortcut: exact type checks route it to the generic fallback.
    class ReversedSchedule(AscendingSchedule):
        def order(self, widths, rng):
            return tuple(reversed(range(len(widths))))

    widths = np.tile(np.array([1.0, 2.0, 3.0]), (4, 1))
    orders = batch_orders(ReversedSchedule(), widths, np.random.default_rng(0))
    assert (orders == np.array([2, 1, 0])).all()
    with pytest.raises(ScheduleError):
        batch_orders(FixedSchedule((0, 1)), widths, np.random.default_rng(0))
    with pytest.raises(ScheduleError):
        batch_orders(AscendingSchedule(), np.zeros((2, 2)), np.random.default_rng(0))


def test_validation_errors():
    lowers, uppers = _sample_batch((1.0, 2.0, 3.0), 4, 0)
    config = BatchRoundConfig(schedule=AscendingSchedule())
    with pytest.raises(ScheduleError):
        batch_rounds(lowers[0], uppers[0], config, np.random.default_rng(0))
    with pytest.raises(ScheduleError):
        batch_rounds(np.zeros((2, 0)), np.zeros((2, 0)), config, np.random.default_rng(0))
    with pytest.raises(ScheduleError):
        batch_rounds(
            lowers,
            uppers,
            BatchRoundConfig(schedule=AscendingSchedule(), attacked_indices=(5,)),
            np.random.default_rng(0),
        )
    disjoint_lo = lowers.copy()
    disjoint_lo[:, 0] += 100.0
    with pytest.raises(EmptyIntersectionError):
        batch_rounds(
            disjoint_lo,
            disjoint_lo + 0.5,
            BatchRoundConfig(schedule=AscendingSchedule(), attacked_indices=(0, 1)),
            np.random.default_rng(0),
        )
    with pytest.raises(ScheduleError):
        sample_correct_bounds((1.0, -2.0), 0.0, 5, np.random.default_rng(0))
    with pytest.raises(ScheduleError):
        sample_correct_bounds((1.0, 2.0), 0.0, 0, np.random.default_rng(0))
    with pytest.raises(ScheduleError):
        ActiveStretchBatchAttacker(side=2)
    with pytest.raises(SensorError):
        BatchTransientFaults(probability=1.5)
    with pytest.raises(SensorError):
        BatchTransientFaults(probability=0.1, min_offset_widths=0.5)
    with pytest.raises(SensorError):
        BatchTransientFaults(probability=0.1, max_offset_widths=0.5)
