"""Property tests: the batch sweep bit-matches the scalar fusion core.

Every test draws random ``(B, n)`` interval batches — continuous values as
well as coarse grids that force endpoint ties and degenerate intervals — and
asserts exact (bitwise) agreement between the vectorized sweep and the scalar
:func:`repro.core.marzullo.fuse` / :func:`~repro.core.marzullo.fuse_or_none` /
:func:`repro.core.detection.detect`, including rounds whose fusion is empty.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import batch_detect, batch_fuse, batch_fuse_or_none
from repro.core import Interval, detect, fuse_or_none, max_safe_fault_bound

BATCH = 6


@st.composite
def interval_batch(draw):
    """A (B, n) batch mixing continuous and tie-heavy grid-valued intervals."""
    n = draw(st.integers(min_value=1, max_value=9))
    grid = draw(st.booleans())
    rows = []
    for _ in range(BATCH * n):
        if grid:
            lo = draw(st.integers(min_value=-6, max_value=6)) / 2.0
            width = draw(st.integers(min_value=0, max_value=8)) / 2.0
        else:
            lo = draw(st.floats(min_value=-20.0, max_value=20.0, allow_nan=False))
            width = draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
        rows.append((lo, lo + width))
    bounds = np.array(rows).reshape(BATCH, n, 2)
    return bounds[:, :, 0], bounds[:, :, 1]


def _scalar_rows(lowers, uppers):
    for row in range(lowers.shape[0]):
        yield row, [Interval(lowers[row, i], uppers[row, i]) for i in range(lowers.shape[1])]


def _assert_rows_match(result, lowers, uppers, f):
    for row, intervals in _scalar_rows(lowers, uppers):
        scalar = fuse_or_none(intervals, f)
        if scalar is None:
            assert not result.valid[row]
            assert np.isnan(result.lo[row]) and np.isnan(result.hi[row])
        else:
            assert result.valid[row]
            assert result.lo[row] == scalar.lo
            assert result.hi[row] == scalar.hi


@given(interval_batch())
@settings(max_examples=120, deadline=None)
def test_batch_fuse_bitmatches_scalar_in_valid_regime(batch):
    lowers, uppers = batch
    f = max_safe_fault_bound(lowers.shape[1])
    _assert_rows_match(batch_fuse(lowers, uppers, f), lowers, uppers, f)


@given(interval_batch(), st.integers(min_value=0, max_value=11))
@settings(max_examples=120, deadline=None)
def test_batch_fuse_or_none_bitmatches_scalar_for_any_f(batch, f):
    lowers, uppers = batch
    _assert_rows_match(batch_fuse_or_none(lowers, uppers, f), lowers, uppers, f)


@given(interval_batch())
@settings(max_examples=60, deadline=None)
def test_batch_detect_bitmatches_scalar_detect(batch):
    lowers, uppers = batch
    f = max_safe_fault_bound(lowers.shape[1])
    fusion = batch_fuse(lowers, uppers, f)
    flagged = batch_detect(lowers, uppers, fusion)
    for row, intervals in _scalar_rows(lowers, uppers):
        if not fusion.valid[row]:
            assert not flagged[row].any()
            continue
        scalar = detect(intervals, Interval(fusion.lo[row], fusion.hi[row]))
        assert set(np.nonzero(flagged[row])[0]) == set(scalar.flagged_indices)


@given(interval_batch())
@settings(max_examples=60, deadline=None)
def test_masked_rows_equal_scalar_fusion_of_subset(batch):
    lowers, uppers = batch
    n = lowers.shape[1]
    f = max_safe_fault_bound(n)
    rng = np.random.default_rng(0)
    mask = rng.random(lowers.shape) < 0.7
    mask[:, 0] = True
    result = batch_fuse_or_none(lowers, uppers, f, mask=mask)
    for row in range(lowers.shape[0]):
        subset = [Interval(lowers[row, i], uppers[row, i]) for i in range(n) if mask[row, i]]
        scalar = fuse_or_none(subset, f)
        if scalar is None:
            assert not result.valid[row]
        else:
            assert result.valid[row]
            assert result.lo[row] == scalar.lo and result.hi[row] == scalar.hi


def test_large_seeded_sweep_bitmatches_scalar():
    """A deterministic 1500-round sweep across every n in the paper's range."""
    rng = np.random.default_rng(2024)
    checked = 0
    for n in range(1, 10):
        batch = 1500 // 9
        widths = rng.uniform(0.01, 5.0, (batch, n))
        lowers = -widths * rng.uniform(0.0, 1.0, (batch, n))
        # Shift a third of the rows' first sensor away to create faulty rounds.
        lowers[::3, 0] += rng.uniform(5.0, 30.0)
        uppers = lowers + widths
        for f in range(0, max_safe_fault_bound(n) + 1):
            _assert_rows_match(batch_fuse(lowers, uppers, f), lowers, uppers, f)
            checked += batch
    assert checked >= 1000
