"""Statistics-level validation of the vectorized Table II case study.

The batched platoon stepper replaces the scalar expectation attacker with
the vectorized :class:`~repro.batch.rounds.ExpectationProxyBatchAttacker`,
so equivalence with the scalar driver is asserted on the *statistics* —
zero violations under Ascending, the paper's Ascending < Random < Descending
ordering, and violation rates within tolerance of the scalar reference —
rather than bit-for-bit.
"""

import numpy as np
import pytest

from repro.batch.case_study import batch_case_study, batch_case_study_for_schedule
from repro.core import ExperimentError
from repro.scheduling import AscendingSchedule, DescendingSchedule, RandomSchedule
from repro.vehicle import CaseStudyConfig, run_case_study


def total_rate(stats) -> float:
    return stats.upper_percentage + stats.lower_percentage


@pytest.fixture(scope="module")
def batch_result():
    # ~4.8k fusion rounds per schedule: plenty for stable percentages while
    # keeping the suite fast.
    return batch_case_study(CaseStudyConfig(n_steps=100), n_replicas=16)


class TestBatchCaseStudyStatistics:
    def test_round_accounting(self, batch_result):
        for stats in batch_result.stats:
            assert stats.rounds == 16 * 3 * 100

    def test_ascending_eliminates_violations(self, batch_result):
        ascending = batch_result.for_schedule("ascending")
        assert ascending.upper_violations == 0
        assert ascending.lower_violations == 0

    def test_paper_ordering(self, batch_result):
        ascending = batch_result.for_schedule("ascending")
        descending = batch_result.for_schedule("descending")
        random_row = batch_result.for_schedule("random")
        assert total_rate(ascending) < total_rate(random_row) < total_rate(descending)

    def test_rates_within_tolerance_of_scalar(self, batch_result):
        # The scalar reference at a reduced-but-stable scale; the proxy
        # attacker must land in the same statistical regime (the measured
        # ratio is ~0.9 for Descending and ~1.05 for Random).
        scalar = run_case_study(CaseStudyConfig(n_steps=60, n_vehicles=2), engine="scalar")
        for name in ("descending", "random"):
            batch_rate = total_rate(batch_result.for_schedule(name))
            scalar_rate = total_rate(scalar.for_schedule(name))
            assert 0.5 * scalar_rate < batch_rate < 1.5 * scalar_rate, (
                f"{name}: batch {batch_rate:.2f}% vs scalar {scalar_rate:.2f}%"
            )

    def test_upper_lower_roughly_symmetric(self, batch_result):
        # Table II's two rows are nearly equal in the paper; the random
        # tie-breaking of the side choice must preserve that symmetry.
        descending = batch_result.for_schedule("descending")
        assert descending.upper_percentage == pytest.approx(
            descending.lower_percentage, rel=0.35
        )


class TestBatchCaseStudyConfigurations:
    def test_engine_route_through_run_case_study(self):
        result = run_case_study(
            CaseStudyConfig(n_steps=40), engine="batch", n_replicas=4
        )
        assert result.for_schedule("ascending").rounds == 4 * 3 * 40
        ordering = [total_rate(s) for s in result.stats]
        assert ordering[0] < ordering[1]  # ascending < descending

    def test_most_precise_attack_is_stronger_than_random(self):
        base = CaseStudyConfig(n_steps=80, attacked_sensor="random")
        precise = CaseStudyConfig(n_steps=80, attacked_sensor="most_precise")
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        random_stats = batch_case_study_for_schedule(
            base, DescendingSchedule(), n_replicas=8, rng=rng1
        )
        precise_stats = batch_case_study_for_schedule(
            precise, DescendingSchedule(), n_replicas=8, rng=rng2
        )
        assert total_rate(precise_stats) > total_rate(random_stats)

    def test_no_attack_has_no_violations(self):
        stats = batch_case_study_for_schedule(
            CaseStudyConfig(n_steps=60, attacked_sensor="none"),
            DescendingSchedule(),
            n_replicas=8,
            rng=np.random.default_rng(0),
        )
        assert stats.upper_violations == 0
        assert stats.lower_violations == 0

    def test_fixed_sensor_attack(self):
        stats = batch_case_study_for_schedule(
            CaseStudyConfig(n_steps=60, attacked_sensor=0),
            DescendingSchedule(),
            n_replicas=8,
            rng=np.random.default_rng(0),
        )
        # Sensor 0 is an encoder — the strong case — so violations do occur.
        assert stats.upper_violations + stats.lower_violations > 0

    def test_random_schedule_sits_between(self):
        config = CaseStudyConfig(n_steps=100)
        rows = {}
        for index, schedule in enumerate(
            (AscendingSchedule(), DescendingSchedule(), RandomSchedule())
        ):
            rows[schedule.name] = batch_case_study_for_schedule(
                config, schedule, n_replicas=8, rng=np.random.default_rng(config.seed + index)
            )
        assert (
            total_rate(rows["ascending"])
            < total_rate(rows["random"])
            < total_rate(rows["descending"])
        )

    def test_invalid_replicas_rejected(self):
        with pytest.raises(ExperimentError):
            batch_case_study_for_schedule(
                CaseStudyConfig(n_steps=5), AscendingSchedule(), n_replicas=0
            )

    def test_out_of_range_attacked_sensor_rejected(self):
        # Same descriptive error as the scalar engine, not a raw IndexError
        # from the vectorized mask assignment.
        with pytest.raises(ExperimentError, match="out of range"):
            batch_case_study_for_schedule(
                CaseStudyConfig(n_steps=5, attacked_sensor=9),
                AscendingSchedule(),
                n_replicas=2,
            )
