"""Unit tests for the vectorized fusion/detection sweep."""

import numpy as np
import pytest

from repro.analysis import figure1_intervals
from repro.batch import (
    batch_detect,
    batch_fuse,
    batch_fuse_or_none,
    coverage_extremes,
)
from repro.core import FaultBoundError, FusionError, Interval, detect, fuse, fuse_or_none


def _bounds(rows):
    lowers = np.array([[s.lo for s in row] for row in rows])
    uppers = np.array([[s.hi for s in row] for row in rows])
    return lowers, uppers


def test_figure1_rows_match_scalar_across_f():
    intervals = figure1_intervals()
    lowers, uppers = _bounds([intervals, list(reversed(intervals))])
    for f in (0, 1, 2):
        result = batch_fuse(lowers, uppers, f)
        expected = fuse(intervals, f)
        assert result.valid.all()
        assert result.lo[0] == expected.lo and result.hi[0] == expected.hi
        assert result.lo[1] == expected.lo and result.hi[1] == expected.hi


def test_empty_fusion_rows_are_masked_not_raised():
    # Row 0 fuses fine; row 1 has two disjoint intervals and required coverage 2.
    lowers = np.array([[0.0, 1.0], [0.0, 5.0]])
    uppers = np.array([[2.0, 3.0], [1.0, 6.0]])
    result = batch_fuse_or_none(lowers, uppers, 0)
    assert result.valid.tolist() == [True, False]
    assert result.lo[0] == 1.0 and result.hi[0] == 2.0
    assert np.isnan(result.lo[1]) and np.isnan(result.hi[1])
    assert np.isnan(result.width[1]) and np.isnan(result.center[1])
    assert len(result) == 2


def test_required_at_most_zero_degenerates_to_hull():
    lowers = np.array([[0.0, 5.0]])
    uppers = np.array([[1.0, 6.0]])
    result = batch_fuse_or_none(lowers, uppers, 3)
    expected = fuse_or_none([Interval(0.0, 1.0), Interval(5.0, 6.0)], 3)
    assert result.valid.all()
    assert (result.lo[0], result.hi[0]) == (expected.lo, expected.hi)


def test_degenerate_point_intervals():
    lowers = np.array([[1.0, 1.0, 0.0]])
    uppers = np.array([[1.0, 1.0, 2.0]])
    result = batch_fuse(lowers, uppers, 1)
    expected = fuse([Interval(1.0, 1.0), Interval(1.0, 1.0), Interval(0.0, 2.0)], 1)
    assert result.valid.all()
    assert (result.lo[0], result.hi[0]) == (expected.lo, expected.hi)


def test_mask_restricts_each_row_to_its_subset():
    intervals = figure1_intervals()
    lowers, uppers = _bounds([intervals, intervals])
    mask = np.array([[True] * 5, [True, True, True, False, False]])
    result = batch_fuse_or_none(lowers, uppers, 1, mask=mask)
    full = fuse_or_none(intervals, 1)
    sub = fuse_or_none(intervals[:3], 1)
    assert (result.lo[0], result.hi[0]) == (full.lo, full.hi)
    assert (result.lo[1], result.hi[1]) == (sub.lo, sub.hi)


def test_empty_mask_row_rejected():
    lowers = np.zeros((2, 3))
    uppers = np.ones((2, 3))
    mask = np.array([[True, True, True], [False, False, False]])
    with pytest.raises(FusionError):
        batch_fuse_or_none(lowers, uppers, 0, mask=mask)


def test_coverage_extremes_per_row_required():
    lowers = np.array([[0.0, 0.5, 0.75], [0.0, 0.5, 0.75]])
    uppers = np.array([[1.0, 3.0, 3.0], [1.0, 3.0, 3.0]])
    result = coverage_extremes(lowers, uppers, np.array([2, 3]))
    assert result.valid.all()
    assert (result.lo[0], result.hi[0]) == (0.5, 3.0)
    assert (result.lo[1], result.hi[1]) == (0.75, 1.0)


def test_validation_errors():
    good_lo, good_hi = np.zeros((2, 3)), np.ones((2, 3))
    with pytest.raises(FusionError):
        batch_fuse(np.zeros(3), np.ones(3), 1)  # 1-D input
    with pytest.raises(FusionError):
        batch_fuse(good_lo, np.ones((2, 4)), 1)  # shape mismatch
    with pytest.raises(FusionError):
        batch_fuse(np.zeros((2, 0)), np.ones((2, 0)), 0)  # no sensors
    with pytest.raises(FusionError):
        batch_fuse(good_lo, np.full((2, 3), np.nan), 1)  # non-finite
    with pytest.raises(FusionError):
        batch_fuse(np.ones((2, 3)), np.zeros((2, 3)), 1)  # hi < lo
    with pytest.raises(FaultBoundError):
        batch_fuse(good_lo, good_hi, 2)  # f >= ceil(n/2)
    with pytest.raises(FaultBoundError):
        batch_fuse_or_none(good_lo, good_hi, -1)
    with pytest.raises(FusionError):
        batch_fuse_or_none(good_lo, good_hi, 0, mask=np.ones((2, 4), dtype=bool))


def test_batch_detect_matches_scalar_detect():
    rng = np.random.default_rng(3)
    widths = rng.uniform(0.5, 4.0, (32, 5))
    lowers = -widths * rng.uniform(0.0, 1.0, (32, 5))
    # Displace one sensor far away in half the rows so some flags appear.
    lowers[::2, 0] += 25.0
    uppers = lowers + widths
    fusion = batch_fuse(lowers, uppers, 2)
    flagged = batch_detect(lowers, uppers, fusion)
    assert flagged.any() and not flagged.all()
    for row in range(32):
        intervals = [Interval(lowers[row, i], uppers[row, i]) for i in range(5)]
        scalar = detect(intervals, Interval(fusion.lo[row], fusion.hi[row]))
        assert set(np.nonzero(flagged[row])[0]) == set(scalar.flagged_indices)


def test_batch_detect_flags_nothing_for_empty_fusion_rows():
    lowers = np.array([[0.0, 5.0]])
    uppers = np.array([[1.0, 6.0]])
    fusion = batch_fuse_or_none(lowers, uppers, 0)
    assert not fusion.valid[0]
    assert not batch_detect(lowers, uppers, fusion).any()
