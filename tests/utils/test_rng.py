"""Unit tests for the RNG helpers."""

import numpy as np

from repro.utils import make_rng, spawn_rngs


class TestMakeRng:
    def test_reproducible(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_none_seed_allowed(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_streams_are_independent(self):
        a, b = spawn_rngs(7, 2)
        assert a.random() != b.random()

    def test_reproducible_streams(self):
        first = [r.random() for r in spawn_rngs(3, 3)]
        second = [r.random() for r in spawn_rngs(3, 3)]
        assert first == second
