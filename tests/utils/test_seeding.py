"""The centralized seed-derivation helpers (hypothesis-tested).

The property suite pins the two contracts the sharded runner builds on:
spawn-key streams over ``(case, shard)`` grids are pairwise distinct and
independent of derivation order, and :func:`ensure_rng` never hands two
call sites one shared (aliased) generator when it builds the fallback.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import make_rng, spawn_rngs
from repro.utils.seeding import (
    child_seed_sequence,
    derive_rng,
    ensure_rng,
    shard_rngs,
    shard_seed_sequences,
)


def test_child_sequence_matches_spawn():
    # The stateless spawn-key construction equals SeedSequence.spawn — the
    # property that lets workers rebuild their streams without coordination.
    root = np.random.SeedSequence(2014)
    children = root.spawn(5)
    for index, child in enumerate(children):
        stateless = child_seed_sequence(2014, index)
        assert stateless.entropy == child.entropy
        assert stateless.spawn_key == child.spawn_key
        a = np.random.default_rng(stateless).random(8)
        b = np.random.default_rng(child).random(8)
        np.testing.assert_array_equal(a, b)


def test_derive_rng_is_deterministic_and_keyed():
    a = derive_rng(7, 1, 2).random(16)
    b = derive_rng(7, 1, 2).random(16)
    np.testing.assert_array_equal(a, b)
    assert not np.array_equal(a, derive_rng(7, 1, 3).random(16))
    assert not np.array_equal(a, derive_rng(8, 1, 2).random(16))


def test_derive_rng_root_matches_default_rng():
    np.testing.assert_array_equal(
        derive_rng(123).random(8), np.random.default_rng(123).random(8)
    )


def test_no_cross_seed_collision():
    # The failure mode of the old `seed + index` arithmetic: stream (seed, 1)
    # must NOT equal stream (seed + 1, 0).
    np.random.default_rng(2014 + 1)
    collided = np.array_equal(derive_rng(2014, 1).random(16), derive_rng(2015, 0).random(16))
    assert not collided


def test_ensure_rng_passthrough_and_default():
    rng = np.random.default_rng(5)
    assert ensure_rng(rng) is rng
    np.testing.assert_array_equal(
        ensure_rng(None).random(4), np.random.default_rng(0).random(4)
    )
    np.testing.assert_array_equal(
        ensure_rng(None, 42).random(4), np.random.default_rng(42).random(4)
    )


def test_shard_helpers_and_legacy_alias():
    sequences = shard_seed_sequences(9, 3)
    assert [s.spawn_key for s in sequences] == [(0,), (1,), (2,)]
    ours = [rng.random(4) for rng in shard_rngs(9, 3)]
    legacy = [rng.random(4) for rng in spawn_rngs(9, 3)]
    for a, b in zip(ours, legacy):
        np.testing.assert_array_equal(a, b)
    draws = {tuple(values) for values in ours}
    assert len(draws) == 3  # independent streams


def test_make_rng_unseeded_still_works():
    assert isinstance(make_rng(), np.random.Generator)


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    cases=st.integers(min_value=1, max_value=4),
    shards=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=30, deadline=None)
def test_case_shard_streams_pairwise_distinct(seed, cases, shards):
    """Every (case, shard) spawn key gets its own stream — no collisions.

    This is the property the ``seed + index`` arithmetic lacked: on a full
    grid all derived streams must differ from each other, from their base
    seed's root stream, and from the neighbouring seed's grid.
    """
    draws = {}
    for case in range(cases):
        for shard in range(shards):
            draws[(case, shard)] = tuple(derive_rng(seed, case, shard).random(8))
    assert len(set(draws.values())) == cases * shards
    root = tuple(np.random.default_rng(seed).random(8))
    assert root not in set(draws.values())
    neighbour = tuple(derive_rng(seed + 1, 0, 0).random(8))
    assert neighbour not in set(draws.values())


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    keys=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)), min_size=2, max_size=8, unique=True
    ),
    order=st.randoms(use_true_random=False),
)
@settings(max_examples=30, deadline=None)
def test_case_shard_streams_order_independent(seed, keys, order):
    """Derivation order never matters: streams are pure functions of the key.

    Workers rebuild their own streams without coordinating, so deriving
    the grid in any shuffled order must give byte-identical streams.
    """
    in_order = {key: derive_rng(seed, *key).random(4) for key in keys}
    shuffled = list(keys)
    order.shuffle(shuffled)
    for key in shuffled:
        np.testing.assert_array_equal(derive_rng(seed, *key).random(4), in_order[key])


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_ensure_rng_never_aliases_the_fallback(seed):
    """Two fallback calls must not share one generator object or state.

    If ``ensure_rng`` cached its default generator, one call site's draws
    would silently advance another's stream; each call must build a fresh,
    stateless-derived generator.
    """
    a = ensure_rng(None, seed)
    b = ensure_rng(None, seed)
    assert a is not b
    first = a.random(16)
    # Drawing from `a` must leave `b` at the stream's origin.
    np.testing.assert_array_equal(b.random(16), first)


def test_ensure_rng_passes_the_callers_generator_through_unwrapped():
    # Pass-through (not aliasing a *different* object) is the documented
    # contract: the caller keeps full ownership of its stream.
    rng = np.random.default_rng(123)
    assert ensure_rng(rng) is rng
    assert ensure_rng(rng, seed=999) is rng


@pytest.mark.parametrize("count", [1, 4])
def test_shard_rngs_count(count):
    assert len(shard_rngs(0, count)) == count
